// custom_algorithm: bring your own Strassen-like base algorithm.
//
//   ./custom_algorithm --file=examples/data/strassen.bilinear --r=3
//
// Loads U/V/W tables from the text format (see
// pathrouting/bilinear/serialize.hpp), verifies the Brent equations,
// reports the structural properties the paper's hypotheses are stated
// in, and runs the full pipeline: Hall matching, Theorem-2 routing,
// and an I/O measurement against the Theorem-1 asymptotic bound.
#include <cstdio>
#include <fstream>

#include "pathrouting/pathrouting.hpp"

using namespace pathrouting;  // NOLINT: example brevity

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::string file =
      cli.flag_str("file", "examples/data/strassen.bilinear",
                   "algorithm file (pathrouting-bilinear-v1)");
  const int r = static_cast<int>(cli.flag_int("r", 3, "recursion depth"));
  const std::int64_t m = cli.flag_int("memory", 64, "cache size M");
  cli.finish("Analyse a user-supplied Strassen-like algorithm.");

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", file.c_str());
    return 2;
  }
  const bilinear::ParseResult parsed = bilinear::from_text(in);
  if (!parsed.algorithm.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 2;
  }
  const bilinear::BilinearAlgorithm& alg = *parsed.algorithm;
  std::printf("%s: <%d,%d,%d;%d>, omega0 = %.4f (Brent equations verified)\n",
              alg.name().c_str(), alg.n0(), alg.n0(), alg.n0(), alg.b(),
              alg.omega0());
  std::printf("  single-use assumption: %s\n",
              bilinear::satisfies_single_use_assumption(alg) ? "holds"
                                                             : "violated");
  std::printf("  encoding components: A=%d B=%d, decoding components: %d\n",
              bilinear::encoding_components(alg, bilinear::Side::A),
              bilinear::encoding_components(alg, bilinear::Side::B),
              bilinear::decoding_components(alg));
  std::printf("  Hall condition (Lemma 5): A %s, B %s\n",
              routing::hall_condition_flow(alg, bilinear::Side::A) ? "holds"
                                                                   : "FAILS",
              routing::hall_condition_flow(alg, bilinear::Side::B) ? "holds"
                                                                   : "FAILS");

  const routing::ChainRouter router(alg);
  const cdag::Cdag graph(alg, r, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, r, 0);
  const auto t2 = routing::verify_full_routing_aggregated(router, sub);
  std::printf("  Theorem-2 routing on G_%d: busiest vertex %llu of bound "
              "%llu -> %s\n",
              r, static_cast<unsigned long long>(t2.max_vertex_hits),
              static_cast<unsigned long long>(t2.bound),
              t2.max_vertex_hits <= t2.bound ? "holds" : "VIOLATED");

  const auto order = schedule::dfs_schedule(graph);
  const auto res = pebble::simulate(
      graph.graph(), order, {.cache_size = static_cast<std::uint64_t>(m)},
      [&](cdag::VertexId v) { return graph.layout().is_output(v); });
  const double bound = bounds::asymptotic_io(
      static_cast<double>(graph.layout().n()), static_cast<double>(m),
      alg.omega0());
  std::printf("  pebble game (DFS, M=%lld): IO = %llu, (n/sqrtM)^w0*M = %.0f, "
              "ratio %.2f\n",
              static_cast<long long>(m),
              static_cast<unsigned long long>(res.io()), bound,
              res.io() / bound);
  return 0;
}
