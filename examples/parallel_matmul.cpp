// parallel_matmul: drive the simulated distributed-memory machine.
//
//   ./parallel_matmul --n=64 --grid=4            (value-level SUMMA)
//   ./parallel_matmul --caps --r=12 --levels=3   (CAPS cost simulation)
#include <cmath>
#include <cstdio>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/parallel/caps.hpp"
#include "pathrouting/parallel/summa.hpp"
#include "pathrouting/support/cli.hpp"

using namespace pathrouting;  // NOLINT: example brevity

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const bool caps = cli.flag_bool("caps", false, "run the CAPS cost model");
  const std::int64_t n_flag = cli.flag_int("n", 64, "matrix dimension (SUMMA)");
  const std::int64_t grid = cli.flag_int("grid", 4, "processor grid side");
  const std::int64_t panel = cli.flag_int("panel", 4, "SUMMA panel width");
  const std::int64_t r = cli.flag_int("r", 12, "recursion depth (CAPS)");
  const std::int64_t levels = cli.flag_int("levels", 3, "BFS levels: P = b^l");
  const std::int64_t mem =
      cli.flag_int("memory", 0, "local memory per proc (0 = unbounded)");
  cli.finish("Simulated distributed-memory matrix multiplication.");

  if (caps) {
    const auto alg = bilinear::strassen();
    const std::uint64_t m =
        mem > 0 ? static_cast<std::uint64_t>(mem) : (1ull << 62);
    const auto res = parallel::simulate_caps(
        alg, static_cast<int>(r),
        {.bfs_levels = static_cast<int>(levels), .local_memory = m});
    const double n = std::pow(2.0, static_cast<double>(r));
    std::printf("CAPS on P = 7^%lld = %.0f procs, n = %.0f, M = %s\n",
                static_cast<long long>(levels), res.procs, n,
                mem > 0 ? std::to_string(m).c_str() : "unbounded");
    std::printf("  BFS steps %d, DFS steps %d, supersteps %llu\n",
                res.bfs_steps, res.dfs_steps,
                static_cast<unsigned long long>(res.supersteps));
    std::printf("  bandwidth (critical path): %.3e words\n",
                res.bandwidth_cost);
    std::printf("  peak memory per proc:      %.3e words (within M: %s)\n",
                res.peak_memory, res.within_memory(m) ? "yes" : "NO");
    const double w0 = alg.omega0();
    std::printf("  lower bounds: mem-dep %.3e | mem-indep %.3e\n",
                bounds::parallel_bandwidth_lb(n, res.peak_memory, res.procs,
                                              w0),
                bounds::memory_independent_lb(n, res.procs, w0));
    return 0;
  }

  const std::size_t n = static_cast<std::size_t>(n_flag);
  support::Xoshiro256 rng(1);
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  parallel::Machine machine(static_cast<int>(grid * grid), 1ull << 30);
  const auto res = parallel::run_summa(a, b, static_cast<int>(grid),
                                       static_cast<std::size_t>(panel),
                                       machine);
  std::printf("SUMMA: n = %zu on a %lld x %lld grid, panel %lld\n", n,
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(panel));
  std::printf("  result correct:      %s\n", res.correct ? "yes" : "NO");
  std::printf("  bandwidth:           %llu words (~4n^2/grid = %.0f)\n",
              static_cast<unsigned long long>(res.bandwidth_cost),
              4.0 * static_cast<double>(n) * static_cast<double>(n) /
                  static_cast<double>(grid));
  std::printf("  total words moved:   %llu\n",
              static_cast<unsigned long long>(res.total_words));
  std::printf("  supersteps:          %llu\n",
              static_cast<unsigned long long>(res.supersteps));
  return res.correct ? 0 : 1;
}
