// paper_checklist: run every checkable statement of the paper in one
// sitting and print a pass/fail checklist. The definitive smoke test —
// takes a couple of minutes single-threaded.
#include <cstdio>
#include <string>

#include "pathrouting/pathrouting.hpp"

using namespace pathrouting;  // NOLINT: example brevity

namespace {

int failures = 0;

void check(const std::string& what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  failures += ok ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("Scott-Holtz-Schwartz, SPAA'15 — executable checklist\n");

  std::printf("\nSection 3 (preliminaries):\n");
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    check(std::string(name) + ": Brent equations (the base multiplies)",
          alg.verify_brent());
    check(std::string(name) + ": single-use assumption holds",
          bilinear::satisfies_single_use_assumption(alg));
  }
  {
    const cdag::Cdag g(bilinear::classical(2), 2);
    check("classical shows multiple copying (Figure 2)",
          cdag::has_multiple_copying(g));
    check("classical2 x strassen has a disconnected decoding graph",
          bilinear::decoding_components(bilinear::classical2_x_strassen()) >
              1);
  }

  std::printf("\nSection 7.2-7.3 (Lemma 5 / Theorem 3):\n");
  for (const auto& name : bilinear::catalog_names()) {
    const auto alg = bilinear::by_name(name);
    check(name + ": Hall condition both sides",
          routing::hall_condition_flow(alg, bilinear::Side::A) &&
              routing::hall_condition_flow(alg, bilinear::Side::B));
  }

  std::printf("\nSection 7 (Lemma 3, Lemma 4, Theorem 2):\n");
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const routing::ChainRouter router(alg);
    const int k = alg.n0() == 2 ? 4 : 3;
    const cdag::Cdag g(alg, k, {.with_coefficients = false});
    const cdag::SubComputation sub(g, k, 0);
    const auto l3 = routing::verify_chain_routing(router, sub);
    check(std::string(name) + ": Lemma 3 (2*n0^k chain routing, k=" +
              std::to_string(k) + ")",
          l3.ok());
    check(std::string(name) + ": Lemma 4 (each chain used exactly 3*n0^k)",
          routing::verify_chain_multiplicities(router, sub));
    const auto t2 = routing::verify_full_routing_aggregated(router, sub);
    check(std::string(name) + ": Theorem 2 (6*a^k routing, meta-vertices too)",
          t2.ok());
  }

  std::printf("\nSection 5 (Claim 1 and Equation 1):\n");
  {
    const auto alg = bilinear::strassen();
    const routing::DecodeRouter dr(alg);
    const cdag::Cdag g(alg, 4, {.with_coefficients = false});
    check("Claim 1: 11*7^k routing in D_k",
          routing::verify_decode_routing(dr, cdag::SubComputation(g, 4, 0))
              .ok());
    const cdag::Cdag g6(alg, 6, {.with_coefficients = false});
    const auto cert = bounds::certify_segments_decode_only(
        g6, schedule::dfs_schedule(g6), {.cache_size = 2});
    check("Equation (1): |delta(S)| >= |S_bar|/22 on a real schedule",
          cert.complete_segments() > 0 && cert.eq_holds(22));
  }

  std::printf("\nSection 6 (Lemmas 1-2, Equation 2, Theorem 1):\n");
  {
    const auto alg = bilinear::strassen();
    const cdag::Cdag g(alg, 7, {.with_coefficients = false});
    const auto family = bounds::build_disjoint_family(g, 5);
    check("Lemma 1: input-disjoint family of >= b^{r-k-2}",
          family.meets_lemma1());
    bool all = true;
    for (const auto& order :
         {schedule::dfs_schedule(g),
          schedule::random_topological_schedule(g.graph(), 17)}) {
      const auto cert = bounds::certify_segments(g, order, {.cache_size = 8});
      all = all && cert.complete_segments() > 0 && cert.eq_holds(12) &&
            cert.boundary_ge(24);
    }
    check("Equation (2): |delta'(S')| >= |S_bar|/12 >= 3M on real schedules",
          all);
    const auto order = schedule::dfs_schedule(g);
    const auto cert = bounds::certify_segments(g, order, {.cache_size = 8});
    const auto sim = pebble::simulate(
        g.graph(), order, {.cache_size = 8},
        [&](cdag::VertexId v) { return g.layout().is_output(v); });
    check("Theorem 1 (serial): certified bound <= simulated I/O",
          cert.io_lower_bound(8) <= sim.io());
  }

  std::printf("\nTheorem 1 (parallel):\n");
  {
    const auto alg = bilinear::strassen();
    const double w0 = alg.omega0();
    bool both = true;
    for (const int l : {2, 3}) {
      const auto res = parallel::simulate_caps(
          alg, 10, {.bfs_levels = l, .local_memory = 1ull << 40});
      const double n = 1024.0;
      both = both &&
             res.bandwidth_cost >
                 bounds::memory_independent_lb(n, res.procs, w0) / 36.0 &&
             res.bandwidth_cost >
                 bounds::parallel_bandwidth_lb(n, res.peak_memory, res.procs,
                                               w0) /
                     36.0;
    }
    check("bandwidth >= both parallel lower bounds (CAPS simulation)", both);
    support::Xoshiro256 rng(3);
    const auto a = matmul::random_matrix<std::int64_t>(28, rng);
    const auto b = matmul::random_matrix<std::int64_t>(28, rng);
    parallel::Machine machine(7, 1ull << 30);
    check("value-level one-BFS-level distributed Strassen is correct",
          parallel::run_distributed_strassen_like(alg, a, b, machine, 7)
              .correct);
  }

  std::printf("\nSection 8 (the conjecture, empirically):\n");
  {
    const auto alg = bilinear::classical2_x_strassen();
    const cdag::Cdag g(alg, 3, {.with_coefficients = false,
                                .group_duplicate_rows = true});
    const auto cert = bounds::certify_segments(
        g, schedule::random_topological_schedule(g.graph(), 5),
        {.cache_size = 1, .k = 1, .s_bar_target = 8});
    check("Equation (2) survives without the single-use assumption",
          cert.complete_segments() > 0 && cert.eq_holds(12));
  }

  std::printf("\nAudit (the paper-invariant linter over the above):\n");
  {
    for (const char* name : {"strassen", "winograd", "classical2"}) {
      const cdag::Cdag g(bilinear::by_name(name), 2);
      const auto report = audit::run_all(g);
      check(std::string(name) + ": " +
                std::to_string(report.rules_run().size()) +
                " audit rules clean (" +
                std::to_string(report.num_errors()) + " errors)",
            report.ok());
    }
    for (const auto& rule : audit::all_rules()) {
      std::printf("    %-26.*s %.*s\n", static_cast<int>(rule.id.size()),
                  rule.id.data(), static_cast<int>(rule.paper_ref.size()),
                  rule.paper_ref.data());
    }
  }

  std::printf("\n%s (%d failure%s)\n",
              failures == 0 ? "ALL CLAIMS CHECK OUT" : "FAILURES PRESENT",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
