// io_bounds: the "calculator" — sweep (r, M) for a chosen algorithm,
// simulate the pebble game, and print measured I/O against every bound
// form in the paper.
//
//   ./io_bounds --alg=strassen --rmax=6 --schedule=dfs
//   ./io_bounds --alg=laderman --rmax=4 --policy=lru
#include <cmath>
#include <iostream>
#include <string>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/table.hpp"

using namespace pathrouting;  // NOLINT: example brevity

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::string name = cli.flag_str("alg", "strassen", "catalog algorithm");
  const int rmin = static_cast<int>(cli.flag_int("rmin", 3, "smallest depth"));
  const int rmax = static_cast<int>(cli.flag_int("rmax", 6, "largest depth"));
  const std::string sched =
      cli.flag_str("schedule", "dfs", "dfs | bfs | random");
  const std::string policy = cli.flag_str("policy", "belady", "belady | lru");
  cli.finish("Sweep (r, M), simulate the pebble game, compare with bounds.");

  const auto alg = bilinear::by_name(name);
  const double w0 = alg.omega0();
  std::printf("%s: omega0 = %.4f, schedule = %s, eviction = %s\n",
              alg.name().c_str(), w0, sched.c_str(), policy.c_str());
  support::Table table({"r", "n", "M", "IO", "asym (n/sqrtM)^w0*M", "ratio",
                        "Section5 form", "Theorem1 form"});
  for (int r = rmin; r <= rmax; ++r) {
    const cdag::Cdag graph(alg, r, {.with_coefficients = false});
    std::vector<cdag::VertexId> order;
    if (sched == "bfs") {
      order = schedule::bfs_schedule(graph);
    } else if (sched == "random") {
      order = schedule::random_topological_schedule(graph.graph(), 1);
    } else {
      order = schedule::dfs_schedule(graph);
    }
    const double n = static_cast<double>(graph.layout().n());
    for (const std::uint64_t m : {64ull, 256ull, 1024ull}) {
      if (static_cast<double>(m) > n * n / 2) continue;
      const auto res = pebble::simulate(
          graph.graph(), order,
          {.cache_size = m,
           .eviction = policy == "lru" ? pebble::Eviction::Lru
                                       : pebble::Eviction::Belady},
          [&](cdag::VertexId v) { return graph.layout().is_output(v); });
      const double asym = bounds::asymptotic_io(n, static_cast<double>(m), w0);
      const std::uint64_t t1 =
          bounds::theorem1_io_lower_bound(alg.a(), alg.b(), r, m);
      const std::uint64_t s5 =
          alg.n0() == 2 && alg.b() == 7 ? bounds::section5_io_lower_bound(r, m)
                                        : 0;
      table.add_row({std::to_string(r),
                     support::fmt_count(static_cast<std::uint64_t>(n)),
                     support::fmt_count(m), support::fmt_count(res.io()),
                     support::fmt_count(static_cast<std::uint64_t>(asym)),
                     support::fmt_fixed(res.io() / asym, 2),
                     s5 == 0 ? "(vacuous)" : support::fmt_count(s5),
                     t1 == 0 ? "(vacuous)" : support::fmt_count(t1)});
    }
  }
  table.print(std::cout);
  return 0;
}
