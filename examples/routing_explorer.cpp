// routing_explorer: inspect the path-routing machinery interactively.
//
//   ./routing_explorer --alg=strassen --k=3
//   ./routing_explorer --alg=laderman --k=2 --show-chain
//   ./routing_explorer --alg=strassen --k=2 --engine=brute
//   ./routing_explorer --alg=strassen --k=10 --engine=implicit
//   ./routing_explorer --alg=strassen --k=2 --dot=paths.dot
//
// Prints the Theorem-3 base matching, the Lemma-3 / Theorem-2 hit
// statistics for G_k (via the memoized closed-form engine by default,
// --engine=brute for the enumerating oracle, or --engine=implicit for
// the constant-memory virtual-CDAG engine, which never materializes
// G_k and so reaches k = 10+), and optionally walks one concrete chain
// and one concatenated In->Out path, naming every vertex it passes.
// --dot writes those two sample paths as a DOT edge overlay for
// graphviz. --show-chain and --dot build the explicit CDAG even under
// --engine=implicit (the sample paths live in a materialized graph),
// so keep k small when combining them.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/routing/path_store.hpp"
#include "pathrouting/support/cli.hpp"

using namespace pathrouting;  // NOLINT: example brevity

namespace {

std::string describe(const cdag::Layout& layout, cdag::VertexId v) {
  const cdag::VertexRef ref = layout.ref(v);
  const char* layer = ref.layer == cdag::LayerKind::EncA   ? "encA"
                      : ref.layer == cdag::LayerKind::EncB ? "encB"
                                                           : "dec";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s[rank %d, q=%llu, p=%llu]", layer,
                ref.rank, static_cast<unsigned long long>(ref.q),
                static_cast<unsigned long long>(ref.p));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::string name = cli.flag_str("alg", "strassen", "catalog algorithm");
  const int k = static_cast<int>(cli.flag_int("k", 3, "recursion depth of G_k"));
  const bool show_chain =
      cli.flag_bool("show-chain", false, "print a sample chain and path");
  const std::string engine =
      cli.flag_str("engine", "memo",
                   "verification engine: memo (closed forms), brute "
                   "(path enumeration), or implicit (constant memory, "
                   "no materialized CDAG)");
  const std::string dot_file =
      cli.flag_str("dot", "", "write the sample chain and Lemma-4 path "
                              "as a DOT overlay to this file");
  cli.finish("Explore the Theorem-2 routing of a Strassen-like CDAG.");
  if (engine != "memo" && engine != "brute" && engine != "implicit") {
    std::fprintf(stderr,
                 "unknown engine \"%s\" (valid engines: memo, brute, "
                 "implicit)\n",
                 engine.c_str());
    return 2;
  }

  const auto alg = bilinear::by_name(name);
  std::printf("%s: n0=%d, a=%d, b=%d, omega0=%.4f\n", alg.name().c_str(),
              alg.n0(), alg.a(), alg.b(), alg.omega0());

  // Theorem 3 matching per side.
  const routing::ChainRouter router(alg);
  for (const bilinear::Side side : {bilinear::Side::A, bilinear::Side::B}) {
    std::printf("\nTheorem-3 matching, side %c (guaranteed digit pair -> "
                "product, capacity n0=%d per product):\n",
                side == bilinear::Side::A ? 'A' : 'B', alg.n0());
    const auto& mu = router.matching(side);
    for (int d_in = 0; d_in < alg.a(); ++d_in) {
      for (int d_out = 0; d_out < alg.a(); ++d_out) {
        if (mu.defined(d_in, d_out)) {
          std::printf("  (%c%d%d -> c%d%d) => M%d\n",
                      side == bilinear::Side::A ? 'a' : 'b',
                      d_in / alg.n0() + 1, d_in % alg.n0() + 1,
                      d_out / alg.n0() + 1, d_out % alg.n0() + 1,
                      mu.product(d_in, d_out) + 1);
        }
      }
    }
  }

  // The implicit engine needs no materialized graph; only the sample
  // paths (--show-chain / --dot) do.
  const bool need_paths = show_chain || !dot_file.empty();
  std::optional<cdag::Cdag> graph;
  std::optional<cdag::SubComputation> sub;
  if (engine != "implicit" || need_paths) {
    graph.emplace(alg, k, cdag::CdagOptions{.with_coefficients = false});
    sub.emplace(*graph, k, 0);
  }
  const routing::MemoRoutingEngine memo(router);
  routing::HitStats l3;
  routing::FullRoutingStats t2;
  if (engine == "implicit") {
    const cdag::ImplicitCdag view(alg, k);
    l3 = memo.verify_chain_routing(view, k, 0);
    t2 = memo.verify_full_routing(view, k, 0);
  } else if (engine == "memo") {
    l3 = memo.verify_chain_routing(*sub);
    t2 = memo.verify_full_routing(*sub);
  } else {
    l3 = routing::verify_chain_routing(router, *sub);
    t2 = routing::verify_full_routing_aggregated(router, *sub);
  }
  std::printf("\nLemma 3 on G_%d (%s engine): %llu chains, busiest vertex "
              "hit %llu times (bound 2*n0^k = %llu) -> %s\n",
              k, engine.c_str(), static_cast<unsigned long long>(l3.num_paths),
              static_cast<unsigned long long>(l3.max_hits),
              static_cast<unsigned long long>(l3.bound),
              l3.ok() ? "holds" : "VIOLATED");
  std::printf("Theorem 2 on G_%d: %llu In x Out paths, busiest vertex %llu, "
              "busiest meta-vertex %llu (bound 6*a^k = %llu) -> %s\n",
              k, static_cast<unsigned long long>(t2.num_paths),
              static_cast<unsigned long long>(t2.max_vertex_hits),
              static_cast<unsigned long long>(t2.max_meta_hits),
              static_cast<unsigned long long>(t2.bound),
              t2.ok() ? "holds" : "VIOLATED");

  if (need_paths) {
    const auto& layout = graph->layout();
    routing::PathStore store;
    store.add_path([&](std::vector<cdag::VertexId>& out) {
      router.append_chain(*sub, bilinear::Side::A, 0,
                          routing::guaranteed_output(layout, k,
                                                     bilinear::Side::A, 0, 1),
                          out);
    });
    store.add_path([&](std::vector<cdag::VertexId>& out) {
      routing::append_full_path(router, *sub, bilinear::Side::A, 0,
                                sub->inputs_per_side() - 1, out);
    });
    if (show_chain) {
      std::printf("\nChain for the guaranteed dependence (first A-input -> "
                  "its 2nd guaranteed output):\n");
      for (const cdag::VertexId v : store.path(0)) {
        std::printf("  %s\n", describe(layout, v).c_str());
      }
      std::printf("\nLemma-4 path (first A-input -> last output, three "
                  "chains concatenated, %zu vertices):\n",
                  store.path(1).size());
      for (const cdag::VertexId v : store.path(1)) {
        std::printf("  %s\n", describe(layout, v).c_str());
      }
    }
    if (!dot_file.empty()) {
      const std::string dot =
          routing::paths_to_dot(layout, store, alg.name() + "_routing");
      std::FILE* f = std::fopen(dot_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", dot_file.c_str());
        return 1;
      }
      std::fwrite(dot.data(), 1, dot.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s (chain + Lemma-4 path overlay)\n",
                  dot_file.c_str());
    }
  }
  return 0;
}
