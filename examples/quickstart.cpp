// Quickstart: the library in ~80 lines.
//
//  1. Pick a Strassen-like base algorithm from the catalog.
//  2. Build its computation DAG G_r and check it really multiplies.
//  3. Construct the Theorem-2 routing and verify the 6 a^k bound.
//  4. Run the red-blue pebble game and compare the measured I/O with
//     Theorem 1's lower-bound forms.
#include <cstdio>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/matmul/classical.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"

using namespace pathrouting;  // NOLINT: example brevity

int main() {
  // 1. Strassen's <2,2,2;7>: 2a = 8 inputs, b = 7 products per step.
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  std::printf("algorithm: %s  (n0=%d, b=%d, omega0=%.4f, Brent: %s)\n",
              alg.name().c_str(), alg.n0(), alg.b(), alg.omega0(),
              alg.verify_brent() ? "ok" : "BROKEN");

  // 2. G_r for r = 4 recursion levels: 16 x 16 matrices.
  const int r = 4;
  const cdag::Cdag graph(alg, r);
  std::printf("G_%d: %u vertices, %llu edges, n = %llu\n", r,
              graph.graph().num_vertices(),
              static_cast<unsigned long long>(graph.graph().num_edges()),
              static_cast<unsigned long long>(graph.layout().n()));

  support::Xoshiro256 rng(42);
  const std::size_t n = graph.layout().n();
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  const auto am = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(a.data()));
  const auto bm = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(b.data()));
  const auto c = cdag::from_morton<std::int64_t>(
      graph, cdag::evaluate<std::int64_t>(graph, am, bm));
  const auto ref = matmul::naive_multiply(a, b);
  bool ok = true;
  for (std::size_t i = 0; i < n && ok; ++i) {
    for (std::size_t j = 0; j < n && ok; ++j) {
      ok = ref(i, j) == c[i * n + j];
    }
  }
  std::printf("CDAG evaluation matches naive matmul: %s\n",
              ok ? "yes" : "NO");

  // 3. The path routing behind Theorem 2.
  const routing::ChainRouter router(alg);
  const cdag::SubComputation whole(graph, r, 0);
  const auto stats = routing::verify_full_routing_aggregated(router, whole);
  std::printf(
      "Routing Theorem: %llu paths route In x Out; busiest vertex hit "
      "%llu times (bound 6a^k = %llu): %s\n",
      static_cast<unsigned long long>(stats.num_paths),
      static_cast<unsigned long long>(stats.max_vertex_hits),
      static_cast<unsigned long long>(stats.bound),
      stats.max_vertex_hits <= stats.bound ? "holds" : "VIOLATED");

  // 4. Pebble game: recursive schedule, Belady eviction.
  const auto order = schedule::dfs_schedule(graph);
  for (const std::uint64_t m : {16ull, 64ull}) {
    const auto res =
        pebble::simulate(graph.graph(), order, {.cache_size = m},
                         [&](cdag::VertexId v) {
                           return graph.layout().is_output(v);
                         });
    const double bound = bounds::asymptotic_io(
        static_cast<double>(n), static_cast<double>(m), alg.omega0());
    std::printf(
        "M = %4llu: IO = %llu reads+writes; (n/sqrt(M))^w0 * M = %.0f; "
        "ratio %.2f\n",
        static_cast<unsigned long long>(m),
        static_cast<unsigned long long>(res.io()), bound, res.io() / bound);
  }
  return ok && stats.max_vertex_hits <= stats.bound ? 0 : 1;
}
