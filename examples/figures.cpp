// figures: regenerate the paper's illustrative figures as Graphviz DOT.
//
//   ./figures --out=figures/
//
//   fig1_base_graph.dot   - G_1 of Strassen (Figure 1)
//   fig2_meta_vertex.dot  - a multiple-copying meta-vertex in classical
//                           G_2 (Figure 2)
//   fig3_zigzag.dot       - D_1 of Strassen with an indirect
//                           product-output path highlighted (Figure 3)
//   fig8_matching.dot     - G'_1 with the middle-rank vertices adjacent
//                           to the guaranteed dependence (a12, c11)
//                           highlighted (Figure 8)
//   fig9_pruned.dot       - the reduced graph G_1-degree for row i = 2
//                           with removed vertices greyed (Figure 9)
//
// Render with: dot -Tpng fig1_base_graph.dot -o fig1.png
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/hall.hpp"
#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/dot.hpp"

using namespace pathrouting;  // NOLINT: example brevity

namespace {

std::string vertex_label(const cdag::Cdag& graph, cdag::VertexId v) {
  const auto& layout = graph.layout();
  const cdag::VertexRef ref = layout.ref(v);
  const int n0 = layout.n0();
  char buf[64];
  if (ref.layer == cdag::LayerKind::Dec && ref.rank == 0) {
    std::snprintf(buf, sizeof(buf), "M%llu",
                  static_cast<unsigned long long>(ref.q) + 1);
  } else if (ref.layer == cdag::LayerKind::Dec &&
             ref.rank == layout.r()) {
    std::snprintf(buf, sizeof(buf), "c%llu%llu",
                  static_cast<unsigned long long>(ref.p) / n0 + 1,
                  static_cast<unsigned long long>(ref.p) % n0 + 1);
  } else if (ref.rank == 0) {
    std::snprintf(buf, sizeof(buf), "%c%llu%llu",
                  ref.layer == cdag::LayerKind::EncA ? 'a' : 'b',
                  static_cast<unsigned long long>(ref.p) / n0 + 1,
                  static_cast<unsigned long long>(ref.p) % n0 + 1);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%llu.%llu",
                  ref.layer == cdag::LayerKind::EncA   ? "TA"
                  : ref.layer == cdag::LayerKind::EncB ? "TB"
                                                       : "D",
                  static_cast<unsigned long long>(ref.q),
                  static_cast<unsigned long long>(ref.p));
  }
  return buf;
}

void write_cdag_dot(const cdag::Cdag& graph, const std::string& path,
                    const std::string& name,
                    const std::set<cdag::VertexId>& highlight,
                    const std::set<cdag::VertexId>& removed = {}) {
  support::DotWriter writer(name, graph.graph().num_vertices());
  writer.set_preamble("rankdir=BT; node [shape=ellipse, fontsize=10];");
  std::ofstream os(path);
  writer.write(
      os,
      [&](cdag::VertexId v) {
        std::string attr = "label=\"" + vertex_label(graph, v) + "\"";
        if (highlight.contains(v)) {
          attr += ", style=filled, fillcolor=\"#e41a1c\", fontcolor=white";
        } else if (removed.contains(v)) {
          attr += ", style=dashed, color=gray, fontcolor=gray";
        }
        return attr;
      },
      [&](const auto& emit) {
        for (cdag::VertexId v = 0; v < graph.graph().num_vertices(); ++v) {
          for (const cdag::VertexId p : graph.graph().in(v)) {
            const bool hot = highlight.contains(v) && highlight.contains(p);
            emit(p, v, hot ? "color=\"#e41a1c\", penwidth=2" : "");
          }
        }
      });
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::string out = cli.flag_str("out", "figures", "output directory");
  cli.finish("Regenerate the paper's figures as Graphviz DOT files.");
  std::filesystem::create_directories(out);

  // Figure 1: Strassen's base graph G_1.
  {
    const cdag::Cdag g1(bilinear::strassen(), 1);
    write_cdag_dot(g1, out + "/fig1_base_graph.dot", "strassen_G1", {});
  }

  // Figure 2: a meta-vertex under multiple copying (classical, G_2):
  // highlight the whole meta-vertex of input a11.
  {
    const cdag::Cdag g2(bilinear::classical(2), 2);
    const cdag::VertexId root = g2.layout().input(bilinear::Side::A, 0);
    std::set<cdag::VertexId> meta;
    for (const cdag::VertexId v : cdag::meta_members(g2, root)) {
      meta.insert(v);
    }
    write_cdag_dot(g2, out + "/fig2_meta_vertex.dot", "classical_meta", meta);
  }

  // Figure 3/4 spirit: D_1 with an indirect path from a product to an
  // output it is not adjacent to (the "zag").
  {
    const bilinear::BilinearAlgorithm alg = bilinear::strassen();
    const cdag::Cdag g1(alg, 1);
    const routing::DecodeRouter router(alg);
    // M4 feeds c11 and c21; route it to c12 instead (not adjacent).
    const auto& path = router.d1_path(3, 1);
    std::set<cdag::VertexId> hot;
    for (std::size_t i = 0; i < path.size(); ++i) {
      hot.insert(i % 2 == 0
                     ? g1.layout().product(static_cast<std::uint64_t>(path[i]))
                     : g1.layout().output(static_cast<std::uint64_t>(path[i])));
    }
    write_cdag_dot(g1, out + "/fig3_zigzag.dot", "strassen_D1_zigzag", hot);
  }

  // Figure 8: middle-rank vertices through which a chain for the
  // guaranteed dependence (a12 -> c11) may pass: encoding rows with
  // U[q, a12] != 0 and W[c11, q] != 0.
  {
    const bilinear::BilinearAlgorithm alg = bilinear::strassen();
    const cdag::Cdag g1(alg, 1);
    std::set<cdag::VertexId> hot;
    hot.insert(g1.layout().input(bilinear::Side::A, 1));  // a12
    hot.insert(g1.layout().output(0));                    // c11
    for (int q = 0; q < alg.b(); ++q) {
      if (routing::h_edge(alg, bilinear::Side::A, 1, 0, q)) {
        hot.insert(g1.layout().enc(bilinear::Side::A, 1,
                                   static_cast<std::uint64_t>(q), 0));
      }
    }
    write_cdag_dot(g1, out + "/fig8_matching.dot", "strassen_H_neighbours",
                   hot);
  }

  // Figure 9: the reduced graph for i = 2 — A-inputs outside row 2 are
  // zeroed (greyed) along with the encoding rows that die with them.
  {
    const bilinear::BilinearAlgorithm alg = bilinear::strassen();
    const cdag::Cdag g1(alg, 1);
    std::set<cdag::VertexId> removed;
    removed.insert(g1.layout().input(bilinear::Side::A, 0));  // a11
    removed.insert(g1.layout().input(bilinear::Side::A, 1));  // a12
    for (int q = 0; q < alg.b(); ++q) {
      bool row2_support = false;
      for (int j = 0; j < alg.n0(); ++j) {
        row2_support = row2_support || !alg.u(q, 1 * alg.n0() + j).is_zero();
      }
      if (!row2_support) {
        removed.insert(g1.layout().enc(bilinear::Side::A, 1,
                                       static_cast<std::uint64_t>(q), 0));
      }
    }
    write_cdag_dot(g1, out + "/fig9_pruned.dot", "strassen_G1_row2", {},
                   removed);
  }
  return 0;
}
