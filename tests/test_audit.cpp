// The audit layer's positive contract: clean catalog CDAGs audit
// clean, reports are bit-identical across thread counts, the rule
// registry is coherent, the renderers are faithful, and the legacy
// schedule validator agrees with the diagnostic scan it shims.
// (tests/test_deathchecks.cpp holds the negative side: one mutated
// fixture per rule.)
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/disjoint_family.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/parallel/machine.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/hall.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"
#include "pathrouting/support/debug_hooks.hpp"
#include "pathrouting/support/parallel.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using audit::AuditReport;
using audit::RuleSelection;
using cdag::VertexId;
using support::parallel::ThreadOverride;

TEST(Audit, CleanCatalogCdagsAuditClean) {
  for (const auto& name : bilinear::catalog_names()) {
    for (int r = 1; r <= 2; ++r) {
      const cdag::Cdag c(bilinear::by_name(name), r);
      const AuditReport report = audit::audit_cdag(c);
      EXPECT_TRUE(report.ok()) << name << " r=" << r << "\n"
                               << report.to_text();
    }
  }
}

TEST(Audit, RunAllCleanOnStrassenFamilies) {
  for (const auto* name : {"strassen", "winograd", "classical2"}) {
    const cdag::Cdag c(bilinear::by_name(name), 2);
    const AuditReport report = audit::run_all(c);
    EXPECT_TRUE(report.ok()) << name << "\n" << report.to_text();
    EXPECT_GE(report.rules_run().size(), 20u) << name;
  }
}

TEST(Audit, RoutingSuitesCleanOnStrassen) {
  const cdag::Cdag c(bilinear::strassen(), 2, {.with_coefficients = false});
  const routing::ChainRouter router(c.algorithm());
  const cdag::SubComputation sub(c, 1, 0);
  EXPECT_TRUE(audit::audit_chain_routing(router, sub).ok());
  EXPECT_TRUE(audit::audit_concat_routing(router, sub).ok());

  ASSERT_EQ(bilinear::decoding_components(c.algorithm()), 1);
  const routing::DecodeRouter decode(c.algorithm());
  EXPECT_TRUE(audit::audit_decode_routing(decode, sub).ok());

  for (const auto side : {bilinear::Side::A, bilinear::Side::B}) {
    const auto matching = routing::compute_base_matching(c.algorithm(), side);
    ASSERT_TRUE(matching.has_value());
    EXPECT_TRUE(audit::audit_hall_matching(c.algorithm(), side, *matching).ok());
  }

  const auto family = bounds::build_disjoint_family(c, 0);
  EXPECT_TRUE(audit::audit_disjoint_family(c, family).ok());
}

TEST(Audit, ReportsAreThreadCountInvariant) {
  const cdag::Cdag c(bilinear::strassen(), 2);
  AuditReport serial, parallel4;
  {
    const ThreadOverride threads(1);
    serial = audit::run_all(c);
  }
  {
    const ThreadOverride threads(4);
    parallel4 = audit::run_all(c);
  }
  EXPECT_TRUE(serial == parallel4);
  EXPECT_TRUE(serial.ok());
}

TEST(Audit, FindingsAreThreadCountInvariant) {
  // A corrupted family produces many findings across chunks; the folded
  // report must not depend on the thread count.
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  const VertexId input = c.layout().input(bilinear::Side::A, 0);
  const VertexId enc = c.layout().enc(bilinear::Side::A, 1, 0, 0);
  std::vector<std::uint64_t> offsets{0};
  std::vector<VertexId> vertices;
  for (int i = 0; i < 200; ++i) {
    vertices.push_back(input);
    vertices.push_back(enc);
    offsets.push_back(vertices.size());
  }
  audit::PathFamily family;
  family.offsets = offsets;
  family.vertices = vertices;
  family.congestion_bound = 1;
  family.expected_length = 3;  // every path is short: findings per chunk
  family.vertex_disjoint = true;

  const auto view = audit::view_of(c);
  AuditReport serial, parallel4;
  {
    const ThreadOverride threads(1);
    serial = audit::audit_path_family(view, family);
  }
  {
    const ThreadOverride threads(4);
    parallel4 = audit::audit_path_family(view, family);
  }
  EXPECT_TRUE(serial == parallel4);
  EXPECT_FALSE(serial.ok());
  EXPECT_TRUE(serial.has_finding("routing.path-length"));
  EXPECT_TRUE(serial.has_finding("routing.congestion"));
  EXPECT_TRUE(serial.has_finding("routing.path-disjoint"));
}

TEST(Audit, RegistryIsCoherent) {
  const auto rules = audit::all_rules();
  EXPECT_GE(rules.size(), 28u);
  std::vector<std::string> ids;
  for (const auto& rule : rules) {
    ids.emplace_back(rule.id);
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_FALSE(rule.paper_ref.empty()) << rule.id;
    const auto* found = audit::find_rule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found->id, rule.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "duplicate rule id";
  EXPECT_EQ(audit::find_rule("no.such-rule"), nullptr);
}

TEST(Audit, RuleSelectionFiltersByIdAndPrefix) {
  const auto all = RuleSelection::all();
  EXPECT_TRUE(all.enabled("cdag.rank-structure"));

  const auto only_cdag = RuleSelection::only({"cdag."});
  EXPECT_TRUE(only_cdag.enabled("cdag.rank-structure"));
  EXPECT_FALSE(only_cdag.enabled("routing.congestion"));

  auto without = RuleSelection::all();
  without.disable("cdag.rank-structure");
  EXPECT_FALSE(without.enabled("cdag.rank-structure"));
  EXPECT_TRUE(without.enabled("cdag.degree-bounds"));

  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  const AuditReport report = audit::audit_cdag(c, only_cdag);
  for (const auto& rule : report.rules_run()) {
    EXPECT_EQ(rule.rfind("cdag.", 0), 0u) << rule;
  }
  EXPECT_GE(report.rules_run().size(), 7u);
}

TEST(Audit, TextAndJsonRenderersAreFaithful) {
  AuditReport report;
  report.mark_rule_run("cdag.rank-structure");
  audit::Diagnostic diag;
  diag.rule = "cdag.rank-structure";
  diag.message = "bad \"rank\"\nsecond line";
  diag.vertex = 7;
  diag.expected = 2;
  diag.actual = 5;
  diag.has_counts = true;
  report.add(diag);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("[cdag.rank-structure]"), std::string::npos);
  EXPECT_NE(text.find("vertex 7"), std::string::npos);
  EXPECT_NE(text.find("expected 2"), std::string::npos);
  EXPECT_NE(text.find("1 errors"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule\":\"cdag.rank-structure\""), std::string::npos);
  EXPECT_NE(json.find("\\\"rank\\\""), std::string::npos);  // escaped quotes
  EXPECT_NE(json.find("\\n"), std::string::npos);           // escaped newline
  EXPECT_NE(json.find("\"vertex\":7"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST(Audit, LegacyValidatorAgreesWithDiagnostics) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  auto order = schedule::dfs_schedule(c);

  EXPECT_TRUE(schedule::validate_schedule(c.graph(), order).ok);
  EXPECT_TRUE(schedule::schedule_diagnostics(c.graph(), order).empty());

  std::swap(order.front(), order.back());
  const auto result = schedule::validate_schedule(c.graph(), order);
  const auto diags = schedule::schedule_diagnostics(c.graph(), order);
  ASSERT_FALSE(result.ok);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(result.error, diags.front().message);

  const AuditReport report = audit::audit_schedule(c.graph(), order);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_finding(diags.front().rule));
}

// --- machine.superstep-conservation ------------------------------------

// A corruptible copy of a machine's conservation log: spans in the
// view alias the vectors here, so mutating a vector (or a counter)
// mutates exactly one invariant.
struct MachineLogCopy {
  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> max_traffic;
  std::uint64_t bandwidth_cost = 0;
  std::uint64_t total_words = 0;
  std::uint64_t supersteps = 0;

  template <typename M>
  explicit MachineLogCopy(const M& machine)
      : sent(machine.step_sent().begin(), machine.step_sent().end()),
        received(machine.step_received().begin(),
                 machine.step_received().end()),
        max_traffic(machine.step_max_traffic().begin(),
                    machine.step_max_traffic().end()),
        bandwidth_cost(machine.bandwidth_cost()),
        total_words(machine.total_words()),
        supersteps(machine.supersteps()) {}

  [[nodiscard]] audit::MachineSuperstepView view() const {
    return {sent, received, max_traffic, bandwidth_cost, total_words,
            supersteps};
  }
};

// A small three-superstep ring exchange on four processors.
parallel::Machine ring_machine() {
  parallel::Machine machine(4, 1u << 20);
  for (int step = 0; step < 3; ++step) {
    for (std::uint64_t p = 0; p < 4; ++p) {
      machine.send(p, (p + 1) % 4, 5 + static_cast<std::uint64_t>(step));
    }
    machine.end_superstep();
  }
  return machine;
}

TEST(Audit, MachineConservationCleanLogPasses) {
  const parallel::Machine machine = ring_machine();
  const MachineLogCopy log(machine);
  ASSERT_EQ(log.supersteps, 3u);
  const AuditReport report = audit::audit_machine_supersteps(log.view());
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_FALSE(report.rules_run().empty());
}

TEST(Audit, MachineConservationMutationsAreCaught) {
  const parallel::Machine machine = ring_machine();
  const MachineLogCopy clean(machine);
  const auto expect_caught = [](const MachineLogCopy& log, const char* what) {
    const AuditReport report = audit::audit_machine_supersteps(log.view());
    EXPECT_FALSE(report.ok()) << what;
    EXPECT_TRUE(report.has_finding("machine.superstep-conservation")) << what;
  };

  {
    MachineLogCopy log = clean;
    log.sent[1] += 1;  // also breaks the total-words sum: two findings
    expect_caught(log, "sent != received");
  }
  {
    MachineLogCopy log = clean;
    log.max_traffic[0] = 0;
    expect_caught(log, "charged max of zero on a counted superstep");
  }
  {
    MachineLogCopy log = clean;
    log.max_traffic[2] = log.sent[2] + log.received[2] + 1;
    expect_caught(log, "charged max above the words in flight");
  }
  {
    MachineLogCopy log = clean;
    log.bandwidth_cost += 1;
    expect_caught(log, "bandwidth counter drifts from the log sum");
  }
  {
    MachineLogCopy log = clean;
    log.total_words -= 1;
    expect_caught(log, "total-words counter drifts from the log sum");
  }
  {
    MachineLogCopy log = clean;
    log.supersteps = 7;
    expect_caught(log, "superstep counter disagrees with the log length");
  }
  {
    MachineLogCopy log = clean;
    log.received.pop_back();
    expect_caught(log, "mismatched log array lengths");
  }
}

TEST(Audit, MachinePairCleanAndMutatedOracle) {
  // The sparse machine replays the ring via one symmetric class; the
  // dense oracle replays it scalar send by scalar send.
  parallel::Machine aggregate(4, 1u << 20);
  parallel::DenseMachine scalar(4, 1u << 20);
  for (int step = 0; step < 3; ++step) {
    const std::uint64_t words = 5 + static_cast<std::uint64_t>(step);
    aggregate.send_class(4, words);
    for (std::uint64_t p = 0; p < 4; ++p) {
      scalar.send(p, (p + 1) % 4, words);
    }
    aggregate.end_superstep();
    scalar.end_superstep();
  }
  const MachineLogCopy agg(aggregate);
  const MachineLogCopy sca(scalar);
  EXPECT_TRUE(audit::audit_machine_pair(agg.view(), sca.view()).ok());

  MachineLogCopy drifted = agg;
  drifted.max_traffic[1] -= 1;
  drifted.bandwidth_cost -= 1;  // keep the single-log invariants intact
  const AuditReport report =
      audit::audit_machine_pair(drifted.view(), sca.view());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_finding("machine.superstep-conservation"));
}

TEST(Audit, MachineRuleIsRegistered) {
  const auto* rule = audit::find_rule("machine.superstep-conservation");
  ASSERT_NE(rule, nullptr);
  EXPECT_GE(audit::all_rules().size(), 41u);
}

// Last on purpose: installing the hook makes every later Cdag
// construction in this process run the structural suite.
TEST(Audit, DebugHookAuditsFreshCdags) {
  audit::install_debug_hooks();
  // A clean construction passes through the hook without incident.
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  EXPECT_EQ(c.r(), 1);
  support::set_debug_hook(support::DebugHookPoint::kCdagBuilt, nullptr);
}

}  // namespace
