#include <gtest/gtest.h>

#include <sstream>

#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/dot.hpp"

namespace {

using pathrouting::support::Cli;
using pathrouting::support::DotWriter;

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--gamma"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.flag_int("alpha", 0, ""), 3);
  EXPECT_EQ(cli.flag_int("beta", 0, ""), 7);
  EXPECT_TRUE(cli.flag_bool("gamma", false, ""));
  cli.finish("test");
}

TEST(CliTest, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.flag_int("missing", 42, ""), 42);
  EXPECT_EQ(cli.flag_str("name", "dflt", ""), "dflt");
  EXPECT_FALSE(cli.flag_bool("switch", false, ""));
  cli.finish("test");
}

TEST(CliTest, StringAndNegativeValues) {
  const char* argv[] = {"prog", "--mode=fast", "--offset=-12"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.flag_str("mode", "", ""), "fast");
  EXPECT_EQ(cli.flag_int("offset", 0, ""), -12);
  cli.finish("test");
}

TEST(CliTest, BoolValueForms) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.flag_bool("a", false, ""));
  EXPECT_TRUE(cli.flag_bool("b", false, ""));
  EXPECT_TRUE(cli.flag_bool("c", false, ""));
  EXPECT_FALSE(cli.flag_bool("d", true, ""));
  cli.finish("test");
}

TEST(DotTest, EmitsVerticesAndEdges) {
  DotWriter writer("g", 3);
  writer.set_preamble("rankdir=BT;");
  std::ostringstream os;
  writer.write(
      os,
      [](std::uint32_t v) {
        return v == 2 ? std::string() : "label=\"v" + std::to_string(v) + "\"";
      },
      [](const auto& emit) {
        emit(0, 1, "");
        emit(1, 2, "");  // suppressed: vertex 2 has no attributes
        emit(1, 0, "color=red");
      });
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=BT;"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -> v0 [color=red]"), std::string::npos);
  EXPECT_EQ(dot.find("v1 -> v2"), std::string::npos);  // filtered out
  EXPECT_EQ(dot.find("v2 ["), std::string::npos);
}

}  // namespace
