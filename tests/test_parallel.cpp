#include <gtest/gtest.h>

#include <cmath>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/parallel/caps.hpp"
#include "pathrouting/parallel/distributed_strassen.hpp"
#include "pathrouting/parallel/summa.hpp"

namespace {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::parallel;  // NOLINT

TEST(MachineTest, BandwidthIsPerSuperstepMax) {
  Machine machine(3, 100);
  machine.send(0, 1, 10);
  machine.send(1, 2, 5);
  // proc 1 sends 5 and receives 10 -> traffic 15 is the superstep max.
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 15u);
  EXPECT_EQ(machine.total_words(), 15u);
  machine.send(2, 0, 7);
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 22u);
  EXPECT_EQ(machine.supersteps(), 2u);
}

TEST(MachineTest, SelfSendsAndEmptySuperstepsAreFree) {
  Machine machine(2, 10);
  machine.send(0, 0, 1000);
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 0u);
  EXPECT_EQ(machine.supersteps(), 0u);
}

TEST(MachineTest, MemoryPeakTracking) {
  Machine machine(2, 100);
  machine.alloc(0, 60);
  machine.alloc(1, 30);
  machine.alloc(0, 50);
  EXPECT_EQ(machine.peak_memory(), 110u);
  EXPECT_FALSE(machine.within_memory());
  machine.release(0, 50);
  EXPECT_EQ(machine.peak_memory(), 110u);  // peak is sticky
}

TEST(SummaTest, ComputesCorrectProduct) {
  support::Xoshiro256 rng(21);
  for (const int grid : {1, 2, 4}) {
    const std::size_t n = 16;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    Machine machine(grid * grid, 1u << 20);
    const SummaResult res = run_summa(a, b, grid, 4, machine);
    EXPECT_TRUE(res.correct) << "grid " << grid;
  }
}

TEST(SummaTest, BandwidthScalesAsNSquaredOverGrid) {
  support::Xoshiro256 rng(22);
  const std::size_t n = 32;
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  std::uint64_t prev = 0;
  for (const int grid : {2, 4, 8}) {
    Machine machine(grid * grid, 1u << 20);
    const SummaResult res = run_summa(a, b, grid, 4, machine);
    ASSERT_TRUE(res.correct);
    // Ring broadcast: middle processors relay an A and a B slice both
    // ways, so bandwidth ~ 4 n^2 / grid (grid = 2 has no middle
    // relays and costs half that).
    const double expected = 4.0 * static_cast<double>(n) * n / grid;
    EXPECT_NEAR(static_cast<double>(res.bandwidth_cost), expected,
                0.6 * expected)
        << "grid " << grid;
    if (prev != 0) {
      EXPECT_LE(res.bandwidth_cost, prev);
    }
    prev = res.bandwidth_cost;
  }
}

TEST(SummaTest, SingleProcessorMovesNothing) {
  support::Xoshiro256 rng(23);
  const auto a = matmul::random_matrix<std::int64_t>(8, rng);
  const auto b = matmul::random_matrix<std::int64_t>(8, rng);
  Machine machine(1, 1u << 20);
  const SummaResult res = run_summa(a, b, 1, 8, machine);
  EXPECT_TRUE(res.correct);
  EXPECT_EQ(res.bandwidth_cost, 0u);
}

TEST(Summa25DTest, ReplicationReducesBandwidth) {
  const double n = 1 << 12;
  const Cost25D c1 = simulate_25d(n, 64, 1);
  const Cost25D c4 = simulate_25d(n, 64, 4);
  EXPECT_LT(c4.bandwidth_cost, c1.bandwidth_cost);
  EXPECT_GT(c4.memory_per_proc, c1.memory_per_proc);
  // c = 1 is plain SUMMA: 4 n^2 / sqrt(P).
  EXPECT_NEAR(c1.bandwidth_cost, 4.0 * n * n / 8.0, 1e-6);
}

TEST(DistributedStrassenTest, OneBfsLevelComputesCorrectProduct) {
  support::Xoshiro256 rng(41);
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const std::size_t n =
        static_cast<std::size_t>(alg.n0()) * static_cast<std::size_t>(alg.n0()) * 4;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    Machine machine(alg.b(), 1ull << 30);
    const auto res = run_distributed_strassen_like(alg, a, b, machine, 4);
    EXPECT_TRUE(res.correct) << name;
    EXPECT_GT(res.bandwidth_cost, 0u);
    EXPECT_EQ(res.supersteps, 2u);
  }
}

TEST(DistributedStrassenTest, TrafficMatchesCapsAccounting) {
  // The value-level execution must move exactly the words the CAPS
  // accounting model charges for one BFS step:
  //   per superstep, proc p sends (b-1) * rows_p * (n/n0) words per
  //   phase-1 operand pair, and receives the complementary slices.
  const auto alg = bilinear::strassen();
  support::Xoshiro256 rng(42);
  const std::size_t n = 56;  // divisible by n0=2; inner rows 28 over 7 procs
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  Machine machine(7, 1ull << 30);
  const auto res = run_distributed_strassen_like(alg, a, b, machine, 8);
  ASSERT_TRUE(res.correct);
  const std::uint64_t half = n / 2;            // 28
  const std::uint64_t rows = half / 7;         // 4 inner rows per proc
  // Phase 1 total: each of 7 procs sends 6 * 2*rows*half words; phase 3
  // total: each sends 6 * rows*half.
  const std::uint64_t phase1 = 7ull * 6 * 2 * rows * half;
  const std::uint64_t phase3 = 7ull * 6 * rows * half;
  EXPECT_EQ(res.total_words, phase1 + phase3);
  // Balanced: critical-path cost = per-proc traffic (sent + received).
  EXPECT_EQ(res.bandwidth_cost,
            (6 * 2 * rows * half) * 2 + (6 * rows * half) * 2);
}

TEST(CapsTest, UnlimitedMemoryIsAllBfs) {
  const auto alg = bilinear::strassen();
  const CapsResult res =
      simulate_caps(alg, 8, {.bfs_levels = 3, .local_memory = 1ull << 40});
  EXPECT_EQ(res.bfs_steps, 3);
  EXPECT_EQ(res.dfs_steps, 0);
  EXPECT_DOUBLE_EQ(res.procs, 343.0);
}

TEST(CapsTest, TightMemoryForcesDfsSteps) {
  const auto alg = bilinear::strassen();
  const double n = std::pow(2.0, 10);
  // Memory just above the lower limit 3n^2/P forces DFS interleaving.
  const std::uint64_t m =
      static_cast<std::uint64_t>(4.0 * n * n / 343.0);
  const CapsResult res =
      simulate_caps(alg, 10, {.bfs_levels = 3, .local_memory = m});
  EXPECT_EQ(res.bfs_steps, 3);
  EXPECT_GT(res.dfs_steps, 0);
  EXPECT_TRUE(res.within_memory(2 * m));  // stays near the budget
}

TEST(CapsTest, BandwidthRespectsBothLowerBounds) {
  const auto alg = bilinear::strassen();
  const double w0 = bounds::omega0(4, 7);
  for (const int l : {1, 2, 3}) {
    for (const std::uint64_t mem_scale : {1ull, 8ull}) {
      const int r = 10;
      const double n = std::pow(2.0, r);
      const double p = std::pow(7.0, l);
      const std::uint64_t m = static_cast<std::uint64_t>(
          3.0 * n * n / p * static_cast<double>(mem_scale));
      const CapsResult res =
          simulate_caps(alg, r, {.bfs_levels = l, .local_memory = m});
      const double lb_mem = bounds::parallel_bandwidth_lb(
          n, static_cast<double>(res.peak_memory), p, w0);
      const double lb_ind = bounds::memory_independent_lb(n, p, w0);
      // Theorem 1: the bandwidth cost is at least both bounds (up to
      // the paper's unoptimised constants; we allow a 36x constant as
      // in the Theorem-1 form).
      EXPECT_GT(res.bandwidth_cost, lb_mem / 36.0) << "l=" << l;
      EXPECT_GT(res.bandwidth_cost, lb_ind / 36.0) << "l=" << l;
    }
  }
}

TEST(CapsTest, BandwidthDecreasesWithMoreProcessors) {
  const auto alg = bilinear::strassen();
  double prev = 1e300;
  for (const int l : {1, 2, 3, 4}) {
    const CapsResult res =
        simulate_caps(alg, 9, {.bfs_levels = l, .local_memory = 1ull << 40});
    EXPECT_LT(res.bandwidth_cost, prev) << "l=" << l;
    prev = res.bandwidth_cost;
  }
}

TEST(CapsTest, StrongScalingShapeInUnlimitedMemory) {
  // With unlimited memory the per-processor bandwidth of the all-BFS
  // schedule scales like n^2 / P^{2/w0} (the memory-independent bound).
  const auto alg = bilinear::strassen();
  const double w0 = bounds::omega0(4, 7);
  const int r = 10;
  const double n = std::pow(2.0, r);
  for (const int l : {1, 2, 3}) {
    const double p = std::pow(7.0, l);
    const CapsResult res =
        simulate_caps(alg, r, {.bfs_levels = l, .local_memory = 1ull << 40});
    const double predicted = bounds::memory_independent_lb(n, p, w0);
    const double ratio = res.bandwidth_cost / predicted;
    EXPECT_GT(ratio, 0.3) << "l=" << l;
    EXPECT_LT(ratio, 40.0) << "l=" << l;
  }
}

TEST(CapsTest, GeneralisesToOtherBases) {
  for (const char* name : {"winograd", "laderman", "strassen_squared"}) {
    const auto alg = bilinear::by_name(name);
    const CapsResult res = simulate_caps(
        alg, 6, {.bfs_levels = 2, .local_memory = 1ull << 40});
    EXPECT_EQ(res.bfs_steps, 2) << name;
    EXPECT_GT(res.bandwidth_cost, 0.0) << name;
    EXPECT_DOUBLE_EQ(res.procs,
                     std::pow(static_cast<double>(alg.b()), 2.0))
        << name;
  }
}

}  // namespace
