#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/parallel/caps.hpp"
#include "pathrouting/parallel/distributed_strassen.hpp"
#include "pathrouting/parallel/summa.hpp"

namespace {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::parallel;  // NOLINT

TEST(MachineTest, BandwidthIsPerSuperstepMax) {
  Machine machine(3, 100);
  machine.send(0, 1, 10);
  machine.send(1, 2, 5);
  // proc 1 sends 5 and receives 10 -> traffic 15 is the superstep max.
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 15u);
  EXPECT_EQ(machine.total_words(), 15u);
  machine.send(2, 0, 7);
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 22u);
  EXPECT_EQ(machine.supersteps(), 2u);
}

TEST(MachineTest, SelfSendsAndEmptySuperstepsAreFree) {
  Machine machine(2, 10);
  machine.send(0, 0, 1000);
  machine.end_superstep();
  EXPECT_EQ(machine.bandwidth_cost(), 0u);
  EXPECT_EQ(machine.supersteps(), 0u);
}

TEST(MachineTest, MemoryPeakTracking) {
  Machine machine(2, 100);
  machine.alloc(0, 60);
  machine.alloc(1, 30);
  machine.alloc(0, 50);
  EXPECT_EQ(machine.peak_memory(), 110u);
  EXPECT_FALSE(machine.within_memory());
  machine.release(0, 50);
  EXPECT_EQ(machine.peak_memory(), 110u);  // peak is sticky
}

TEST(SummaTest, ComputesCorrectProduct) {
  support::Xoshiro256 rng(21);
  for (const int grid : {1, 2, 4}) {
    const std::size_t n = 16;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    Machine machine(grid * grid, 1u << 20);
    const SummaResult res = run_summa(a, b, grid, 4, machine);
    EXPECT_TRUE(res.correct) << "grid " << grid;
  }
}

TEST(SummaTest, BandwidthScalesAsNSquaredOverGrid) {
  support::Xoshiro256 rng(22);
  const std::size_t n = 32;
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  std::uint64_t prev = 0;
  for (const int grid : {2, 4, 8}) {
    Machine machine(grid * grid, 1u << 20);
    const SummaResult res = run_summa(a, b, grid, 4, machine);
    ASSERT_TRUE(res.correct);
    // Ring broadcast: middle processors relay an A and a B slice both
    // ways, so bandwidth ~ 4 n^2 / grid (grid = 2 has no middle
    // relays and costs half that).
    const double expected = 4.0 * static_cast<double>(n) * n / grid;
    EXPECT_NEAR(static_cast<double>(res.bandwidth_cost), expected,
                0.6 * expected)
        << "grid " << grid;
    if (prev != 0) {
      EXPECT_LE(res.bandwidth_cost, prev);
    }
    prev = res.bandwidth_cost;
  }
}

TEST(SummaTest, SingleProcessorMovesNothing) {
  support::Xoshiro256 rng(23);
  const auto a = matmul::random_matrix<std::int64_t>(8, rng);
  const auto b = matmul::random_matrix<std::int64_t>(8, rng);
  Machine machine(1, 1u << 20);
  const SummaResult res = run_summa(a, b, 1, 8, machine);
  EXPECT_TRUE(res.correct);
  EXPECT_EQ(res.bandwidth_cost, 0u);
}

TEST(Summa25DTest, ReplicationReducesBandwidth) {
  const double n = 1 << 12;
  const Cost25D c1 = simulate_25d(n, 64, 1);
  const Cost25D c4 = simulate_25d(n, 64, 4);
  EXPECT_LT(c4.bandwidth_cost, c1.bandwidth_cost);
  EXPECT_GT(c4.memory_per_proc, c1.memory_per_proc);
  // c = 1 is plain SUMMA: 4 n^2 / sqrt(P).
  EXPECT_NEAR(c1.bandwidth_cost, 4.0 * n * n / 8.0, 1e-6);
}

TEST(DistributedStrassenTest, OneBfsLevelComputesCorrectProduct) {
  support::Xoshiro256 rng(41);
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const std::size_t n =
        static_cast<std::size_t>(alg.n0()) * static_cast<std::size_t>(alg.n0()) * 4;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    Machine machine(alg.b(), 1ull << 30);
    const auto res = run_distributed_strassen_like(alg, a, b, machine, 4);
    EXPECT_TRUE(res.correct) << name;
    EXPECT_GT(res.bandwidth_cost, 0u);
    EXPECT_EQ(res.supersteps, 2u);
  }
}

TEST(DistributedStrassenTest, TrafficMatchesCapsAccounting) {
  // The value-level execution must move exactly the words the CAPS
  // accounting model charges for one BFS step:
  //   per superstep, proc p sends (b-1) * rows_p * (n/n0) words per
  //   phase-1 operand pair, and receives the complementary slices.
  const auto alg = bilinear::strassen();
  support::Xoshiro256 rng(42);
  const std::size_t n = 56;  // divisible by n0=2; inner rows 28 over 7 procs
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  Machine machine(7, 1ull << 30);
  const auto res = run_distributed_strassen_like(alg, a, b, machine, 8);
  ASSERT_TRUE(res.correct);
  const std::uint64_t half = n / 2;            // 28
  const std::uint64_t rows = half / 7;         // 4 inner rows per proc
  // Phase 1 total: each of 7 procs sends 6 * 2*rows*half words; phase 3
  // total: each sends 6 * rows*half.
  const std::uint64_t phase1 = 7ull * 6 * 2 * rows * half;
  const std::uint64_t phase3 = 7ull * 6 * rows * half;
  EXPECT_EQ(res.total_words, phase1 + phase3);
  // Balanced: critical-path cost = per-proc traffic (sent + received).
  EXPECT_EQ(res.bandwidth_cost,
            (6 * 2 * rows * half) * 2 + (6 * rows * half) * 2);
}

TEST(CapsTest, UnlimitedMemoryIsAllBfs) {
  const auto alg = bilinear::strassen();
  const CapsResult res =
      simulate_caps(alg, 8, {.bfs_levels = 3, .local_memory = 1ull << 40});
  EXPECT_EQ(res.bfs_steps, 3);
  EXPECT_EQ(res.dfs_steps, 0);
  EXPECT_DOUBLE_EQ(res.procs, 343.0);
}

TEST(CapsTest, TightMemoryForcesDfsSteps) {
  const auto alg = bilinear::strassen();
  const double n = std::pow(2.0, 10);
  // Memory just above the lower limit 3n^2/P forces DFS interleaving.
  const std::uint64_t m =
      static_cast<std::uint64_t>(4.0 * n * n / 343.0);
  const CapsResult res =
      simulate_caps(alg, 10, {.bfs_levels = 3, .local_memory = m});
  EXPECT_EQ(res.bfs_steps, 3);
  EXPECT_GT(res.dfs_steps, 0);
  EXPECT_TRUE(res.within_memory(2 * m));  // stays near the budget
}

TEST(CapsTest, BandwidthRespectsBothLowerBounds) {
  const auto alg = bilinear::strassen();
  const double w0 = bounds::omega0(4, 7);
  for (const int l : {1, 2, 3}) {
    for (const std::uint64_t mem_scale : {1ull, 8ull}) {
      const int r = 10;
      const double n = std::pow(2.0, r);
      const double p = std::pow(7.0, l);
      const std::uint64_t m = static_cast<std::uint64_t>(
          3.0 * n * n / p * static_cast<double>(mem_scale));
      const CapsResult res =
          simulate_caps(alg, r, {.bfs_levels = l, .local_memory = m});
      const double lb_mem = bounds::parallel_bandwidth_lb(
          n, static_cast<double>(res.peak_memory), p, w0);
      const double lb_ind = bounds::memory_independent_lb(n, p, w0);
      // Theorem 1: the bandwidth cost is at least both bounds (up to
      // the paper's unoptimised constants; we allow a 36x constant as
      // in the Theorem-1 form).
      EXPECT_GT(res.bandwidth_cost, lb_mem / 36.0) << "l=" << l;
      EXPECT_GT(res.bandwidth_cost, lb_ind / 36.0) << "l=" << l;
    }
  }
}

TEST(CapsTest, BandwidthDecreasesWithMoreProcessors) {
  const auto alg = bilinear::strassen();
  double prev = 1e300;
  for (const int l : {1, 2, 3, 4}) {
    const CapsResult res =
        simulate_caps(alg, 9, {.bfs_levels = l, .local_memory = 1ull << 40});
    EXPECT_LT(res.bandwidth_cost, prev) << "l=" << l;
    prev = res.bandwidth_cost;
  }
}

TEST(CapsTest, StrongScalingShapeInUnlimitedMemory) {
  // With unlimited memory the per-processor bandwidth of the all-BFS
  // schedule scales like n^2 / P^{2/w0} (the memory-independent bound).
  const auto alg = bilinear::strassen();
  const double w0 = bounds::omega0(4, 7);
  const int r = 10;
  const double n = std::pow(2.0, r);
  for (const int l : {1, 2, 3}) {
    const double p = std::pow(7.0, l);
    const CapsResult res =
        simulate_caps(alg, r, {.bfs_levels = l, .local_memory = 1ull << 40});
    const double predicted = bounds::memory_independent_lb(n, p, w0);
    const double ratio = res.bandwidth_cost / predicted;
    EXPECT_GT(ratio, 0.3) << "l=" << l;
    EXPECT_LT(ratio, 40.0) << "l=" << l;
  }
}

TEST(CapsTest, GeneralisesToOtherBases) {
  for (const char* name : {"winograd", "laderman", "strassen_squared"}) {
    const auto alg = bilinear::by_name(name);
    const CapsResult res = simulate_caps(
        alg, 6, {.bfs_levels = 2, .local_memory = 1ull << 40});
    EXPECT_EQ(res.bfs_steps, 2) << name;
    EXPECT_GT(res.bandwidth_cost, 0.0) << name;
    EXPECT_DOUBLE_EQ(res.procs,
                     std::pow(static_cast<double>(alg.b()), 2.0))
        << name;
  }
}

// --- Sparse machine vs oracles: bit-identity contracts. ---

template <typename M>
audit::MachineSuperstepView view_of(const M& machine) {
  return {machine.step_sent(), machine.step_received(),
          machine.step_max_traffic(), machine.bandwidth_cost(),
          machine.total_words(), machine.supersteps()};
}

template <typename A, typename B>
void expect_bit_identical(const A& a, const B& b, const char* what) {
  EXPECT_EQ(a.bandwidth_cost(), b.bandwidth_cost()) << what;
  EXPECT_EQ(a.total_words(), b.total_words()) << what;
  EXPECT_EQ(a.supersteps(), b.supersteps()) << what;
  const audit::AuditReport report =
      audit::audit_machine_pair(view_of(a), view_of(b));
  EXPECT_TRUE(report.ok()) << what << "\n" << report.to_text();
}

TEST(MachineTest, SparseMatchesDenseOracleOnRandomTraffic) {
  // The epoch-stamped sparse accumulator must reproduce the dense
  // O(P)-scan oracle word for word — counters AND the whole
  // conservation log — on arbitrary scalar traffic, including self
  // sends, zero-word sends, and empty supersteps, at every P.
  for (const std::uint64_t procs : {1u, 2u, 3u, 5u, 8u, 16u, 33u, 64u}) {
    support::Xoshiro256 rng(1000 + procs);
    Machine sparse(procs, 1u << 20);
    DenseMachine dense(procs, 1u << 20);
    for (int step = 0; step < 20; ++step) {
      const std::uint64_t sends = rng() % (2 * procs + 1);
      for (std::uint64_t s = 0; s < sends; ++s) {
        const std::uint64_t from = rng() % procs;
        const std::uint64_t to = rng() % procs;
        const std::uint64_t words = rng() % 100;  // 0 words stays free
        sparse.send(from, to, words);
        dense.send(from, to, words);
      }
      sparse.end_superstep();
      dense.end_superstep();
    }
    expect_bit_identical(sparse, dense, "random traffic");
  }
}

TEST(MachineTest, SendClassMatchesScalarLoopUnderRandomInterleavings) {
  // Property test: a superstep assembled from disjoint processor
  // classes — symmetric rings and sender/receiver pair groups — must
  // cost exactly the same whether recorded as O(1) class aggregates or
  // as the equivalent scalar send loop, in any arrival order.
  constexpr std::uint64_t kProcs = 24;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    support::Xoshiro256 rng(2000 + trial);
    Machine aggregate(kProcs, 1u << 20);
    Machine scalar(kProcs, 1u << 20);
    for (int step = 0; step < 6; ++step) {
      struct Send {
        std::uint64_t from, to, words;
      };
      std::vector<Send> sends;
      std::uint64_t base = 0;
      while (base + 2 <= kProcs) {
        const std::uint64_t words = 1 + rng() % 50;
        if (rng() % 2 == 0) {
          // Ring class: every member forwards `words` to its neighbor,
          // so each sends and receives exactly `words`.
          const std::uint64_t size =
              std::min<std::uint64_t>(2 + rng() % 3, kProcs - base);
          aggregate.send_class(size, words);
          for (std::uint64_t i = 0; i < size; ++i) {
            sends.push_back({base + i, base + (i + 1) % size, words});
          }
          base += size;
        } else {
          // Pair group: `size` senders, each with a distinct receiver —
          // two one-sided classes on the aggregate machine.
          const std::uint64_t size =
              std::min<std::uint64_t>(1 + rng() % 2, (kProcs - base) / 2);
          if (size == 0) break;
          aggregate.send_class(size, words, 0);
          aggregate.send_class(size, 0, words);
          for (std::uint64_t i = 0; i < size; ++i) {
            sends.push_back({base + i, base + size + i, words});
          }
          base += 2 * size;
        }
      }
      // Fisher-Yates with the test rng: the scalar machine sees the
      // superstep's messages in a random interleaving.
      for (std::size_t i = sends.size(); i > 1; --i) {
        std::swap(sends[i - 1], sends[rng() % i]);
      }
      for (const Send& s : sends) scalar.send(s.from, s.to, s.words);
      aggregate.end_superstep();
      scalar.end_superstep();
    }
    expect_bit_identical(aggregate, scalar, "class vs scalar loop");
  }
}

TEST(SummaTest, SimulateMatchesRunBitForBit) {
  support::Xoshiro256 rng(91);
  const std::size_t n = 32;
  const auto a = matmul::random_matrix<std::int64_t>(n, rng);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng);
  for (const int grid : {1, 2, 4, 8}) {
    Machine ran(grid * grid, 1u << 20);
    Machine simulated(grid * grid, 1u << 20);
    const SummaResult value = run_summa(a, b, grid, 2, ran);
    const SummaResult model = simulate_summa(n, grid, 2, simulated);
    ASSERT_TRUE(value.correct) << "grid " << grid;
    EXPECT_EQ(model.bandwidth_cost, value.bandwidth_cost) << "grid " << grid;
    EXPECT_EQ(model.total_words, value.total_words) << "grid " << grid;
    EXPECT_EQ(model.supersteps, value.supersteps) << "grid " << grid;
    expect_bit_identical(simulated, ran, "summa");
  }
}

TEST(DistributedStrassenTest, SimulateMatchesRunBitForBit) {
  support::Xoshiro256 rng(92);
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const std::size_t n0 = static_cast<std::size_t>(alg.n0());
    const std::size_t n = n0 * n0 * 4;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    Machine ran(alg.b(), 1ull << 30);
    Machine simulated(alg.b(), 1ull << 30);
    const auto value = run_distributed_strassen_like(alg, a, b, ran, 4);
    const auto model = simulate_distributed_strassen_like(alg, n, simulated);
    ASSERT_TRUE(value.correct) << name;
    EXPECT_EQ(model.bandwidth_cost, value.bandwidth_cost) << name;
    EXPECT_EQ(model.total_words, value.total_words) << name;
    EXPECT_EQ(model.supersteps, value.supersteps) << name;
    expect_bit_identical(simulated, ran, name);
  }
}

TEST(CapsTest, MachineReplayBracketsTheDoubleModel) {
  // The integral replay rounds each superstep's fractional share up,
  // so it dominates the double model and exceeds it by at most ~3
  // words per counted superstep.
  const auto alg = bilinear::strassen();
  const int r = 8;
  for (const int l : {1, 2, 3}) {
    for (const bool limited : {false, true}) {
      const double n = std::pow(2.0, r);
      const double p = std::pow(7.0, l);
      const std::uint64_t mem =
          limited ? static_cast<std::uint64_t>(9.0 * n * n / p)
                  : (1ull << 62);
      const CapsOptions options{.bfs_levels = l, .local_memory = mem};
      const CapsResult model = simulate_caps(alg, r, options);
      Machine machine(static_cast<std::uint64_t>(p), mem);
      const CapsMachineResult replay =
          simulate_caps_machine(alg, r, options, machine);
      EXPECT_EQ(replay.bfs_steps, model.bfs_steps) << "l=" << l;
      EXPECT_EQ(replay.dfs_steps, model.dfs_steps) << "l=" << l;
      EXPECT_GT(replay.supersteps, 0u) << "l=" << l;
      const double lo = model.bandwidth_cost - 1e-6;
      const double hi = model.bandwidth_cost +
                        3.0 * static_cast<double>(replay.supersteps) + 1e-6;
      EXPECT_GE(static_cast<double>(replay.bandwidth_cost), lo) << "l=" << l;
      EXPECT_LE(static_cast<double>(replay.bandwidth_cost), hi) << "l=" << l;
    }
  }
}

}  // namespace
