#include <gtest/gtest.h>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/transform.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/routing/concat_routing.hpp"

namespace {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::bilinear;  // NOLINT
using support::Rational;

TEST(SquareMatrixTest, InverseRoundTrip) {
  support::Xoshiro256 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(3));
    const SquareMatrix m = random_unimodular(n, rng);
    const SquareMatrix prod = multiply(m, inverse(m));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(prod.at(i, j), i == j ? Rational(1) : Rational(0));
      }
    }
  }
}

TEST(TransformTest, IdentityTransformIsIdentity) {
  const auto s = strassen();
  const SquareMatrix id = SquareMatrix::identity(2);
  const auto t = transform_basis(s, id, id, id);
  for (int q = 0; q < s.b(); ++q) {
    for (int e = 0; e < s.a(); ++e) {
      EXPECT_EQ(t.u(q, e), s.u(q, e));
      EXPECT_EQ(t.v(q, e), s.v(q, e));
    }
  }
  for (int d = 0; d < s.a(); ++d) {
    for (int q = 0; q < s.b(); ++q) EXPECT_EQ(t.w(d, q), s.w(d, q));
  }
}

TEST(TransformTest, BasisChangePreservesBrent) {
  support::Xoshiro256 rng(7);
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto base = by_name(name);
    for (int trial = 0; trial < 10; ++trial) {
      const SquareMatrix p = random_unimodular(base.n0(), rng);
      const SquareMatrix q = random_unimodular(base.n0(), rng);
      const SquareMatrix r = random_unimodular(base.n0(), rng);
      const auto t = transform_basis(base, p, q, r);
      ASSERT_TRUE(t.verify_brent()) << name << " trial " << trial;
    }
  }
}

TEST(TransformTest, RotationPreservesBrentAndHasOrderDividing3) {
  for (const char* name : {"strassen", "laderman", "classical2"}) {
    const auto base = by_name(name);
    const auto r1 = rotate_tensor(base);
    const auto r2 = rotate_tensor(r1);
    const auto r3 = rotate_tensor(r2);
    EXPECT_TRUE(r1.verify_brent()) << name;
    EXPECT_TRUE(r2.verify_brent()) << name;
    // Rotating three times returns to the original tables.
    for (int q = 0; q < base.b(); ++q) {
      for (int e = 0; e < base.a(); ++e) {
        ASSERT_EQ(r3.u(q, e), base.u(q, e)) << name;
        ASSERT_EQ(r3.v(q, e), base.v(q, e)) << name;
      }
    }
    for (int d = 0; d < base.a(); ++d) {
      for (int q = 0; q < base.b(); ++q) {
        ASSERT_EQ(r3.w(d, q), base.w(d, q)) << name;
      }
    }
  }
}

TEST(TransformTest, RandomTransformsAreCorrectAndDistinct) {
  const auto base = strassen();
  const auto t1 = random_transform(base, 1);
  const auto t2 = random_transform(base, 2);
  EXPECT_TRUE(t1.verify_brent());
  EXPECT_TRUE(t2.verify_brent());
  // Same seed reproduces; different seeds differ.
  const auto t1_again = random_transform(base, 1);
  bool same = true, differ = false;
  for (int q = 0; q < base.b(); ++q) {
    for (int e = 0; e < base.a(); ++e) {
      same = same && t1.u(q, e) == t1_again.u(q, e);
      differ = differ || t1.u(q, e) != t2.u(q, e);
    }
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differ);
}

TEST(TransformTest, TransformedCdagStillMultiplies) {
  // Exact rational evaluation of the transformed algorithm's CDAG
  // against a rational reference product.
  const auto alg = random_transform(strassen(), 11);
  const cdag::Cdag graph(alg, 2);
  const std::uint64_t n = graph.layout().n();
  support::Xoshiro256 rng(5);
  std::vector<Rational> a(n * n), b(n * n);
  for (auto& x : a) x = Rational(rng.range(-4, 4));
  for (auto& x : b) x = Rational(rng.range(-4, 4));
  const auto am = to_morton<Rational>(graph, a);
  const auto bm = to_morton<Rational>(graph, b);
  const auto c =
      from_morton<Rational>(graph, evaluate<Rational>(graph, am, bm));
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      Rational expected(0);
      for (std::uint64_t k = 0; k < n; ++k) {
        expected += a[i * n + k] * b[k * n + j];
      }
      ASSERT_EQ(c[i * n + j], expected);
    }
  }
}

class RandomAlgorithmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAlgorithmSweep, TheoremsHoldOnSampledAlgorithms) {
  // Theorem 1 quantifies over every Strassen-like algorithm; sample the
  // isotropy orbit of Strassen and check the full pipeline: Brent, the
  // Hall condition (Lemma 5), the chain routing bound (Lemma 3) and the
  // Routing Theorem bound (Theorem 2).
  const auto alg = random_transform(bilinear::strassen(), GetParam());
  ASSERT_TRUE(alg.verify_brent());
  EXPECT_TRUE(routing::hall_condition_flow(alg, Side::A));
  EXPECT_TRUE(routing::hall_condition_flow(alg, Side::B));
  const routing::ChainRouter router(alg);
  const int k = 2;
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, k, 0);
  const auto l3 = routing::verify_chain_routing(router, sub);
  EXPECT_TRUE(l3.ok()) << "L3 max " << l3.max_hits << "/" << l3.bound;
  const auto t2 = routing::verify_full_routing_aggregated(router, sub);
  EXPECT_LE(t2.max_vertex_hits, t2.bound);
  EXPECT_TRUE(routing::verify_chain_multiplicities(router, sub));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlgorithmSweep,
                         ::testing::Range<std::uint64_t>(100, 120),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace

namespace laderman_orbit_tests {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::bilinear;  // NOLINT

class LadermanOrbitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LadermanOrbitSweep, TheoremsHoldOnN0Equals3Orbit) {
  // The same pipeline over the isotropy orbit of the <3,3,3;23> base:
  // n0 = 3 exercises different digit arithmetic everywhere.
  const auto alg = random_transform(laderman(), GetParam());
  ASSERT_TRUE(alg.verify_brent());
  EXPECT_TRUE(routing::hall_condition_flow(alg, Side::A));
  EXPECT_TRUE(routing::hall_condition_flow(alg, Side::B));
  const routing::ChainRouter router(alg);
  const cdag::Cdag graph(alg, 2, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, 2, 0);
  EXPECT_TRUE(routing::verify_chain_routing(router, sub).ok());
  const auto t2 = routing::verify_full_routing_aggregated(router, sub);
  EXPECT_LE(t2.max_vertex_hits, t2.bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadermanOrbitSweep,
                         ::testing::Range<std::uint64_t>(500, 510),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(TransformTest, CertifierHoldsOnTransformedStrassen) {
  // Basis changes generically destroy all trivial rows: the CDAG has
  // no copies, every meta-vertex is a single vertex, and the Lemma-1
  // family keeps everything. Equation (2) must still hold at the
  // paper's exact quotas — Theorem 1 ranges over ALL Strassen-like
  // algorithms, and here we certify one far from the catalog.
  const auto alg = random_transform(strassen(), 777);
  ASSERT_TRUE(alg.verify_brent());
  const cdag::Cdag graph(alg, 6, {.with_coefficients = false});
  EXPECT_EQ(cdag::count_duplicated_vertices(graph), 0u);
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const auto order =
        schedule::random_topological_schedule(graph.graph(), seed);
    const auto cert =
        bounds::certify_segments(graph, order, {.cache_size = 2});
    ASSERT_GE(cert.complete_segments(), 1u);
    EXPECT_TRUE(cert.eq_holds(12));
    EXPECT_TRUE(cert.boundary_ge(6));
  }
}

}  // namespace laderman_orbit_tests
