// Cross-module property suites: the statements the paper quantifies
// over "every algorithm / every schedule / every cache size", swept as
// parameterised tests.
#include <gtest/gtest.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/matmul/strassen_like.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using cdag::Cdag;
using cdag::VertexId;

// ---------------------------------------------------------------------
// Property: the certified I/O lower bound holds for EVERY schedule.
// ---------------------------------------------------------------------

struct EverySchedule {
  std::string schedule;
  std::uint64_t cache;
};

class LowerBoundEverySchedule
    : public ::testing::TestWithParam<EverySchedule> {};

TEST_P(LowerBoundEverySchedule, CertifiedBoundBelowSimulatedIo) {
  const auto& param = GetParam();
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 7, {.with_coefficients = false});
  std::vector<VertexId> order;
  if (param.schedule == "dfs") {
    order = schedule::dfs_schedule(cdag);
  } else if (param.schedule == "bfs") {
    order = schedule::bfs_schedule(cdag);
  } else {
    order = schedule::random_topological_schedule(
        cdag.graph(), std::hash<std::string>{}(param.schedule));
  }
  const bounds::CertifyResult cert =
      bounds::certify_segments(cdag, order, {.cache_size = param.cache});
  EXPECT_TRUE(cert.eq_holds(12));
  EXPECT_TRUE(cert.boundary_ge(3 * param.cache));
  const auto sim =
      pebble::simulate(cdag.graph(), order, {.cache_size = param.cache},
                       [&](VertexId v) { return cdag.layout().is_output(v); });
  EXPECT_LE(cert.io_lower_bound(param.cache), sim.io());
  // The paper-constant closed form is itself below the certified count
  // whenever non-vacuous.
  const std::uint64_t closed =
      bounds::theorem1_io_lower_bound(4, 7, 7, param.cache);
  EXPECT_LE(closed, sim.io());
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndCaches, LowerBoundEverySchedule,
    // M = 8 is the largest cache for which k = ceil(log_4 144M) still
    // fits below r-2 = 5 at r = 7 (and the smallest the pebble game
    // accepts for Strassen's in-degree-4 decode vertices is 5).
    ::testing::Values(EverySchedule{"dfs", 8}, EverySchedule{"bfs", 8},
                      EverySchedule{"rnd1", 8}, EverySchedule{"rnd2", 8},
                      EverySchedule{"rnd3", 8}, EverySchedule{"rnd4", 8}),
    [](const auto& info) {
      return info.param.schedule + "_M" + std::to_string(info.param.cache);
    });

// ---------------------------------------------------------------------
// Property: Belady <= LRU and I/O monotone in M, across the catalog.
// ---------------------------------------------------------------------

class CachePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CachePropertyTest, BeladyBeatsLruAndIoIsMonotoneInM) {
  const auto alg = bilinear::by_name(GetParam());
  const int r = alg.n0() == 2 ? 4 : (alg.b() <= 23 ? 3 : 2);
  const Cdag cdag(alg, r, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  std::uint64_t prev = UINT64_MAX;
  // Floors at 32: strassen_squared decode vertices have in-degree 16.
  for (const std::uint64_t m : {32ull, 128ull, 512ull}) {
    const auto belady = pebble::simulate(
        cdag.graph(), order,
        {.cache_size = m, .eviction = pebble::Eviction::Belady}, is_out);
    const auto lru = pebble::simulate(
        cdag.graph(), order,
        {.cache_size = m, .eviction = pebble::Eviction::Lru}, is_out);
    EXPECT_LE(belady.io(), lru.io()) << "M=" << m;
    EXPECT_LE(belady.io(), prev) << "M=" << m;
    prev = belady.io();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CachePropertyTest,
                         ::testing::Values("strassen", "winograd", "laderman",
                                           "classical2", "strassen_squared",
                                           "classical2_x_strassen"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: Equation (2) holds for arbitrary segment quotas, not just
// the paper's 36M (with k chosen so a^k >= 2 * quota).
// ---------------------------------------------------------------------

class QuotaSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuotaSweepTest, Equation2HoldsForArbitraryQuotas) {
  const std::uint64_t quota = GetParam();
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const auto order = schedule::random_topological_schedule(cdag.graph(), 99);
  const bounds::CertifyResult cert = bounds::certify_segments(
      cdag, order, {.cache_size = 1, .s_bar_target = quota});
  ASSERT_GE(cert.complete_segments(), 1u);
  EXPECT_TRUE(cert.eq_holds(12)) << "quota " << quota;
}

INSTANTIATE_TEST_SUITE_P(Quotas, QuotaSweepTest,
                         ::testing::Values(8, 24, 36, 72, 100, 128),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Property: evaluation agrees between the CDAG and the executor on
// random inputs for every algorithm (two independent implementations).
// ---------------------------------------------------------------------

class CrossValidationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossValidationTest, CdagAndExecutorAgree) {
  const auto alg = bilinear::by_name(GetParam());
  const int r = 2;
  const Cdag graph(alg, r);
  const std::size_t n = static_cast<std::size_t>(graph.layout().n());
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    support::Xoshiro256 rng(seed);
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    const auto am = cdag::to_morton<std::int64_t>(
        graph, std::span<const std::int64_t>(a.data()));
    const auto bm = cdag::to_morton<std::int64_t>(
        graph, std::span<const std::int64_t>(b.data()));
    const auto c_flat = cdag::from_morton<std::int64_t>(
        graph, cdag::evaluate<std::int64_t>(graph, am, bm));
    const auto c = matmul::strassen_like_multiply(alg, a, b);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), c_flat[i * n + j]) << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CrossValidationTest,
                         ::testing::Values("strassen", "winograd", "laderman",
                                           "classical2"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: Theorem 2's bound holds for every subcomputation of a
// larger CDAG, not just the standalone G_k (prefix 0).
// ---------------------------------------------------------------------

TEST(SubcomputationRoutingTest, BoundHoldsInEveryEmbeddedGk) {
  const auto alg = bilinear::strassen();
  const routing::ChainRouter router(alg);
  const Cdag cdag(alg, 4, {.with_coefficients = false});
  const int k = 2;
  for (std::uint64_t prefix = 0; prefix < 49; ++prefix) {
    const cdag::SubComputation sub(cdag, k, prefix);
    const auto stats = routing::verify_full_routing_aggregated(router, sub);
    ASSERT_TRUE(stats.max_vertex_hits <= stats.bound) << "prefix " << prefix;
  }
}

// ---------------------------------------------------------------------
// Property: schedules from all generators stay valid across the
// catalog after being fed through the certifier and simulator (no
// hidden state corruption).
// ---------------------------------------------------------------------

TEST(PipelineTest, CertifyThenSimulateLeavesScheduleValid) {
  const auto alg = bilinear::winograd();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  ASSERT_TRUE(schedule::validate_schedule(cdag.graph(), order).ok);
  const bounds::CertifyResult cert =
      bounds::certify_segments(cdag, order, {.cache_size = 2});
  pebble::PebbleOptions opts{.cache_size = 8};
  opts.segment_ends = cert.segment_ends(static_cast<std::uint32_t>(order.size()));
  const auto sim = pebble::simulate(cdag.graph(), order, opts, [&](VertexId v) {
    return cdag.layout().is_output(v);
  });
  EXPECT_GT(sim.io(), 0u);
  EXPECT_TRUE(schedule::validate_schedule(cdag.graph(), order).ok);
}

}  // namespace
