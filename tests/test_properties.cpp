// Cross-module property suites: the statements the paper quantifies
// over "every algorithm / every schedule / every cache size", swept as
// parameterised tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/serialize.hpp"
#include "pathrouting/bilinear/transform.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/matmul/strassen_like.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using cdag::Cdag;
using cdag::VertexId;

// ---------------------------------------------------------------------
// Property: the certified I/O lower bound holds for EVERY schedule.
// ---------------------------------------------------------------------

struct EverySchedule {
  std::string schedule;
  std::uint64_t cache;
};

class LowerBoundEverySchedule
    : public ::testing::TestWithParam<EverySchedule> {};

TEST_P(LowerBoundEverySchedule, CertifiedBoundBelowSimulatedIo) {
  const auto& param = GetParam();
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 7, {.with_coefficients = false});
  std::vector<VertexId> order;
  if (param.schedule == "dfs") {
    order = schedule::dfs_schedule(cdag);
  } else if (param.schedule == "bfs") {
    order = schedule::bfs_schedule(cdag);
  } else {
    order = schedule::random_topological_schedule(
        cdag.graph(), std::hash<std::string>{}(param.schedule));
  }
  const bounds::CertifyResult cert =
      bounds::certify_segments(cdag, order, {.cache_size = param.cache});
  EXPECT_TRUE(cert.eq_holds(12));
  EXPECT_TRUE(cert.boundary_ge(3 * param.cache));
  const auto sim =
      pebble::simulate(cdag.graph(), order, {.cache_size = param.cache},
                       [&](VertexId v) { return cdag.layout().is_output(v); });
  EXPECT_LE(cert.io_lower_bound(param.cache), sim.io());
  // The paper-constant closed form is itself below the certified count
  // whenever non-vacuous.
  const std::uint64_t closed =
      bounds::theorem1_io_lower_bound(4, 7, 7, param.cache);
  EXPECT_LE(closed, sim.io());
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndCaches, LowerBoundEverySchedule,
    // M = 8 is the largest cache for which k = ceil(log_4 144M) still
    // fits below r-2 = 5 at r = 7 (and the smallest the pebble game
    // accepts for Strassen's in-degree-4 decode vertices is 5).
    ::testing::Values(EverySchedule{"dfs", 8}, EverySchedule{"bfs", 8},
                      EverySchedule{"rnd1", 8}, EverySchedule{"rnd2", 8},
                      EverySchedule{"rnd3", 8}, EverySchedule{"rnd4", 8}),
    [](const auto& info) {
      return info.param.schedule + "_M" + std::to_string(info.param.cache);
    });

// ---------------------------------------------------------------------
// Property: Belady <= LRU and I/O monotone in M, across the catalog.
// ---------------------------------------------------------------------

class CachePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CachePropertyTest, BeladyBeatsLruAndIoIsMonotoneInM) {
  const auto alg = bilinear::by_name(GetParam());
  const int r = alg.n0() == 2 ? 4 : (alg.b() <= 23 ? 3 : 2);
  const Cdag cdag(alg, r, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  std::uint64_t prev = UINT64_MAX;
  // Floors at 32: strassen_squared decode vertices have in-degree 16.
  for (const std::uint64_t m : {32ull, 128ull, 512ull}) {
    const auto belady = pebble::simulate(
        cdag.graph(), order,
        {.cache_size = m, .eviction = pebble::Eviction::Belady}, is_out);
    const auto lru = pebble::simulate(
        cdag.graph(), order,
        {.cache_size = m, .eviction = pebble::Eviction::Lru}, is_out);
    EXPECT_LE(belady.io(), lru.io()) << "M=" << m;
    EXPECT_LE(belady.io(), prev) << "M=" << m;
    prev = belady.io();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CachePropertyTest,
                         ::testing::Values("strassen", "winograd", "laderman",
                                           "classical2", "strassen_squared",
                                           "classical2_x_strassen"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: Equation (2) holds for arbitrary segment quotas, not just
// the paper's 36M (with k chosen so a^k >= 2 * quota).
// ---------------------------------------------------------------------

class QuotaSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuotaSweepTest, Equation2HoldsForArbitraryQuotas) {
  const std::uint64_t quota = GetParam();
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const auto order = schedule::random_topological_schedule(cdag.graph(), 99);
  const bounds::CertifyResult cert = bounds::certify_segments(
      cdag, order, {.cache_size = 1, .s_bar_target = quota});
  ASSERT_GE(cert.complete_segments(), 1u);
  EXPECT_TRUE(cert.eq_holds(12)) << "quota " << quota;
}

INSTANTIATE_TEST_SUITE_P(Quotas, QuotaSweepTest,
                         ::testing::Values(8, 24, 36, 72, 100, 128),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Property: evaluation agrees between the CDAG and the executor on
// random inputs for every algorithm (two independent implementations).
// ---------------------------------------------------------------------

class CrossValidationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossValidationTest, CdagAndExecutorAgree) {
  const auto alg = bilinear::by_name(GetParam());
  const int r = 2;
  const Cdag graph(alg, r);
  const std::size_t n = static_cast<std::size_t>(graph.layout().n());
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    support::Xoshiro256 rng(seed);
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    const auto am = cdag::to_morton<std::int64_t>(
        graph, std::span<const std::int64_t>(a.data()));
    const auto bm = cdag::to_morton<std::int64_t>(
        graph, std::span<const std::int64_t>(b.data()));
    const auto c_flat = cdag::from_morton<std::int64_t>(
        graph, cdag::evaluate<std::int64_t>(graph, am, bm));
    const auto c = matmul::strassen_like_multiply(alg, a, b);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), c_flat[i * n + j]) << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CrossValidationTest,
                         ::testing::Values("strassen", "winograd", "laderman",
                                           "classical2"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// Property: Theorem 2's bound holds for every subcomputation of a
// larger CDAG, not just the standalone G_k (prefix 0).
// ---------------------------------------------------------------------

TEST(SubcomputationRoutingTest, BoundHoldsInEveryEmbeddedGk) {
  const auto alg = bilinear::strassen();
  const routing::ChainRouter router(alg);
  const Cdag cdag(alg, 4, {.with_coefficients = false});
  const int k = 2;
  for (std::uint64_t prefix = 0; prefix < 49; ++prefix) {
    const cdag::SubComputation sub(cdag, k, prefix);
    const auto stats = routing::verify_full_routing_aggregated(router, sub);
    ASSERT_TRUE(stats.max_vertex_hits <= stats.bound) << "prefix " << prefix;
  }
}

// ---------------------------------------------------------------------
// Property: schedules from all generators stay valid across the
// catalog after being fed through the certifier and simulator (no
// hidden state corruption).
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Property: on RANDOM correct base algorithms (isotropy-group samples,
// not just the hand-written catalog) the memoized routing engine is
// bit-identical to the brute enumerators, and the serializer
// round-trips byte-stably.
//
// Environment knobs (the nightly CI job turns both up):
//   PR_PROPERTY_SEED   base seed of the sweep       (default 20260806)
//   PR_PROPERTY_ITERS  algorithms sampled per base  (default 3)
// Failures log the exact seed, so any counterexample replays with
// PR_PROPERTY_SEED=<seed> PR_PROPERTY_ITERS=1.
// ---------------------------------------------------------------------

std::uint64_t property_seed() {
  const char* env = std::getenv("PR_PROPERTY_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
}

int property_iters() {
  const char* env = std::getenv("PR_PROPERTY_ITERS");
  const int n = env != nullptr ? std::atoi(env) : 3;
  return n > 0 ? n : 3;
}

class RandomAlgorithmTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomAlgorithmTest, MemoEngineMatchesBruteOnRandomTransforms) {
  const auto base = bilinear::by_name(GetParam());
  const std::uint64_t base_seed = property_seed();
  const int iters = property_iters();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("PR_PROPERTY_SEED=" + std::to_string(seed) +
                 " (base " + GetParam() + ")");
    const auto alg = bilinear::random_transform(base, seed);
    // The Hall condition (Lemma 5) must survive any basis change: the
    // transformed algorithm is still correct, and ChainRouter aborts on
    // infeasible matchings — check feasibility first so a failure is a
    // test failure, not a process abort.
    ASSERT_TRUE(
        routing::compute_base_matching(alg, bilinear::Side::A).has_value());
    ASSERT_TRUE(
        routing::compute_base_matching(alg, bilinear::Side::B).has_value());
    const routing::ChainRouter router(alg);
    const int k = 2;
    const Cdag graph(alg, k, {.with_coefficients = false});
    const cdag::SubComputation sub(graph, k, 0);

    const routing::MemoRoutingEngine chain_memo(router);
    const routing::ChainHitCounts brute = routing::count_chain_hits(router, sub);
    const routing::ChainHitCounts memo = chain_memo.chain_hits(sub);
    ASSERT_EQ(memo.num_chains, brute.num_chains);
    ASSERT_EQ(memo.max_hits, brute.max_hits);
    ASSERT_EQ(memo.argmax, brute.argmax);
    ASSERT_EQ(memo.hits, brute.hits) << "memo chain hit array diverged";
    EXPECT_TRUE(routing::chain_stats_from_counts(memo, sub).ok());
    EXPECT_EQ(chain_memo.verify_chain_multiplicities(sub),
              routing::verify_chain_multiplicities(router, sub));

    if (bilinear::decoding_components(alg) == 1) {
      const routing::DecodeRouter decoder(alg);
      const routing::MemoRoutingEngine memo_full(router, decoder);
      const std::vector<std::uint64_t> brute_hits =
          routing::count_decode_hits(decoder, sub);
      ASSERT_EQ(memo_full.decode_hits(sub), brute_hits)
          << "memo decode hit array diverged";
      EXPECT_TRUE(memo_full.verify_decode_routing(sub).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, RandomAlgorithmTest,
                         ::testing::Values("strassen", "classical2"),
                         [](const auto& info) { return info.param; });

TEST(RandomAlgorithmTest, SerializerRoundTripsByteStable) {
  const auto base = bilinear::strassen();
  const std::uint64_t base_seed = property_seed();
  const int iters = property_iters();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("PR_PROPERTY_SEED=" + std::to_string(seed));
    const auto alg = bilinear::random_transform(base, seed);
    std::ostringstream once;
    bilinear::to_text(alg, once);
    std::istringstream in(once.str());
    const bilinear::ParseResult parsed = bilinear::from_text(in);
    ASSERT_TRUE(parsed.algorithm.has_value()) << parsed.error;
    std::ostringstream twice;
    bilinear::to_text(*parsed.algorithm, twice);
    EXPECT_EQ(once.str(), twice.str());
  }
}

TEST(PipelineTest, CertifyThenSimulateLeavesScheduleValid) {
  const auto alg = bilinear::winograd();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  ASSERT_TRUE(schedule::validate_schedule(cdag.graph(), order).ok);
  const bounds::CertifyResult cert =
      bounds::certify_segments(cdag, order, {.cache_size = 2});
  pebble::PebbleOptions opts{.cache_size = 8};
  opts.segment_ends = cert.segment_ends(static_cast<std::uint32_t>(order.size()));
  const auto sim = pebble::simulate(cdag.graph(), order, opts, [&](VertexId v) {
    return cdag.layout().is_output(v);
  });
  EXPECT_GT(sim.io(), 0u);
  EXPECT_TRUE(schedule::validate_schedule(cdag.graph(), order).ok);
}

}  // namespace
