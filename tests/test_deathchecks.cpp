// Failure-injection tests: the library's contracts abort loudly rather
// than corrupting results. gtest death tests confirm the guard rails
// actually fire.
#include <gtest/gtest.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/parallel/machine.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/rational.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::Rational;

TEST(DeathTest, RationalDivisionByZeroAborts) {
  const Rational x(3, 4);
  EXPECT_DEATH((void)(x / Rational(0)), "division by zero");
}

TEST(DeathTest, RationalZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(DeathTest, NonTopologicalScheduleAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  auto order = schedule::dfs_schedule(graph);
  // Move the final output to the front: its operands are not computed.
  std::swap(order.front(), order.back());
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 64},
                                [](cdag::VertexId) { return false; }),
               "not topological");
}

TEST(DeathTest, CacheTooSmallAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  // Strassen decode vertices have in-degree 4; M = 3 cannot stage them.
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 3},
                                [](cdag::VertexId) { return false; }),
               "cache too small");
}

TEST(DeathTest, ScheduleWithInputsAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  auto order = schedule::dfs_schedule(graph);
  order.insert(order.begin(), graph.layout().input(bilinear::Side::A, 0));
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 64},
                                [](cdag::VertexId) { return false; }),
               "inputs are not scheduled");
}

TEST(DeathTest, EvaluationWithoutCoefficientsAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 1, {.with_coefficients = false});
  const std::vector<std::int64_t> a(4, 1), b(4, 1);
  EXPECT_DEATH((void)cdag::evaluate<std::int64_t>(graph, a, b),
               "with_coefficients");
}

TEST(DeathTest, OversizedSubcomputationPrefixAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  EXPECT_DEATH(cdag::SubComputation(graph, 1, /*prefix=*/7), "");
}

}  // namespace

namespace more_death_tests {

using namespace pathrouting;  // NOLINT

TEST(DeathTest, MachineReleaseUnderflowAborts) {
  parallel::Machine machine(2, 100);
  machine.alloc(0, 5);
  EXPECT_DEATH(machine.release(0, 6), "");
}

TEST(DeathTest, UnknownCatalogNameAborts) {
  EXPECT_DEATH((void)bilinear::by_name("does-not-exist"),
               "unknown catalog algorithm");
}

}  // namespace more_death_tests
