// Failure-injection tests, in two flavours: the library's contracts
// abort loudly rather than corrupting results (gtest death tests
// confirm the guard rails actually fire), and the audit layer's rules
// each catch a deliberately mutated structure, reporting the exact rule
// id and offending vertex instead of aborting.
#include <gtest/gtest.h>

#include <algorithm>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/parallel/machine.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/routing/hall.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"
#include "pathrouting/support/rational.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::Rational;

TEST(DeathTest, RationalDivisionByZeroAborts) {
  const Rational x(3, 4);
  EXPECT_DEATH((void)(x / Rational(0)), "division by zero");
}

TEST(DeathTest, RationalZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(DeathTest, NonTopologicalScheduleAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  auto order = schedule::dfs_schedule(graph);
  // Move the final output to the front: its operands are not computed.
  std::swap(order.front(), order.back());
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 64},
                                [](cdag::VertexId) { return false; }),
               "not topological");
}

TEST(DeathTest, CacheTooSmallAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  // Strassen decode vertices have in-degree 4; M = 3 cannot stage them.
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 3},
                                [](cdag::VertexId) { return false; }),
               "cache too small");
}

TEST(DeathTest, ScheduleWithInputsAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  auto order = schedule::dfs_schedule(graph);
  order.insert(order.begin(), graph.layout().input(bilinear::Side::A, 0));
  EXPECT_DEATH(pebble::simulate(graph.graph(), order, {.cache_size = 64},
                                [](cdag::VertexId) { return false; }),
               "inputs are not scheduled");
}

TEST(DeathTest, EvaluationWithoutCoefficientsAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 1, {.with_coefficients = false});
  const std::vector<std::int64_t> a(4, 1), b(4, 1);
  EXPECT_DEATH((void)cdag::evaluate<std::int64_t>(graph, a, b),
               "with_coefficients");
}

TEST(DeathTest, OversizedSubcomputationPrefixAborts) {
  const cdag::Cdag graph(bilinear::strassen(), 2, {.with_coefficients = false});
  EXPECT_DEATH(cdag::SubComputation(graph, 1, /*prefix=*/7), "");
}

}  // namespace

namespace more_death_tests {

using namespace pathrouting;  // NOLINT

TEST(DeathTest, MachineReleaseUnderflowAborts) {
  parallel::Machine machine(2, 100);
  machine.alloc(0, 5);
  EXPECT_DEATH(machine.release(0, 6), "");
}

TEST(DeathTest, UnknownCatalogNameAborts) {
  EXPECT_DEATH((void)bilinear::by_name("does-not-exist"),
               "unknown catalog algorithm");
}

}  // namespace more_death_tests

// Every audit rule catches a deliberately mutated structure and reports
// the exact rule id and offending vertex. Each test isolates its rule
// with RuleSelection::only so a single planted defect cannot hide
// behind (or be masked by) a sibling rule's findings.
namespace audit_mutation_tests {

using namespace pathrouting;  // NOLINT
using audit::AuditReport;
using audit::Diagnostic;
using audit::RuleSelection;
using cdag::VertexId;

/// Owning, mutable copy of a CDAG's structure tables. Tests corrupt one
/// entry, rebuild the graph, and audit through a CdagView.
struct MutableCdag {
  const cdag::Cdag* base;
  std::vector<std::uint32_t> in_off;
  std::vector<VertexId> in_adj;
  std::vector<VertexId> copy_parent;
  std::vector<VertexId> meta_root;
  std::vector<std::uint32_t> meta_size;
  std::vector<support::Rational> in_coeff;
  cdag::Graph graph;

  explicit MutableCdag(const cdag::Cdag& c) : base(&c) {
    const cdag::Graph& g = c.graph();
    in_off.reserve(g.num_vertices() + 1);
    in_off.push_back(0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const VertexId p : g.in(v)) in_adj.push_back(p);
      in_off.push_back(static_cast<std::uint32_t>(in_adj.size()));
    }
    copy_parent.assign(c.copy_parents().begin(), c.copy_parents().end());
    meta_root.assign(c.meta_roots().begin(), c.meta_roots().end());
    meta_size.assign(c.meta_sizes().begin(), c.meta_sizes().end());
    in_coeff.assign(c.in_coeffs().begin(), c.in_coeffs().end());
  }

  /// Replaces the in-edge slot of `v` currently holding `from` with
  /// `with` (the slot must exist).
  void replace_in_edge(VertexId v, VertexId from, VertexId with) {
    const auto begin = in_adj.begin() + in_off[v];
    const auto end = in_adj.begin() + in_off[v + 1];
    const auto it = std::find(begin, end, from);
    ASSERT_NE(it, end) << "edge " << from << " -> " << v << " not present";
    *it = with;
  }

  void insert_in_edge(VertexId v, VertexId pred) {
    in_adj.insert(in_adj.begin() + in_off[v], pred);
    for (std::size_t w = v + 1; w < in_off.size(); ++w) ++in_off[w];
  }

  audit::CdagView view() {
    graph = cdag::Graph(in_off, in_adj);
    audit::CdagView view;
    view.graph = &graph;
    view.layout = &base->layout();
    view.copy_parent = copy_parent;
    view.meta_root = meta_root;
    view.meta_size = meta_size;
    view.in_coeff = in_coeff;
    view.grouped_duplicates = base->grouped_duplicates();
    return view;
  }
};

AuditReport run_rule(MutableCdag& m, const std::string& rule) {
  return audit::audit_cdag(m.view(), RuleSelection::only({rule}));
}

Diagnostic first_finding(const AuditReport& report, const std::string& rule) {
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_finding(rule));
  if (report.diagnostics().empty()) return {};
  return report.diagnostics().front();
}

VertexId first_copy_vertex(const cdag::Cdag& c) {
  for (VertexId v = 0; v < c.graph().num_vertices(); ++v) {
    if (c.copy_parent(v) != cdag::kInvalidVertex) return v;
  }
  ADD_FAILURE() << "CDAG has no copy vertex";
  return cdag::kInvalidVertex;
}

TEST(AuditMutation, TopologicalIdsCatchesBackwardEdge) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = c.layout().product(0);
  // Point one operand of the first product at an output (larger id).
  m.in_adj[m.in_off[v]] = c.layout().output(0);
  const auto report = run_rule(m, "cdag.topological-ids");
  const auto& diag = first_finding(report, "cdag.topological-ids");
  EXPECT_EQ(diag.rule, "cdag.topological-ids");
  EXPECT_EQ(diag.vertex, v);
}

TEST(AuditMutation, RankStructureCatchesRankSkip) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = c.layout().output(0);
  // An output fed directly by a rank-0 input skips the decoding rank.
  m.in_adj[m.in_off[v]] = c.layout().input(bilinear::Side::A, 0);
  const auto& diag = first_finding(run_rule(m, "cdag.rank-structure"),
                                   "cdag.rank-structure");
  EXPECT_EQ(diag.vertex, v);
}

TEST(AuditMutation, DegreeBoundsCatchesFatProduct) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = c.layout().product(1);
  m.insert_in_edge(v, c.layout().enc(bilinear::Side::A, 1, 0, 0));
  const auto& diag = first_finding(run_rule(m, "cdag.degree-bounds"),
                                   "cdag.degree-bounds");
  EXPECT_EQ(diag.vertex, v);
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected, 2u);
  EXPECT_EQ(diag.actual, 3u);
}

TEST(AuditMutation, CopyStructureCatchesWrongParent) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = first_copy_vertex(c);
  const VertexId real_parent = c.copy_parent(v);
  // Record a different (still smaller) vertex as the copy-parent: the
  // unique in-edge no longer comes from it.
  m.copy_parent[v] = real_parent == 0 ? 1 : 0;
  const auto& diag = first_finding(run_rule(m, "cdag.copy-structure"),
                                   "cdag.copy-structure");
  EXPECT_EQ(diag.vertex, v);
}

TEST(AuditMutation, MetaRootCatchesSizeMismatch) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId root = c.copy_parent(first_copy_vertex(c));
  m.meta_size[root] += 1;
  const auto& diag = first_finding(run_rule(m, "cdag.meta-root"),
                                   "cdag.meta-root");
  EXPECT_EQ(diag.vertex, root);
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected + 1, diag.actual);
}

TEST(AuditMutation, MetaSubtreeCatchesDetachedCopy) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = first_copy_vertex(c);
  const VertexId root = c.meta_root(v);
  // Detach the copy into its own meta-vertex (sizes kept consistent so
  // only the subtree rule can object).
  m.meta_root[v] = v;
  m.meta_size[v] = 1;
  m.meta_size[root] -= 1;
  const auto& diag = first_finding(run_rule(m, "cdag.meta-subtree"),
                                   "cdag.meta-subtree");
  EXPECT_EQ(diag.vertex, v);
}

TEST(AuditMutation, Fact1PrefixCatchesCrossedMultiplication) {
  const cdag::Cdag c(bilinear::strassen(), 1, {.with_coefficients = false});
  MutableCdag m(c);
  const VertexId v = c.layout().product(0);
  // Multiply the B-combination of product 1 instead of product 0: the
  // recursion paths (Fact 1 prefixes) no longer agree.
  m.replace_in_edge(v, c.layout().enc(bilinear::Side::B, 1, 0, 0),
                    c.layout().enc(bilinear::Side::B, 1, 1, 0));
  const auto& diag = first_finding(run_rule(m, "cdag.fact1-prefix"),
                                   "cdag.fact1-prefix");
  EXPECT_EQ(diag.vertex, v);
}

// --- routing.* rules, on hand-built path families over a clean CDAG ---

struct FamilyFixture {
  cdag::Cdag cdag{bilinear::strassen(), 1, {.with_coefficients = false}};
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> vertices;
  std::vector<VertexId> sources, sinks;

  void add_path(std::initializer_list<VertexId> path) {
    if (offsets.empty()) offsets.push_back(0);
    vertices.insert(vertices.end(), path.begin(), path.end());
    offsets.push_back(vertices.size());
  }

  AuditReport audit(audit::PathFamily family, const std::string& rule) {
    family.offsets = offsets;
    family.vertices = vertices;
    if (!sources.empty()) family.sources = sources;
    if (!sinks.empty()) family.sinks = sinks;
    return audit::audit_path_family(audit::view_of(cdag), family,
                                    RuleSelection::only({rule}));
  }
};

TEST(AuditMutation, PathEdgesCatchesNonEdgeHop) {
  FamilyFixture f;
  const VertexId input = f.cdag.layout().input(bilinear::Side::A, 0);
  f.add_path({input, f.cdag.layout().output(0)});  // input -/-> output
  const auto& diag = first_finding(f.audit({}, "routing.path-edges"),
                                   "routing.path-edges");
  EXPECT_EQ(diag.vertex, input);
}

TEST(AuditMutation, PathEndpointsCatchesWrongSource) {
  FamilyFixture f;
  const auto& layout = f.cdag.layout();
  const VertexId input = layout.input(bilinear::Side::A, 0);
  const VertexId enc = layout.enc(bilinear::Side::A, 1, 0, 0);
  f.add_path({input, enc});  // a11 -> m1 is a real edge
  f.sources = {layout.input(bilinear::Side::A, 1)};
  f.sinks = {enc};
  const auto& diag = first_finding(f.audit({}, "routing.path-endpoints"),
                                   "routing.path-endpoints");
  EXPECT_EQ(diag.vertex, input);
  EXPECT_TRUE(diag.has_counts);
}

TEST(AuditMutation, PathLengthCatchesShortPath) {
  FamilyFixture f;
  const auto& layout = f.cdag.layout();
  const VertexId input = layout.input(bilinear::Side::A, 0);
  f.add_path({input, layout.enc(bilinear::Side::A, 1, 0, 0)});
  const auto& diag = first_finding(
      f.audit({.expected_length = 3}, "routing.path-length"),
      "routing.path-length");
  EXPECT_EQ(diag.vertex, input);
  EXPECT_EQ(diag.expected, 3u);
  EXPECT_EQ(diag.actual, 2u);
}

TEST(AuditMutation, CongestionCatchesOverusedVertex) {
  FamilyFixture f;
  const auto& layout = f.cdag.layout();
  const VertexId input = layout.input(bilinear::Side::A, 0);
  const VertexId enc = layout.enc(bilinear::Side::A, 1, 0, 0);
  f.add_path({input, enc});
  f.add_path({input, enc});
  const auto& diag = first_finding(
      f.audit({.congestion_bound = 1}, "routing.congestion"),
      "routing.congestion");
  EXPECT_EQ(diag.vertex, input);
  EXPECT_EQ(diag.expected, 1u);
  EXPECT_EQ(diag.actual, 2u);
}

TEST(AuditMutation, PathDisjointCatchesSharedVertex) {
  FamilyFixture f;
  const auto& layout = f.cdag.layout();
  const VertexId enc = layout.enc(bilinear::Side::A, 1, 0, 0);
  // m1 = a11 + a22: both inputs feed the same encoding vertex.
  f.add_path({layout.input(bilinear::Side::A, 0), enc});
  f.add_path({layout.input(bilinear::Side::A, 3), enc});
  const auto& diag = first_finding(
      f.audit({.vertex_disjoint = true}, "routing.path-disjoint"),
      "routing.path-disjoint");
  EXPECT_EQ(diag.vertex, enc);
}

TEST(AuditMutation, ChainCountCatchesMissingPaths) {
  FamilyFixture f;
  const auto& layout = f.cdag.layout();
  f.add_path({layout.input(bilinear::Side::A, 0),
              layout.enc(bilinear::Side::A, 1, 0, 0)});
  const auto& diag = first_finding(
      f.audit({.expected_paths = 3}, "routing.chain-count"),
      "routing.chain-count");
  EXPECT_EQ(diag.expected, 3u);
  EXPECT_EQ(diag.actual, 1u);
}

// --- fact1.* and routing.memo-totals, corrupting genuine memo data ---

struct MemoFixture {
  cdag::Cdag cdag{bilinear::strassen(), 2, {.with_coefficients = false}};
  routing::ChainRouter router{bilinear::strassen()};
  routing::MemoRoutingEngine engine{router};
  cdag::SubComputation sub{cdag, 1, 0};

  AuditReport audit_blocks(const std::vector<cdag::CopyBlock>& blocks,
                           const std::string& rule) {
    return audit::audit_copy_translation(cdag.layout(), sub.k(), sub.prefix(),
                                         blocks, RuleSelection::only({rule}));
  }
};

TEST(AuditMutation, CopyBlocksCatchesCorruptedRankLength) {
  MemoFixture f;
  const cdag::CopyTranslation map(f.cdag.layout(), f.sub.k(), f.sub.prefix());
  std::vector<cdag::CopyBlock> blocks(map.blocks().begin(),
                                      map.blocks().end());
  ASSERT_GE(blocks.size(), 3u);
  blocks[2].length += 1;  // rank run no longer matches enc_rank_size
  const auto& diag = first_finding(f.audit_blocks(blocks, "fact1.copy-blocks"),
                                   "fact1.copy-blocks");
  EXPECT_EQ(diag.vertex, 2u);  // block index
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected + 1, diag.actual);
}

TEST(AuditMutation, CopyBijectionCatchesShiftedGlobalRun) {
  MemoFixture f;
  const cdag::CopyTranslation map(f.cdag.layout(), f.sub.k(), f.sub.prefix());
  std::vector<cdag::CopyBlock> blocks(map.blocks().begin(),
                                      map.blocks().end());
  ASSERT_GE(blocks.size(), 2u);
  blocks[1].global_base += 1;  // no longer the Fact-1 address formula
  const auto& diag = first_finding(
      f.audit_blocks(blocks, "fact1.copy-bijection"), "fact1.copy-bijection");
  EXPECT_EQ(diag.vertex, 1u);  // block index
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected + 1, diag.actual);
}

TEST(AuditMutation, MemoTotalsCatchesCorruptedHitArray) {
  MemoFixture f;
  routing::ChainHitCounts counts = f.engine.chain_hits(f.sub);
  counts.hits[f.cdag.layout().product(0)] += 1;  // total no longer reconciles
  const auto report = audit::audit_memo_chain_counts(
      f.engine, f.sub, counts, RuleSelection::only({"routing.memo-totals"}));
  const auto& diag = first_finding(report, "routing.memo-totals");
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected, f.engine.expected_chain_total_hits(f.sub.k()));
  EXPECT_EQ(diag.actual, diag.expected + 1);
}

TEST(AuditMutation, MemoTotalsCatchesStaleArgmax) {
  MemoFixture f;
  routing::ChainHitCounts counts = f.engine.chain_hits(f.sub);
  counts.argmax += 1;  // no longer the smallest-id maximum
  const auto report = audit::audit_memo_chain_counts(
      f.engine, f.sub, counts, RuleSelection::only({"routing.memo-totals"}));
  const auto& diag = first_finding(report, "routing.memo-totals");
  EXPECT_TRUE(diag.has_counts);
}

// --- hall.* rules, on hand-built Theorem-3 witnesses ---

/// mu table defined exactly on the guaranteed digit pairs, all mapped
/// to product `q` — a structurally complete but lazily-routed witness.
std::vector<std::int32_t> all_to_product(int n0, bilinear::Side side, int q) {
  const int a = n0 * n0;
  std::vector<std::int32_t> mu(static_cast<std::size_t>(a) * a, -1);
  for (int d_in = 0; d_in < a; ++d_in) {
    for (int d_out = 0; d_out < a; ++d_out) {
      if (routing::is_guaranteed_digit_pair(n0, side, d_in, d_out)) {
        mu[static_cast<std::size_t>(d_in) * a + d_out] = q;
      }
    }
  }
  return mu;
}

TEST(AuditMutation, HallDomainCatchesUnmatchedPair) {
  const auto alg = bilinear::strassen();
  const routing::BaseMatching empty(4, std::vector<std::int32_t>(16, -1));
  const auto report = audit::audit_hall_matching(
      alg, bilinear::Side::A, empty, RuleSelection::only({"hall.domain"}));
  const auto& diag = first_finding(report, "hall.domain");
  // First unmatched guaranteed pair in scan order: (d_in, d_out) = (0, 0).
  EXPECT_EQ(diag.vertex, 0u);
}

TEST(AuditMutation, HallEdgeValidityCatchesNonAdjacentPair) {
  const auto alg = bilinear::strassen();
  const routing::BaseMatching matching(4, all_to_product(2, bilinear::Side::A,
                                                         /*q=*/0));
  const auto report =
      audit::audit_hall_matching(alg, bilinear::Side::A, matching,
                                 RuleSelection::only({"hall.edge-validity"}));
  const auto& diag = first_finding(report, "hall.edge-validity");
  // (0, 0) -> m1 is a real H-edge; (0, 1) -> m1 is not (m1 does not
  // appear in c12), so the scan first objects at flat pair index 1.
  EXPECT_EQ(diag.vertex, 1u);
}

TEST(AuditMutation, HallCapacityCatchesOverusedProduct) {
  const auto alg = bilinear::strassen();
  const routing::BaseMatching matching(4, all_to_product(2, bilinear::Side::A,
                                                         /*q=*/0));
  const auto report = audit::audit_hall_matching(
      alg, bilinear::Side::A, matching, RuleSelection::only({"hall.capacity"}));
  const auto& diag = first_finding(report, "hall.capacity");
  EXPECT_EQ(diag.vertex, 0u);  // product q = 0
  EXPECT_EQ(diag.expected, 2u);  // n0
  EXPECT_EQ(diag.actual, 8u);    // all 8 guaranteed pairs
}

// --- family.* rules ---

TEST(AuditMutation, FamilySizeCatchesWrongGuarantee) {
  const cdag::Cdag c(bilinear::strassen(), 2, {.with_coefficients = false});
  const bounds::DisjointFamily family{
      .k = 0, .prefixes = {0}, .guaranteed = 49};
  const auto report = audit::audit_disjoint_family(
      c, family, RuleSelection::only({"family.size"}));
  const auto& diag = first_finding(report, "family.size");
  EXPECT_EQ(diag.expected, 1u);  // b^(r-k-2) = 7^0
  EXPECT_EQ(diag.actual, 49u);
}

/// Strassen plus an 8th product m8 = a11 * b11 that no output uses
/// (zero W column, so the Brent equations still hold). Its U row
/// duplicates m3's trivial row a11, so the rank-2 copies of products
/// q = 8*d + 2 and q = 8*d + 7 land in the SAME input meta-vertex —
/// exactly the collision Lemma 1's family selection must avoid.
bilinear::BilinearAlgorithm strassen_with_duplicate_copy_row() {
  const auto s = bilinear::strassen();
  const int a = s.a();
  const int b = s.b();
  std::vector<support::Rational> u, v, w;
  for (int q = 0; q < b; ++q) {
    for (int e = 0; e < a; ++e) u.push_back(s.u(q, e));
  }
  for (int e = 0; e < a; ++e) u.emplace_back(e == 0 ? 1 : 0);  // a11
  for (int q = 0; q < b; ++q) {
    for (int e = 0; e < a; ++e) v.push_back(s.v(q, e));
  }
  for (int e = 0; e < a; ++e) v.emplace_back(e == 0 ? 1 : 0);  // b11
  for (int d = 0; d < a; ++d) {
    for (int q = 0; q < b; ++q) w.push_back(s.w(d, q));
    w.emplace_back(0);
  }
  return {"strassen_plus_copy", s.n0(), b + 1, std::move(u), std::move(v),
          std::move(w)};
}

TEST(AuditMutation, FamilyInputDisjointCatchesSharedMetaVertex) {
  const cdag::Cdag c(strassen_with_duplicate_copy_row(), 2,
                     {.with_coefficients = false});
  // Order-0 subcomputations 2 (via m3 = a11) and 7 (via m8 = a11) both
  // take a copy of enc(A, 1, 0, 0) as their A-side input.
  const bounds::DisjointFamily family{
      .k = 0, .prefixes = {2, 7}, .guaranteed = 1};
  const auto report = audit::audit_disjoint_family(
      c, family, RuleSelection::only({"family.input-disjoint"}));
  const auto& diag = first_finding(report, "family.input-disjoint");
  EXPECT_EQ(diag.vertex, c.layout().enc(bilinear::Side::A, 1, 0, 0));
}

// --- cert.* rules, corrupting a genuine Section-6 certificate ---

struct CertFixture {
  cdag::Cdag cdag{bilinear::strassen(), 3, {.with_coefficients = false}};
  std::vector<VertexId> order = schedule::dfs_schedule(cdag);
  bounds::CertifyResult result = bounds::certify_segments(
      cdag, order, {.cache_size = 1, .k = 1, .s_bar_target = 2});

  AuditReport audit(const bounds::CertifyResult& corrupt,
                    const std::string& rule) {
    const audit::CertificateSpec spec{.cdag = &cdag,
                                      .result = &corrupt,
                                      .schedule_size = order.size(),
                                      .decode_only = false,
                                      .full_schedule = true};
    return audit::audit_certificate(spec, RuleSelection::only({rule}));
  }
};

TEST(AuditMutation, CertSegmentOrderCatchesSwappedSegments) {
  CertFixture f;
  ASSERT_GE(f.result.segments.size(), 2u);
  auto corrupt = f.result;
  std::swap(corrupt.segments[0].end_step, corrupt.segments[1].end_step);
  const auto& diag = first_finding(f.audit(corrupt, "cert.segment-order"),
                                   "cert.segment-order");
  EXPECT_EQ(diag.vertex, 1u);  // segment index
}

TEST(AuditMutation, CertSegmentQuotaCatchesOvershoot) {
  CertFixture f;
  auto corrupt = f.result;
  ASSERT_TRUE(corrupt.segments[0].complete);
  corrupt.segments[0].s_bar = corrupt.s_bar_target + 1;
  const auto& diag = first_finding(f.audit(corrupt, "cert.segment-quota"),
                                   "cert.segment-quota");
  EXPECT_EQ(diag.vertex, 0u);
}

TEST(AuditMutation, CertCountedTotalCatchesMiscount) {
  CertFixture f;
  auto corrupt = f.result;
  corrupt.counted_total += 1;
  const auto& diag = first_finding(f.audit(corrupt, "cert.counted-total"),
                                   "cert.counted-total");
  EXPECT_TRUE(diag.has_counts);
  EXPECT_EQ(diag.expected + 1, diag.actual);
}

TEST(AuditMutation, CertArithmeticCatchesWrongGuarantee) {
  CertFixture f;
  auto corrupt = f.result;
  corrupt.family_guaranteed += 1;
  const auto& diag = first_finding(f.audit(corrupt, "cert.arithmetic"),
                                   "cert.arithmetic");
  EXPECT_EQ(diag.expected, 1u);  // b^(r-k-2) = 7^0
  EXPECT_EQ(diag.actual, 2u);
}

TEST(AuditMutation, CertBoundaryEqCatchesUnderReportedBoundary) {
  CertFixture f;
  auto corrupt = f.result;
  ASSERT_TRUE(corrupt.segments[0].complete);
  corrupt.segments[0].boundary = 0;
  const auto& diag = first_finding(f.audit(corrupt, "cert.boundary-eq"),
                                   "cert.boundary-eq");
  EXPECT_EQ(diag.vertex, 0u);
}

// --- schedule.* rules ---

struct ScheduleFixture {
  cdag::Cdag cdag{bilinear::strassen(), 1, {.with_coefficients = false}};
  std::vector<VertexId> order = schedule::dfs_schedule(cdag);

  AuditReport audit(const std::string& rule) {
    return audit::audit_schedule(cdag.graph(), order,
                                 RuleSelection::only({rule}));
  }
};

TEST(AuditMutation, ScheduleVertexRangeCatchesBogusId) {
  ScheduleFixture f;
  const VertexId bogus = f.cdag.graph().num_vertices() + 5;
  f.order[0] = bogus;
  const auto& diag = first_finding(f.audit("schedule.vertex-range"),
                                   "schedule.vertex-range");
  EXPECT_EQ(diag.vertex, bogus);
}

TEST(AuditMutation, ScheduleNoInputsCatchesScheduledInput) {
  ScheduleFixture f;
  const VertexId input = f.cdag.layout().input(bilinear::Side::A, 0);
  f.order.insert(f.order.begin(), input);
  const auto& diag = first_finding(f.audit("schedule.no-inputs"),
                                   "schedule.no-inputs");
  EXPECT_EQ(diag.vertex, input);
}

TEST(AuditMutation, ScheduleNoDuplicatesCatchesRepeat) {
  ScheduleFixture f;
  f.order.push_back(f.order.front());
  const auto& diag = first_finding(f.audit("schedule.no-duplicates"),
                                   "schedule.no-duplicates");
  EXPECT_EQ(diag.vertex, f.order.front());
}

TEST(AuditMutation, ScheduleTopologicalCatchesEarlyOutput) {
  ScheduleFixture f;
  std::swap(f.order.front(), f.order.back());
  const auto& diag = first_finding(f.audit("schedule.topological"),
                                   "schedule.topological");
  EXPECT_EQ(diag.vertex, f.order.front());
}

TEST(AuditMutation, ScheduleCoverageCatchesMissingVertex) {
  ScheduleFixture f;
  const VertexId dropped = f.order.back();
  f.order.pop_back();
  const auto& diag = first_finding(f.audit("schedule.coverage"),
                                   "schedule.coverage");
  EXPECT_EQ(diag.vertex, dropped);
}

}  // namespace audit_mutation_tests
