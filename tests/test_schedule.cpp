#include <gtest/gtest.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"

namespace {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::schedule;  // NOLINT

class ScheduleValidityTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ScheduleValidityTest, DfsBfsRandomAreAllValid) {
  const auto& [name, r] = GetParam();
  const cdag::Cdag cdag(bilinear::by_name(name), r,
                        {.with_coefficients = false});
  for (const auto& order :
       {dfs_schedule(cdag), bfs_schedule(cdag),
        random_topological_schedule(cdag.graph(), 42)}) {
    const ValidationResult vr = validate_schedule(cdag.graph(), order);
    EXPECT_TRUE(vr.ok) << name << " r=" << r << ": " << vr.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndDepths, ScheduleValidityTest,
    ::testing::Combine(::testing::Values("strassen", "winograd", "classical2",
                                         "laderman", "strassen_squared",
                                         "classical2_x_strassen"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ValidateTest, RejectsBrokenSchedules) {
  const cdag::Cdag cdag(bilinear::strassen(), 2, {.with_coefficients = false});
  auto order = dfs_schedule(cdag);
  // Duplicate a vertex.
  auto dup = order;
  dup.push_back(dup.front());
  EXPECT_FALSE(validate_schedule(cdag.graph(), dup).ok);
  // Drop a vertex.
  auto missing = order;
  missing.pop_back();
  EXPECT_FALSE(validate_schedule(cdag.graph(), missing).ok);
  // Use before compute: move the last vertex (an output) to the front.
  auto reordered = order;
  std::swap(reordered.front(), reordered.back());
  EXPECT_FALSE(validate_schedule(cdag.graph(), reordered).ok);
  // Schedule an input.
  auto with_input = order;
  with_input.push_back(cdag.layout().input(bilinear::Side::A, 0));
  EXPECT_FALSE(validate_schedule(cdag.graph(), with_input).ok);
}

TEST(ScheduleTest, RandomIsDeterministicPerSeed) {
  const cdag::Cdag cdag(bilinear::strassen(), 3, {.with_coefficients = false});
  const auto a = random_topological_schedule(cdag.graph(), 7);
  const auto b = random_topological_schedule(cdag.graph(), 7);
  const auto c = random_topological_schedule(cdag.graph(), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ScheduleTest, DfsBeatsBfsInIoAtModerateCache) {
  const cdag::Cdag cdag(bilinear::strassen(), 5, {.with_coefficients = false});
  const auto is_out = [&](cdag::VertexId v) {
    return cdag.layout().is_output(v);
  };
  const pebble::PebbleOptions opts{.cache_size = 128};
  const auto dfs =
      pebble::simulate(cdag.graph(), dfs_schedule(cdag), opts, is_out);
  const auto bfs =
      pebble::simulate(cdag.graph(), bfs_schedule(cdag), opts, is_out);
  EXPECT_LT(dfs.io(), bfs.io());
}

TEST(ScheduleTest, DfsBeatsRandomInIo) {
  const cdag::Cdag cdag(bilinear::strassen(), 4, {.with_coefficients = false});
  const auto is_out = [&](cdag::VertexId v) {
    return cdag.layout().is_output(v);
  };
  const pebble::PebbleOptions opts{.cache_size = 64};
  const auto dfs =
      pebble::simulate(cdag.graph(), dfs_schedule(cdag), opts, is_out);
  const auto rnd = pebble::simulate(
      cdag.graph(), random_topological_schedule(cdag.graph(), 1), opts, is_out);
  EXPECT_LT(dfs.io(), rnd.io());
}

TEST(ScheduleTest, SchedulesCoverEveryComputedVertexOnce) {
  const cdag::Cdag cdag(bilinear::laderman(), 2, {.with_coefficients = false});
  const std::uint64_t computed =
      cdag.graph().num_vertices() - 2 * cdag.layout().inputs_per_side();
  EXPECT_EQ(dfs_schedule(cdag).size(), computed);
  EXPECT_EQ(bfs_schedule(cdag).size(), computed);
  EXPECT_EQ(random_topological_schedule(cdag.graph(), 3).size(), computed);
}

TEST(ScheduleTest, BfsVisitsByLevel) {
  const cdag::Cdag cdag(bilinear::strassen(), 3, {.with_coefficients = false});
  const auto order = bfs_schedule(cdag);
  int prev_level = 0;
  for (const cdag::VertexId v : order) {
    const int level = cdag.layout().level(v);
    EXPECT_GE(level, prev_level);
    prev_level = level;
  }
}

}  // namespace
