#include <gtest/gtest.h>

#include <numeric>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/flat_classical.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"

namespace {

using namespace pathrouting;         // NOLINT
using namespace pathrouting::pebble; // NOLINT
using cdag::Graph;
using cdag::VertexId;

/// Tiny hand-built DAG: inputs 0,1,2; 3 = f(0,1); 4 = f(1,2);
/// 5 = f(3,4) (the output).
Graph diamond() {
  std::vector<std::uint32_t> off = {0, 0, 0, 0, 2, 4, 6};
  std::vector<VertexId> adj = {0, 1, 1, 2, 3, 4};
  return Graph(std::move(off), std::move(adj));
}

const std::vector<VertexId> kDiamondOrder = {3, 4, 5};

TEST(PebbleTest, LargeCacheCostsCompulsoryTrafficOnly) {
  const Graph g = diamond();
  const auto res = simulate(g, kDiamondOrder, {.cache_size = 10},
                            [](VertexId v) { return v == 5; });
  // Reads: the three inputs; writes: the single output.
  EXPECT_EQ(res.reads, 3u);
  EXPECT_EQ(res.writes, 1u);
}

TEST(PebbleTest, TightCacheForcesSpills) {
  const Graph g = diamond();
  // M = 3: computing 3 = f(0,1) fills the cache {0,1,3}; computing
  // 4 = f(1,2) stages 2 (0 is dead and evicted free) and must spill the
  // live value 3 to make room for 4; computing 5 = f(3,4) re-reads 3.
  const auto res = simulate(g, kDiamondOrder, {.cache_size = 3},
                            [](VertexId v) { return v == 5; });
  EXPECT_EQ(res.reads, 4u);   // inputs 0,1,2 + re-read of 3
  EXPECT_EQ(res.writes, 2u);  // spill of 3 + output 5
}

TEST(PebbleTest, SpilledIntermediatesAreWrittenThenReread) {
  // Chain: inputs 0..3; 4 = f(0,1), 5 = f(2,3), 6 = f(4,5).
  std::vector<std::uint32_t> off = {0, 0, 0, 0, 0, 2, 4, 6};
  std::vector<VertexId> adj = {0, 1, 2, 3, 4, 5};
  const Graph g(std::move(off), std::move(adj));
  const std::vector<VertexId> order = {4, 5, 6};
  // M = 3 forces 4 to be evicted (dirty, with a future use) while 5 is
  // computed: one write + one re-read.
  const auto res =
      simulate(g, order, {.cache_size = 3}, [](VertexId v) { return v == 6; });
  EXPECT_EQ(res.reads, 4u + 1u);   // inputs + re-read of 4
  EXPECT_EQ(res.writes, 1u + 1u);  // spill of 4 + output 6
}

TEST(PebbleTest, BeladyNeverWorseThanLruOnCdags) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag cdag(alg, 4, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  for (const std::uint64_t m : {8ull, 32ull, 128ull}) {
    const auto belady = simulate(cdag.graph(), order,
                                 {.cache_size = m, .eviction = Eviction::Belady},
                                 is_out);
    const auto lru = simulate(cdag.graph(), order,
                              {.cache_size = m, .eviction = Eviction::Lru},
                              is_out);
    EXPECT_LE(belady.io(), lru.io()) << "M=" << m;
  }
}

TEST(PebbleTest, IoDecreasesWithCacheSize) {
  const auto alg = bilinear::winograd();
  const cdag::Cdag cdag(alg, 4, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  std::uint64_t prev = UINT64_MAX;
  for (const std::uint64_t m : {8ull, 16ull, 64ull, 256ull, 1024ull}) {
    const auto res = simulate(cdag.graph(), order, {.cache_size = m}, is_out);
    EXPECT_LE(res.io(), prev) << "M=" << m;
    prev = res.io();
  }
}

TEST(PebbleTest, IoAtLeastCompulsory) {
  // Any execution must read every used input and write every output.
  const auto alg = bilinear::laderman();
  const cdag::Cdag cdag(alg, 2, {.with_coefficients = false});
  const auto order = schedule::bfs_schedule(cdag);
  const auto& layout = cdag.layout();
  const auto res = simulate(cdag.graph(), order, {.cache_size = 32},
                            [&](VertexId v) { return layout.is_output(v); });
  EXPECT_GE(res.reads, 2 * layout.inputs_per_side());
  EXPECT_GE(res.writes, layout.inputs_per_side());
}

TEST(PebbleTest, SegmentAttributionSumsToTotals) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag cdag(alg, 4, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  PebbleOptions opts{.cache_size = 64};
  const std::uint32_t len = static_cast<std::uint32_t>(order.size());
  opts.segment_ends = {len / 4, len / 2, (3 * len) / 4, len};
  const auto res = simulate(cdag.graph(), order, opts, [&](VertexId v) {
    return cdag.layout().is_output(v);
  });
  EXPECT_EQ(std::accumulate(res.segment_reads.begin(),
                            res.segment_reads.end(), std::uint64_t{0}),
            res.reads);
  EXPECT_EQ(std::accumulate(res.segment_writes.begin(),
                            res.segment_writes.end(), std::uint64_t{0}),
            res.writes);
}

TEST(PebbleTest, FlatClassicalBlockedBeatsUnblocked) {
  const cdag::FlatClassicalCdag flat(16);
  const std::uint64_t m = 3 * 6 * 6;  // fits ~6x6 tiles
  const auto is_out = [&](VertexId v) {
    // Outputs: the last partial sums.
    return flat.graph().out_degree(v) == 0 && flat.graph().in_degree(v) > 0;
  };
  const auto blocked = simulate(flat.graph(), flat.blocked_schedule(6),
                                {.cache_size = m}, is_out);
  const auto naive = simulate(flat.graph(), flat.blocked_schedule(16),
                              {.cache_size = m}, is_out);
  EXPECT_LT(blocked.io(), naive.io());
}

TEST(PebbleTest, EvictionCountersAreConsistent) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag cdag(alg, 4, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const std::uint64_t m = 32;
  const auto res = simulate(cdag.graph(), order, {.cache_size = m}, is_out);
  // Every dirty eviction is a write; the remaining writes are the
  // final output flushes.
  EXPECT_LE(res.evictions_dirty, res.writes);
  EXPECT_GE(res.writes - res.evictions_dirty, 0u);
  // The cache fills completely on any nontrivial run.
  EXPECT_EQ(res.peak_cached, m);
  // Total evictions account for everything that entered the cache and
  // left: reads + computations - still-cached.
  const std::uint64_t entered = res.reads + order.size();
  EXPECT_EQ(res.evictions_dirty + res.evictions_clean + m, entered);
}

TEST(PebbleTest, PeakCachedBelowMForTinyGraphs) {
  const Graph g = diamond();
  const auto res = simulate(g, kDiamondOrder, {.cache_size = 100},
                            [](VertexId v) { return v == 5; });
  EXPECT_EQ(res.peak_cached, 6u);  // 3 inputs + 3 computed, never evicts
  EXPECT_EQ(res.evictions_dirty + res.evictions_clean, 0u);
}

TEST(PebbleTest, ResultsAreDeterministic) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag cdag(alg, 3, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const auto r1 = simulate(cdag.graph(), order, {.cache_size = 24}, is_out);
  const auto r2 = simulate(cdag.graph(), order, {.cache_size = 24}, is_out);
  EXPECT_EQ(r1.reads, r2.reads);
  EXPECT_EQ(r1.writes, r2.writes);
}

}  // namespace

namespace loop_order_tests {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::pebble;  // NOLINT
using cdag::FlatClassicalCdag;
using cdag::VertexId;

TEST(PebbleTest, KOuterLoopOrdersPayForPartialSumReloads) {
  // k-outer nestings sweep every partial sum once per k value: under
  // any replacement policy they re-stage the n^2 running sums each
  // round, costing roughly twice the k-inner orders at small M.
  const FlatClassicalCdag flat(24);
  const auto is_out = [&](VertexId v) {
    return flat.graph().out_degree(v) == 0 && flat.graph().in_degree(v) > 0;
  };
  const std::uint64_t m = 96;
  using LO = FlatClassicalCdag::LoopOrder;
  const auto io = [&](LO order) {
    return simulate(flat.graph(), flat.loop_schedule(order), {.cache_size = m},
                    is_out)
        .io();
  };
  const std::uint64_t ijk = io(LO::kIJK);
  const std::uint64_t kij = io(LO::kKIJ);
  EXPECT_GT(kij, ijk + ijk / 2);
  // And the blocked schedule beats all of them.
  const std::uint64_t blocked =
      simulate(flat.graph(), flat.blocked_schedule(5), {.cache_size = m},
               is_out)
          .io();
  EXPECT_LT(blocked, ijk);
}

}  // namespace loop_order_tests

namespace tie_break_tests {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::pebble;  // NOLINT
using cdag::Graph;
using cdag::VertexId;

/// A DAG on which the documented lowest-VertexId victim tie-break is
/// observable in the totals: inputs 0,1; 2 = f(0,1), 3 = f(0),
/// 4 = f(0,3), 5 = f(0), 6 = f(1,2,3); outputs are the sinks 4,5,6.
Graph tie_witness() {
  std::vector<std::uint32_t> off = {0, 0, 0, 2, 3, 5, 6, 9};
  std::vector<VertexId> adj = {0, 1, 0, 0, 3, 0, 1, 2, 3};
  return Graph(std::move(off), std::move(adj));
}

TEST(PebbleTest, BeladyVictimTiesBreakToLowestVertexId) {
  // At M = 4 with the ascending order [2,3,4,5,6], Belady hits a
  // victim tie between equally-distant values; the documented rule
  // (policies.hpp) evicts the lowest VertexId, which here keeps a
  // dirty value cached and saves one spill. The legacy unspecified
  // heap order (highest id on ties) paid 4 writes on this graph —
  // this test pins the contract, not an accident of the heap.
  const Graph g = tie_witness();
  const std::vector<VertexId> order = {2, 3, 4, 5, 6};
  const auto res = simulate(g, order, {.cache_size = 4},
                            [](VertexId v) { return v >= 4; });
  EXPECT_EQ(res.reads, 3u);
  EXPECT_EQ(res.writes, 3u);
}

TEST(PebbleTest, LruExactCountsOnCatalogDfs) {
  // LRU on the Strassen G_1 DFS order, exact counts at two cache
  // sizes: together with the Belady counts these pin the full
  // deterministic (policy, tie-break) contract on a catalog graph.
  const cdag::Cdag cdag(bilinear::by_name("strassen"), 1,
                        {.with_coefficients = false});
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const auto dfs = schedule::dfs_schedule(cdag);
  const auto lru8 =
      simulate(cdag.graph(), dfs,
               {.cache_size = 8, .eviction = Eviction::Lru}, is_out);
  EXPECT_EQ(lru8.reads, 28u);
  EXPECT_EQ(lru8.writes, 10u);
  const auto bel8 = simulate(cdag.graph(), dfs, {.cache_size = 8}, is_out);
  EXPECT_EQ(bel8.reads, 15u);
  EXPECT_EQ(bel8.writes, 8u);
  const auto lru6 =
      simulate(cdag.graph(), dfs,
               {.cache_size = 6, .eviction = Eviction::Lru}, is_out);
  EXPECT_EQ(lru6.reads, 29u);
  EXPECT_EQ(lru6.writes, 10u);
  const auto bel6 = simulate(cdag.graph(), dfs, {.cache_size = 6}, is_out);
  EXPECT_EQ(bel6.reads, 19u);
  EXPECT_EQ(bel6.writes, 8u);
}

}  // namespace tie_break_tests
