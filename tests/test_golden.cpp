// Golden-certificate corpus: the routing certificates of the headline
// algorithms, frozen as checked-in text files.
//
// For each algorithm the file records the Theorem-3 Hall witnesses
// (the base matchings, side A and B) plus, per k, the Lemma-3 /
// Lemma-4 / Theorem-2 chain certificate and the Claim-1 decode
// certificate, with an FNV-1a digest of the full per-vertex hit
// arrays. Every number is a pure function of the algorithm, so any
// diff against the corpus is a behavioural change in the routing
// engines — exactly what a refactor must not produce silently.
//
// Freshly generated text is compared byte-for-byte against
// tests/golden/<algorithm>.golden (PR_GOLDEN_DIR, baked in by CMake).
// To regenerate after an intentional change:
//
//   PR_GOLDEN_REGEN=1 ./build/tests/test_golden
//
// then review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/search/sweep.hpp"
#include "pathrouting/support/digest.hpp"

#ifndef PR_GOLDEN_DIR
#error "PR_GOLDEN_DIR must point at the checked-in corpus"
#endif

namespace {

using namespace pathrouting;  // NOLINT

/// The corpus pins the entire per-vertex hit array behind one digest.
/// Same definition as the certificate store key (support/digest.hpp);
/// its constants are pinned by test_support.cpp.
std::uint64_t fnv1a(const std::vector<std::uint64_t>& values) {
  return support::fnv1a_words(values);
}

void append_matching(std::ostringstream& os, const char* label,
                     const routing::BaseMatching& mu, int a) {
  os << label;
  for (int d_in = 0; d_in < a; ++d_in) {
    for (int d_out = 0; d_out < a; ++d_out) {
      os << ' '
         << (mu.defined(d_in, d_out) ? mu.product(d_in, d_out) : -1);
    }
  }
  os << '\n';
}

/// Implicit-engine certificate lines for k = 1..kmax_implicit. The
/// constant-memory verifiers pin their stats (argmax vertex ids
/// included) well past the explicit vertex budget; equality with the
/// array-backed engine below that budget is enforced by
/// tests/test_implicit_cdag and the routing.implicit-match audit rule,
/// so these lines freeze the deep-k values no other engine reaches.
void append_implicit(std::ostringstream& os,
                     const routing::MemoRoutingEngine& memo,
                     const bilinear::BilinearAlgorithm& alg,
                     int kmax_implicit) {
  // Layout's own limit, computed without constructing one (the ctor
  // aborts past 32-bit vertex ids): sum_t 2 b^t a^(r-t) + b^(r-t) a^t.
  const auto fits_vertex_ids = [&](int r) {
    unsigned __int128 total = 0;
    for (int t = 0; t <= r; ++t) {
      unsigned __int128 enc = 2, dec = 1;
      for (int i = 0; i < t; ++i) enc *= alg.b(), dec *= alg.a();
      for (int i = t; i < r; ++i) enc *= alg.a(), dec *= alg.b();
      total += enc + dec;
      if (total >= cdag::kInvalidVertex) return false;
    }
    return true;
  };
  for (int k = 1; k <= kmax_implicit; ++k) {
    if (!fits_vertex_ids(k)) break;
    const cdag::ImplicitCdag view(alg, k);
    const routing::HitStats l3 = memo.verify_chain_routing(view, k, 0);
    const routing::FullRoutingStats t2 =
        memo.verify_full_routing(view, k, 0);
    os << "implicit k " << k << " chains " << l3.num_paths << " l3_max "
       << l3.max_hits << " l3_argmax " << l3.argmax << " l4 "
       << memo.verify_chain_multiplicities(view, k, 0) << " t2_max "
       << t2.max_vertex_hits << " t2_argmax " << t2.argmax_vertex
       << " t2_meta " << t2.max_meta_hits << " root "
       << t2.root_hit_property;
    if (memo.has_decoder()) {
      const routing::HitStats d = memo.verify_decode_routing(view, k, 0);
      os << " decode_paths " << d.num_paths << " decode_max " << d.max_hits
         << " decode_argmax " << d.argmax;
    }
    os << "\n";
  }
}

/// The full golden text for one algorithm — the generator the corpus
/// was created with, and the reference every run is diffed against.
std::string golden_text(const std::string& name, int kmax) {
  const auto alg = bilinear::by_name(name);
  const routing::ChainRouter router(alg);
  const bool decode = bilinear::decoding_components(alg) == 1;
  std::ostringstream os;
  os << "pathrouting-golden-v1\n";
  os << "algorithm " << name << "\n";
  os << "n0 " << alg.n0() << " b " << alg.b() << "\n";
  append_matching(os, "hall_mu_a", router.matching(bilinear::Side::A),
                  alg.a());
  append_matching(os, "hall_mu_b", router.matching(bilinear::Side::B),
                  alg.a());
  if (!decode) {
    const routing::MemoRoutingEngine memo(router);
    os << "decode none\n";
    for (int k = 1; k <= kmax; ++k) {
      const cdag::Cdag graph(alg, k, {.with_coefficients = false});
      const cdag::SubComputation sub(graph, k, 0);
      const routing::ChainHitCounts counts = memo.chain_hits(sub);
      const routing::HitStats l3 = routing::chain_stats_from_counts(counts, sub);
      const routing::FullRoutingStats t2 =
          routing::full_routing_from_chain_counts(sub, counts);
      os << "k " << k << " chains " << counts.num_chains << " l3_max "
         << l3.max_hits << " l3_bound " << l3.bound << " l4 "
         << memo.verify_chain_multiplicities(sub) << " t2_max "
         << t2.max_vertex_hits << " t2_meta " << t2.max_meta_hits
         << " t2_bound " << t2.bound << " chain_fnv " << fnv1a(counts.hits)
         << "\n";
    }
    append_implicit(os, memo, alg, kmax + 6);
    return os.str();
  }
  const routing::DecodeRouter decoder(alg);
  const routing::MemoRoutingEngine memo(router, decoder);
  os << "decode d1 " << decoder.d1_size() << "\n";
  for (int k = 1; k <= kmax; ++k) {
    const cdag::Cdag graph(alg, k, {.with_coefficients = false});
    const cdag::SubComputation sub(graph, k, 0);
    const routing::ChainHitCounts counts = memo.chain_hits(sub);
    const routing::HitStats l3 = routing::chain_stats_from_counts(counts, sub);
    const routing::FullRoutingStats t2 =
        routing::full_routing_from_chain_counts(sub, counts);
    os << "k " << k << " chains " << counts.num_chains << " l3_max "
       << l3.max_hits << " l3_bound " << l3.bound << " l4 "
       << memo.verify_chain_multiplicities(sub) << " t2_max "
       << t2.max_vertex_hits << " t2_meta " << t2.max_meta_hits
       << " t2_bound " << t2.bound << " chain_fnv " << fnv1a(counts.hits)
       << "\n";
    const std::vector<std::uint64_t> hits = memo.decode_hits(sub);
    const routing::HitStats stats = memo.verify_decode_routing(sub);
    os << "k " << k << " decode_paths " << stats.num_paths << " decode_max "
       << stats.max_hits << " decode_bound " << stats.bound << " decode_fnv "
       << fnv1a(hits) << "\n";
  }
  append_implicit(os, memo, alg, kmax + 6);
  return os.str();
}

struct GoldenCase {
  std::string algorithm;
  int kmax;
};

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, CertificatesMatchCheckedInCorpus) {
  const GoldenCase& param = GetParam();
  const std::string path =
      std::string(PR_GOLDEN_DIR) + "/" + param.algorithm + ".golden";
  const std::string fresh = golden_text(param.algorithm, param.kmax);

  const char* regen = std::getenv("PR_GOLDEN_REGEN");
  if (regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with PR_GOLDEN_REGEN=1 to create)";
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_EQ(stored.str(), fresh)
      << "routing certificates diverged from the corpus; if the change "
         "is intentional, regenerate with PR_GOLDEN_REGEN=1 and review "
         "the diff";
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTest,
                         ::testing::Values(GoldenCase{"strassen", 4},
                                           GoldenCase{"winograd", 4},
                                           GoldenCase{"laderman", 3}),
                         [](const auto& info) {
                           return info.param.algorithm;
                         });

/// The schedule-search corpus: certified-optimal records (graph
/// digest, M, optimal reads/writes, witness digest, proof) plus the
/// best-found gap points of the same sweeps. Every field is a pure
/// function of (algorithm, r, M, budget, seed) under the determinism
/// contract, so a diff is a behavioural change in the optimizer, the
/// bound, or the pebble simulator. Regenerate like the routing corpus:
///   PR_GOLDEN_REGEN=1 ./build/tests/test_golden
std::string search_golden_text() {
  std::ostringstream os;
  os << "pathrouting-search-golden-v1\n";
  struct Case {
    const char* algorithm;
    int r;
    std::uint64_t m;
    std::uint64_t budget;
  };
  constexpr Case kCases[] = {
      {"strassen", 1, 6, 40000},  {"strassen", 1, 8, 40000},
      {"strassen", 1, 16, 40000}, {"strassen", 1, 40, 40000},
      {"classical2", 1, 4, 40000}, {"classical2", 1, 8, 40000},
      {"classical2", 1, 36, 40000},
      {"winograd", 1, 8, 40000},  {"winograd", 1, 40, 40000},
      {"strassen", 2, 64, 4000},  {"strassen", 2, 300, 4000},
  };
  for (const Case& c : kCases) {
    search::SweepSpec spec;
    spec.algorithm = c.algorithm;
    spec.r = c.r;
    spec.m = c.m;
    spec.node_budget = c.budget;
    const search::SweepPoint p = search::run_search_point(spec);
    os << "record alg " << c.algorithm << " r " << c.r << " m " << c.m
       << " graph_fnv " << p.graph_fnv << " reads " << p.searched_reads
       << " writes " << p.searched_writes << " io " << p.searched_io
       << " lower_bound " << p.lower_bound << " witness_fnv "
       << p.witness_fnv << " proof " << search::proof_name(p.proof) << "\n";
  }
  return os.str();
}

TEST(SearchGoldenTest, CertifiedOptimaMatchCheckedInCorpus) {
  const std::string path = std::string(PR_GOLDEN_DIR) + "/search.golden";
  const std::string fresh = search_golden_text();

  const char* regen = std::getenv("PR_GOLDEN_REGEN");
  if (regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with PR_GOLDEN_REGEN=1 to create)";
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_EQ(stored.str(), fresh)
      << "schedule-search certificates diverged from the corpus; if the "
         "change is intentional, regenerate with PR_GOLDEN_REGEN=1 and "
         "review the diff";
}

}  // namespace
