#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/cdag/flat_classical.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/matmul/classical.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::cdag;    // NOLINT
using bilinear::BilinearAlgorithm;
using bilinear::Side;

TEST(GraphTest, CsrRoundTrip) {
  // 0,1 inputs; 2 = f(0,1); 3 = f(2); 4 = f(2,3).
  std::vector<std::uint32_t> off = {0, 0, 0, 2, 3, 5};
  std::vector<VertexId> adj = {0, 1, 2, 2, 3};
  const Graph g(std::move(off), std::move(adj));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.in_degree(2), 2u);
  EXPECT_EQ(g.out_degree(2), 2u);
  EXPECT_EQ(g.out_degree(4), 0u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(0, 4));
  EXPECT_EQ(g.in(4)[0], 2u);
  EXPECT_EQ(g.in(4)[1], 3u);
}

TEST(GraphTest, OutAdjacencySortedInvariant) {
  // has_edge binary-searches out(v), so the derived out-lists must be
  // sorted — for hand-built graphs and for real CDAGs. The in-lists
  // keep construction order (the evaluator aligns coefficients to it).
  std::vector<std::uint32_t> off = {0, 0, 0, 2, 3, 5};
  std::vector<VertexId> adj = {1, 0, 2, 3, 2};  // in-lists NOT sorted
  const Graph g(std::move(off), std::move(adj));
  // In-adjacency preserved verbatim.
  EXPECT_EQ(g.in(2)[0], 1u);
  EXPECT_EQ(g.in(2)[1], 0u);
  const auto sorted_out = [](const Graph& graph) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const auto succs = graph.out(v);
      if (!std::is_sorted(succs.begin(), succs.end())) return false;
    }
    return true;
  };
  EXPECT_TRUE(sorted_out(g));
  // has_edge agrees with a linear scan of the out-list.
  for (VertexId from = 0; from < g.num_vertices(); ++from) {
    for (VertexId to = 0; to < g.num_vertices(); ++to) {
      const auto succs = g.out(from);
      const bool linear =
          std::find(succs.begin(), succs.end(), to) != succs.end();
      EXPECT_EQ(g.has_edge(from, to), linear) << from << "->" << to;
    }
  }
  // And on a real CDAG, grouped and ungrouped.
  for (const bool group : {false, true}) {
    const Cdag graph(bilinear::strassen(), 3,
                     {.with_coefficients = false, .group_duplicate_rows = group});
    EXPECT_TRUE(sorted_out(graph.graph()));
  }
}

TEST(LayoutTest, SizesMatchClosedForms) {
  const Layout layout(2, 7, 3);  // strassen r=3
  // Total = 2 * sum_t 7^t 4^{3-t} + sum_t 4^t 7^{3-t}.
  std::uint64_t enc = 0, dec = 0;
  for (int t = 0; t <= 3; ++t) {
    enc += layout.enc_rank_size(t);
    dec += layout.dec_rank_size(t);
  }
  EXPECT_EQ(enc, 64u + 112u + 196u + 343u);
  EXPECT_EQ(dec, 343u + 196u + 112u + 64u);
  EXPECT_EQ(layout.num_vertices(), 2 * enc + dec);
  EXPECT_EQ(layout.n(), 8u);
  EXPECT_EQ(layout.inputs_per_side(), 64u);
  EXPECT_EQ(layout.num_products(), 343u);
}

TEST(LayoutTest, RefRoundTrip) {
  const Layout layout(2, 7, 3);
  for (VertexId v = 0; v < layout.num_vertices(); ++v) {
    const VertexRef rf = layout.ref(v);
    VertexId back = kInvalidVertex;
    switch (rf.layer) {
      case LayerKind::EncA:
        back = layout.enc(Side::A, rf.rank, rf.q, rf.p);
        break;
      case LayerKind::EncB:
        back = layout.enc(Side::B, rf.rank, rf.q, rf.p);
        break;
      case LayerKind::Dec:
        back = layout.dec(rf.rank, rf.q, rf.p);
        break;
    }
    ASSERT_EQ(back, v);
  }
}

TEST(LayoutTest, LevelsAreMonotoneAlongEdges) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const Cdag cdag(alg, 2);
  const Layout& layout = cdag.layout();
  for (VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    for (const VertexId p : cdag.graph().in(v)) {
      EXPECT_EQ(layout.level(p) + 1, layout.level(v));
    }
  }
}

TEST(LayoutTest, MortonRoundTrip) {
  const Layout layout(3, 23, 2);
  for (std::uint64_t p = 0; p < layout.inputs_per_side(); ++p) {
    const RowCol rc = morton_to_rowcol(layout.pow_a(), 3, p, 2);
    EXPECT_LT(rc.row, 9u);
    EXPECT_LT(rc.col, 9u);
    EXPECT_EQ(rowcol_to_morton(3, rc.row, rc.col, 2), p);
  }
}

TEST(LayoutTest, InputOutputPredicates) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const Cdag cdag(alg, 2);
  const Layout& layout = cdag.layout();
  std::uint64_t inputs = 0, outputs = 0;
  for (VertexId v = 0; v < layout.num_vertices(); ++v) {
    inputs += layout.is_input(v) ? 1 : 0;
    outputs += layout.is_output(v) ? 1 : 0;
    EXPECT_EQ(layout.is_input(v), cdag.graph().in_degree(v) == 0);
    EXPECT_EQ(layout.is_output(v), cdag.graph().out_degree(v) == 0);
  }
  EXPECT_EQ(inputs, 2 * layout.inputs_per_side());
  EXPECT_EQ(outputs, layout.inputs_per_side());
}

class EvalTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EvalTest, CdagComputesMatrixProduct) {
  const auto& [name, r] = GetParam();
  const BilinearAlgorithm alg = bilinear::by_name(name);
  const Cdag cdag(alg, r);
  const std::uint64_t n = cdag.layout().n();
  support::Xoshiro256 rng(1000 + r);
  std::vector<std::int64_t> a(n * n), b(n * n);
  for (auto& x : a) x = rng.range(-5, 5);
  for (auto& x : b) x = rng.range(-5, 5);
  const auto am = to_morton<std::int64_t>(cdag, a);
  const auto bm = to_morton<std::int64_t>(cdag, b);
  const auto cm = evaluate<std::int64_t>(cdag, am, bm);
  const auto c = from_morton<std::int64_t>(cdag, cm);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      std::int64_t expected = 0;
      for (std::uint64_t k = 0; k < n; ++k) {
        expected += a[i * n + k] * b[k * n + j];
      }
      ASSERT_EQ(c[i * n + j], expected) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndDepths, EvalTest,
    ::testing::Combine(::testing::Values("strassen", "winograd", "classical2",
                                         "laderman", "strassen_squared",
                                         "classical2_x_strassen",
                                         "strassen_x_classical2"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(EvalTest, RationalEvaluationIsExact) {
  const Cdag cdag(bilinear::strassen(), 2);
  const std::uint64_t n = 4;
  std::vector<support::Rational> a, b;
  for (std::uint64_t i = 0; i < n * n; ++i) {
    a.emplace_back(static_cast<std::int64_t>(i) - 7, 3);
    b.emplace_back(static_cast<std::int64_t>(i * i) % 11 - 5, 2);
  }
  const auto am = to_morton<support::Rational>(cdag, a);
  const auto bm = to_morton<support::Rational>(cdag, b);
  const auto c =
      from_morton<support::Rational>(cdag, evaluate<support::Rational>(cdag, am, bm));
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      support::Rational expected(0);
      for (std::uint64_t k = 0; k < n; ++k) {
        expected += a[i * n + k] * b[k * n + j];
      }
      ASSERT_EQ(c[i * n + j], expected);
    }
  }
}

TEST(MetaTest, StructureValidatesForCatalog) {
  for (const auto& name : bilinear::catalog_names()) {
    const Cdag cdag(bilinear::by_name(name), 2);
    EXPECT_TRUE(validate_meta_structure(cdag)) << name;
  }
}

TEST(MetaTest, StrassenHasChainsOnly) {
  const Cdag cdag(bilinear::strassen(), 3);
  EXPECT_FALSE(has_multiple_copying(cdag));
  EXPECT_GT(count_duplicated_vertices(cdag), 0u);
}

TEST(MetaTest, ClassicalHasMultipleCopying) {
  const Cdag cdag(bilinear::classical(2), 2);
  EXPECT_TRUE(has_multiple_copying(cdag));
}

TEST(MetaTest, MembersShareRootAndValues) {
  const Cdag cdag(bilinear::strassen(), 3);
  // Evaluate and confirm every meta member carries the root's value.
  const std::uint64_t in = cdag.layout().inputs_per_side();
  support::Xoshiro256 rng(3);
  std::vector<std::int64_t> am(in), bm(in);
  for (auto& x : am) x = rng.range(-9, 9);
  for (auto& x : bm) x = rng.range(-9, 9);
  const auto values = evaluate_all<std::int64_t>(cdag, am, bm);
  for (VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    ASSERT_EQ(values[v], values[cdag.meta_root(v)]);
  }
}

TEST(MetaTest, MetaMembersEnumerationMatchesSizes) {
  const Cdag cdag(bilinear::classical(2), 2);
  for (VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    if (cdag.meta_root(v) != v) continue;
    const auto members = meta_members(cdag, v);
    EXPECT_EQ(members.size(), cdag.meta_size(v));
    for (const VertexId member : members) {
      EXPECT_EQ(cdag.meta_root(member), v);
    }
  }
}

TEST(Fact1Test, SubcomputationsAreVertexDisjointAndCoverMiddleRanks) {
  const Cdag cdag(bilinear::strassen(), 3);
  const Layout& layout = cdag.layout();
  const int k = 1;
  const std::uint64_t num_subs = layout.pow_b()(layout.r() - k);
  std::set<VertexId> seen;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < num_subs; ++i) {
    const SubComputation sub(cdag, k, i);
    for (const VertexId v : sub.vertices()) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex in two subcomputations";
      EXPECT_TRUE(sub.contains(v));
      ++total;
    }
  }
  // Middle 2(k+1) ranks: enc ranks r-k..r (both sides) + dec ranks 0..k.
  std::uint64_t expected = 0;
  for (int t = layout.r() - k; t <= layout.r(); ++t) {
    expected += 2 * layout.enc_rank_size(t);
  }
  for (int t = 0; t <= k; ++t) expected += layout.dec_rank_size(t);
  EXPECT_EQ(total, expected);
}

TEST(Fact1Test, SubcomputationIsomorphicToStandaloneGk) {
  // Edges inside G_k^i must mirror the standalone G_k edge rule.
  const BilinearAlgorithm alg = bilinear::winograd();
  const Cdag big(alg, 3);
  const Cdag small(alg, 2);
  const SubComputation sub(big, 2, /*prefix=*/4);
  const Layout& sl = small.layout();
  // Map standalone id -> embedded id via the shared (layer, rank, q, p)
  // coordinates.
  const auto embed = [&](VertexId v) {
    const VertexRef rf = sl.ref(v);
    switch (rf.layer) {
      case LayerKind::EncA:
        return sub.enc(Side::A, rf.rank, rf.q, rf.p);
      case LayerKind::EncB:
        return sub.enc(Side::B, rf.rank, rf.q, rf.p);
      case LayerKind::Dec:
        return sub.dec(rf.rank, rf.q, rf.p);
    }
    return kInvalidVertex;
  };
  for (VertexId v = 0; v < small.graph().num_vertices(); ++v) {
    const auto small_in = small.graph().in(v);
    const auto big_in = big.graph().in(embed(v));
    if (small_in.empty()) {
      // Standalone inputs correspond to embedded vertices whose
      // predecessors all lie outside the induced subgraph.
      for (const VertexId p : big_in) ASSERT_FALSE(sub.contains(p));
      continue;
    }
    ASSERT_EQ(small_in.size(), big_in.size());
    for (std::size_t e = 0; e < small_in.size(); ++e) {
      ASSERT_EQ(embed(small_in[e]), big_in[e]);
    }
  }
}

TEST(Fact1Test, InputDisjointnessIsDetected) {
  // Strassen's trivial rows select distinct blocks (M3 -> A11,
  // M4 -> A22, M2 -> B11, M5 -> B22), so copy roots encode the whole
  // recursion path injectively and all subcomputations are mutually
  // input-disjoint.
  const Cdag strassen_cdag(bilinear::strassen(), 3);
  for (std::uint64_t i = 0; i < 7; ++i) {
    for (std::uint64_t j = i + 1; j < 7; ++j) {
      EXPECT_TRUE(input_disjoint(SubComputation(strassen_cdag, 2, i),
                                 SubComputation(strassen_cdag, 2, j)));
    }
  }
  const SubComputation self(strassen_cdag, 2, 0);
  EXPECT_FALSE(input_disjoint(self, self));
  // Classical reuses A(i,k) across all j: products (i,k,j) and
  // (i,k,j') share the A-input meta-vertex, so the corresponding
  // subcomputations are NOT input-disjoint. Products 0 = (0,0,0) and
  // 1 = (0,0,1) of classical2 are such a pair.
  const Cdag classical_cdag(bilinear::classical(2), 2);
  EXPECT_FALSE(input_disjoint(SubComputation(classical_cdag, 1, 0),
                              SubComputation(classical_cdag, 1, 1)));
  // (0,0,0) and (1,1,1) = product index 7 share nothing.
  EXPECT_TRUE(input_disjoint(SubComputation(classical_cdag, 1, 0),
                             SubComputation(classical_cdag, 1, 7)));
}

TEST(FlatClassicalTest, StructureAndDegrees) {
  const FlatClassicalCdag flat(4);
  const Graph& g = flat.graph();
  EXPECT_EQ(g.num_vertices(), 2u * 16 + 64 + 16 * 3);
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(g.in_degree(flat.a(i, k)), 0u);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(g.in_degree(flat.product(i, k, j)), 2u);
        EXPECT_TRUE(g.has_edge(flat.a(i, k), flat.product(i, k, j)));
        EXPECT_TRUE(g.has_edge(flat.b(k, j), flat.product(i, k, j)));
      }
    }
  }
  EXPECT_EQ(g.out_degree(flat.output(1, 2)), 0u);
  EXPECT_TRUE(g.has_edge(flat.partial(0, 0, 2), flat.partial(0, 0, 3)));
}

TEST(FlatClassicalTest, BlockedScheduleIsTopological) {
  const FlatClassicalCdag flat(6);
  for (const int tile : {1, 2, 3, 6}) {
    const auto order = flat.blocked_schedule(tile);
    // Validate directly: operands precede uses.
    std::vector<bool> done(flat.graph().num_vertices(), false);
    for (VertexId v = 0; v < flat.graph().num_vertices(); ++v) {
      if (flat.graph().in_degree(v) == 0) done[v] = true;
    }
    std::uint64_t count = 0;
    for (const VertexId v : order) {
      for (const VertexId p : flat.graph().in(v)) {
        ASSERT_TRUE(done[p]) << "tile " << tile;
      }
      ASSERT_FALSE(done[v]);
      done[v] = true;
      ++count;
    }
    EXPECT_EQ(count, 6u * 6 * 6 + 6u * 6 * 5);
  }
}

TEST(FlatClassicalTest, AllLoopOrdersAreValidSchedules) {
  const FlatClassicalCdag flat(5);
  using LO = FlatClassicalCdag::LoopOrder;
  for (const LO order : {LO::kIJK, LO::kIKJ, LO::kJIK, LO::kJKI, LO::kKIJ,
                         LO::kKJI}) {
    const auto sched = flat.loop_schedule(order);
    std::vector<bool> done(flat.graph().num_vertices(), false);
    for (VertexId v = 0; v < flat.graph().num_vertices(); ++v) {
      if (flat.graph().in_degree(v) == 0) done[v] = true;
    }
    for (const VertexId v : sched) {
      for (const VertexId p : flat.graph().in(v)) {
        ASSERT_TRUE(done[p]) << "order " << static_cast<int>(order);
      }
      ASSERT_FALSE(done[v]);
      done[v] = true;
    }
    EXPECT_EQ(sched.size(), 5u * 5 * 5 + 5u * 5 * 4);
  }
}

TEST(CdagTest, EdgeCoefficientsMatchBaseTables) {
  const BilinearAlgorithm alg = bilinear::laderman();
  const Cdag cdag(alg, 1);
  const Layout& layout = cdag.layout();
  // Rank-1 encoding vertex q has in-edges with U row q's coefficients.
  for (int q = 0; q < alg.b(); ++q) {
    const VertexId v = layout.enc(Side::A, 1, static_cast<std::uint64_t>(q), 0);
    const auto preds = cdag.graph().in(v);
    const std::uint32_t base = cdag.graph().in_edge_base(v);
    std::size_t e = 0;
    for (int d = 0; d < alg.a(); ++d) {
      if (alg.u(q, d).is_zero()) continue;
      ASSERT_EQ(preds[e], layout.input(Side::A, static_cast<std::uint64_t>(d)));
      ASSERT_EQ(cdag.in_coeff(base + static_cast<std::uint32_t>(e)), alg.u(q, d));
      ++e;
    }
    ASSERT_EQ(e, preds.size());
  }
}

}  // namespace
