// Section-8 regime: duplicate-row meta grouping. Algorithms whose base
// reuses a nontrivial combination in several multiplications (here the
// classical (x) strassen tensor products) violate Theorem 1's
// single-use assumption; grouping extends meta-vertices to same-value
// classes so the segment machinery can probe the paper's conjecture
// that the bound survives.
#include <gtest/gtest.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/transform.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using cdag::Cdag;
using cdag::VertexId;

TEST(GroupingTest, NoOpForSingleUseAlgorithms) {
  // Strassen has no duplicate nontrivial rows: grouping changes
  // nothing.
  const Cdag plain(bilinear::strassen(), 3);
  const Cdag grouped(bilinear::strassen(), 3,
                     {.group_duplicate_rows = true});
  for (VertexId v = 0; v < plain.graph().num_vertices(); ++v) {
    ASSERT_EQ(plain.meta_root(v), grouped.meta_root(v));
  }
}

TEST(GroupingTest, MergesDuplicateRowVertices) {
  const auto alg = bilinear::classical2_x_strassen();
  ASSERT_FALSE(bilinear::satisfies_single_use_assumption(alg));
  const Cdag plain(alg, 2, {.with_coefficients = false});
  const Cdag grouped(alg, 2, {.with_coefficients = false,
                              .group_duplicate_rows = true});
  // Grouping strictly coarsens: the number of duplicated vertices grows.
  EXPECT_GT(cdag::count_duplicated_vertices(grouped),
            cdag::count_duplicated_vertices(plain));
  // Roots in the grouped CDAG refine those of the plain one (every
  // plain-equal pair stays equal).
  for (VertexId v = 0; v < plain.graph().num_vertices(); ++v) {
    const VertexId p_root = plain.meta_root(v);
    ASSERT_EQ(grouped.meta_root(p_root), grouped.meta_root(v));
  }
  EXPECT_TRUE(cdag::validate_meta_structure(grouped));
}

TEST(GroupingTest, GroupedMetaVerticesCarryEqualValues) {
  // The point of grouping: members of one meta-vertex hold the same
  // value on every input. Checked exactly on random inputs.
  for (const char* name : {"classical2_x_strassen", "strassen_x_classical2",
                           "classical2"}) {
    const auto alg = bilinear::by_name(name);
    const Cdag graph(alg, 2, {.group_duplicate_rows = true});
    const std::uint64_t in = graph.layout().inputs_per_side();
    support::Xoshiro256 rng(9);
    std::vector<std::int64_t> a(in), b(in);
    for (auto& x : a) x = rng.range(-7, 7);
    for (auto& x : b) x = rng.range(-7, 7);
    const auto values = cdag::evaluate_all<std::int64_t>(graph, a, b);
    for (VertexId v = 0; v < graph.graph().num_vertices(); ++v) {
      ASSERT_EQ(values[v], values[graph.meta_root(v)]) << name;
    }
  }
}

TEST(GroupingTest, GroupedMetaAreMaximal) {
  // Conversely, distinct encoding meta-vertices at the same rank and
  // block position hold distinct rows — grouping does not under-merge.
  const auto alg = bilinear::classical2_x_strassen();
  const Cdag graph(alg, 1, {.group_duplicate_rows = true});
  const auto& layout = graph.layout();
  for (int q1 = 0; q1 < alg.b(); ++q1) {
    for (int q2 = q1 + 1; q2 < alg.b(); ++q2) {
      bool equal_rows = true;
      for (int d = 0; d < alg.a() && equal_rows; ++d) {
        equal_rows = alg.u(q1, d) == alg.u(q2, d);
      }
      const VertexId v1 = layout.enc(bilinear::Side::A, 1,
                                     static_cast<std::uint64_t>(q1), 0);
      const VertexId v2 = layout.enc(bilinear::Side::A, 1,
                                     static_cast<std::uint64_t>(q2), 0);
      // Same meta iff same value; identical rows always merge, and for
      // this base distinct rows never alias (they are distinct linear
      // combinations evaluated at generic points).
      if (equal_rows) {
        ASSERT_EQ(graph.meta_root(v1), graph.meta_root(v2));
      }
    }
  }
}

TEST(GroupingTest, Section8ConjectureHoldsEmpirically) {
  // The paper conjectures (Section 8) that Theorem 1 survives without
  // the single-use assumption. With value-level meta-vertices the
  // segment argument's Equation (2) can be evaluated directly on a
  // violating algorithm: it holds on every schedule we try. (n0 = 4
  // keeps k <= r-2 only for small quotas at test-sized graphs; the
  // bench_extension binary runs larger instances.)
  const auto alg = bilinear::classical2_x_strassen();
  const Cdag graph(alg, 3, {.with_coefficients = false,
                            .group_duplicate_rows = true});
  for (const auto& order :
       {schedule::dfs_schedule(graph), schedule::bfs_schedule(graph),
        schedule::random_topological_schedule(graph.graph(), 21)}) {
    const auto cert = bounds::certify_segments(
        graph, order, {.cache_size = 1, .k = 1, .s_bar_target = 8});
    ASSERT_GE(cert.complete_segments(), 1u);
    EXPECT_TRUE(cert.eq_holds(12));
  }
}

TEST(GroupingTest, TransformedClassicalKeepsDuplicateStructure) {
  // Basis changes preserve row-duplication (rows transform injectively)
  // while making every row nontrivial: the result is a base with
  // duplicated NONtrivial combinations and no copies at all — the
  // purest violation of the single-use assumption.
  support::Xoshiro256 rng(31);
  const auto base = bilinear::classical(2);
  const auto p = bilinear::random_unimodular(2, rng);
  const auto q = bilinear::random_unimodular(2, rng);
  const auto r = bilinear::random_unimodular(2, rng);
  const auto alg = bilinear::transform_basis(base, p, q, r);
  ASSERT_TRUE(alg.verify_brent());
  EXPECT_FALSE(bilinear::satisfies_single_use_assumption(alg));
  const Cdag graph(alg, 6, {.with_coefficients = false,
                            .group_duplicate_rows = true});
  // Every grouped encoding meta-vertex has at least the duplication of
  // the classical core (each combination reused n0 = 2 times).
  const auto& layout = graph.layout();
  const VertexId v =
      layout.enc(bilinear::Side::A, layout.r(), 0, 0);
  EXPECT_TRUE(graph.is_duplicated(v));
  // Equation (2) on the duplicated-row base, paper quotas.
  const auto order = schedule::random_topological_schedule(graph.graph(), 2);
  const auto cert =
      bounds::certify_segments(graph, order, {.cache_size = 1});
  ASSERT_GE(cert.complete_segments(), 1u);
  EXPECT_TRUE(cert.eq_holds(12));
  EXPECT_TRUE(cert.boundary_ge(3));
}

}  // namespace
