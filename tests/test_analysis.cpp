// The pr_static analysis layer, both passes.
//
// Linter: every seeded-hazard mutation must be caught (the self-test
// the issue tracker calls "plant a hazard, watch it fail"), clean
// idioms must stay silent, and both suppression mechanisms (inline
// allow + committed baseline) must round-trip. TreeIsClean re-runs the
// scanner over the real sources with the committed baseline, so a new
// hazard fails here as well as in the pr_static ctest entry.
//
// Envelopes: the two-track arithmetic is pinned against hand values,
// every catalog algorithm's envelope is cross-checked against its own
// engines, the scalar first-wrap ranks are re-derived with independent
// saturating 128-bit arithmetic, and the value track is diffed against
// the golden-certificate corpus (including the implicit deep-k rows).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "pathrouting/analysis/envelope.hpp"
#include "pathrouting/analysis/static_lint.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/parallel/distributed_strassen.hpp"
#include "pathrouting/parallel/machine.hpp"
#include "pathrouting/parallel/summa.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"

#ifndef PR_GOLDEN_DIR
#error "PR_GOLDEN_DIR must point at the checked-in corpus"
#endif
#ifndef PR_SOURCE_DIR
#error "PR_SOURCE_DIR must point at the repository root"
#endif

namespace {

using namespace pathrouting;            // NOLINT
using namespace pathrouting::analysis;  // NOLINT
using u128 = unsigned __int128;

// --- Wrapped arithmetic. ---

TEST(WrappedTest, AddDetectsCarryExactly) {
  const Wrapped max{~std::uint64_t{0}, false};
  EXPECT_EQ(wrap_add(max, Wrapped{0, false}), (Wrapped{~std::uint64_t{0}, false}));
  // 2^64 - 1 + 1 = 2^64 exactly: low 0, wrapped.
  EXPECT_EQ(wrap_add(max, Wrapped{1, false}), (Wrapped{0, true}));
  // Wrap is sticky through further additions.
  EXPECT_EQ(wrap_add(Wrapped{0, true}, Wrapped{5, false}), (Wrapped{5, true}));
}

TEST(WrappedTest, MulDetectsOverflowExactly) {
  const std::uint64_t two32 = std::uint64_t{1} << 32;
  // 2^32 * 2^32 = 2^64: low word 0, wrapped set.
  EXPECT_EQ(wrap_mul(Wrapped{two32, false}, Wrapped{two32, false}),
            (Wrapped{0, true}));
  // One below the boundary stays exact.
  EXPECT_EQ(wrap_mul(Wrapped{two32, false}, Wrapped{two32 - 1, false}),
            (Wrapped{(two32 - 1) << 32, false}));
  // An exact zero annihilates a wrapped factor: 0 * huge = 0 exactly.
  EXPECT_EQ(wrap_mul(Wrapped{0, false}, Wrapped{123, true}),
            (Wrapped{0, false}));
  EXPECT_EQ(wrap_mul(Wrapped{123, true}, Wrapped{0, false}),
            (Wrapped{0, false}));
}

TEST(WrappedTest, PowMatchesEngineResidue) {
  // 3^41 > 2^64: the low word must be the plain uint64 wraparound
  // residue the engines would compute.
  std::uint64_t residue = 1;
  for (int i = 0; i < 41; ++i) residue *= 3;
  const Wrapped p = wrap_pow(3, 41);
  EXPECT_EQ(p.low, residue);
  EXPECT_TRUE(p.wrapped);
  EXPECT_FALSE(wrap_pow(3, 40).wrapped);  // 3^40 < 2^64
}

TEST(WrappedTest, MachineCounterEnvelopesMatchTheMachine) {
  // Below the wrap frontier the closed forms must be bit-identical to
  // the counters the sparse machine accumulates through send_class.
  {
    parallel::Machine machine(16, 1ull << 30);
    parallel::simulate_summa(32, 4, 2, machine);
    const Wrapped words = machine_summa_total_words(4, 8);
    const Wrapped bw = machine_summa_bandwidth(4, 8);
    EXPECT_FALSE(words.wrapped);
    EXPECT_EQ(words.low, machine.total_words());
    EXPECT_FALSE(bw.wrapped);
    EXPECT_EQ(bw.low, machine.bandwidth_cost());
  }
  {
    // grid = 2 halves the per-processor slice count (no mid-ring
    // positions), grid = 1 moves nothing.
    parallel::Machine machine(4, 1ull << 30);
    parallel::simulate_summa(16, 2, 2, machine);
    EXPECT_EQ(machine_summa_total_words(2, 8).low, machine.total_words());
    EXPECT_EQ(machine_summa_bandwidth(2, 8).low, machine.bandwidth_cost());
    EXPECT_EQ(machine_summa_total_words(1, 8).low, 0u);
  }
  {
    const auto alg = bilinear::strassen();
    parallel::Machine machine(7, 1ull << 30);
    parallel::simulate_distributed_strassen_like(alg, 16, machine);
    const Wrapped words = machine_strassen_total_words(7, 8);
    EXPECT_FALSE(words.wrapped);
    EXPECT_EQ(words.low, machine.total_words());
  }
}

TEST(WrappedTest, MachineCounterEnvelopesFlagTheWrapFrontier) {
  // nb = 2^32 makes nb^2 exactly 2^64: the low word collapses to 0 but
  // the flag records that the machine's checked_add would abort there.
  const Wrapped square = machine_summa_bandwidth(3, 1ull << 32);
  EXPECT_TRUE(square.wrapped);
  EXPECT_EQ(square.low, 0u);
  EXPECT_TRUE(machine_summa_total_words(1u << 20, 1ull << 20).wrapped);
  EXPECT_FALSE(machine_summa_total_words(1u << 10, 1ull << 16).wrapped);
  EXPECT_TRUE(machine_strassen_total_words(7, 1ull << 31).wrapped);
  EXPECT_FALSE(machine_strassen_total_words(7, 1ull << 29).wrapped);
}

// --- Linter: seeded hazards (mutation self-test). ---

std::vector<std::string> rules_of(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rules;
  for (const LintFinding& f : findings) rules.push_back(f.rule);
  return rules;
}

TEST(StaticLintTest, CatchesUnorderedIterationBothForms) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <unordered_map>\n"
                                    "int sum(const std::unordered_map<int, int>& m) {\n"
                                    "  int total = 0;\n"
                                    "  for (const auto& [key, value] : m) total += value;\n"
                                    "  for (auto it = m.begin(); it != m.end(); ++it) {}\n"
                                    "  return total;\n"
                                    "}\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "static.unordered-iteration");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].rule, "static.unordered-iteration");
  EXPECT_EQ(findings[1].line, 5);
}

TEST(StaticLintTest, CatchesFloatAccumulation) {
  const auto findings = scan_source("seed.cpp",
                                    "double mean(int n) {\n"
                                    "  double acc = 0;\n"
                                    "  for (int i = 0; i < n; ++i) acc += 1.0 / (i + 1);\n"
                                    "  return acc / n;\n"
                                    "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "static.float-accumulation");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(StaticLintTest, CatchesNondeterminismSources) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <random>\n"
                                    "unsigned seed() {\n"
                                    "  unsigned s = rand();\n"
                                    "  std::random_device dev;\n"
                                    "  s += static_cast<unsigned>(time(nullptr));\n"
                                    "  return s + dev();\n"
                                    "}\n");
  const std::vector<std::string> rules = rules_of(findings);
  EXPECT_EQ(rules, (std::vector<std::string>{"static.nondeterminism-source",
                                             "static.nondeterminism-source",
                                             "static.nondeterminism-source"}));
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].line, 4);
  EXPECT_EQ(findings[2].line, 5);
}

TEST(StaticLintTest, CatchesPointerKeyedContainers) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <map>\n"
                                    "#include <set>\n"
                                    "struct Node;\n"
                                    "std::map<const Node*, int> ranks;\n"
                                    "std::set<Node*> visited;\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "static.pointer-keyed-order");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].rule, "static.pointer-keyed-order");
  EXPECT_EQ(findings[1].line, 5);
}

TEST(StaticLintTest, CatchesRawThreadsAndAsync) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <future>\n"
                                    "#include <thread>\n"
                                    "void spawn() {\n"
                                    "  std::thread worker([] {});\n"
                                    "  auto f = std::async([] { return 1; });\n"
                                    "  worker.join();\n"
                                    "}\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "static.raw-thread");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].rule, "static.raw-thread");
  EXPECT_EQ(findings[1].line, 5);
}

// --- Linter: clean idioms must stay silent. ---

TEST(StaticLintTest, IgnoresUnorderedLookupsAndOrderedIteration) {
  EXPECT_TRUE(scan_source("clean.cpp",
                          "#include <map>\n"
                          "#include <unordered_map>\n"
                          "int f(const std::unordered_map<int, int>& cache,\n"
                          "      const std::map<int, int>& ordered) {\n"
                          "  int total = cache.count(7) != 0 ? cache.at(7) : 0;\n"
                          "  auto it = cache.find(9);\n"
                          "  if (it != cache.end()) total += it->second;\n"
                          "  for (const auto& [k, v] : ordered) total += v;\n"
                          "  return total;\n"
                          "}\n")
                  .empty());
}

TEST(StaticLintTest, IgnoresHazardsInCommentsAndStrings) {
  EXPECT_TRUE(scan_source("clean.cpp",
                          "// std::thread worker; rand(); acc += 1.0;\n"
                          "/* for (auto& x : unordered) {} */\n"
                          "const char* doc = \"std::async(rand())\";\n"
                          "const char* raw = R\"(time(nullptr))\";\n")
                  .empty());
}

TEST(StaticLintTest, IgnoresPoolUtilitiesAndIntegerAccumulation) {
  EXPECT_TRUE(scan_source("clean.cpp",
                          "#include <thread>\n"
                          "unsigned width() {\n"
                          "  std::uint64_t hits = 0;\n"
                          "  hits += 3;\n"
                          "  return std::thread::hardware_concurrency();\n"
                          "}\n")
                  .empty());
}

// --- Linter: inline allow, both placements. ---

TEST(StaticLintTest, InlineAllowSuppressesSameAndNextLine) {
  const auto findings = scan_source(
      "allowed.cpp",
      "#include <thread>\n"
      "std::thread a;  // pr-static: allow(static.raw-thread)\n"
      "// pr-static: allow(static.raw-thread)\n"
      "std::thread b;\n"
      "std::thread c;\n");
  ASSERT_EQ(findings.size(), 1u);  // only the unannotated declaration
  EXPECT_EQ(findings[0].line, 5);
}

TEST(StaticLintTest, InlineAllowIsRuleSpecific) {
  // An allow for a different rule must not silence the finding.
  const auto findings = scan_source(
      "allowed.cpp",
      "#include <thread>\n"
      "std::thread a;  // pr-static: allow(static.float-accumulation)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "static.raw-thread");
}

// --- Suppression baseline. ---

TEST(SuppressionBaselineTest, SerializeParsesBackToItself) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <thread>\n"
                                    "std::thread a;\n"
                                    "std::thread a;\n"
                                    "double acc = 0; void f() { acc += 1.0; }\n");
  ASSERT_EQ(findings.size(), 3u);
  const SuppressionBaseline baseline =
      SuppressionBaseline::from_findings(findings);
  // The two identical thread lines share one key with count 2.
  ASSERT_EQ(baseline.entries().size(), 2u);
  std::vector<std::string> errors;
  const SuppressionBaseline reparsed =
      SuppressionBaseline::parse(baseline.serialize(), &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(reparsed.entries(), baseline.entries());
  // A fully baselined scan suppresses everything and goes stale nowhere.
  const SuppressionBaseline::FilterResult result = baseline.apply(findings);
  EXPECT_TRUE(result.unsuppressed.empty());
  EXPECT_TRUE(result.stale_keys.empty());
}

TEST(SuppressionBaselineTest, NewHazardsExceedTheBudget) {
  const auto one = scan_source("seed.cpp",
                               "#include <thread>\n"
                               "std::thread a;\n");
  const auto two = scan_source("seed.cpp",
                               "#include <thread>\n"
                               "std::thread a;\n"
                               "std::thread a;\n");
  const SuppressionBaseline baseline = SuppressionBaseline::from_findings(one);
  const SuppressionBaseline::FilterResult result = baseline.apply(two);
  ASSERT_EQ(result.unsuppressed.size(), 1u);  // second copy is new
  EXPECT_EQ(result.unsuppressed[0].rule, "static.raw-thread");
  EXPECT_TRUE(result.stale_keys.empty());
}

TEST(SuppressionBaselineTest, FixedHazardsGoStale) {
  const auto findings = scan_source("seed.cpp",
                                    "#include <thread>\n"
                                    "std::thread a;\n");
  const SuppressionBaseline baseline =
      SuppressionBaseline::from_findings(findings);
  const SuppressionBaseline::FilterResult result = baseline.apply({});
  EXPECT_TRUE(result.unsuppressed.empty());
  ASSERT_EQ(result.stale_keys.size(), 1u);
  EXPECT_EQ(result.stale_keys[0], SuppressionBaseline::key(findings[0]));
}

TEST(SuppressionBaselineTest, MalformedLinesAreCollected) {
  std::vector<std::string> errors;
  const SuppressionBaseline baseline = SuppressionBaseline::parse(
      "# comment\n"
      "\n"
      "1 static.raw-thread|a.cpp|0011223344556677\n"
      "zero static.raw-thread|a.cpp|0011223344556677\n"
      "1 missing-separators\n",
      &errors);
  EXPECT_EQ(baseline.entries().size(), 1u);
  EXPECT_EQ(errors.size(), 2u);
}

// --- Linter over the real tree. ---

TEST(StaticLintTest, TreeIsCleanAgainstCommittedBaseline) {
  namespace fs = std::filesystem;
  const fs::path root(PR_SOURCE_DIR);
  std::vector<std::string> files;
  for (const char* subdir : {"src", "tools", "bench"}) {
    for (const auto& entry : fs::recursive_directory_iterator(root / subdir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      files.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 100u) << "tree walk found too few sources";

  std::vector<LintFinding> findings;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream text;
    text << in.rdbuf();
    const auto file_findings = scan_source(rel, text.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  std::ifstream in(root / "tools" / "pr_static_baseline.txt",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing committed baseline";
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<std::string> errors;
  const SuppressionBaseline baseline =
      SuppressionBaseline::parse(text.str(), &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_FALSE(baseline.entries().empty())
      << "baseline should carry the accepted float-model findings";

  const SuppressionBaseline::FilterResult result = baseline.apply(findings);
  for (const LintFinding& f : result.unsuppressed) {
    ADD_FAILURE() << "new determinism hazard: " << f.file << ":" << f.line
                  << " [" << f.rule << "] " << f.message;
  }
  for (const std::string& key : result.stale_keys) {
    ADD_FAILURE() << "stale baseline entry (hazard fixed — ratchet the "
                     "baseline): "
                  << key;
  }
}

TEST(StaticLintTest, ReportMarksEveryRuleRun) {
  const audit::AuditReport report = lint_report({});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rules_run(), lint_rule_ids());
  ASSERT_EQ(lint_rule_ids().size(), 5u);
}

// --- Envelopes: every catalog algorithm against its own engines. ---

TEST(EnvelopeTest, CatalogEnvelopesMatchEngines) {
  for (const std::string& name : bilinear::catalog_names()) {
    const bilinear::BilinearAlgorithm alg = bilinear::by_name(name);
    const AlgorithmEnvelopes env = compute_envelopes(alg);
    const routing::ChainRouter router(alg);
    if (env.has_decode) {
      const routing::DecodeRouter decoder(alg);
      const routing::MemoRoutingEngine engine(router, decoder);
      const audit::AuditReport report = check_envelopes(env, engine);
      EXPECT_TRUE(report.ok()) << name << ": " << report.to_json();
    } else {
      const routing::MemoRoutingEngine engine(router);
      const audit::AuditReport report = check_envelopes(env, engine);
      EXPECT_TRUE(report.ok()) << name << ": " << report.to_json();
    }
  }
}

TEST(EnvelopeTest, MismatchedEngineIsDiagnosed) {
  const AlgorithmEnvelopes env =
      compute_envelopes(bilinear::by_name("strassen"));
  const routing::ChainRouter router(bilinear::by_name("winograd"));
  const routing::MemoRoutingEngine engine(router);
  const audit::AuditReport report = check_envelopes(env, engine);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_finding("analysis.k-envelope"));
}

// --- Envelopes: independent 128-bit confirmation of the scalar
// first-wrap ranks (the "statically derived k matches runtime boundary
// behaviour" acceptance check). ---

constexpr u128 kCap = u128{1} << 126;

u128 sat_mul(u128 x, u128 y) {
  if (x == 0 || y == 0) return 0;
  return x > kCap / y ? kCap : x * y;
}

u128 sat_pow(std::uint64_t base, int exp) {
  u128 r = 1;
  for (int i = 0; i < exp; ++i) r = sat_mul(r, base);
  return r;
}

struct ScalarTruth {
  const char* name;
  std::uint64_t (routing::MemoRoutingEngine::*accessor)(int) const;  // or null
  u128 (*value)(const bilinear::BilinearAlgorithm&, std::uint64_t extra, int k);
};

TEST(EnvelopeTest, ScalarFirstWrapMatchesIndependentArithmetic) {
  const auto truths = std::vector<ScalarTruth>{
      {"chain.num_chains", &routing::MemoRoutingEngine::expected_num_chains,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_mul(2, sat_pow(static_cast<std::uint64_t>(alg.a()) *
                                       static_cast<std::uint64_t>(alg.n0()),
                                   k));
       }},
      {"chain.total_hits",
       &routing::MemoRoutingEngine::expected_chain_total_hits,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_mul(sat_mul(2, sat_pow(static_cast<std::uint64_t>(alg.a()) *
                                               static_cast<std::uint64_t>(
                                                   alg.n0()),
                                           k)),
                        static_cast<std::uint64_t>(2 * k + 2));
       }},
      {"chain.l3_bound", nullptr,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_mul(2, sat_pow(static_cast<std::uint64_t>(alg.n0()), k));
       }},
      {"full.t2_paths", nullptr,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_mul(2, sat_pow(static_cast<std::uint64_t>(alg.a()), 2 * k));
       }},
      {"full.t2_bound", nullptr,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_mul(6, sat_pow(static_cast<std::uint64_t>(alg.a()), k));
       }},
      {"decode.num_paths",
       &routing::MemoRoutingEngine::expected_num_decode_paths,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t, int k) {
         return sat_pow(static_cast<std::uint64_t>(alg.a()) *
                            static_cast<std::uint64_t>(alg.b()),
                        k);
       }},
      {"decode.total_hits",
       &routing::MemoRoutingEngine::expected_decode_total_hits,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t visits, int k) {
         const std::uint64_t ab = static_cast<std::uint64_t>(alg.a()) *
                                  static_cast<std::uint64_t>(alg.b());
         return sat_pow(ab, k) +
                sat_mul(sat_mul(static_cast<std::uint64_t>(k),
                                sat_pow(ab, k - 1)),
                        visits);
       }},
      {"decode.bound", nullptr,
       [](const bilinear::BilinearAlgorithm& alg, std::uint64_t d1, int k) {
         return sat_mul(d1, sat_pow(std::max(static_cast<std::uint64_t>(alg.a()),
                                             static_cast<std::uint64_t>(alg.b())),
                                    k));
       }},
  };

  for (const std::string& name : bilinear::catalog_names()) {
    const bilinear::BilinearAlgorithm alg = bilinear::by_name(name);
    const AlgorithmEnvelopes env = compute_envelopes(alg);
    const routing::ChainRouter router(alg);
    const bool decode = env.has_decode;
    std::optional<routing::DecodeRouter> decoder;
    if (decode) decoder.emplace(alg);
    std::optional<routing::MemoRoutingEngine> engine_storage;
    if (decode) {
      engine_storage.emplace(router, *decoder);
    } else {
      engine_storage.emplace(router);
    }
    const routing::MemoRoutingEngine& engine = *engine_storage;

    for (const ScalarTruth& truth : truths) {
      const QuantityEnvelope* q = env.find(truth.name);
      if (std::string_view(truth.name).starts_with("decode.") && !decode) {
        EXPECT_EQ(q, nullptr) << name << " " << truth.name;
        continue;
      }
      ASSERT_NE(q, nullptr) << name << " " << truth.name;

      // Per-D1-vertex visit total, recovered from the engine itself at
      // k = 1 (total_hits(1) = ab + visits); d1_size for the bound.
      std::uint64_t extra = 0;
      if (decode) {
        extra = std::string(truth.name) == "decode.total_hits"
                    ? engine.expected_decode_total_hits(1) -
                          static_cast<std::uint64_t>(alg.a()) *
                              static_cast<std::uint64_t>(alg.b())
                    : static_cast<std::uint64_t>(decoder->d1_size());
      }

      // Independent first-wrap rank.
      int expected_wrap = 0;
      for (int k = 1; k <= q->wrap_scan_kmax; ++k) {
        if ((truth.value(alg, extra, k) >> 64) != 0) {
          expected_wrap = k;
          break;
        }
      }
      EXPECT_EQ(q->first_wrap_k, expected_wrap) << name << " " << truth.name;
      ASSERT_GT(expected_wrap, 0)
          << name << " " << truth.name
          << ": every catalog scalar wraps within the default scan";

      // Around the boundary the envelope low word, the exact 128-bit
      // value mod 2^64 and (where one exists) the engine's wrap-exact
      // accessor must all agree bit for bit — and the exact value must
      // cross 2^64 at precisely the derived rank.
      const int lo = std::max(1, expected_wrap - 2);
      const int hi = std::min(q->value_kmax, expected_wrap + 2);
      for (int k = lo; k <= hi; ++k) {
        const u128 exact = truth.value(alg, extra, k);
        ASSERT_LT(exact, kCap) << name << " " << truth.name << " k=" << k;
        EXPECT_EQ(q->low_at(k), static_cast<std::uint64_t>(exact))
            << name << " " << truth.name << " k=" << k;
        EXPECT_EQ((exact >> 64) != 0, k >= expected_wrap)
            << name << " " << truth.name << " k=" << k;
        if (truth.accessor != nullptr) {
          EXPECT_EQ(q->low_at(k), (engine.*truth.accessor)(k))
              << name << " " << truth.name << " k=" << k;
        }
      }
    }
  }
}

TEST(EnvelopeTest, StrassenHeadlineBoundaries) {
  // The headline algorithm's envelope, pinned as literals (n0 = 2,
  // a = 4, b = 7): any change here is a behavioural change in either
  // the engines' formulas or the analyzer.
  const AlgorithmEnvelopes env =
      compute_envelopes(bilinear::by_name("strassen"));
  const auto wrap_of = [&](const char* name) {
    const QuantityEnvelope* q = env.find(name);
    return q == nullptr ? -1 : q->first_wrap_k;
  };
  EXPECT_EQ(wrap_of("chain.num_chains"), 21);   // 2 * 8^k
  EXPECT_EQ(wrap_of("chain.total_hits"), 20);   // 2 * 8^k * (2k + 2)
  EXPECT_EQ(wrap_of("chain.l3_bound"), 63);     // 2 * 2^k
  EXPECT_EQ(wrap_of("chain.l3_max"), 63);
  EXPECT_EQ(wrap_of("full.t2_paths"), 16);      // 2 * 16^k
  EXPECT_EQ(wrap_of("full.t2_bound"), 31);      // 6 * 4^k
  EXPECT_EQ(wrap_of("full.t2_max"), 31);        // 3 * 2^(2k+1)
  EXPECT_EQ(wrap_of("full.t2_meta"), 32);       // 3 * 4^k
  EXPECT_EQ(wrap_of("decode.num_paths"), 14);   // 28^k
  EXPECT_EQ(wrap_of("decode.total_hits"), 13);
  EXPECT_EQ(wrap_of("decode.bound"), 22);       // 11 * 7^k
  EXPECT_EQ(wrap_of("decode.max"), 23);
  // The service annotates a chain certificate with the kind minimum.
  EXPECT_EQ(env.first_wrap_for_kind("chain."), 20);
  EXPECT_EQ(env.first_wrap_for_kind("full."), 16);
  EXPECT_EQ(env.first_wrap_for_kind("decode."), 13);
}

// --- Envelopes: value track against the golden-certificate corpus. ---

// Key/value token stream of one golden line ("k 4 chains 8192 ...").
std::map<std::string, std::uint64_t> parse_kv(std::istringstream& line) {
  std::map<std::string, std::uint64_t> kv;
  std::string key;
  std::uint64_t value = 0;
  while (line >> key >> value) kv[key] = value;
  return kv;
}

TEST(EnvelopeTest, ValuesMatchGoldenCorpus) {
  // Golden keys -> envelope quantity names. Bounds appear only on the
  // explicit "k" lines; the implicit lines add the deep-k stats.
  const std::vector<std::pair<std::string, std::string>> kMap = {
      {"chains", "chain.num_chains"},   {"l3_max", "chain.l3_max"},
      {"l3_bound", "chain.l3_bound"},   {"t2_max", "full.t2_max"},
      {"t2_meta", "full.t2_meta"},      {"t2_bound", "full.t2_bound"},
      {"decode_paths", "decode.num_paths"},
      {"decode_max", "decode.max"},     {"decode_bound", "decode.bound"},
  };
  int compared = 0;
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const AlgorithmEnvelopes env = compute_envelopes(bilinear::by_name(name));
    const std::string path =
        std::string(PR_GOLDEN_DIR) + "/" + name + ".golden";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream ls(line);
      std::string head;
      ls >> head;
      if (head == "implicit") ls >> head;  // fall through to the k grammar
      if (head != "k") continue;
      int k = 0;
      ls >> k;
      ASSERT_GE(k, 1) << name << ": " << line;
      for (const auto& [key, value] : parse_kv(ls)) {
        const auto mapped =
            std::find_if(kMap.begin(), kMap.end(),
                         [&](const auto& p) { return p.first == key; });
        if (mapped == kMap.end()) continue;  // argmax / fnv / l4 / root
        const QuantityEnvelope* q = env.find(mapped->second);
        ASSERT_NE(q, nullptr) << name << " " << mapped->second;
        if (k > q->value_kmax) continue;  // beyond the class-walk depth
        EXPECT_EQ(q->low_at(k), value)
            << name << " k=" << k << " " << mapped->second;
        ++compared;
      }
    }
  }
  // The corpus pins explicit k-lines and implicit rows to k = 10; the
  // cross-check must actually have bitten.
  EXPECT_GT(compared, 150);
}

}  // namespace
