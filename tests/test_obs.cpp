// The observability layer's own contract: nesting, deterministic
// aggregation at any thread count, zero cost (including zero
// allocations) while disabled, and byte-stable JSON round-trips of the
// BENCH record schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "pathrouting/obs/bench_record.hpp"
#include "pathrouting/obs/export.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

// ---------------------------------------------------------------------
// Counting global allocator: proves the disabled hot path never
// allocates. Interposed for the whole test binary; the counter is a
// relaxed atomic so instrumented parallel sections stay correct.
// ---------------------------------------------------------------------

// Sanitizer runtimes interpose operator new themselves; a replacement
// allocator in the test binary would race them for symbol resolution
// (ASan then reports alloc-dealloc mismatches for blocks handed out by
// ITS new and freed by OUR free). The zero-allocation proof runs in
// the plain build only; sanitized builds skip it.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PR_OBS_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PR_OBS_COUNTING_ALLOCATOR 0
#endif
#endif
#ifndef PR_OBS_COUNTING_ALLOCATOR
#define PR_OBS_COUNTING_ALLOCATOR 1
#endif

#if PR_OBS_COUNTING_ALLOCATOR

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Replacing BOTH global new and delete with a malloc/free pair is
// well-defined; GCC's -Wmismatched-new-delete cannot see the pairing
// from a single definition, so silence it for this block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

#endif  // PR_OBS_COUNTING_ALLOCATOR

namespace {

using namespace pathrouting;  // NOLINT
namespace par = support::parallel;

/// Every obs test owns the global state: start disabled and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_counters();
    obs::clear_spans();
    obs::set_enabled(false);
  }
  void TearDown() override { obs::set_enabled(false); }
};

std::uint64_t counter_value(const std::string& name) {
  for (const obs::CounterValue& c : obs::counters_snapshot()) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter " << name << " not in snapshot";
  return 0;
}

// ---------------------------------------------------------------------
// Spans nest correctly.
// ---------------------------------------------------------------------

TEST_F(ObsTest, SpansRecordNestingDepthAndOrder) {
  obs::set_enabled(true);
  {
    const obs::TraceSpan outer("outer");
    {
      const obs::TraceSpan mid("mid");
      const obs::TraceSpan inner("inner");
    }
    const obs::TraceSpan sibling("sibling");
  }
  const std::vector<obs::SpanRecord> spans = obs::spans_snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order within a thread is innermost-first; the snapshot
  // re-sorts by start time, so the opening order comes back.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_STREQ(spans[1].name, "mid");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_STREQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].depth, 1);
  // Children are contained in their parent's interval.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  // All on the same (calling) thread.
  for (const obs::SpanRecord& s : spans) EXPECT_EQ(s.tid, spans[0].tid);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  {
    const obs::TraceSpan span("invisible");
  }
  EXPECT_TRUE(obs::spans_snapshot().empty());
}

// ---------------------------------------------------------------------
// Counters aggregate deterministically at PR_THREADS = 1, 2, 7.
// ---------------------------------------------------------------------

TEST_F(ObsTest, CounterTotalsAreThreadCountInvariant) {
  obs::set_enabled(true);
  constexpr std::uint64_t kN = 10000;
  std::uint64_t reference = 0;
  for (const int threads : {1, 2, 7}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::reset_counters();
    const par::ThreadOverride override_threads(threads);
    static obs::Counter items("test.items");
    static obs::Counter chunks("test.chunks");
    par::parallel_for(0, kN, 64, [&](std::uint64_t lo, std::uint64_t hi) {
      chunks.add();
      items.add(hi - lo);
    });
    const std::uint64_t total = counter_value("test.items");
    EXPECT_EQ(total, kN);
    EXPECT_EQ(counter_value("test.chunks"), (kN + 63) / 64);
    if (reference == 0) reference = total;
    EXPECT_EQ(total, reference);
  }
}

TEST_F(ObsTest, SnapshotIsNameOrderedAndMergesDuplicates) {
  obs::set_enabled(true);
  // Two distinct Counter instances sharing a name model two
  // instrumentation sites feeding one logical metric.
  static obs::Counter site_a("test.dup");
  static obs::Counter site_b("test.dup");
  site_a.add(3);
  site_b.add(4);
  const std::vector<obs::CounterValue> snap = obs::counters_snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name) << "snapshot not sorted";
  }
  EXPECT_EQ(counter_value("test.dup"), 7u);
}

// ---------------------------------------------------------------------
// Disabled mode: no allocations, counters frozen.
// ---------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeDoesNotAllocateOrCount) {
#if !PR_OBS_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  // Warm up: force lazy registration (counter registry, this thread's
  // span log) outside the measured window.
  obs::set_enabled(true);
  static obs::Counter warm("test.disabled");
  warm.add();
  {
    const obs::TraceSpan span("warm");
  }
  obs::set_enabled(false);
  obs::reset_counters();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const obs::TraceSpan span("hot");
    warm.add(7);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled obs hot path allocated";
  obs::set_enabled(true);
  EXPECT_EQ(counter_value("test.disabled"), 0u);
#endif
}

// ---------------------------------------------------------------------
// JSON export round-trips.
// ---------------------------------------------------------------------

TEST(BenchRecordTest, FileRoundTripsByteStable) {
  obs::BenchFile file;
  file.bench = "roundtrip";
  file.threads = 3;
  file.extra.emplace_back("note", "has \"quotes\" and \\backslash");
  obs::BenchRecord& rec = file.records.emplace_back();
  rec.set("experiment", "chain_routing")
      .set("k", 4)
      .set("chains", std::uint64_t{1234567890123ull})
      .set("ok", true)
      .set("seconds", 0.000123);
  file.records.emplace_back().set("metric", "memo.copy_blocks").set("value", 0);

  const std::string once = file.to_json();
  const obs::BenchParseResult parsed = obs::parse_bench_json(once);
  ASSERT_TRUE(parsed.file.has_value()) << parsed.error;
  EXPECT_EQ(parsed.file->to_json(), once);
  EXPECT_EQ(parsed.file->bench, "roundtrip");
  EXPECT_EQ(parsed.file->threads, 3);
  ASSERT_EQ(parsed.file->records.size(), 2u);
  EXPECT_EQ(parsed.file->records[0].int_or("chains", 0), 1234567890123ll);
}

TEST(BenchRecordTest, ParserPreservesNumberLexemes) {
  // Historical BENCH files carry scientific-notation seconds ("9e-06");
  // a parse -> serialize cycle must not rewrite them.
  const std::string text =
      "{\n  \"bench\": \"lexemes\",\n  \"threads\": 1,\n  \"records\": [\n"
      "    {\"seconds\": 9e-06, \"ratio\": 1.5, \"count\": 42}\n  ]\n}\n";
  const obs::BenchParseResult parsed = obs::parse_bench_json(text);
  ASSERT_TRUE(parsed.file.has_value()) << parsed.error;
  EXPECT_EQ(parsed.file->to_json(), text);
  const obs::BenchValue* seconds = parsed.file->records[0].find("seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_TRUE(seconds->is_number());
  EXPECT_DOUBLE_EQ(seconds->as_double(), 9e-06);
}

TEST(BenchRecordTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_bench_json("{").file.has_value());
  EXPECT_FALSE(obs::parse_bench_json("{\"bench\": 3}").file.has_value());
  EXPECT_FALSE(
      obs::parse_bench_json("{\"bench\": \"x\", \"records\": [{]}")
          .file.has_value());
  const obs::BenchParseResult bad =
      obs::parse_bench_json("{\"bench\": \"x\",\n \"threads\": }");
  EXPECT_FALSE(bad.file.has_value());
  EXPECT_NE(bad.error.find("line"), std::string::npos)
      << "parse errors carry a line number: " << bad.error;
}

TEST_F(ObsTest, ChromeTraceContainsCompletedSpans) {
  obs::set_enabled(true);
  {
    const obs::TraceSpan outer("chrome.outer");
    const obs::TraceSpan inner("chrome.inner");
  }
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"chrome.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"chrome.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, CountersExportInBenchSchema) {
  obs::set_enabled(true);
  static obs::Counter metric("test.export");
  metric.add(5);
  const obs::BenchFile file = obs::counters_as_bench_file("obs_test", "abc123");
  EXPECT_EQ(file.bench, "obs_test");
  bool found = false;
  for (const obs::BenchRecord& rec : file.records) {
    EXPECT_EQ(rec.text_or("commit", ""), "abc123");
    if (rec.text_or("metric", "") == "test.export") {
      found = true;
      EXPECT_EQ(rec.int_or("value", -1), 5);
    }
  }
  EXPECT_TRUE(found);
  // The export itself must re-parse (what pr_bench_gate consumes).
  EXPECT_TRUE(obs::parse_bench_json(file.to_json()).file.has_value());
}

}  // namespace
