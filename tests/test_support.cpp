#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "pathrouting/support/digest.hpp"
#include "pathrouting/support/mixed_radix.hpp"
#include "pathrouting/support/prng.hpp"
#include "pathrouting/support/rational.hpp"
#include "pathrouting/support/table.hpp"

namespace {

namespace support = pathrouting::support;

using pathrouting::support::digit_at;
using pathrouting::support::from_digits;
using pathrouting::support::PowTable;
using pathrouting::support::Rational;
using pathrouting::support::Table;
using pathrouting::support::to_digits;
using pathrouting::support::with_digit;
using pathrouting::support::Xoshiro256;

TEST(Rational, NormalizesToLowestTerms) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  const Rational s(-6, -4);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 2);
  const Rational t(6, -4);
  EXPECT_EQ(t.num(), -3);
  EXPECT_EQ(t.den(), 2);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational z(0, -17);
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
  EXPECT_TRUE(z.is_zero());
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_GT(Rational(7, 3), Rational(2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, CompoundAssignmentAndPredicates) {
  Rational x(3);
  x += Rational(1, 3);
  x *= Rational(3, 10);
  EXPECT_EQ(x, Rational(1));
  EXPECT_TRUE(x.is_one());
  EXPECT_TRUE(x.is_integer());
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_DOUBLE_EQ(Rational(3, 4).to_double(), 0.75);
}

TEST(Rational, Streaming) {
  std::ostringstream os;
  os << Rational(-7, 2) << " " << Rational(5);
  EXPECT_EQ(os.str(), "-7/2 5");
}

// The FNV-1a definition is load-bearing across the whole repository:
// the golden corpus stores hit-array digests computed with it, and the
// certificate store addresses content by it. These values pin the
// parameters and the little-endian word feed — if any of them change,
// every committed golden file and on-disk certificate is invalidated.
TEST(DigestTest, Fnv1aConstantsArePinned) {
  EXPECT_EQ(support::kFnv1aOffsetBasis, 14695981039346656037ull);
  EXPECT_EQ(support::kFnv1aPrime, 1099511628211ull);
  // Empty input returns the offset basis untouched.
  EXPECT_EQ(support::fnv1a_bytes(nullptr, 0), support::kFnv1aOffsetBasis);
  EXPECT_EQ(support::fnv1a_words({}), support::kFnv1aOffsetBasis);
  // Reference vectors of the standard 64-bit FNV-1a.
  EXPECT_EQ(support::fnv1a_text(""), 14695981039346656037ull);
  EXPECT_EQ(support::fnv1a_text("a"), 12638187200555641996ull);
  EXPECT_EQ(support::fnv1a_text("foobar"), 9625390261332436968ull);
}

TEST(DigestTest, WordsFeedAsLittleEndianBytes) {
  // One u64 word digests exactly like its 8 LE bytes.
  const std::uint64_t word = 0x0807060504030201ull;
  const unsigned char bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint64_t> words = {word};
  EXPECT_EQ(support::fnv1a_words(words),
            support::fnv1a_bytes(bytes, sizeof(bytes)));
  // Chaining through `state` equals digesting the concatenation.
  const std::vector<std::uint64_t> two = {word, ~word};
  EXPECT_EQ(support::fnv1a_words(two),
            support::fnv1a_words({&two[1], 1},
                                 support::fnv1a_words({&two[0], 1})));
}

TEST(PowTableTest, PowersAndDigits) {
  const PowTable p4(4, 6);
  EXPECT_EQ(p4(0), 1u);
  EXPECT_EQ(p4(3), 64u);
  EXPECT_EQ(p4(6), 4096u);
  // word = digits (3,0,2) base 4 -> 3*16 + 0*4 + 2 = 50.
  EXPECT_EQ(digit_at(p4, 50, 3, 0), 3u);
  EXPECT_EQ(digit_at(p4, 50, 3, 1), 0u);
  EXPECT_EQ(digit_at(p4, 50, 3, 2), 2u);
  EXPECT_EQ(with_digit(p4, 50, 3, 1, 3), 62u);
  EXPECT_EQ(from_digits(p4, to_digits(p4, 50, 3)), 50u);
}

TEST(PrngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(PrngTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t x = rng.below(13);
    ASSERT_LT(x, 13u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit
}

TEST(PrngTest, RangeInclusive) {
  Xoshiro256 rng(99);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.range(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string expected =
      "  name  value\n"
      "-------------\n"
      "     x      1\n"
      "longer     23\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(pathrouting::support::fmt_count(0), "0");
  EXPECT_EQ(pathrouting::support::fmt_count(999), "999");
  EXPECT_EQ(pathrouting::support::fmt_count(1000), "1,000");
  EXPECT_EQ(pathrouting::support::fmt_count(1234567), "1,234,567");
}

TEST(FormatTest, FixedAndSci) {
  EXPECT_EQ(pathrouting::support::fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(pathrouting::support::fmt_sci(1234567.0), "1.23e+06");
}

}  // namespace
