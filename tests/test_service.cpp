// Certificate service: binary format round-trips and rejections (run
// under ASan/UBSan in CI — a corrupted file must produce a diagnostic,
// never UB), content-addressed store semantics, serving correctness
// against the golden corpus digests, batch and N-thread bit-identity
// (run under TSan in CI), the serverd line protocol, and the
// service.cert-digest-match audit rule with its mutation test.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/service/certificate.hpp"
#include "pathrouting/service/protocol.hpp"
#include "pathrouting/service/replay.hpp"
#include "pathrouting/service/service.hpp"
#include "pathrouting/service/store.hpp"
#include "pathrouting/support/digest.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using service::CertKind;
using service::Certificate;

std::span<const unsigned char> bytes_of(const std::string& s) {
  return {reinterpret_cast<const unsigned char*>(s.data()), s.size()};
}

Certificate sample_certificate(CertKind kind, std::uint64_t salt) {
  Certificate cert;
  cert.algorithm_digest = 0x1234567890abcdefull ^ salt;
  cert.kind = kind;
  cert.k = 3;
  cert.n0 = 2;
  cert.b = 7;
  cert.words.assign(service::payload_word_count(kind), 0);
  support::Xoshiro256 rng(salt + 1);
  for (auto& w : cert.words) w = rng();
  cert.seal();
  return cert;
}

/// A per-test throwaway directory (removed on destruction).
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((std::filesystem::temp_directory_path() /
              ("pathrouting_test_service." + tag + "." +
               std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// ---------------------------------------------------------------------------
// Binary format

TEST(CertificateFormat, RoundTripsEveryKind) {
  for (const CertKind kind : {CertKind::kChain, CertKind::kDecode,
                              CertKind::kFull, CertKind::kSegment}) {
    const Certificate cert = sample_certificate(kind, 7);
    const std::string body = serialize_certificate(cert);
    const service::DecodeResult decoded = service::decode_certificate(bytes_of(body));
    ASSERT_TRUE(decoded.certificate.has_value()) << decoded.error;
    EXPECT_EQ(*decoded.certificate, cert);
    EXPECT_TRUE(decoded.error.empty());
  }
}

TEST(CertificateFormat, SerializationIsByteStable) {
  // Property: equal certificates serialize to equal bytes, and the
  // round trip preserves every randomized payload.
  support::Xoshiro256 rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    const auto kind = static_cast<CertKind>(rng.below(4));
    const Certificate cert = sample_certificate(kind, rng());
    const std::string a = serialize_certificate(cert);
    const std::string b = serialize_certificate(cert);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.compare(0, 8, "PRCERTF1"), 0);
    const service::DecodeResult decoded = service::decode_certificate(bytes_of(a));
    ASSERT_TRUE(decoded.certificate.has_value()) << decoded.error;
    EXPECT_EQ(*decoded.certificate, cert);
  }
}

TEST(CertificateFormat, RejectsTruncatedHeader) {
  const std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 1));
  for (const std::size_t len : {std::size_t{0}, std::size_t{8},
                                std::size_t{63}}) {
    const service::DecodeResult r =
        service::decode_certificate(bytes_of(body.substr(0, len)));
    EXPECT_FALSE(r.certificate.has_value());
    EXPECT_NE(r.error.find("truncated header"), std::string::npos) << r.error;
  }
}

TEST(CertificateFormat, RejectsTruncatedPayload) {
  const std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 2));
  const service::DecodeResult r =
      service::decode_certificate(bytes_of(body.substr(0, body.size() - 1)));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("does not match declared payload"),
            std::string::npos)
      << r.error;
}

TEST(CertificateFormat, RejectsBadMagic) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kDecode, 3));
  body[0] = 'X';
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("bad magic"), std::string::npos) << r.error;
}

TEST(CertificateFormat, RejectsForeignEndianness) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kFull, 4));
  // A big-endian writer would lay the marker down reversed.
  std::reverse(body.begin() + 8, body.begin() + 16);
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("foreign endianness"), std::string::npos) << r.error;
}

TEST(CertificateFormat, RejectsVersionMismatch) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 5));
  body[16] = static_cast<char>(service::kFormatVersion + 1);
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("unsupported format version"), std::string::npos)
      << r.error;
}

TEST(CertificateFormat, RejectsUnknownKind) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 6));
  body[32] = 9;
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("unknown certificate kind"), std::string::npos)
      << r.error;
}

TEST(CertificateFormat, RejectsWordCountMismatch) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 7));
  body[48] = static_cast<char>(service::kChainWordCount + 1);
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("payload word count"), std::string::npos) << r.error;
}

TEST(CertificateFormat, RejectsCorruptedPayload) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kSegment, 8));
  body[70] = static_cast<char>(body[70] ^ 0x40);  // flip a payload bit
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("payload digest mismatch"), std::string::npos)
      << r.error;
}

TEST(CertificateFormat, RejectsCorruptedFileDigest) {
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kDecode, 9));
  body[body.size() - 1] = static_cast<char>(body[body.size() - 1] ^ 1);
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("file digest mismatch"), std::string::npos)
      << r.error;
}

TEST(CertificateFormat, RejectsCorruptedRecordedPayloadDigest) {
  // A flipped *digest* (payload intact) is caught by the payload-digest
  // comparison too — the pair is cross-checked, not trusted.
  std::string body =
      serialize_certificate(sample_certificate(CertKind::kChain, 10));
  body[56] = static_cast<char>(body[56] ^ 0x10);
  const service::DecodeResult r = service::decode_certificate(bytes_of(body));
  EXPECT_FALSE(r.certificate.has_value());
  EXPECT_NE(r.error.find("digest mismatch"), std::string::npos) << r.error;
}

// ---------------------------------------------------------------------------
// mmap reader

TEST(MappedCertificate, RoundTripsThroughDisk) {
  TempDir dir("mmap");
  std::filesystem::create_directories(dir.path);
  const Certificate cert = sample_certificate(CertKind::kChain, 11);
  const std::string path = dir.path + "/round.cert";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string body = serialize_certificate(cert);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
  }
  service::MappedOpenResult r = service::MappedCertificate::open(path);
  ASSERT_TRUE(r.file.has_value()) << r.error;
  EXPECT_EQ(r.file->kind(), cert.kind);
  EXPECT_EQ(r.file->k(), cert.k);
  EXPECT_EQ(r.file->n0(), cert.n0);
  EXPECT_EQ(r.file->b(), cert.b);
  EXPECT_EQ(r.file->engine_version(), cert.engine_version);
  EXPECT_EQ(r.file->algorithm_digest(), cert.algorithm_digest);
  EXPECT_EQ(r.file->payload_digest(), cert.payload_digest);
  // The zero-copy span reads the payload straight out of the mapping.
  ASSERT_EQ(r.file->words().size(), cert.words.size());
  for (std::size_t i = 0; i < cert.words.size(); ++i) {
    EXPECT_EQ(r.file->words()[i], cert.words[i]);
  }
  EXPECT_EQ(r.file->to_certificate(), cert);
}

TEST(MappedCertificate, MissingEmptyTruncatedAndCorruptedFilesAreErrors) {
  TempDir dir("mmapbad");
  std::filesystem::create_directories(dir.path);
  {
    service::MappedOpenResult r =
        service::MappedCertificate::open(dir.path + "/nope.cert");
    EXPECT_FALSE(r.file.has_value());
    EXPECT_FALSE(r.error.empty());
  }
  {
    const std::string path = dir.path + "/empty.cert";
    std::ofstream(path, std::ios::binary).flush();
    service::MappedOpenResult r = service::MappedCertificate::open(path);
    EXPECT_FALSE(r.file.has_value());
    EXPECT_NE(r.error.find("empty file"), std::string::npos) << r.error;
  }
  const std::string body =
      serialize_certificate(sample_certificate(CertKind::kFull, 12));
  {
    const std::string path = dir.path + "/trunc.cert";
    std::ofstream out(path, std::ios::binary);
    out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
    out.close();
    service::MappedOpenResult r = service::MappedCertificate::open(path);
    EXPECT_FALSE(r.file.has_value());
    EXPECT_FALSE(r.error.empty());
  }
  {
    std::string bad = body;
    bad[80] = static_cast<char>(bad[80] ^ 0x04);
    const std::string path = dir.path + "/corrupt.cert";
    std::ofstream out(path, std::ios::binary);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    service::MappedOpenResult r = service::MappedCertificate::open(path);
    EXPECT_FALSE(r.file.has_value());
    EXPECT_NE(r.error.find("mismatch"), std::string::npos) << r.error;
  }
}

// ---------------------------------------------------------------------------
// Store

TEST(CertificateStore, MemoryOnlyInsertAndLookup) {
  service::CertificateStore store("");
  const Certificate cert = sample_certificate(CertKind::kChain, 13);
  const service::StoreKey key = service::key_of(cert);
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_EQ(store.recorded_digest(key), 0u);
  EXPECT_TRUE(store.insert(key, cert));
  const std::optional<Certificate> hit = store.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, cert);
  EXPECT_EQ(store.recorded_digest(key), cert.payload_digest);
  EXPECT_EQ(store.indexed_count(), 1u);
}

TEST(CertificateStore, PersistsAcrossReopen) {
  TempDir dir("store");
  const Certificate cert = sample_certificate(CertKind::kDecode, 14);
  const service::StoreKey key = service::key_of(cert);
  {
    service::CertificateStore store(dir.path);
    EXPECT_TRUE(store.insert(key, cert));
  }
  service::CertificateStore reopened(dir.path);
  EXPECT_EQ(reopened.indexed_count(), 0u);  // index is per-instance
  const std::optional<Certificate> hit = reopened.lookup(key);
  ASSERT_TRUE(hit.has_value()) << "expected a disk hit via mmap";
  EXPECT_EQ(*hit, cert);
  EXPECT_EQ(reopened.indexed_count(), 1u);
}

TEST(CertificateStore, CorruptedFileIsAMissAndGetsRewritten) {
  TempDir dir("storebad");
  const Certificate cert = sample_certificate(CertKind::kChain, 15);
  const service::StoreKey key = service::key_of(cert);
  {
    service::CertificateStore store(dir.path);
    EXPECT_TRUE(store.insert(key, cert));
  }
  const std::string path =
      dir.path + "/" + service::store_file_name(key);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(66);
    const char zap = 0x7f;
    f.write(&zap, 1);
  }
  service::CertificateStore reopened(dir.path);
  EXPECT_FALSE(reopened.lookup(key).has_value());
  // The recompute path rewrites the bad bytes...
  EXPECT_TRUE(reopened.insert(key, cert));
  // ...after which a third instance reads them back cleanly.
  service::CertificateStore third(dir.path);
  const std::optional<Certificate> hit = third.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, cert);
}

TEST(CertificateStore, FileNameEncodesTheKey) {
  const Certificate cert = sample_certificate(CertKind::kSegment, 16);
  const service::StoreKey key = service::key_of(cert);
  const std::string name = service::store_file_name(key);
  EXPECT_NE(name.find("-k3-segment-e1.cert"), std::string::npos) << name;
}

// ---------------------------------------------------------------------------
// Service correctness

TEST(CertificateService, ChainCertificateMatchesEngineAndGoldenDigest) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Response resp =
      svc.serve({"strassen", 3, CertKind::kChain});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_FALSE(resp.from_cache);
  const auto& w = resp.certificate.words;

  const auto alg = bilinear::by_name("strassen");
  const routing::ChainRouter router(alg);
  const routing::MemoRoutingEngine memo(router);
  const cdag::ImplicitCdag view(alg, 3);
  const routing::HitStats l3 = memo.verify_chain_routing(view, 3, 0);
  EXPECT_EQ(w[service::kChainNumChains], l3.num_paths);
  EXPECT_EQ(w[service::kChainL3MaxHits], l3.max_hits);
  EXPECT_EQ(w[service::kChainL3Bound], l3.bound);
  EXPECT_EQ(w[service::kChainL3Argmax], l3.argmax);
  EXPECT_EQ(w[service::kChainL4Exact], 1u);
  // The digest the golden corpus pins for strassen k=3 (chain_fnv in
  // tests/golden/strassen.golden) — Fact-1 makes the canonical array
  // identical to sub(G_3, 3, 0)'s hit array.
  EXPECT_EQ(w[service::kChainHasHitDigest], 1u);
  EXPECT_EQ(w[service::kChainHitDigest], 120753706211609557ull);
  EXPECT_EQ(resp.certificate.payload_digest,
            support::fnv1a_words(resp.certificate.words));
}

TEST(CertificateService, DecodeCertificateMatchesGoldenDigest) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Response resp =
      svc.serve({"strassen", 3, CertKind::kDecode});
  ASSERT_TRUE(resp.ok) << resp.error;
  const auto& w = resp.certificate.words;
  EXPECT_EQ(w[service::kDecodeNumPaths], 21952u);
  EXPECT_EQ(w[service::kDecodeMaxHits], 784u);
  EXPECT_EQ(w[service::kDecodeBound], 3773u);
  // decode_fnv of strassen k=3 in the golden corpus.
  EXPECT_EQ(w[service::kDecodeHasHitDigest], 1u);
  EXPECT_EQ(w[service::kDecodeHitDigest], 17449365662204533557ull);
}

TEST(CertificateService, SecondServeHitsTheStore) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Request req{"strassen", 2, CertKind::kFull};
  const service::Response first = svc.serve(req);
  const service::Response second = svc.serve(req);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.certificate, second.certificate);
  const service::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.requests, 2u);
  EXPECT_EQ(m.computed, 1u);
  EXPECT_EQ(m.store_hits, 1u);
  EXPECT_EQ(m.errors, 0u);
}

TEST(CertificateService, DeepRankSkipsTheHitDigest) {
  service::ServiceConfig config;
  config.digest_max_vertices = 100;  // force the implicit-only path
  service::CertificateService svc(config);
  const service::Response resp =
      svc.serve({"strassen", 4, CertKind::kChain});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.certificate.words[service::kChainHasHitDigest], 0u);
  EXPECT_EQ(resp.certificate.words[service::kChainHitDigest], 0u);
  // The counts are still the full Lemma-3 stats.
  EXPECT_EQ(resp.certificate.words[service::kChainNumChains], 8192u);
}

TEST(CertificateService, RejectsInvalidRequestsWithDiagnostics) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Response unknown =
      svc.serve({"not_an_algorithm", 2, CertKind::kChain});
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown algorithm"), std::string::npos);

  const service::Response zero = svc.serve({"strassen", 0, CertKind::kChain});
  EXPECT_FALSE(zero.ok);
  EXPECT_NE(zero.error.find("k must be >= 1"), std::string::npos);

  const service::Response decode =
      svc.serve({"classical2_x_strassen", 2, CertKind::kDecode});
  EXPECT_FALSE(decode.ok);
  EXPECT_NE(decode.error.find("disconnected decoding graph"),
            std::string::npos);

  const service::Response deep =
      svc.serve({"strassen", 9, CertKind::kSegment});
  EXPECT_FALSE(deep.ok);
  EXPECT_NE(deep.error.find("segment"), std::string::npos);

  EXPECT_EQ(svc.metrics().errors, 4u);
}

TEST(CertificateService, SegmentCertificateMatchesCertifier) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Response resp =
      svc.serve({"strassen", 2, CertKind::kSegment});
  ASSERT_TRUE(resp.ok) << resp.error;
  const auto& w = resp.certificate.words;
  EXPECT_EQ(w[service::kSegmentCertK], 1u);
  EXPECT_EQ(w[service::kSegmentCacheSize], 1u);
  EXPECT_EQ(w[service::kSegmentEqHolds], 1u);
  EXPECT_GT(w[service::kSegmentScheduleSize], 0u);
}

// ---------------------------------------------------------------------------
// Batch and concurrency (TSan in CI)

std::vector<service::Request> mixed_requests() {
  // Duplicates on purpose: the batch dedupes them, and the serial
  // baseline sees them as hits.
  return {
      {"strassen", 2, CertKind::kChain},  {"winograd", 2, CertKind::kDecode},
      {"strassen", 2, CertKind::kChain},  {"strassen", 3, CertKind::kFull},
      {"laderman", 2, CertKind::kChain},  {"strassen", 1, CertKind::kSegment},
      {"winograd", 2, CertKind::kDecode}, {"strassen", 2, CertKind::kDecode},
      {"bad_name", 2, CertKind::kChain},  {"strassen", 3, CertKind::kFull},
  };
}

TEST(CertificateService, BatchIsBitIdenticalToSerial) {
  const std::vector<service::Request> requests = mixed_requests();

  service::CertificateService serial(service::ServiceConfig{});
  std::vector<service::Response> expected;
  expected.reserve(requests.size());
  for (const service::Request& r : requests) {
    expected.push_back(serial.serve(r));
  }

  service::CertificateService batched(service::ServiceConfig{});
  const std::vector<service::Response> got = batched.serve_batch(requests);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].ok, expected[i].ok) << "request " << i;
    EXPECT_EQ(got[i].from_cache, expected[i].from_cache) << "request " << i;
    EXPECT_EQ(got[i].certificate, expected[i].certificate) << "request " << i;
    EXPECT_EQ(got[i].error, expected[i].error) << "request " << i;
  }
}

TEST(CertificateService, ConcurrentServingIsBitIdenticalToSerial) {
  // Serial reference.
  std::vector<service::Request> requests;
  for (const service::Request& r : mixed_requests()) {
    if (r.algorithm != "bad_name") requests.push_back(r);
  }
  std::map<std::string, Certificate> reference;
  {
    service::CertificateService svc(service::ServiceConfig{});
    for (const service::Request& r : requests) {
      const service::Response resp = svc.serve(r);
      ASSERT_TRUE(resp.ok) << resp.error;
      reference[r.algorithm + "/" + std::to_string(r.k) + "/" +
                service::kind_name(r.kind)] = resp.certificate;
    }
  }

  // N threads hammer one service with overlapping hit/miss mixes; the
  // in-flight admission queue must coalesce concurrent misses, and
  // every response must carry the reference certificate bit for bit.
  for (const int threads : {2, 7}) {
    service::CertificateService svc(service::ServiceConfig{});
    std::vector<std::vector<service::Response>> responses(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&svc, &requests, &responses, t] {
        // Each thread starts at a different offset so misses collide.
        auto& mine = responses[static_cast<std::size_t>(t)];
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const std::size_t j =
              (i + static_cast<std::size_t>(t)) % requests.size();
          mine.push_back(svc.serve(requests[j]));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      const auto& mine = responses[static_cast<std::size_t>(t)];
      ASSERT_EQ(mine.size(), requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const service::Request& r =
            requests[(i + static_cast<std::size_t>(t)) % requests.size()];
        ASSERT_TRUE(mine[i].ok) << mine[i].error;
        EXPECT_EQ(mine[i].certificate,
                  reference[r.algorithm + "/" + std::to_string(r.k) + "/" +
                            service::kind_name(r.kind)])
            << "thread " << t << " request " << i;
      }
    }
    const service::ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.requests,
              static_cast<std::uint64_t>(threads) * requests.size());
    // Every key is computed at most once per service instance; the
    // rest were store hits or coalesced waits.
    EXPECT_EQ(m.computed + m.store_hits + m.inflight_waits, m.requests);
    EXPECT_LE(m.computed, reference.size() * 1u);
  }
}

TEST(CertificateService, ConcurrentBatchesShareTheStore) {
  std::vector<service::Request> requests;
  for (const service::Request& r : mixed_requests()) {
    if (r.algorithm != "bad_name") requests.push_back(r);
  }
  service::CertificateService svc(service::ServiceConfig{});
  std::vector<std::vector<service::Response>> responses(4);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&svc, &requests, &responses, t] {
      responses[static_cast<std::size_t>(t)] = svc.serve_batch(requests);
    });
  }
  for (std::thread& w : workers) w.join();
  for (const auto& batch : responses) {
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok) << batch[i].error;
      EXPECT_EQ(batch[i].certificate,
                responses[0][i].certificate);  // all batches agree
    }
  }
}

// ---------------------------------------------------------------------------
// Replay / trace determinism

TEST(Replay, TraceIsDeterministicAndCountsAddUp) {
  service::TraceSpec spec;
  spec.num_requests = 256;
  const std::vector<service::Request> a = service::zipf_trace(spec);
  const std::vector<service::Request> b = service::zipf_trace(spec);
  ASSERT_EQ(a.size(), 256u);
  EXPECT_EQ(a, b);

  service::CertificateService svc(service::ServiceConfig{});
  const service::ReplayResult r = service::replay_trace(svc, a, 1);
  EXPECT_EQ(r.requests, 256u);
  EXPECT_EQ(r.ok, r.cache_hits + r.computed);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.computed, r.unique_keys);  // single client: one miss per key
  EXPECT_EQ(r.hit_us.size() + r.miss_us.size(), r.requests);
}

TEST(Replay, PercentileIsNearestRank) {
  EXPECT_EQ(service::percentile_us({}, 99), 0.0);
  EXPECT_EQ(service::percentile_us({5.0}, 50), 5.0);
  EXPECT_EQ(service::percentile_us({4.0, 1.0, 3.0, 2.0}, 50), 2.0);
  EXPECT_EQ(service::percentile_us({4.0, 1.0, 3.0, 2.0}, 100), 4.0);
}

// ---------------------------------------------------------------------------
// Protocol

TEST(Protocol, ParsesCommands) {
  const service::Command get = service::parse_command("get strassen 3 full");
  EXPECT_EQ(get.type, service::CommandType::kGet);
  EXPECT_EQ(get.request.algorithm, "strassen");
  EXPECT_EQ(get.request.k, 3);
  EXPECT_EQ(get.request.kind, CertKind::kFull);
  EXPECT_EQ(service::parse_command("batch").type,
            service::CommandType::kBatch);
  EXPECT_EQ(service::parse_command("end").type,
            service::CommandType::kBatchEnd);
  EXPECT_EQ(service::parse_command("stats").type,
            service::CommandType::kStats);
  EXPECT_EQ(service::parse_command("quit").type, service::CommandType::kQuit);
  EXPECT_EQ(service::parse_command("").type, service::CommandType::kEmpty);
  EXPECT_EQ(service::parse_command("# comment").type,
            service::CommandType::kEmpty);
}

TEST(Protocol, RejectsMalformedCommands) {
  EXPECT_EQ(service::parse_command("frobnicate").type,
            service::CommandType::kBad);
  EXPECT_EQ(service::parse_command("get strassen").type,
            service::CommandType::kBad);
  EXPECT_EQ(service::parse_command("get strassen 3 nokind").type,
            service::CommandType::kBad);
  EXPECT_EQ(service::parse_command("get strassen 3 chain extra").type,
            service::CommandType::kBad);
  EXPECT_FALSE(service::parse_command("get strassen x chain").error.empty());
}

TEST(Protocol, FormatsResponses) {
  service::CertificateService svc(service::ServiceConfig{});
  const service::Request req{"strassen", 1, CertKind::kChain};
  const service::Response resp = svc.serve(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  const std::string line = service::format_response(req, resp);
  EXPECT_EQ(line.compare(0, 5, "cert "), 0) << line;
  EXPECT_NE(line.find("alg=strassen"), std::string::npos) << line;
  EXPECT_NE(line.find("kind=chain"), std::string::npos) << line;
  EXPECT_NE(line.find("chains=16"), std::string::npos) << line;
  EXPECT_NE(line.find("cached=0"), std::string::npos) << line;

  service::Response err;
  err.error = "boom";
  EXPECT_EQ(service::format_response(req, err), "error boom");

  const std::string stats = service::format_stats(svc.metrics());
  EXPECT_EQ(stats.compare(0, 6, "stats "), 0) << stats;
  EXPECT_NE(stats.find("requests=1"), std::string::npos) << stats;
}

// ---------------------------------------------------------------------------
// Audit rule + mutation

TEST(ServiceAudit, CleanCertificatePassesDigestMatch) {
  const Certificate cert = sample_certificate(CertKind::kChain, 17);
  const audit::ServedCertificateView view{cert.words, cert.payload_digest,
                                          cert.payload_digest};
  EXPECT_TRUE(audit::audit_served_certificate(view).ok());
}

TEST(AuditMutation, ServedDigestMatchCatchesDriftedPayload) {
  Certificate cert = sample_certificate(CertKind::kChain, 18);
  cert.words[service::kChainNumChains] ^= 1;  // drift AFTER sealing
  const audit::ServedCertificateView view{cert.words, cert.payload_digest, 0};
  const audit::AuditReport report = audit::audit_served_certificate(view);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.diagnostics().empty());
  EXPECT_EQ(report.diagnostics().front().rule, "service.cert-digest-match");
}

TEST(AuditMutation, ServedDigestMatchCatchesStoreMismatch) {
  const Certificate cert = sample_certificate(CertKind::kDecode, 19);
  const audit::ServedCertificateView view{cert.words, cert.payload_digest,
                                          cert.payload_digest ^ 2};
  const audit::AuditReport report = audit::audit_served_certificate(view);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.diagnostics().empty());
  EXPECT_EQ(report.diagnostics().front().rule, "service.cert-digest-match");
}

TEST(ServiceAudit, AuditingServiceServesCleanly) {
  service::ServiceConfig config;
  config.audit_served = true;
  service::CertificateService svc(config);
  const service::Response resp = svc.serve({"strassen", 2, CertKind::kChain});
  EXPECT_TRUE(resp.ok) << resp.error;
  const service::Response again = svc.serve({"strassen", 2, CertKind::kChain});
  EXPECT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.from_cache);
}

}  // namespace

TEST(Protocol, RejectsOverlongLinesAtTheExactBoundary) {
  // One byte past kMaxLineLength is rejected before tokenizing ...
  const std::string overlong(service::kMaxLineLength + 1, 'a');
  const service::Command bad = service::parse_command(overlong);
  EXPECT_EQ(bad.type, service::CommandType::kBad);
  EXPECT_NE(bad.error.find("too long"), std::string::npos) << bad.error;
  // ... even when the prefix would have parsed as a valid get.
  std::string padded_get = "get strassen 3 chain";
  padded_get.resize(service::kMaxLineLength + 1, ' ');
  EXPECT_EQ(service::parse_command(padded_get).type,
            service::CommandType::kBad);
  // Exactly at the limit the normal grammar applies.
  std::string comment = "# ";
  comment.resize(service::kMaxLineLength, 'x');
  EXPECT_EQ(service::parse_command(comment).type,
            service::CommandType::kEmpty);
  std::string get_at_limit = "get strassen 3 chain";
  get_at_limit.resize(service::kMaxLineLength, ' ');
  EXPECT_EQ(service::parse_command(get_at_limit).type,
            service::CommandType::kGet);
}

TEST(Protocol, TruncatedAndMalformedGetFieldsCarryDiagnostics) {
  const service::Command no_fields = service::parse_command("get");
  EXPECT_EQ(no_fields.type, service::CommandType::kBad);
  EXPECT_NE(no_fields.error.find("usage"), std::string::npos);

  const service::Command no_kind = service::parse_command("get strassen 3");
  EXPECT_EQ(no_kind.type, service::CommandType::kBad);
  EXPECT_NE(no_kind.error.find("usage"), std::string::npos);

  const service::Command bad_k = service::parse_command("get strassen three chain");
  EXPECT_EQ(bad_k.type, service::CommandType::kBad);

  const service::Command bad_kind =
      service::parse_command("get strassen 3 chains");
  EXPECT_EQ(bad_kind.type, service::CommandType::kBad);
  EXPECT_NE(bad_kind.error.find("unknown certificate kind"), std::string::npos);

  const service::Command verb = service::parse_command("Get strassen 3 chain");
  EXPECT_EQ(verb.type, service::CommandType::kBad);  // verbs are case-exact
  EXPECT_NE(verb.error.find("unknown command"), std::string::npos);

  const service::Command trailing =
      service::parse_command("get strassen 3 chain 7");
  EXPECT_EQ(trailing.type, service::CommandType::kBad);
  EXPECT_NE(trailing.error.find("trailing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Overflow-envelope annotation

TEST(CertificateService, AnnotatesServedCertificatesWithEnvelope) {
  // Strassen's statically derived kind envelopes (pinned against the
  // analyzer by test_analysis): chain wraps first at k = 20
  // (chain.total_hits), full at 16 (t2_paths), decode at 13
  // (decode.total_hits). Everything served at small k is exact.
  service::CertificateService svc(service::ServiceConfig{});

  const service::Response chain = svc.serve({"strassen", 3, CertKind::kChain});
  ASSERT_TRUE(chain.ok) << chain.error;
  EXPECT_EQ(chain.envelope_wrap_k, 20u);
  EXPECT_TRUE(chain.envelope_exact);

  const service::Response full = svc.serve({"strassen", 2, CertKind::kFull});
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.envelope_wrap_k, 16u);
  EXPECT_TRUE(full.envelope_exact);

  const service::Response decode =
      svc.serve({"strassen", 3, CertKind::kDecode});
  ASSERT_TRUE(decode.ok) << decode.error;
  EXPECT_EQ(decode.envelope_wrap_k, 13u);
  EXPECT_TRUE(decode.envelope_exact);

  // Segment certificates carry no wrap-scanned formula quantities.
  const service::Response segment =
      svc.serve({"strassen", 2, CertKind::kSegment});
  ASSERT_TRUE(segment.ok) << segment.error;
  EXPECT_EQ(segment.envelope_wrap_k, 0u);
  EXPECT_TRUE(segment.envelope_exact);

  // Store hits and batch responses carry the same annotation.
  const service::Response again = svc.serve({"strassen", 3, CertKind::kChain});
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.envelope_wrap_k, 20u);
  EXPECT_TRUE(again.envelope_exact);

  const std::vector<service::Request> batch{
      {"strassen", 3, CertKind::kChain}, {"strassen", 2, CertKind::kFull}};
  const std::vector<service::Response> responses = svc.serve_batch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].envelope_wrap_k, 20u);
  EXPECT_EQ(responses[1].envelope_wrap_k, 16u);

  // The protocol line exposes both fields between digest and payload.
  const std::string line =
      service::format_response({"strassen", 3, CertKind::kChain}, chain);
  EXPECT_NE(line.find(" wrap_k=20 exact=1 "), std::string::npos) << line;
}
