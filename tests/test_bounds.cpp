#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/disjoint_family.hpp"
#include "pathrouting/bounds/expansion.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/bounds/hong_kung.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"

namespace {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::bounds;  // NOLINT
using cdag::Cdag;
using cdag::SubComputation;
using cdag::VertexId;

TEST(FormulasTest, CeilLog) {
  EXPECT_EQ(ceil_log(4, 1), 0);
  EXPECT_EQ(ceil_log(4, 2), 1);
  EXPECT_EQ(ceil_log(4, 4), 1);
  EXPECT_EQ(ceil_log(4, 5), 2);
  EXPECT_EQ(ceil_log(4, 16), 2);
  EXPECT_EQ(ceil_log(2, 1024), 10);
  EXPECT_EQ(ceil_log(7, 50), 3);
}

TEST(FormulasTest, Omega0) {
  EXPECT_NEAR(omega0(4, 7), 2.8073549, 1e-6);
  EXPECT_NEAR(omega0(4, 8), 3.0, 1e-12);
  EXPECT_NEAR(omega0(9, 23), 2.8540498, 1e-6);
}

TEST(FormulasTest, Theorem1PaperConstantForm) {
  // For M = 1: k = ceil(log_4 72) = 4; with r = 8 and Strassen
  // (a=4, b=7): floor(3 * 4^4 * 7^4 / (49 * 36)) * 1.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(3.0 * 256 * 2401 / (49.0 * 36.0));
  EXPECT_EQ(theorem1_io_lower_bound(4, 7, 8, 1), expected);
  // Vacuous when k > r-2.
  EXPECT_EQ(theorem1_io_lower_bound(4, 7, 5, 1), 0u);
  // Monotone in r.
  EXPECT_GT(theorem1_io_lower_bound(4, 7, 9, 1),
            theorem1_io_lower_bound(4, 7, 8, 1));
}

TEST(FormulasTest, Section5Form) {
  // k = ceil(log_4 132) = 4, r = 6: floor(4^4 * 7^2 / 66) * 1 = 190.
  EXPECT_EQ(section5_io_lower_bound(6, 1), 190u);
  EXPECT_EQ(section5_io_lower_bound(3, 1), 0u);  // k > r
}

TEST(FormulasTest, AsymptoticFormsScaleAsExpected) {
  const double w0 = omega0(4, 7);
  // Doubling n multiplies the bound by 2^w0.
  EXPECT_NEAR(asymptotic_io(128, 64, w0) / asymptotic_io(64, 64, w0),
              std::pow(2.0, w0), 1e-9);
  // Quadrupling M multiplies it by 4^{1 - w0/2}.
  EXPECT_NEAR(asymptotic_io(128, 256, w0) / asymptotic_io(128, 64, w0),
              std::pow(4.0, 1.0 - w0 / 2.0), 1e-9);
  // Hong-Kung grows with slope 3 in n, strictly steeper than the fast
  // bound's slope omega0.
  EXPECT_NEAR(hong_kung_classical(512, 64) / hong_kung_classical(256, 64),
              8.0, 0.01);
  EXPECT_LT(std::pow(2.0, w0), 8.0);
  EXPECT_NEAR(parallel_bandwidth_lb(128, 64, 8, w0),
              asymptotic_io(128, 64, w0) / 8, 1e-9);
  EXPECT_NEAR(memory_independent_lb(128, 64, 2.0), 128.0 * 128.0 / 64.0,
              1e-9);
}

TEST(FormulasTest, DfsIoModelScalesLikeTheorem1) {
  // Strassen: e_u = e_v = 12, e_w = 12. Above the cutoff the model
  // grows by ~b per level (same exponent as the lower bound) and
  // shrinks with M like M^{1 - w0/2}.
  const auto io = [&](int r, std::uint64_t m) {
    return dfs_io_model(4, 7, 12, 12, 12, r, m);
  };
  EXPECT_NEAR(io(9, 64) / io(8, 64), 7.0, 0.15);
  const double w0 = omega0(4, 7);
  // Quadrupling M (one more in-cache level) scales by ~4^{1-w0/2}.
  EXPECT_NEAR(io(9, 1024) / io(9, 256),
              std::pow(4.0, 1.0 - w0 / 2.0), 0.12);
  // Fully in cache: compulsory traffic only.
  EXPECT_DOUBLE_EQ(io(2, 1u << 20), 3.0 * 16);
}

TEST(FormulasTest, DfsIoModelBracketsMeasuredIo) {
  // The streaming model is an upper-style estimate: measured Belady
  // I/O of the DFS schedule lands between the asymptotic lower form
  // and the model.
  const auto alg = bilinear::strassen();
  const cdag::Cdag graph(alg, 6, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  for (const std::uint64_t m : {64ull, 256ull}) {
    const auto res = pebble::simulate(
        graph.graph(), order, {.cache_size = m},
        [&](VertexId v) { return graph.layout().is_output(v); });
    const double model = dfs_io_model(4, 7, 12, 12, 12, 6, m);
    const double asym = asymptotic_io(64.0, static_cast<double>(m),
                                      omega0(4, 7));
    EXPECT_LT(static_cast<double>(res.io()), model);
    EXPECT_GT(static_cast<double>(res.io()), asym);
  }
}

TEST(DisjointFamilyTest, FamiliesArePairwiseDisjointAndLargeEnough) {
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const Cdag cdag(bilinear::by_name(name), 3, {.with_coefficients = false});
    const DisjointFamily family = build_disjoint_family(cdag, 1);
    EXPECT_TRUE(family.meets_lemma1()) << name;
    // Verify pairwise input-disjointness directly on a sample.
    const std::size_t n = std::min<std::size_t>(family.prefixes.size(), 12);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        EXPECT_TRUE(input_disjoint(
            SubComputation(cdag, 1, family.prefixes[i]),
            SubComputation(cdag, 1, family.prefixes[j])))
            << name;
      }
    }
  }
}

TEST(DisjointFamilyTest, StrassenKeepsEverySubcomputation) {
  // Strassen's copy roots are injective in the recursion path, so the
  // greedy family keeps all b^{r-k} subcomputations.
  const Cdag cdag(bilinear::strassen(), 4, {.with_coefficients = false});
  const DisjointFamily family = build_disjoint_family(cdag, 2);
  EXPECT_EQ(family.prefixes.size(), 49u);
}

TEST(DisjointFamilyTest, RejectsClassicalLikeBases) {
  // classical violates the Lemma 1 precondition - the builder aborts,
  // which we cannot catch; instead confirm the precondition flag.
  EXPECT_FALSE(bilinear::lemma1_precondition(bilinear::classical(2)));
}

class CertifierTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CertifierTest, Equation2HoldsOnEverySchedule) {
  const auto alg = bilinear::by_name(GetParam());
  // Keep the instance small: k must satisfy a^k >= 72M and k <= r-2,
  // so n0=2 bases use (M=2, k=4, r=6) and n0=3 bases (M=1, k=2, r=4).
  const std::uint64_t m = alg.n0() == 2 ? 2 : 1;
  const int r = alg.n0() == 2 ? 6 : 4;
  const Cdag cdag(alg, r, {.with_coefficients = false});
  for (const auto& order :
       {schedule::dfs_schedule(cdag), schedule::bfs_schedule(cdag),
        schedule::random_topological_schedule(cdag.graph(), 11)}) {
    const CertifyResult result =
        certify_segments(cdag, order, {.cache_size = m});
    EXPECT_GE(result.family_size, result.family_guaranteed);
    ASSERT_GE(result.complete_segments(), 1u) << GetParam();
    EXPECT_TRUE(result.eq_holds(12)) << GetParam();       // Equation (2)
    EXPECT_TRUE(result.boundary_ge(3 * m)) << GetParam(); // delta' >= 3M
  }
}

INSTANTIATE_TEST_SUITE_P(FastAlgorithms, CertifierTest,
                         ::testing::Values("strassen", "winograd",
                                           "laderman"),
                         [](const auto& info) { return info.param; });

TEST(CertifierTest, Section5DecodeOnlyCertifierHolds) {
  const auto alg = bilinear::strassen();
  const std::uint64_t m = 2;
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  for (const auto& order :
       {schedule::dfs_schedule(cdag), schedule::bfs_schedule(cdag)}) {
    const CertifyResult result =
        certify_segments_decode_only(cdag, order, {.cache_size = m});
    ASSERT_GE(result.complete_segments(), 1u);
    EXPECT_TRUE(result.eq_holds(22));        // Equation (1)
    EXPECT_TRUE(result.boundary_ge(3 * m));  // 66M/22 = 3M
  }
}

TEST(CertifierTest, CertifiedBoundNeverExceedsSimulatedIo) {
  // The content of Theorem 1: every legal execution pays at least M
  // I/Os per complete segment.
  const auto alg = bilinear::strassen();
  const std::uint64_t m = 8;
  const Cdag cdag(alg, 7, {.with_coefficients = false});
  const auto is_out = [&](VertexId v) { return cdag.layout().is_output(v); };
  for (const std::uint64_t seed : {1ull, 2ull}) {
    const auto order =
        schedule::random_topological_schedule(cdag.graph(), seed);
    const CertifyResult cert = certify_segments(cdag, order, {.cache_size = m});
    const auto sim = pebble::simulate(cdag.graph(), order, {.cache_size = m},
                                      is_out);
    EXPECT_LE(cert.io_lower_bound(m), sim.io());
  }
}

TEST(CertifierTest, PerSegmentIoRespectsBoundaryMinus2M) {
  // The vertex-level boundary |R(S)|+|W(S)| counts values that must
  // move, minus at most M cached on entry and at most M retained in
  // cache afterwards: per-segment attributed I/O >= boundary - 2M for
  // every segment, on the real simulated execution.
  const auto alg = bilinear::strassen();
  const std::uint64_t m = 8;
  const Cdag cdag(alg, 7, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(cdag);
  const CertifyResult cert = certify_segments(cdag, order, {.cache_size = m});
  ASSERT_GE(cert.complete_segments(), 2u);
  pebble::PebbleOptions opts{.cache_size = m};
  opts.segment_ends =
      cert.segment_ends(static_cast<std::uint32_t>(order.size()));
  const auto sim = pebble::simulate(cdag.graph(), order, opts, [&](VertexId v) {
    return cdag.layout().is_output(v);
  });
  std::size_t nontrivial = 0;
  for (std::size_t i = 0; i < cert.segments.size(); ++i) {
    const std::uint64_t attributed =
        sim.segment_reads[i] + sim.segment_writes[i];
    const std::uint64_t bv = cert.segments[i].boundary_vertices;
    const std::uint64_t required = bv > 2 * m ? bv - 2 * m : 0;
    EXPECT_GE(attributed, required) << "segment " << i;
    nontrivial += required > 0 ? 1 : 0;
  }
  EXPECT_GT(nontrivial, 0u);  // the check must have teeth
}

TEST(CertifierTest, CountedVerticesMatchFamilyRanks) {
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const CertifyResult result = certify_segments(
      cdag, schedule::dfs_schedule(cdag), {.cache_size = 2});
  // 3 a^k counted vertices per family member.
  EXPECT_EQ(result.counted_total,
            result.family_size *
                3 * cdag.layout().pow_a()(static_cast<int>(result.k)));
}

TEST(CertifierTest, Equation2HasRealisticSlack) {
  // The certifier is not vacuous: segment boundaries sit within a small
  // constant of the counted quota (not orders of magnitude above the
  // 1/12 the paper proves), so Equation (2) is doing real work.
  const auto alg = bilinear::strassen();
  const Cdag cdag(alg, 6, {.with_coefficients = false});
  const CertifyResult result = certify_segments(
      cdag, schedule::bfs_schedule(cdag), {.cache_size = 2});
  ASSERT_GE(result.complete_segments(), 1u);
  double min_ratio = 1e18;
  for (const auto& seg : result.segments) {
    if (!seg.complete) continue;
    min_ratio = std::min(min_ratio, static_cast<double>(seg.boundary) /
                                        static_cast<double>(seg.s_bar));
  }
  EXPECT_GE(min_ratio, 1.0 / 12.0);
  EXPECT_LE(min_ratio, 8.0);
}

}  // namespace

namespace hong_kung_tests {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::bounds;  // NOLINT
using cdag::VertexId;

TEST(HongKungTest, PartitionLemmaHoldsOnEverySchedule) {
  // [10]'s partition lemma, on real executions of the fast CDAG and
  // the flat classical one: every <=M-I/O segment has dominator and
  // minimum set of size <= M + io(S) (the atomic-step 2M bound).
  const auto alg = bilinear::strassen();
  const Cdag graph(alg, 5, {.with_coefficients = false});
  const auto is_out = [&](VertexId v) { return graph.layout().is_output(v); };
  for (const std::uint64_t m : {8ull, 32ull, 128ull}) {
    for (const auto& order :
         {schedule::dfs_schedule(graph), schedule::bfs_schedule(graph),
          schedule::random_topological_schedule(graph.graph(), 13)}) {
      pebble::PebbleOptions opts{.cache_size = m};
      opts.record_step_io = true;
      const auto sim = pebble::simulate(graph.graph(), order, opts, is_out);
      const auto hk =
          hong_kung_partition(graph.graph(), order, sim.step_io, m);
      EXPECT_TRUE(hk.lemma_holds()) << "M=" << m;
      // Segmentation is exhaustive and consistent with the totals.
      std::uint64_t total = 0;
      for (const auto& seg : hk.segments) total += seg.io;
      EXPECT_EQ(total, sim.io());
      EXPECT_EQ(hk.segments.back().end_step, order.size());
    }
  }
}

TEST(HongKungTest, StepIoSumsToTotals) {
  const auto alg = bilinear::winograd();
  const Cdag graph(alg, 4, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  pebble::PebbleOptions opts{.cache_size = 64};
  opts.record_step_io = true;
  const auto sim = pebble::simulate(
      graph.graph(), order, opts,
      [&](VertexId v) { return graph.layout().is_output(v); });
  std::uint64_t total = 0;
  for (const std::uint32_t io : sim.step_io) total += io;
  EXPECT_EQ(total, sim.io());
}

TEST(HongKungTest, DominatorsAreTightAtSmallCaches) {
  // With quota-M segments the classical bound is ~2M; observed maxima
  // should land in (M, 2M + max-step-io].
  const auto alg = bilinear::strassen();
  const Cdag graph(alg, 5, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  const std::uint64_t m = 16;
  pebble::PebbleOptions opts{.cache_size = m};
  opts.record_step_io = true;
  const auto sim = pebble::simulate(
      graph.graph(), order, opts,
      [&](VertexId v) { return graph.layout().is_output(v); });
  const auto hk = hong_kung_partition(graph.graph(), order, sim.step_io, m);
  EXPECT_GT(hk.max_dominator(), m / 2);  // not vacuous
  EXPECT_LE(hk.max_dominator(), 3 * m);
}

}  // namespace hong_kung_tests

namespace expansion_tests {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::bounds;  // NOLINT
using cdag::Graph;
using cdag::VertexId;

TEST(ExpansionTest, CompleteBipartiteHasLambda2Half) {
  // K_{m,m}: the non-lazy walk has eigenvalues {1, 0, ..., 0, -1}, so
  // the lazy walk's lambda2 is exactly 1/2.
  const int m = 6;
  std::vector<std::uint32_t> off = {0};
  std::vector<VertexId> adj;
  for (int left = 0; left < m; ++left) off.push_back(0);  // sources
  for (int right = 0; right < m; ++right) {
    for (int left = 0; left < m; ++left) {
      adj.push_back(static_cast<VertexId>(left));
    }
    off.push_back(static_cast<std::uint32_t>(adj.size()));
  }
  const Graph g(std::move(off), std::move(adj));
  std::vector<VertexId> all(static_cast<std::size_t>(2 * m));
  std::iota(all.begin(), all.end(), 0);
  const auto est = estimate_expansion(g, all, 3, 500);
  EXPECT_EQ(est.components, 1);
  EXPECT_NEAR(est.lambda2, 0.5, 0.01);
  EXPECT_NEAR(est.cheeger_lower(), 0.25, 0.01);
}

TEST(ExpansionTest, DisconnectedGraphsHaveLambda2One) {
  // Two disjoint edges.
  std::vector<std::uint32_t> off = {0, 0, 0, 1, 2};
  std::vector<VertexId> adj = {0, 1};
  const Graph g(std::move(off), std::move(adj));
  const std::vector<VertexId> all = {0, 1, 2, 3};
  const auto est = estimate_expansion(g, all, 1, 10);
  EXPECT_EQ(est.components, 2);
  EXPECT_DOUBLE_EQ(est.lambda2, 1.0);
  EXPECT_DOUBLE_EQ(est.cheeger_lower(), 0.0);
}

TEST(ExpansionTest, DecodingGraphConnectivityMatchesAnalysis) {
  // Strassen's decoder is connected with positive spectral gap; the
  // classical-tensor decoders are disconnected with gap zero — the
  // dichotomy that separates [6]'s reach from this paper's.
  const auto decode_vertices = [](const cdag::Cdag& graph) {
    const auto& layout = graph.layout();
    std::vector<VertexId> out;
    for (int t = 0; t <= layout.r(); ++t) {
      const std::uint64_t nq = layout.pow_b()(layout.r() - t);
      const std::uint64_t np = layout.pow_a()(t);
      for (std::uint64_t q = 0; q < nq; ++q) {
        for (std::uint64_t p = 0; p < np; ++p) out.push_back(layout.dec(t, q, p));
      }
    }
    return out;
  };
  const cdag::Cdag strassen_g(bilinear::strassen(), 2,
                              {.with_coefficients = false});
  const auto s = estimate_expansion(strassen_g.graph(),
                                    decode_vertices(strassen_g), 2, 300);
  EXPECT_EQ(s.components, 1);
  EXPECT_LT(s.lambda2, 0.99);
  EXPECT_GT(s.cheeger_lower(), 0.0);
  const cdag::Cdag mixed(bilinear::classical2_x_strassen(), 1,
                         {.with_coefficients = false});
  const auto m = estimate_expansion(mixed.graph(), decode_vertices(mixed), 2,
                                    50);
  EXPECT_GT(m.components, 1);
  EXPECT_DOUBLE_EQ(m.lambda2, 1.0);
}

}  // namespace expansion_tests

namespace more_bounds_tests {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::bounds;  // NOLINT
using cdag::Graph;
using cdag::VertexId;

TEST(ExpansionTest, CycleGraphMatchesClosedForm) {
  // C_n: the non-lazy walk has lambda2 = cos(2*pi/n), so the lazy walk
  // gives (1 + cos(2*pi/n)) / 2 exactly.
  const int n = 8;
  std::vector<std::uint32_t> off = {0};
  std::vector<VertexId> adj;
  for (int v = 0; v < n; ++v) {
    // Edge from each vertex to its successor (undirected in the
    // estimator), entered as the in-edge of v+1.
    adj.push_back(static_cast<VertexId>((v + n - 1) % n));
    off.push_back(static_cast<std::uint32_t>(adj.size()));
  }
  const Graph g(std::move(off), std::move(adj));
  std::vector<VertexId> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  const auto est = estimate_expansion(g, all, 5, 2000);
  EXPECT_EQ(est.components, 1);
  EXPECT_NEAR(est.lambda2, (1.0 + std::cos(2.0 * M_PI / n)) / 2.0, 5e-3);
}

TEST(FormulasTest, DfsIoModelFitFactorIsMonotone) {
  // A stricter fit requirement (bigger factor) can only raise the cost.
  const double loose = dfs_io_model(4, 7, 12, 12, 12, 8, 256, 3.0);
  const double tight = dfs_io_model(4, 7, 12, 12, 12, 8, 256, 12.0);
  EXPECT_LE(loose, tight);
}

TEST(CertifierTest, SegmentEndsCoverTheWholeSchedule) {
  const auto alg = bilinear::strassen();
  const Cdag graph(alg, 6, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  const auto cert = certify_segments(graph, order, {.cache_size = 2});
  const auto ends =
      cert.segment_ends(static_cast<std::uint32_t>(order.size()));
  ASSERT_FALSE(ends.empty());
  EXPECT_TRUE(std::is_sorted(ends.begin(), ends.end()));
  EXPECT_EQ(ends.back(), order.size());
}

}  // namespace more_bounds_tests
