// The implicit CDAG view (cdag/implicit.hpp) must be observationally
// identical to the explicit CSR builder on every query: the audit
// layer, the memoized engine, and the segment certifier all accept a
// cdag::CdagView, so any divergence here silently corrupts every
// consumer downstream.
//
// Three tiers:
//   * exhaustive bit-identity against the explicit graph for every
//     catalog algorithm at k <= 4 (capped by a vertex budget — the
//     widest tensor bases exceed memory long before k = 4, exactly the
//     regime the implicit view exists for);
//   * a property sweep at k = 7 (PR_PROPERTY_SEED / PR_PROPERTY_ITERS,
//     same replay contract as test_properties) sampling random
//     vertices of the 5.7M-vertex Strassen graph;
//   * engine-level identity: the constant-memory verifiers reproduce
//     the array-backed memoized certificates field by field, including
//     argmax tie-breaks, for every k where both run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/cdag/view.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using cdag::VertexId;

/// Explicit graphs larger than this are skipped (the k <= 4 sweep
/// covers every catalog algorithm only up to what fits).
constexpr std::uint64_t kVertexBudget = 2000000;

std::uint64_t property_seed() {
  const char* env = std::getenv("PR_PROPERTY_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
}

int property_iters() {
  const char* env = std::getenv("PR_PROPERTY_ITERS");
  const int n = env != nullptr ? std::atoi(env) : 3;
  return n > 0 ? n : 3;
}

/// Every virtual query of `view` against the CSR graph for one vertex.
void expect_vertex_identical(const cdag::ImplicitCdag& view,
                             const cdag::ExplicitView& ref, VertexId v) {
  std::vector<VertexId> scratch_a;
  std::vector<VertexId> scratch_b;
  ASSERT_EQ(view.in_degree(v), ref.in_degree(v)) << "vertex " << v;
  ASSERT_EQ(view.out_degree(v), ref.out_degree(v)) << "vertex " << v;
  const auto in_view = view.in(v, scratch_a);
  const auto in_ref = ref.in(v, scratch_b);
  ASSERT_TRUE(std::equal(in_view.begin(), in_view.end(), in_ref.begin(),
                         in_ref.end()))
      << "in-list of vertex " << v;
  const auto out_view = view.out(v, scratch_a);
  const auto out_ref = ref.out(v, scratch_b);
  ASSERT_TRUE(std::equal(out_view.begin(), out_view.end(), out_ref.begin(),
                         out_ref.end()))
      << "out-list of vertex " << v;
  ASSERT_EQ(view.copy_parent(v), ref.copy_parent(v)) << "vertex " << v;
  ASSERT_EQ(view.meta_root(v), ref.meta_root(v)) << "vertex " << v;
  ASSERT_EQ(view.meta_size(v), ref.meta_size(v)) << "vertex " << v;
  ASSERT_EQ(view.is_duplicated(v), ref.is_duplicated(v)) << "vertex " << v;
  for (const VertexId u : out_view) {
    ASSERT_TRUE(view.has_edge(v, u)) << v << " -> " << u;
  }
}

class CatalogViewTest : public ::testing::TestWithParam<std::string> {};

// Exhaustive k <= 4 sweep: the audit comparator checks every vertex's
// degrees, neighbor lists (with edge order), copy parent, and meta
// table against the CSR reference, and the direct probes below cover
// the interface the comparator does not exercise (has_edge, layer
// refs, is_duplicated).
TEST_P(CatalogViewTest, BitIdenticalToExplicitUpToK4) {
  const auto alg = bilinear::by_name(GetParam());
  for (int k = 1; k <= 4; ++k) {
    const cdag::ImplicitCdag view(alg, k);
    if (view.num_vertices() > kVertexBudget) break;
    SCOPED_TRACE(GetParam() + " k=" + std::to_string(k));
    const cdag::Cdag graph(alg, k, {.with_coefficients = false});
    const cdag::ExplicitView ref(graph);
    ASSERT_EQ(view.num_vertices(), ref.num_vertices());
    ASSERT_EQ(view.num_edges(), ref.num_edges());

    const audit::AuditReport report =
        audit::audit_view_consistency(view, graph);
    EXPECT_TRUE(report.ok()) << report.to_text();

    // Layer/rank structure: the view's layout is the same object kind
    // the builder used, so VertexRef round-trips must agree.
    const cdag::Layout& layout = view.layout();
    ASSERT_EQ(layout.num_vertices(), graph.layout().num_vertices());
    const std::uint64_t n = view.num_vertices();
    const std::uint64_t stride = n > 4096 ? n / 4096 : 1;
    for (std::uint64_t v = 0; v < n; v += stride) {
      const auto id = static_cast<VertexId>(v);
      const cdag::VertexRef mine = layout.ref(id);
      const cdag::VertexRef theirs = graph.layout().ref(id);
      ASSERT_EQ(mine.layer, theirs.layer);
      ASSERT_EQ(mine.rank, theirs.rank);
      ASSERT_EQ(mine.q, theirs.q);
      ASSERT_EQ(mine.p, theirs.p);
      expect_vertex_identical(view, ref, id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CatalogViewTest,
                         ::testing::ValuesIn(bilinear::catalog_names()),
                         [](const auto& info) { return info.param; });

// Property sweep at k = 7: the explicit Strassen graph still fits
// (5.7M vertices), so random vertices can be checked query-for-query
// in the regime where the exhaustive sweep is too slow. Failures
// replay with PR_PROPERTY_SEED=<seed> PR_PROPERTY_ITERS=1.
TEST(ImplicitViewProperty, RandomVerticesMatchExplicitAtK7) {
  const auto alg = bilinear::by_name("strassen");
  const int k = 7;
  const cdag::ImplicitCdag view(alg, k);
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::ExplicitView ref(graph);
  ASSERT_EQ(view.num_edges(), ref.num_edges());
  const std::uint64_t base_seed = property_seed();
  const int iters = property_iters();
  const std::uint64_t n = view.num_vertices();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("PR_PROPERTY_SEED=" + std::to_string(seed));
    support::Xoshiro256 rng(seed);
    for (int sample = 0; sample < 1000; ++sample) {
      const auto v = static_cast<VertexId>(rng.below(n));
      expect_vertex_identical(view, ref, v);
    }
  }
}

/// Field-by-field comparison of both verifier families on one (alg, k).
void expect_engines_identical(const bilinear::BilinearAlgorithm& alg, int k) {
  const routing::ChainRouter router(alg);
  const bool decode = bilinear::decoding_components(alg) == 1;
  std::optional<routing::DecodeRouter> decoder;
  std::optional<routing::MemoRoutingEngine> engine;
  if (decode) {
    decoder.emplace(alg);
    engine.emplace(router, *decoder);
  } else {
    engine.emplace(router);
  }
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, k, 0);
  const cdag::ImplicitCdag view(alg, k);

  const routing::HitStats l3_e = engine->verify_chain_routing(sub);
  const routing::HitStats l3_i = engine->verify_chain_routing(view, k, 0);
  EXPECT_EQ(l3_i.num_paths, l3_e.num_paths);
  EXPECT_EQ(l3_i.max_hits, l3_e.max_hits);
  EXPECT_EQ(l3_i.bound, l3_e.bound);
  EXPECT_EQ(l3_i.argmax, l3_e.argmax);

  EXPECT_EQ(engine->verify_chain_multiplicities(view, k, 0),
            engine->verify_chain_multiplicities(sub));

  const routing::FullRoutingStats t2_e = engine->verify_full_routing(sub);
  const routing::FullRoutingStats t2_i =
      engine->verify_full_routing(view, k, 0);
  EXPECT_EQ(t2_i.num_paths, t2_e.num_paths);
  EXPECT_EQ(t2_i.max_vertex_hits, t2_e.max_vertex_hits);
  EXPECT_EQ(t2_i.argmax_vertex, t2_e.argmax_vertex);
  EXPECT_EQ(t2_i.max_meta_hits, t2_e.max_meta_hits);
  EXPECT_EQ(t2_i.bound, t2_e.bound);
  EXPECT_EQ(t2_i.root_hit_property, t2_e.root_hit_property);

  if (decode) {
    const routing::HitStats d_e = engine->verify_decode_routing(sub);
    const routing::HitStats d_i = engine->verify_decode_routing(view, k, 0);
    EXPECT_EQ(d_i.num_paths, d_e.num_paths);
    EXPECT_EQ(d_i.max_hits, d_e.max_hits);
    EXPECT_EQ(d_i.bound, d_e.bound);
    EXPECT_EQ(d_i.argmax, d_e.argmax);
  }
}

TEST(ImplicitEngine, StatsBitIdenticalToArrayBackedEngine) {
  for (int k = 1; k <= 6; ++k) {
    SCOPED_TRACE("strassen k=" + std::to_string(k));
    expect_engines_identical(bilinear::by_name("strassen"), k);
  }
  for (int k = 1; k <= 3; ++k) {
    SCOPED_TRACE("winograd k=" + std::to_string(k));
    expect_engines_identical(bilinear::by_name("winograd"), k);
    SCOPED_TRACE("laderman k=" + std::to_string(k));
    expect_engines_identical(bilinear::by_name("laderman"), k);
    SCOPED_TRACE("classical2_x_strassen k=" + std::to_string(k));
    expect_engines_identical(bilinear::by_name("classical2_x_strassen"), k);
  }
}

// The implicit engine keeps working far past the explicit budget; pin
// the headline k = 10 run (Strassen, n = 1024) to its Lemma-3 /
// Theorem-2 verdicts so a regression cannot hide behind "too big to
// test".
TEST(ImplicitEngine, StrassenK10CertificatesHold) {
  const auto alg = bilinear::by_name("strassen");
  const routing::ChainRouter router(alg);
  const routing::DecodeRouter decoder(alg);
  const routing::MemoRoutingEngine engine(router, decoder);
  const int k = 10;
  const cdag::ImplicitCdag view(alg, k);
  EXPECT_EQ(view.num_vertices(), 1973132439u);
  const routing::HitStats l3 = engine.verify_chain_routing(view, k, 0);
  EXPECT_EQ(l3.num_paths, 2147483648ull);  // 2 * a^k * n0^k = 2 * 4^10 * 2^10
  EXPECT_EQ(l3.max_hits, 2048u);           // exactly 2 * n0^k
  EXPECT_TRUE(l3.ok());
  EXPECT_TRUE(engine.verify_chain_multiplicities(view, k, 0));
  const routing::FullRoutingStats t2 = engine.verify_full_routing(view, k, 0);
  EXPECT_TRUE(t2.ok());
  EXPECT_TRUE(t2.root_hit_property);
  const routing::HitStats d = engine.verify_decode_routing(view, k, 0);
  EXPECT_EQ(d.num_paths, 296196766695424ull);  // b^k * a^k = 7^10 * 4^10
  EXPECT_TRUE(d.ok());
}

}  // namespace
