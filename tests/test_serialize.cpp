#include <gtest/gtest.h>

#include <sstream>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/serialize.hpp"
#include "pathrouting/bilinear/transform.hpp"

namespace {

using namespace pathrouting::bilinear;  // NOLINT
using pathrouting::support::Rational;

class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, TextRoundTripPreservesTables) {
  const BilinearAlgorithm alg = by_name(GetParam());
  std::stringstream buffer;
  to_text(alg, buffer);
  const ParseResult parsed = from_text(buffer);
  ASSERT_TRUE(parsed.algorithm.has_value()) << parsed.error;
  const BilinearAlgorithm& back = *parsed.algorithm;
  EXPECT_EQ(back.name(), alg.name());
  EXPECT_EQ(back.n0(), alg.n0());
  EXPECT_EQ(back.b(), alg.b());
  for (int q = 0; q < alg.b(); ++q) {
    for (int e = 0; e < alg.a(); ++e) {
      ASSERT_EQ(back.u(q, e), alg.u(q, e));
      ASSERT_EQ(back.v(q, e), alg.v(q, e));
    }
  }
  for (int d = 0; d < alg.a(); ++d) {
    for (int q = 0; q < alg.b(); ++q) {
      ASSERT_EQ(back.w(d, q), alg.w(d, q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, RoundTripTest,
                         ::testing::ValuesIn(catalog_names()),
                         [](const auto& info) { return info.param; });

TEST(SerializeTest, RationalCoefficientsSurvive) {
  // Transformed algorithms have non-integer coefficients.
  const auto alg = random_transform(strassen(), 99);
  std::stringstream buffer;
  to_text(alg, buffer);
  const ParseResult parsed = from_text(buffer);
  ASSERT_TRUE(parsed.algorithm.has_value()) << parsed.error;
  EXPECT_TRUE(parsed.algorithm->verify_brent());
}

TEST(SerializeTest, CommentsAndWhitespaceAreIgnored) {
  std::stringstream in(R"(
pathrouting-bilinear-v1
# a 1-product "algorithm" on 2x2 blocks (not a matmul - skip verify)
name tiny
n0 2
products 1
U
1 0 0 0   # row for the single product
V
0 1 0 0
W
1
1
1
1
)");
  const ParseResult parsed = from_text(in, /*verify=*/false);
  ASSERT_TRUE(parsed.algorithm.has_value()) << parsed.error;
  EXPECT_EQ(parsed.algorithm->name(), "tiny");
  EXPECT_EQ(parsed.algorithm->b(), 1);
  EXPECT_EQ(parsed.algorithm->u(0, 0), Rational(1));
}

TEST(SerializeTest, RejectsMalformedInput) {
  const auto expect_error = [](const std::string& text) {
    std::stringstream in(text);
    const ParseResult parsed = from_text(in, /*verify=*/false);
    EXPECT_FALSE(parsed.algorithm.has_value());
    EXPECT_FALSE(parsed.error.empty());
  };
  expect_error("");                                      // no header
  expect_error("bogus-header name x");                   // wrong header
  expect_error("pathrouting-bilinear-v1\nU\n1");         // tables before n0
  expect_error("pathrouting-bilinear-v1\nn0 2\nproducts 1\nU\n1 0 0");  // short
  expect_error(
      "pathrouting-bilinear-v1\nn0 2\nproducts 1\nU\n1 0 0 zebra");  // token
  expect_error(
      "pathrouting-bilinear-v1\nn0 2\nproducts 1\nU\n1 0 0 1/0");  // div 0
  expect_error("pathrouting-bilinear-v1\nn0 2\nproducts 1\nmystery 3");
  expect_error("pathrouting-bilinear-v1\nn0 2\nproducts 1\nU\n1 0 0 0");  // no V/W
}

TEST(SerializeTest, VerifyRejectsWrongAlgorithms) {
  // Correct shape, wrong maths: verify=true must reject.
  std::stringstream in(R"(
pathrouting-bilinear-v1
name liar
n0 2
products 8
U
1 0 0 0
1 0 0 0
0 1 0 0
0 1 0 0
0 0 1 0
0 0 1 0
0 0 0 1
0 0 0 1
V
1 0 0 0
0 1 0 0
0 0 1 0
0 0 0 1
1 0 0 0
0 1 0 0
0 0 1 0
0 0 0 1
W
0 1 0 1 0 0 0 0
1 0 1 0 0 0 0 0
0 0 0 0 1 0 1 0
0 0 0 0 0 1 0 1
)");
  const ParseResult parsed = from_text(in, /*verify=*/true);
  EXPECT_FALSE(parsed.algorithm.has_value());
  EXPECT_NE(parsed.error.find("Brent"), std::string::npos);
}

}  // namespace
