// The determinism contract of the parallel substrate: every count,
// graph, and certificate this library produces must be bit-identical
// at any PR_THREADS value. These tests run the parallel-touching
// layers (CDAG construction, routing verification, segment
// certification) at thread counts 1, 2, and 7 and require exact
// equality, plus unit tests of the primitives themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/parallel.hpp"

namespace {

using namespace pathrouting;  // NOLINT
namespace parallel = support::parallel;
using cdag::Cdag;
using cdag::SubComputation;
using cdag::VertexId;
using parallel::ThreadOverride;

// Thread counts exercised everywhere: serial, even split, and an odd
// count that does not divide typical ranges.
const int kThreadCounts[] = {1, 2, 7};

TEST(ParallelPrimitivesTest, ForChunksCoversRangeExactlyOnce) {
  for (const int threads : kThreadCounts) {
    ThreadOverride guard(threads);
    for (const std::uint64_t grain : {1ull, 3ull, 16ull, 1000ull}) {
      std::vector<std::atomic<int>> visits(97);
      for (auto& v : visits) v.store(0);
      parallel::parallel_for(0, 97, grain,
                             [&](std::uint64_t lo, std::uint64_t hi) {
                               for (std::uint64_t i = lo; i < hi; ++i) {
                                 visits[i].fetch_add(1);
                               }
                             });
      for (std::size_t i = 0; i < visits.size(); ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads "
                                       << threads << " grain " << grain;
      }
    }
  }
}

TEST(ParallelPrimitivesTest, ForChunksBoundariesIndependentOfThreads) {
  // Chunk boundaries must depend only on (begin, end, grain). Record
  // them into disjoint slots and compare across thread counts.
  auto boundaries = [](int threads) {
    ThreadOverride guard(threads);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks(
        (100 - 5 + 6) / 7 + 1);
    parallel::parallel_for(5, 100, 7, [&](std::uint64_t lo, std::uint64_t hi) {
      chunks[(lo - 5) / 7] = {lo, hi};
    });
    return chunks;
  };
  const auto serial = boundaries(1);
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(boundaries(threads), serial) << threads << " threads";
  }
}

TEST(ParallelPrimitivesTest, ReduceFoldsInChunkOrder) {
  // A deliberately non-commutative merge (string concatenation): the
  // per-chunk ordered fold must make the result thread-count
  // independent anyway.
  auto concat = [](int threads) {
    ThreadOverride guard(threads);
    return parallel::parallel_reduce<std::string>(
        0, 50, 4, std::string(),
        [](std::uint64_t lo, std::uint64_t hi) {
          return "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
        },
        [](std::string& acc, const std::string& chunk) { acc += chunk; });
  };
  const std::string serial = concat(1);
  EXPECT_EQ(serial.substr(0, 10), "[0,4)[4,8)");
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(concat(threads), serial) << threads << " threads";
  }
}

TEST(ParallelPrimitivesTest, ShardedAccumulateSumsExactly) {
  for (const int threads : kThreadCounts) {
    ThreadOverride guard(threads);
    const std::vector<std::uint64_t> hist =
        parallel::sharded_accumulate<std::vector<std::uint64_t>>(
            0, 1000, 9, [] { return std::vector<std::uint64_t>(10, 0); },
            [](std::vector<std::uint64_t>& acc, std::uint64_t lo,
               std::uint64_t hi) {
              for (std::uint64_t i = lo; i < hi; ++i) ++acc[i % 10];
            },
            [](std::vector<std::uint64_t>& acc,
               const std::vector<std::uint64_t>& shard) {
              for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += shard[i];
            });
    EXPECT_EQ(hist, std::vector<std::uint64_t>(10, 100)) << threads;
  }
}

TEST(ParallelPrimitivesTest, NestedCallsRunInline) {
  ThreadOverride guard(4);
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v.store(0);
  parallel::parallel_for(0, 8, 1, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      // Nested region: must run inline on this worker, not deadlock or
      // recurse into the pool.
      parallel::parallel_for(0, 8, 1,
                             [&](std::uint64_t jlo, std::uint64_t jhi) {
                               for (std::uint64_t j = jlo; j < jhi; ++j) {
                                 visits[i * 8 + j].fetch_add(1);
                               }
                             });
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelPrimitivesTest, ThreadOverrideScopesAndRestores) {
  const int env = parallel::num_threads();
  {
    ThreadOverride guard(3);
    EXPECT_EQ(parallel::num_threads(), 3);
  }
  EXPECT_EQ(parallel::num_threads(), env);
}

// --- Layer determinism ---------------------------------------------------

struct CdagSnapshot {
  std::uint64_t num_edges = 0;
  std::vector<VertexId> in_flat;
  std::vector<support::Rational> coeffs;
  std::vector<VertexId> copy_parent;
  std::vector<VertexId> meta_root;

  bool operator==(const CdagSnapshot&) const = default;
};

CdagSnapshot snapshot(const Cdag& graph) {
  CdagSnapshot snap;
  const cdag::Graph& g = graph.graph();
  snap.num_edges = g.num_edges();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.in(v)) snap.in_flat.push_back(u);
    snap.copy_parent.push_back(graph.copy_parent(v));
    snap.meta_root.push_back(graph.meta_root(v));
  }
  if (graph.has_coefficients()) {
    for (std::uint64_t e = 0; e < g.num_edges(); ++e) {
      snap.coeffs.push_back(graph.in_coeff(e));
    }
  }
  return snap;
}

struct BaseCase {
  const char* name;
  int r;
};
const BaseCase kBases[] = {{"strassen", 3}, {"winograd", 3}, {"laderman", 2}};

TEST(LayerDeterminismTest, CdagConstructionBitIdentical) {
  for (const BaseCase base : kBases) {
    const auto alg = bilinear::by_name(base.name);
    for (const bool group : {false, true}) {
      const cdag::CdagOptions options{.with_coefficients = true,
                                      .group_duplicate_rows = group};
      ThreadOverride serial(1);
      const CdagSnapshot expected = snapshot(Cdag(alg, base.r, options));
      for (const int threads : kThreadCounts) {
        ThreadOverride guard(threads);
        EXPECT_EQ(snapshot(Cdag(alg, base.r, options)), expected)
            << base.name << " r=" << base.r << " group=" << group
            << " threads=" << threads;
      }
    }
  }
}

TEST(LayerDeterminismTest, RoutingCountsBitIdentical) {
  for (const BaseCase base : kBases) {
    const auto alg = bilinear::by_name(base.name);
    const int k = alg.n0() == 2 ? 3 : 2;
    const Cdag graph(alg, k, {.with_coefficients = false});
    const SubComputation sub(graph, k, 0);
    const routing::ChainRouter chain_router(alg);
    const routing::DecodeRouter decode_router(alg);

    ThreadOverride serial(1);
    const auto chains1 = routing::count_chain_hits(chain_router, sub);
    const auto l3_1 = routing::verify_chain_routing(chain_router, sub);
    const bool l4_1 = routing::verify_chain_multiplicities(chain_router, sub);
    const auto t2_1 =
        routing::verify_full_routing_enumerated(chain_router, sub);
    const auto dec1 = routing::verify_decode_routing(decode_router, sub);
    EXPECT_TRUE(l3_1.ok()) << base.name;
    EXPECT_TRUE(l4_1) << base.name;
    EXPECT_TRUE(t2_1.ok()) << base.name;

    for (const int threads : kThreadCounts) {
      ThreadOverride guard(threads);
      const auto chains = routing::count_chain_hits(chain_router, sub);
      EXPECT_EQ(chains.hits, chains1.hits) << base.name << " " << threads;
      EXPECT_EQ(chains.num_chains, chains1.num_chains);
      EXPECT_EQ(chains.max_hits, chains1.max_hits);
      EXPECT_EQ(chains.argmax, chains1.argmax);

      const auto l3 = routing::verify_chain_routing(chain_router, sub);
      EXPECT_EQ(l3.max_hits, l3_1.max_hits);
      EXPECT_EQ(l3.argmax, l3_1.argmax);
      EXPECT_EQ(l3.num_paths, l3_1.num_paths);

      EXPECT_EQ(routing::verify_chain_multiplicities(chain_router, sub),
                l4_1);

      const auto t2 = routing::verify_full_routing_enumerated(chain_router, sub);
      EXPECT_EQ(t2.max_vertex_hits, t2_1.max_vertex_hits);
      EXPECT_EQ(t2.argmax_vertex, t2_1.argmax_vertex);
      EXPECT_EQ(t2.max_meta_hits, t2_1.max_meta_hits);
      EXPECT_EQ(t2.root_hit_property, t2_1.root_hit_property);
      EXPECT_EQ(t2.num_paths, t2_1.num_paths);

      const auto dec = routing::verify_decode_routing(decode_router, sub);
      EXPECT_EQ(dec.max_hits, dec1.max_hits);
      EXPECT_EQ(dec.argmax, dec1.argmax);
      EXPECT_EQ(dec.num_paths, dec1.num_paths);
    }
  }
}

TEST(LayerDeterminismTest, SegmentCertifierBitIdentical) {
  const auto alg = bilinear::strassen();
  // r=6, M=2: the Section-6 default k = ceil(log_4 144) = 4 satisfies
  // the Lemma-1 precondition k <= r-2.
  const Cdag graph(alg, 6, {.with_coefficients = false});
  const std::uint64_t m = 2;
  const std::vector<std::vector<VertexId>> schedules = {
      schedule::dfs_schedule(graph), schedule::bfs_schedule(graph),
      schedule::random_topological_schedule(graph.graph(), 42)};

  ThreadOverride serial(1);
  std::vector<bounds::CertifyResult> expected;
  std::vector<bounds::CertifyResult> expected_decode;
  for (const auto& order : schedules) {
    expected.push_back(
        bounds::certify_segments(graph, order, {.cache_size = m}));
    expected_decode.push_back(
        bounds::certify_segments_decode_only(graph, order, {.cache_size = m}));
  }

  for (const int threads : kThreadCounts) {
    ThreadOverride guard(threads);
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      EXPECT_EQ(
          bounds::certify_segments(graph, schedules[i], {.cache_size = m}),
          expected[i])
          << "schedule " << i << " threads " << threads;
      EXPECT_EQ(bounds::certify_segments_decode_only(graph, schedules[i],
                                                     {.cache_size = m}),
                expected_decode[i])
          << "schedule " << i << " threads " << threads;
    }
    // The batch API must agree slot for slot with the individual runs.
    std::vector<bounds::CertifyJob> jobs;
    for (const auto& order : schedules) {
      jobs.push_back({.schedule = order, .params = {.cache_size = m}});
    }
    for (const auto& order : schedules) {
      jobs.push_back({.schedule = order,
                      .params = {.cache_size = m},
                      .decode_only = true});
    }
    const auto batch = bounds::certify_segments_batch(graph, jobs);
    ASSERT_EQ(batch.size(), 2 * schedules.size());
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      EXPECT_EQ(batch[i], expected[i]) << "batch slot " << i;
      EXPECT_EQ(batch[schedules.size() + i], expected_decode[i])
          << "batch decode slot " << i;
    }
  }
}

}  // namespace
