// Schedule-space search against an exhaustive oracle.
//
// The oracle defines the objective with no search machinery at all:
// enumerate EVERY topological order of the non-input vertices and take
// the Belady-simulated I/O minimum. On DAGs small enough to enumerate
// (<= 10 vertices here), branch-and-bound must reproduce that minimum
// bit for bit across a cache-size sweep — and certify it, since an
// unbounded run either meets the root bound or exhausts the tree.
//
// The suite also pins the soundness half of the pruning bound
// (admissible: never exceeds the true best completion cost of any
// prefix), the mutation direction (an inflated bound MUST make the
// search miss optima somewhere — a bound that can be inflated freely
// without consequence would mean pruning is not load-bearing), the
// local-search invariants (topological validity, monotone acceptance,
// bit-identical results at 1 / 2 / 7 threads), and the
// search.certified-optimal audit rule both ways.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/audit/registry.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/schedule_bound.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/schedule/validate.hpp"
#include "pathrouting/search/local_search.hpp"
#include "pathrouting/search/optimizer.hpp"
#include "pathrouting/search/sweep.hpp"
#include "pathrouting/support/parallel.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using cdag::Graph;
using cdag::VertexId;

std::uint64_t property_seed() {
  const char* env = std::getenv("PR_PROPERTY_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
}

int property_iters() {
  const char* env = std::getenv("PR_PROPERTY_ITERS");
  const int n = env != nullptr ? std::atoi(env) : 5;
  return n > 0 ? n : 5;
}

/// Builds a graph from per-vertex predecessor lists (in-CSR).
Graph make_graph(const std::vector<std::vector<VertexId>>& preds) {
  std::vector<std::uint32_t> off = {0};
  std::vector<VertexId> adj;
  for (const auto& p : preds) {
    adj.insert(adj.end(), p.begin(), p.end());
    off.push_back(static_cast<std::uint32_t>(adj.size()));
  }
  return Graph(std::move(off), std::move(adj));
}

/// Sinks are the outputs — the pebble game must flush them at halt.
std::function<bool(VertexId)> sinks_are_outputs(const Graph& graph) {
  std::vector<std::uint8_t> is_sink(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    is_sink[v] = graph.out(v).empty() && !graph.in(v).empty();
  }
  return [is_sink = std::move(is_sink)](VertexId v) {
    return is_sink[v] != 0;
  };
}

/// The exhaustive oracle: every topological order of the non-input
/// vertices, simulated under Belady; returns the I/O minimum. The
/// recursion mirrors Kahn's algorithm, so it visits each order once.
std::uint64_t oracle_min_io(const Graph& graph, std::uint64_t cache_size,
                            const std::function<bool(VertexId)>& is_output,
                            std::vector<VertexId>* argmin = nullptr,
                            std::vector<VertexId> prefix = {}) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint32_t> missing(n, 0);
  std::uint64_t to_schedule = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (graph.in(v).empty()) continue;
    ++to_schedule;
    for (const VertexId p : graph.in(v)) {
      if (!graph.in(p).empty()) ++missing[v];
    }
  }
  std::vector<std::uint8_t> done(n, 0);
  for (const VertexId v : prefix) {
    done[v] = 1;
    for (const VertexId c : graph.out(v)) --missing[c];
  }
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::vector<VertexId>& order = prefix;
  const std::function<void()> recurse = [&] {
    if (order.size() == to_schedule) {
      const std::uint64_t io =
          pebble::simulate(graph, order, {.cache_size = cache_size},
                           is_output)
              .io();
      if (io < best) {
        best = io;
        if (argmin != nullptr) *argmin = order;
      }
      return;
    }
    for (VertexId v = 0; v < n; ++v) {
      if (graph.in(v).empty() || done[v] != 0 || missing[v] != 0) continue;
      done[v] = 1;
      for (const VertexId c : graph.out(v)) --missing[c];
      order.push_back(v);
      recurse();
      order.pop_back();
      for (const VertexId c : graph.out(v)) ++missing[c];
      done[v] = 0;
    }
  };
  recurse();
  return best;
}

/// Seeded random DAG with <= 10 vertices: 2-3 sources, every other
/// vertex draws 1-3 predecessors from lower ids. Max in-degree 3, so
/// every M >= 4 is simulatable.
Graph random_dag(support::Xoshiro256& rng) {
  const std::uint64_t n = 5 + rng.below(6);       // 5..10 vertices
  const std::uint64_t inputs = 2 + rng.below(2);  // 2..3 sources
  std::vector<std::vector<VertexId>> preds(n);
  for (std::uint64_t v = inputs; v < n; ++v) {
    const std::uint64_t deg = 1 + rng.below(std::min<std::uint64_t>(3, v));
    std::vector<VertexId> p;
    while (p.size() < deg) {
      const VertexId cand = static_cast<VertexId>(rng.below(v));
      if (std::find(p.begin(), p.end(), cand) == p.end()) p.push_back(cand);
    }
    std::sort(p.begin(), p.end());
    preds[v] = std::move(p);
  }
  return make_graph(preds);
}

/// The branch-and-bound optimum, unbounded, no incumbent.
search::SearchResult exact_search(const Graph& graph, std::uint64_t m,
                                  const std::function<bool(VertexId)>& out,
                                  std::uint64_t inflation = 0) {
  search::SearchOptions options;
  options.cache_size = m;
  options.node_budget = 0;
  options.debug_bound_inflation = inflation;
  return search::branch_and_bound(graph, options, out);
}

// ---------------------------------------------------------------------------
// Exhaustive-oracle equivalence

/// Hand DAGs: diamond, two-level chain, and the asymmetric graph whose
/// optimum depends on interleaving (also the tie-break witness in
/// test_pebble.cpp).
std::vector<Graph> hand_dags() {
  std::vector<Graph> graphs;
  // Diamond: 3 = f(0,1), 4 = f(1,2), 5 = f(3,4).
  graphs.push_back(make_graph({{}, {}, {}, {0, 1}, {1, 2}, {3, 4}}));
  // Chain of pairs: 4 = f(0,1), 5 = f(2,3), 6 = f(4,5).
  graphs.push_back(make_graph({{}, {}, {}, {}, {0, 1}, {2, 3}, {4, 5}}));
  // Asymmetric: 3 = f(0,1), 4 = f(1,2), 5 = f(0,3), 6 = f(4,5).
  graphs.push_back(
      make_graph({{}, {}, {}, {0, 1}, {1, 2}, {0, 3}, {4, 5}}));
  // Wide: 2..5 each read both inputs, 6 = f(2,3), 7 = f(4,5),
  // 8 = f(6,7).
  graphs.push_back(make_graph({{},
                               {},
                               {0, 1},
                               {0, 1},
                               {0, 1},
                               {0, 1},
                               {2, 3},
                               {4, 5},
                               {6, 7}}));
  return graphs;
}

TEST(ScheduleSearchOracle, BranchAndBoundMatchesExhaustiveOnHandDags) {
  for (const Graph& graph : hand_dags()) {
    const auto out = sinks_are_outputs(graph);
    for (const std::uint64_t m : {3ull, 4ull, 5ull, 8ull, 16ull}) {
      const std::uint64_t oracle = oracle_min_io(graph, m, out);
      const search::SearchResult result = exact_search(graph, m, out);
      EXPECT_EQ(result.best_io, oracle)
          << "n=" << graph.num_vertices() << " M=" << m;
      // Unbounded search always closes the tree: the optimum is
      // certified, either by meeting the root bound or by exhaustion.
      EXPECT_TRUE(result.certified);
      EXPECT_NE(result.proof, search::Proof::kNone);
      EXPECT_GE(result.best_io, result.lower_bound);
      // The witness reproduces the claimed cost.
      EXPECT_EQ(pebble::simulate(graph, result.best_schedule,
                                 {.cache_size = m}, out)
                    .io(),
                oracle);
    }
  }
}

// Seeded random-DAG oracle sweep; part of the nightly property job.
// Replay one instance with PR_PROPERTY_SEED=<seed> PR_PROPERTY_ITERS=1.
TEST(ScheduleSearchOracle, BranchAndBoundMatchesExhaustiveOnRandomDags) {
  const std::uint64_t base_seed = property_seed();
  const int iters = property_iters();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("PR_PROPERTY_SEED=" + std::to_string(seed));
    support::Xoshiro256 rng(seed);
    const Graph graph = random_dag(rng);
    const auto out = sinks_are_outputs(graph);
    for (const std::uint64_t m : {4ull, 5ull, 6ull, 12ull}) {
      const std::uint64_t oracle = oracle_min_io(graph, m, out);
      const search::SearchResult result = exact_search(graph, m, out);
      EXPECT_EQ(result.best_io, oracle) << "M=" << m;
      EXPECT_TRUE(result.certified);
    }
  }
}

// ---------------------------------------------------------------------------
// Admissibility of the pruning bound

// For random prefixes of random schedules, the partial bound must
// never exceed the true best completion cost (the minimum over ALL
// completions of the full-schedule Belady I/O). An inadmissible bound
// would let branch-and-bound prune the optimum away silently.
TEST(ScheduleSearchBound, PartialBoundNeverExceedsBestCompletion) {
  const std::uint64_t base_seed = property_seed();
  const int iters = property_iters();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("PR_PROPERTY_SEED=" + std::to_string(seed));
    support::Xoshiro256 rng(seed);
    const Graph graph = random_dag(rng);
    const auto out = sinks_are_outputs(graph);
    const std::vector<VertexId> full =
        schedule::random_topological_schedule(graph, seed);
    for (const std::uint64_t m : {4ull, 6ull, 12ull}) {
      for (std::uint64_t len = 0; len <= full.size(); ++len) {
        const std::vector<VertexId> prefix(full.begin(),
                                           full.begin() + len);
        const bounds::PartialBound bound =
            bounds::partial_schedule_lower_bound(graph, prefix, m, out);
        const std::uint64_t best_completion =
            oracle_min_io(graph, m, out, nullptr, prefix);
        EXPECT_LE(bound.total(), best_completion)
            << "M=" << m << " prefix_len=" << len;
      }
    }
  }
}

// The bound at the empty prefix is the root lower bound the search
// certifies against; it must agree with what branch_and_bound reports.
TEST(ScheduleSearchBound, RootBoundMatchesSearchLowerBound) {
  const cdag::Cdag cdag(bilinear::by_name("strassen"), 1,
                        {.with_coefficients = false});
  const auto out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const bounds::PartialBound root = bounds::partial_schedule_lower_bound(
      cdag.graph(), {}, 40, out);
  search::SearchOptions options;
  options.cache_size = 40;
  const search::SearchResult result =
      search::branch_and_bound(cdag.graph(), options, out);
  EXPECT_EQ(result.lower_bound, root.total());
  // M = 40 holds all 33 values: only compulsory traffic remains, and
  // the bound is exactly that — 8 input reads + 4 output writes.
  EXPECT_EQ(result.lower_bound, 12u);
  EXPECT_EQ(result.best_io, 12u);
  EXPECT_EQ(result.proof, search::Proof::kBoundMet);
}

// Mutation test: inflating the bound (debug_bound_inflation) makes the
// pruning test fire everywhere after the first leaf, so the search
// degenerates to one greedy descent. Somewhere in the seeded instance
// set that greedy leaf is suboptimal — if inflation NEVER cost an
// optimum, the pruning bound would not be load-bearing and the oracle
// equivalence above would be testing dead code.
TEST(ScheduleSearchBound, InflatedBoundMissesOptimaSomewhere) {
  constexpr std::uint64_t kInflation = 1000000;
  int missed = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    support::Xoshiro256 rng(seed);
    const Graph graph = random_dag(rng);
    const auto out = sinks_are_outputs(graph);
    const std::uint64_t m = 4;
    const std::uint64_t oracle = oracle_min_io(graph, m, out);
    const search::SearchResult honest = exact_search(graph, m, out);
    ASSERT_EQ(honest.best_io, oracle) << "seed=" << seed;
    const search::SearchResult inflated =
        exact_search(graph, m, out, kInflation);
    EXPECT_GE(inflated.best_io, oracle) << "seed=" << seed;
    if (inflated.best_io > oracle) ++missed;
  }
  EXPECT_GT(missed, 0)
      << "an infinitely pessimistic bound never cost an optimum — "
         "pruning is not load-bearing, the harness tests nothing";
}

// ---------------------------------------------------------------------------
// Local search invariants

TEST(ScheduleSearchLocal, ResultIsValidTopologicalAndNeverWorse) {
  const cdag::Cdag cdag(bilinear::by_name("strassen"), 1,
                        {.with_coefficients = false});
  const Graph& graph = cdag.graph();
  const auto out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const std::vector<VertexId> dfs = schedule::dfs_schedule(cdag);
  for (const std::uint64_t m : {6ull, 8ull, 16ull}) {
    const search::LocalSearchResult result = search::improve_schedule(
        graph, dfs, {.cache_size = m, .seed = 7}, out);
    EXPECT_TRUE(schedule::validate_schedule(graph, result.schedule).ok);
    EXPECT_LE(result.io, result.initial_io);
    EXPECT_EQ(result.initial_io,
              pebble::simulate(graph, dfs, {.cache_size = m}, out).io());
    EXPECT_EQ(result.io, pebble::simulate(graph, result.schedule,
                                          {.cache_size = m}, out)
                             .io());
  }
}

TEST(ScheduleSearchLocal, BitIdenticalAcrossThreadCounts) {
  const cdag::Cdag cdag(bilinear::by_name("classical2"), 1,
                        {.with_coefficients = false});
  const Graph& graph = cdag.graph();
  const auto out = [&](VertexId v) { return cdag.layout().is_output(v); };
  const std::vector<VertexId> dfs = schedule::dfs_schedule(cdag);
  const auto run = [&](int threads) {
    support::parallel::ThreadOverride guard(threads);
    return search::improve_schedule(
        graph, dfs, {.cache_size = 6, .seed = 3, .max_rounds = 24}, out);
  };
  const search::LocalSearchResult t1 = run(1);
  const search::LocalSearchResult t2 = run(2);
  const search::LocalSearchResult t7 = run(7);
  EXPECT_EQ(t1.schedule, t2.schedule);
  EXPECT_EQ(t1.schedule, t7.schedule);
  EXPECT_EQ(t1.io, t2.io);
  EXPECT_EQ(t1.io, t7.io);
  EXPECT_EQ(t1.moves_evaluated, t7.moves_evaluated);
  EXPECT_EQ(t1.moves_accepted, t7.moves_accepted);
}

TEST(ScheduleSearchLocal, FullSweepPointBitIdenticalAcrossThreadCounts) {
  search::SweepSpec spec;
  spec.algorithm = "strassen";
  spec.r = 1;
  spec.m = 8;
  spec.node_budget = 2000;
  const auto run = [&](int threads) {
    support::parallel::ThreadOverride guard(threads);
    return search::run_search_point(spec);
  };
  const search::SweepPoint a = run(1);
  const search::SweepPoint b = run(2);
  const search::SweepPoint c = run(7);
  EXPECT_EQ(a.searched_io, b.searched_io);
  EXPECT_EQ(a.searched_io, c.searched_io);
  EXPECT_EQ(a.witness_fnv, b.witness_fnv);
  EXPECT_EQ(a.witness_fnv, c.witness_fnv);
  EXPECT_EQ(a.nodes_expanded, c.nodes_expanded);
  EXPECT_EQ(a.nodes_pruned, c.nodes_pruned);
  EXPECT_EQ(a.leaves_scored, c.leaves_scored);
  EXPECT_EQ(a.lower_bound, c.lower_bound);
}

// ---------------------------------------------------------------------------
// The audit rule, both ways

search::SweepPoint certified_point() {
  search::SweepSpec spec;
  spec.algorithm = "strassen";
  spec.r = 1;
  spec.m = 40;
  spec.node_budget = 1000;
  return search::run_search_point(spec);
}

audit::SearchCertificateView view_of_point(const cdag::Cdag& cdag,
                                           const search::SweepPoint& point) {
  audit::SearchCertificateView cert;
  cert.graph = &cdag.graph();
  cert.schedule = point.witness;
  cert.output_mask = point.output_mask;
  cert.cache_size = point.spec.m;
  cert.claimed_io = point.searched_io;
  cert.claimed_lower_bound = point.lower_bound;
  cert.claims_bound_met_optimal = point.proof == search::Proof::kBoundMet;
  const bilinear::BilinearAlgorithm alg =
      bilinear::by_name(point.spec.algorithm);
  cert.theorem1_a = static_cast<std::uint64_t>(alg.a());
  cert.theorem1_b = static_cast<std::uint64_t>(alg.b());
  cert.theorem1_r = point.spec.r;
  return cert;
}

TEST(ScheduleSearchAudit, RuleIsRegistered) {
  ASSERT_NE(audit::find_rule("search.certified-optimal"), nullptr);
}

TEST(ScheduleSearchAudit, CleanCertificatePasses) {
  const search::SweepPoint point = certified_point();
  ASSERT_TRUE(point.certified);
  ASSERT_EQ(point.proof, search::Proof::kBoundMet);
  const cdag::Cdag cdag(bilinear::by_name("strassen"), 1,
                        {.with_coefficients = false});
  const audit::AuditReport report =
      audit::audit_search_certificate(view_of_point(cdag, point));
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.rules_run(),
            std::vector<std::string>{"search.certified-optimal"});
}

TEST(ScheduleSearchAudit, CorruptedClaimsAreRejected) {
  const search::SweepPoint point = certified_point();
  const cdag::Cdag cdag(bilinear::by_name("strassen"), 1,
                        {.with_coefficients = false});

  // A drifted I/O claim no longer re-simulates.
  audit::SearchCertificateView drifted = view_of_point(cdag, point);
  drifted.claimed_io = point.searched_io + 1;
  const audit::AuditReport drift_report =
      audit::audit_search_certificate(drifted);
  EXPECT_FALSE(drift_report.ok());
  EXPECT_TRUE(drift_report.has_finding("search.certified-optimal"));

  // A drifted lower-bound claim no longer re-derives.
  audit::SearchCertificateView wrong_lb = view_of_point(cdag, point);
  wrong_lb.claimed_lower_bound = point.lower_bound + 1;
  EXPECT_FALSE(audit::audit_search_certificate(wrong_lb).ok());

  // A corrupted witness (two entries swapped against a dependence) is
  // not a schedule at all.
  std::vector<VertexId> witness = point.witness;
  std::swap(witness.front(), witness.back());
  audit::SearchCertificateView bad_witness = view_of_point(cdag, point);
  bad_witness.schedule = witness;
  EXPECT_FALSE(audit::audit_search_certificate(bad_witness).ok());

  // Claiming bound-met optimality with a gap is unsound even when both
  // numbers are individually honest.
  search::SweepSpec gap_spec;
  gap_spec.algorithm = "strassen";
  gap_spec.r = 1;
  gap_spec.m = 6;
  gap_spec.node_budget = 500;
  const search::SweepPoint gap_point = search::run_search_point(gap_spec);
  ASSERT_GT(gap_point.searched_io, gap_point.lower_bound);
  audit::SearchCertificateView overclaim = view_of_point(cdag, gap_point);
  overclaim.claims_bound_met_optimal = true;
  EXPECT_FALSE(audit::audit_search_certificate(overclaim).ok());
}

// ---------------------------------------------------------------------------
// Witness digests are schedule-identity

TEST(ScheduleSearchSweep, GraphDigestIsStableAndDiscriminates) {
  const cdag::Cdag strassen(bilinear::by_name("strassen"), 1,
                            {.with_coefficients = false});
  const cdag::Cdag classical(bilinear::by_name("classical2"), 1,
                             {.with_coefficients = false});
  EXPECT_EQ(search::graph_digest(strassen.graph()),
            search::graph_digest(strassen.graph()));
  EXPECT_NE(search::graph_digest(strassen.graph()),
            search::graph_digest(classical.graph()));
}

TEST(ScheduleSearchSweep, RecordRoundTripsSpec) {
  search::SweepSpec spec;
  spec.algorithm = "winograd";
  spec.r = 1;
  spec.m = 8;
  spec.node_budget = 123;
  spec.seed = 9;
  spec.ls_rounds = 5;
  spec.ls_moves = 17;
  const search::SweepPoint point = search::run_search_point(spec);
  obs::BenchRecord rec;
  search::fill_search_record(point, rec);
  const search::SweepSpec back = search::search_spec_from_record(rec);
  EXPECT_EQ(back.algorithm, spec.algorithm);
  EXPECT_EQ(back.r, spec.r);
  EXPECT_EQ(back.m, spec.m);
  EXPECT_EQ(back.node_budget, spec.node_budget);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.ls_rounds, spec.ls_rounds);
  EXPECT_EQ(back.ls_moves, spec.ls_moves);
}

}  // namespace
