#include <gtest/gtest.h>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"

namespace {

using namespace pathrouting::bilinear;  // NOLINT
using pathrouting::support::Rational;

class CatalogTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogTest, BrentEquationsHold) {
  EXPECT_TRUE(by_name(GetParam()).verify_brent());
}

TEST_P(CatalogTest, ShapesAreConsistent) {
  const BilinearAlgorithm alg = by_name(GetParam());
  EXPECT_EQ(alg.a(), alg.n0() * alg.n0());
  EXPECT_GE(alg.b(), alg.a());  // rank of matmul is at least n0^2
  EXPECT_GT(alg.omega0(), 2.0);
  EXPECT_LE(alg.omega0(), 3.0);
}

TEST_P(CatalogTest, Lemma1PreconditionMatchesFastness) {
  // Fast algorithms compute nontrivial combinations on both sides; the
  // classical algorithm never does (its operands are verbatim inputs),
  // which is exactly the case the discussion after Lemma 1 excludes.
  const BilinearAlgorithm alg = by_name(GetParam());
  const bool classical_like = GetParam().rfind("classical", 0) == 0 &&
                              GetParam().find('x') == std::string::npos;
  EXPECT_EQ(lemma1_precondition(alg), !classical_like);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CatalogTest,
                         ::testing::ValuesIn(catalog_names()),
                         [](const auto& info) { return info.param; });

TEST(Catalog, KnownRanksAndExponents) {
  EXPECT_EQ(strassen().b(), 7);
  EXPECT_EQ(winograd().b(), 7);
  EXPECT_EQ(laderman().b(), 23);
  EXPECT_EQ(classical(2).b(), 8);
  EXPECT_EQ(classical(3).b(), 27);
  EXPECT_EQ(strassen_squared().b(), 49);
  EXPECT_EQ(classical2_x_strassen().b(), 56);
  EXPECT_NEAR(strassen().omega0(), 2.8073549, 1e-6);
  EXPECT_NEAR(laderman().omega0(), 2.8540498, 1e-6);
  EXPECT_NEAR(classical(3).omega0(), 3.0, 1e-12);
  EXPECT_NEAR(classical2_x_strassen().omega0(), 2.9036775, 1e-6);
}

TEST(Catalog, BrokenAlgorithmFailsBrent) {
  // Flip one coefficient of Strassen and the equations must fail.
  const BilinearAlgorithm s = strassen();
  std::vector<Rational> u, v, w;
  for (int q = 0; q < s.b(); ++q) {
    for (int e = 0; e < s.a(); ++e) {
      u.push_back(s.u(q, e));
      v.push_back(s.v(q, e));
    }
  }
  for (int d = 0; d < s.a(); ++d) {
    for (int q = 0; q < s.b(); ++q) w.push_back(s.w(d, q));
  }
  u[0] = u[0] + Rational(1);
  const BilinearAlgorithm broken("broken", 2, 7, std::move(u), std::move(v),
                                 std::move(w));
  EXPECT_FALSE(broken.verify_brent());
}

TEST(TensorProduct, MultipliesRanksAndComposesExactly) {
  const BilinearAlgorithm t = tensor_product(strassen(), laderman());
  EXPECT_EQ(t.n0(), 6);
  EXPECT_EQ(t.b(), 7 * 23);
  EXPECT_TRUE(t.verify_brent());
}

TEST(TensorProduct, OrderMattersStructurally) {
  const BilinearAlgorithm x = classical2_x_strassen();
  const BilinearAlgorithm y = strassen_x_classical2();
  EXPECT_EQ(x.b(), y.b());
  // Same rank, different coefficient tables.
  bool identical = true;
  for (int q = 0; q < x.b() && identical; ++q) {
    for (int e = 0; e < x.a() && identical; ++e) {
      identical = x.u(q, e) == y.u(q, e);
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Analysis, StrassenTrivialRows) {
  const BilinearAlgorithm s = strassen();
  // M3 multiplies A11 alone, M4 multiplies A22 alone.
  EXPECT_EQ(trivial_rows(s, Side::A), (std::vector<int>{2, 3}));
  // M2 uses B11 alone, M5 uses B22 alone.
  EXPECT_EQ(trivial_rows(s, Side::B), (std::vector<int>{1, 4}));
}

TEST(Analysis, ClassicalIsAllTrivial) {
  const BilinearAlgorithm c = classical(2);
  EXPECT_EQ(trivial_rows(c, Side::A).size(), 8u);
  EXPECT_EQ(trivial_rows(c, Side::B).size(), 8u);
}

TEST(Analysis, SingleUseAssumption) {
  EXPECT_TRUE(satisfies_single_use_assumption(strassen()));
  EXPECT_TRUE(satisfies_single_use_assumption(winograd()));
  EXPECT_TRUE(satisfies_single_use_assumption(laderman()));
  EXPECT_TRUE(satisfies_single_use_assumption(strassen_squared()));
  // classical x strassen repeats the same nontrivial combination for
  // every output column of the outer classical factor.
  EXPECT_FALSE(satisfies_single_use_assumption(classical2_x_strassen()));
}

TEST(Analysis, ConnectivityMatchesThePaperCaseSplit) {
  // Strassen-like bases handled by [6]: fully connected pieces.
  EXPECT_EQ(encoding_components(strassen(), Side::A), 1);
  EXPECT_EQ(decoding_components(strassen()), 1);
  EXPECT_EQ(decoding_components(laderman()), 1);
  // The disconnected-decoding case only this paper's technique covers.
  EXPECT_EQ(decoding_components(classical2_x_strassen()), 4);
  EXPECT_EQ(encoding_components(classical2_x_strassen(), Side::A), 4);
  // Classical: one star per output.
  EXPECT_EQ(decoding_components(classical(2)), 4);
  EXPECT_EQ(decoding_components(classical(3)), 9);
}

TEST(Analysis, AdditionCounts) {
  // Strassen's classic count: 18 additions per recursion step.
  const AdditionCounts s = addition_counts(strassen());
  EXPECT_EQ(s.encode_a, 5);
  EXPECT_EQ(s.encode_b, 5);
  EXPECT_EQ(s.decode, 8);
  EXPECT_EQ(s.total(), 18);
  // Classical n0: no encode additions, n0^2 (n0-1) decode additions.
  const AdditionCounts c = addition_counts(classical(3));
  EXPECT_EQ(c.encode_a, 0);
  EXPECT_EQ(c.encode_b, 0);
  EXPECT_EQ(c.decode, 9 * 2);
}

TEST(Analysis, TrivialRowDetectionRequiresUnitCoefficient) {
  // A single entry with coefficient 2 is not a copy.
  std::vector<Rational> u(4 * 1, Rational(0)), v(4 * 1, Rational(0)),
      w(4 * 1, Rational(0));
  u[0] = Rational(2);
  v[1] = Rational(1);
  w[0 * 1 + 0] = Rational(1);
  w[1] = Rational(1);
  w[2] = Rational(1);
  w[3] = Rational(1);
  const BilinearAlgorithm weird("weird", 2, 1, std::move(u), std::move(v),
                                std::move(w));
  EXPECT_FALSE(is_trivial_row(weird, Side::A, 0));
  EXPECT_TRUE(is_trivial_row(weird, Side::B, 0));
}

}  // namespace
