#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/routing/path_store.hpp"

namespace {

using namespace pathrouting;           // NOLINT
using namespace pathrouting::routing;  // NOLINT
using cdag::Cdag;
using cdag::CopyBlock;
using cdag::CopyTranslation;
using cdag::SubComputation;
using cdag::VertexId;

// Feasibility caps for the brute-force oracle side of the cross-checks.
constexpr std::uint64_t kMaxChains = 300'000;
constexpr std::uint64_t kMaxVertices = 2'000'000;
constexpr std::uint64_t kMaxDecodePaths = 300'000;

std::uint64_t num_chains(const cdag::Layout& layout, int k) {
  return 2 * layout.pow_a()(k) * guaranteed_fanout(layout, k);
}

// --- The memoized engine against the enumerating oracle, full catalog. ---

TEST(MemoRoutingTest, ChainHitsBitIdenticalToBruteAcrossCatalog) {
  for (const std::string& name : bilinear::catalog_names()) {
    const bilinear::BilinearAlgorithm alg = bilinear::by_name(name);
    const ChainRouter router(alg);
    const MemoRoutingEngine engine(router);
    for (int k = 1; k <= 3; ++k) {
      const cdag::Layout probe(alg.n0(), alg.b(), k);
      if (num_chains(probe, k) > kMaxChains ||
          probe.num_vertices() > kMaxVertices) {
        break;
      }
      const Cdag cdag(alg, k);
      const SubComputation sub(cdag, k, 0);
      const ChainHitCounts brute = count_chain_hits(router, sub);
      const ChainHitCounts memo = engine.chain_hits(sub);
      EXPECT_EQ(memo.hits, brute.hits) << name << " k=" << k;
      EXPECT_EQ(memo.num_chains, brute.num_chains) << name << " k=" << k;
      EXPECT_EQ(memo.max_hits, brute.max_hits) << name << " k=" << k;
      EXPECT_EQ(memo.argmax, brute.argmax) << name << " k=" << k;
      // The closed-form total is the certificate the audit layer
      // checks; it must match what the enumeration actually deposited.
      const std::uint64_t total =
          std::accumulate(brute.hits.begin(), brute.hits.end(),
                          std::uint64_t{0});
      EXPECT_EQ(engine.expected_chain_total_hits(k), total)
          << name << " k=" << k;
      EXPECT_EQ(engine.expected_num_chains(k), brute.num_chains)
          << name << " k=" << k;
    }
  }
}

TEST(MemoRoutingTest, VerifyStatsMatchBruteAcrossCatalog) {
  for (const std::string& name : bilinear::catalog_names()) {
    const bilinear::BilinearAlgorithm alg = bilinear::by_name(name);
    const ChainRouter router(alg);
    const MemoRoutingEngine engine(router);
    for (int k = 1; k <= 2; ++k) {
      const cdag::Layout probe(alg.n0(), alg.b(), k);
      if (num_chains(probe, k) > kMaxChains ||
          probe.num_vertices() > kMaxVertices) {
        break;
      }
      const Cdag cdag(alg, k);
      const SubComputation sub(cdag, k, 0);
      const HitStats brute = verify_chain_routing(router, sub);
      const HitStats memo = engine.verify_chain_routing(sub);
      EXPECT_EQ(memo.num_paths, brute.num_paths);
      EXPECT_EQ(memo.max_hits, brute.max_hits);
      EXPECT_EQ(memo.bound, brute.bound);
      EXPECT_EQ(memo.argmax, brute.argmax);
      EXPECT_TRUE(memo.ok()) << name << " k=" << k;

      const FullRoutingStats bfull = verify_full_routing_aggregated(router, sub);
      const FullRoutingStats mfull = engine.verify_full_routing(sub);
      EXPECT_EQ(mfull.num_paths, bfull.num_paths);
      EXPECT_EQ(mfull.max_vertex_hits, bfull.max_vertex_hits);
      EXPECT_EQ(mfull.argmax_vertex, bfull.argmax_vertex);
      EXPECT_EQ(mfull.max_meta_hits, bfull.max_meta_hits);
      EXPECT_EQ(mfull.bound, bfull.bound);
      EXPECT_EQ(mfull.root_hit_property, bfull.root_hit_property);
      EXPECT_TRUE(mfull.ok()) << name << " k=" << k;

      // Lemma 4's multiplicity accounting: digit-level decision vs the
      // enumerating counter.
      EXPECT_EQ(engine.verify_chain_multiplicities(sub),
                verify_chain_multiplicities(router, sub))
          << name << " k=" << k;
    }
  }
}

TEST(MemoRoutingTest, DecodeHitsBitIdenticalToBrute) {
  for (const std::string& name : bilinear::catalog_names()) {
    const bilinear::BilinearAlgorithm alg = bilinear::by_name(name);
    if (bilinear::decoding_components(alg) != 1) continue;  // Claim 1 only
    const ChainRouter router(alg);
    const DecodeRouter decoder(alg);
    const MemoRoutingEngine engine(router, decoder);
    ASSERT_TRUE(engine.has_decoder());
    for (int k = 1; k <= 3; ++k) {
      const cdag::Layout probe(alg.n0(), alg.b(), k);
      const std::uint64_t paths = probe.pow_a()(k) * probe.pow_b()(k);
      if (paths > kMaxDecodePaths || probe.num_vertices() > kMaxVertices) {
        break;
      }
      const Cdag cdag(alg, k);
      const SubComputation sub(cdag, k, 0);
      const std::vector<std::uint64_t> brute = count_decode_hits(decoder, sub);
      const std::vector<std::uint64_t> memo = engine.decode_hits(sub);
      EXPECT_EQ(memo, brute) << name << " k=" << k;
      const HitStats bstats = verify_decode_routing(decoder, sub);
      const HitStats mstats = engine.verify_decode_routing(sub);
      EXPECT_EQ(mstats.num_paths, bstats.num_paths);
      EXPECT_EQ(mstats.max_hits, bstats.max_hits);
      EXPECT_EQ(mstats.bound, bstats.bound);
      EXPECT_EQ(mstats.argmax, bstats.argmax);
      EXPECT_TRUE(mstats.ok()) << name << " k=" << k;
      const std::uint64_t total =
          std::accumulate(brute.begin(), brute.end(), std::uint64_t{0});
      EXPECT_EQ(engine.expected_decode_total_hits(k), total)
          << name << " k=" << k;
      EXPECT_EQ(engine.expected_num_decode_paths(k), paths);
    }
  }
}

// --- Fact-1 copy translation. ---

TEST(CopyTranslationTest, RoundTripAndBlockStructure) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const Cdag cdag(alg, 3);
  const cdag::Layout& layout = cdag.layout();
  for (int k = 1; k <= 2; ++k) {
    const std::uint64_t copies = layout.pow_b()(3 - k);
    for (std::uint64_t prefix = 0; prefix < copies; ++prefix) {
      const CopyTranslation map(layout, k, prefix);
      const SubComputation sub(cdag, k, prefix);
      ASSERT_EQ(map.blocks().size(), static_cast<std::size_t>(3 * (k + 1)));
      // Blocks tile the local id space without gaps.
      VertexId next_local = 0;
      for (const CopyBlock& blk : map.blocks()) {
        EXPECT_EQ(blk.local_base, next_local);
        next_local += static_cast<VertexId>(blk.length);
      }
      EXPECT_EQ(next_local, map.local().num_vertices());
      // The translated ids are exactly the subcomputation's vertices,
      // in order, and the round trip is the identity.
      const std::vector<VertexId> expected = sub.vertices();
      std::vector<VertexId> translated;
      for (VertexId v = 0; v < map.local().num_vertices(); ++v) {
        const VertexId global = map.to_global(v);
        EXPECT_EQ(map.to_local(global), v);
        translated.push_back(global);
      }
      EXPECT_EQ(translated, expected) << "k=" << k << " prefix=" << prefix;
    }
  }
}

TEST(CopyTranslationTest, MatchesSubcomputationAddresses) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const Cdag cdag(alg, 3);
  const cdag::Layout& layout = cdag.layout();
  const int k = 2;
  const std::uint64_t prefix = 4;
  const CopyTranslation map(layout, k, prefix);
  const SubComputation sub(cdag, k, prefix);
  const cdag::Layout& local = map.local();
  for (const Side side : {Side::A, Side::B}) {
    for (int t = 0; t <= k; ++t) {
      for (std::uint64_t q = 0; q < local.pow_b()(t); ++q) {
        for (std::uint64_t p = 0; p < local.pow_a()(k - t); ++p) {
          EXPECT_EQ(map.to_global(local.enc(side, t, q, p)),
                    sub.enc(side, t, q, p));
        }
      }
    }
  }
  for (int t = 0; t <= k; ++t) {
    for (std::uint64_t q = 0; q < local.pow_b()(k - t); ++q) {
      for (std::uint64_t p = 0; p < local.pow_a()(t); ++p) {
        EXPECT_EQ(map.to_global(local.dec(t, q, p)), sub.dec(t, q, p));
      }
    }
  }
}

TEST(CopyTranslationTest, CopiesAreDisjoint) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const Cdag cdag(alg, 3);
  const cdag::Layout& layout = cdag.layout();
  const int k = 2;
  std::set<VertexId> seen;
  for (std::uint64_t prefix = 0; prefix < layout.pow_b()(1); ++prefix) {
    const CopyTranslation map(layout, k, prefix);
    for (const CopyBlock& blk : map.blocks()) {
      for (std::uint64_t i = 0; i < blk.length; ++i) {
        EXPECT_TRUE(seen.insert(blk.global_base + i).second)
            << "copies overlap at global id " << blk.global_base + i;
      }
    }
  }
}

TEST(MemoRoutingTest, NonZeroPrefixCopiesMatchBrute) {
  // The same canonical array serves every Fact-1 copy; spot-check the
  // translation on interior copies against the oracle run directly on
  // those copies.
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const ChainRouter router(alg);
  const DecodeRouter decoder(alg);
  const MemoRoutingEngine engine(router, decoder);
  const Cdag cdag(alg, 3);
  const int k = 2;
  for (const std::uint64_t prefix : {std::uint64_t{1}, std::uint64_t{6}}) {
    const SubComputation sub(cdag, k, prefix);
    EXPECT_EQ(engine.chain_hits(sub).hits, count_chain_hits(router, sub).hits)
        << "prefix=" << prefix;
    EXPECT_EQ(engine.decode_hits(sub), count_decode_hits(decoder, sub))
        << "prefix=" << prefix;
  }
}

// --- PathStore. ---

TEST(PathStoreTest, ArenaLayoutAndHitAccumulation) {
  PathStore store;
  store.reserve(2, 8);
  const std::uint64_t i0 =
      store.add_path(3, 5, [](std::vector<VertexId>& arena) {
        arena.insert(arena.end(), {3, 4, 5});
      });
  const std::uint64_t i1 =
      store.add_path(5, 2, [](std::vector<VertexId>& arena) {
        arena.insert(arena.end(), {5, 4, 3, 2});
      });
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(store.num_paths(), 2u);
  EXPECT_EQ(store.total_vertices(), 7u);
  EXPECT_EQ(std::vector<VertexId>(store.path(0).begin(), store.path(0).end()),
            (std::vector<VertexId>{3, 4, 5}));
  EXPECT_EQ(std::vector<VertexId>(store.path(1).begin(), store.path(1).end()),
            (std::vector<VertexId>{5, 4, 3, 2}));
  EXPECT_EQ(store.sources()[1], 5u);
  EXPECT_EQ(store.sinks()[1], 2u);
  std::vector<std::uint64_t> hits(6, 0);
  accumulate_hits(store, hits);
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{0, 0, 1, 2, 2, 2}));
  store.clear();
  EXPECT_EQ(store.num_paths(), 0u);
  EXPECT_EQ(store.total_vertices(), 0u);
}

TEST(PathStoreTest, DotExportListsEveryChainVertex) {
  const bilinear::BilinearAlgorithm alg = bilinear::strassen();
  const ChainRouter router(alg);
  const Cdag cdag(alg, 1);
  const SubComputation sub(cdag, 1, 0);
  PathStore store;
  const std::uint64_t wpos = guaranteed_output(cdag.layout(), 1, Side::A, 0, 0);
  store.add_path([&](std::vector<VertexId>& arena) {
    router.append_chain(sub, Side::A, 0, wpos, arena);
  });
  const std::string dot =
      paths_to_dot(cdag.layout(), store, "chain");
  EXPECT_NE(dot.find("digraph \"chain\""), std::string::npos);
  for (const VertexId v : store.path(0)) {
    EXPECT_NE(dot.find("v" + std::to_string(v)), std::string::npos);
  }
}

}  // namespace
