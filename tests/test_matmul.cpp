#include <gtest/gtest.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/matmul/strassen_like.hpp"

namespace {

using namespace pathrouting;          // NOLINT
using namespace pathrouting::matmul;  // NOLINT

TEST(NaiveTest, KnownSmallProduct) {
  Matrix<std::int64_t> a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  std::int64_t v = 1;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  }
  const auto c = naive_multiply(a, b);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(BlockedTest, MatchesNaiveForAllTileSizes) {
  support::Xoshiro256 rng(1);
  const auto a = random_matrix<std::int64_t>(12, rng);
  const auto b = random_matrix<std::int64_t>(12, rng);
  const auto ref = naive_multiply(a, b);
  for (const std::size_t tile : {1u, 2u, 3u, 5u, 12u, 16u}) {
    EXPECT_EQ(blocked_multiply(a, b, tile), ref) << "tile " << tile;
  }
}

class StrassenLikeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StrassenLikeTest, MatchesNaive) {
  const auto alg = bilinear::by_name(GetParam());
  support::Xoshiro256 rng(7);
  const std::size_t n = static_cast<std::size_t>(alg.n0()) *
                        static_cast<std::size_t>(alg.n0()) *
                        static_cast<std::size_t>(alg.n0());
  const auto a = random_matrix<std::int64_t>(n, rng);
  const auto b = random_matrix<std::int64_t>(n, rng);
  EXPECT_EQ(strassen_like_multiply(alg, a, b), naive_multiply(a, b));
}

TEST_P(StrassenLikeTest, CutoffDoesNotChangeResult) {
  const auto alg = bilinear::by_name(GetParam());
  support::Xoshiro256 rng(8);
  const std::size_t n = static_cast<std::size_t>(alg.n0()) *
                        static_cast<std::size_t>(alg.n0());
  const auto a = random_matrix<std::int64_t>(n, rng);
  const auto b = random_matrix<std::int64_t>(n, rng);
  const auto ref = naive_multiply(a, b);
  for (const std::size_t cutoff : {1u, 2u, 4u, 64u}) {
    EXPECT_EQ(strassen_like_multiply(alg, a, b, cutoff), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StrassenLikeTest,
                         ::testing::ValuesIn(bilinear::catalog_names()),
                         [](const auto& info) { return info.param; });

TEST(StrassenLikeTest, HandlesNonPowerSizesViaFallback) {
  const auto alg = bilinear::strassen();
  support::Xoshiro256 rng(9);
  for (const std::size_t n : {6u, 10u, 12u, 20u}) {
    const auto a = random_matrix<std::int64_t>(n, rng);
    const auto b = random_matrix<std::int64_t>(n, rng);
    EXPECT_EQ(strassen_like_multiply(alg, a, b), naive_multiply(a, b))
        << "n=" << n;
  }
}

TEST(StrassenLikeTest, MultiplicationCountFollowsRank) {
  // Full recursion to 1x1: exactly b^r scalar multiplications.
  const auto alg = bilinear::strassen();
  support::Xoshiro256 rng(10);
  const auto a = random_matrix<std::int64_t>(8, rng);
  const auto b = random_matrix<std::int64_t>(8, rng);
  OpCounts ops;
  strassen_like_multiply(alg, a, b, 1, &ops);
  EXPECT_EQ(ops.mults, 343u);  // 7^3
  // One recursion level on top of a 4x4 naive base: 7 * 4^3 mults.
  OpCounts ops2;
  strassen_like_multiply(alg, a, b, 4, &ops2);
  EXPECT_EQ(ops2.mults, 7u * 64u);
}

TEST(StrassenLikeTest, AdditionCountMatchesClosedForm) {
  // Strassen with full recursion on n = 2^r: additions satisfy
  // A(n) = 7 A(n/2) + 18 (n/2)^2, A(1) = 0 -> A(2^r) = 6 (7^r - 4^r).
  const auto alg = bilinear::strassen();
  support::Xoshiro256 rng(11);
  for (const int r : {1, 2, 3}) {
    const std::size_t n = std::size_t{1} << r;
    const auto a = random_matrix<std::int64_t>(n, rng);
    const auto b = random_matrix<std::int64_t>(n, rng);
    OpCounts ops;
    strassen_like_multiply(alg, a, b, 1, &ops);
    std::uint64_t p7 = 1, p4 = 1;
    for (int i = 0; i < r; ++i) {
      p7 *= 7;
      p4 *= 4;
    }
    EXPECT_EQ(ops.adds, 6 * (p7 - p4)) << "r=" << r;
  }
}

TEST(StrassenLikeTest, AgreesWithCdagEvaluation) {
  // The CDAG and the executor are two independent implementations of
  // the same recursion; they must agree exactly.
  const auto alg = bilinear::laderman();
  const int r = 2;
  const cdag::Cdag graph(alg, r);
  const std::size_t n = 9;
  support::Xoshiro256 rng(12);
  const auto a = random_matrix<std::int64_t>(n, rng);
  const auto b = random_matrix<std::int64_t>(n, rng);
  const auto am = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(a.data()));
  const auto bm = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(b.data()));
  const auto cm = cdag::evaluate<std::int64_t>(graph, am, bm);
  const auto c_flat = cdag::from_morton<std::int64_t>(graph, cm);
  const auto c = strassen_like_multiply(alg, a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(c(i, j), c_flat[i * n + j]);
    }
  }
}

TEST(StrassenLikeTest, DoubleEntriesWithinTolerance) {
  const auto alg = bilinear::winograd();
  support::Xoshiro256 rng(13);
  const std::size_t n = 16;
  Matrix<double> a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform01() - 0.5;
      b(i, j) = rng.uniform01() - 0.5;
    }
  }
  const auto fast = strassen_like_multiply(alg, a, b);
  const auto ref = naive_multiply(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(fast(i, j), ref(i, j), 1e-10);
    }
  }
}

}  // namespace
