#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/routing/coefficients.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/maxflow.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;           // NOLINT
using namespace pathrouting::routing;  // NOLINT
using cdag::Cdag;
using cdag::SubComputation;
using cdag::VertexId;

TEST(MaxFlowTest, SimpleNetwork) {
  // s=0, t=1; two disjoint augmenting paths of capacity 2 and 1.
  MaxFlow flow(4);
  const int e1 = flow.add_edge(0, 2, 2);
  flow.add_edge(2, 1, 2);
  const int e2 = flow.add_edge(0, 3, 5);
  flow.add_edge(3, 1, 1);
  EXPECT_EQ(flow.solve(0, 1), 3);
  EXPECT_EQ(flow.flow_on(e1), 2);
  EXPECT_EQ(flow.flow_on(e2), 1);
}

TEST(MaxFlowTest, BottleneckInMiddle) {
  MaxFlow flow(5);
  flow.add_edge(0, 2, 10);
  flow.add_edge(0, 3, 10);
  const int mid = flow.add_edge(2, 4, 1);
  flow.add_edge(3, 4, 2);
  flow.add_edge(4, 1, 100);
  EXPECT_EQ(flow.solve(0, 1), 3);
  EXPECT_EQ(flow.flow_on(mid), 1);
}

TEST(MaxFlowTest, LongPathDoesNotOverflowStack) {
  // A single chain of 200k vertices: every augmenting path has length
  // ~200k, which overflowed the call stack when the Dinic DFS was
  // recursive. The iterative DFS must find the same flow and saturate
  // the bottleneck edge.
  const int chain = 200000;
  const int s = 0;
  const int t = chain;
  MaxFlow flow(chain + 1);
  std::vector<int> edges;
  edges.reserve(static_cast<std::size_t>(chain));
  for (int v = 0; v < chain; ++v) {
    // Capacity 3 everywhere except a capacity-2 bottleneck mid-chain.
    edges.push_back(flow.add_edge(v, v + 1, v == chain / 2 ? 2 : 3));
  }
  EXPECT_EQ(flow.solve(s, t), 2);
  for (const int e : edges) {
    EXPECT_EQ(flow.flow_on(e), 2);
  }
}

TEST(MaxFlowTest, LongPathWithSideBranches) {
  // Two long disjoint chains of different capacities plus a short
  // direct edge; exercises repeated long augmentations and the
  // per-vertex iterator reuse across phases.
  const int len = 50000;
  MaxFlow flow(2 * len + 2);
  const int s = 2 * len;
  const int t = 2 * len + 1;
  const int first_a = flow.add_edge(s, 0, 4);
  for (int v = 0; v + 1 < len; ++v) flow.add_edge(v, v + 1, 4);
  flow.add_edge(len - 1, t, 4);
  const int first_b = flow.add_edge(s, len, 7);
  for (int v = len; v + 1 < 2 * len; ++v) flow.add_edge(v, v + 1, 7);
  flow.add_edge(2 * len - 1, t, 7);
  const int direct = flow.add_edge(s, t, 5);
  EXPECT_EQ(flow.solve(s, t), 16);
  EXPECT_EQ(flow.flow_on(first_a), 4);
  EXPECT_EQ(flow.flow_on(first_b), 7);
  EXPECT_EQ(flow.flow_on(direct), 5);
}

TEST(HallTest, GuaranteedDigitPairs) {
  // n0=2: A pairs by rows, B pairs by columns.
  EXPECT_TRUE(is_guaranteed_digit_pair(2, Side::A, 0, 1));   // a00 -> c01
  EXPECT_FALSE(is_guaranteed_digit_pair(2, Side::A, 0, 2));  // a00 -> c10
  EXPECT_TRUE(is_guaranteed_digit_pair(2, Side::B, 1, 3));   // b01 -> c11
  EXPECT_FALSE(is_guaranteed_digit_pair(2, Side::B, 1, 0));  // b01 -> c00
}

TEST(HallTest, ExhaustiveAgreesWithFlowOnN0Equals2) {
  for (const char* name : {"strassen", "winograd", "classical2"}) {
    const auto alg = bilinear::by_name(name);
    for (const Side side : {Side::A, Side::B}) {
      EXPECT_EQ(hall_condition_exhaustive(alg, side),
                hall_condition_flow(alg, side))
          << name;
    }
  }
}

class HallCatalogTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HallCatalogTest, Lemma5HallConditionHolds) {
  const auto alg = bilinear::by_name(GetParam());
  EXPECT_TRUE(hall_condition_flow(alg, Side::A));
  EXPECT_TRUE(hall_condition_flow(alg, Side::B));
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, HallCatalogTest,
                         ::testing::ValuesIn(bilinear::catalog_names()),
                         [](const auto& info) { return info.param; });

TEST(HallTest, MatchingRespectsEdgesAndCapacities) {
  for (const char* name : {"strassen", "laderman", "strassen_squared"}) {
    const auto alg = bilinear::by_name(name);
    for (const Side side : {Side::A, Side::B}) {
      const auto matching = compute_base_matching(alg, side);
      ASSERT_TRUE(matching.has_value()) << name;
      std::map<int, int> load;
      for (int d_in = 0; d_in < alg.a(); ++d_in) {
        for (int d_out = 0; d_out < alg.a(); ++d_out) {
          if (!is_guaranteed_digit_pair(alg.n0(), side, d_in, d_out)) {
            EXPECT_FALSE(matching->defined(d_in, d_out));
            continue;
          }
          ASSERT_TRUE(matching->defined(d_in, d_out));
          const int q = matching->product(d_in, d_out);
          EXPECT_TRUE(h_edge(alg, side, d_in, d_out, q)) << name;
          ++load[q];
        }
      }
      for (const auto& [q, uses] : load) {
        EXPECT_LE(uses, alg.n0()) << name << " product " << q;
      }
    }
  }
}

TEST(HallTest, InfeasibleForACraftedBrokenBase) {
  // A "base" whose product 0 is the only one touching the outputs: the
  // Hall condition must fail (not a correct matmul algorithm, of
  // course — this exercises the failure path).
  using support::Rational;
  const int a = 4, b = 7;
  std::vector<Rational> u(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> v(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> w(static_cast<std::size_t>(a) * b, Rational(0));
  for (int e = 0; e < a; ++e) {
    u[static_cast<std::size_t>(e)] = Rational(1);  // product 0 reads all of A
    v[static_cast<std::size_t>(e)] = Rational(1);
    w[static_cast<std::size_t>(e) * b] = Rational(e + 1);
  }
  for (int q = 1; q < b; ++q) {
    u[static_cast<std::size_t>(q) * a] = Rational(1);
    v[static_cast<std::size_t>(q) * a] = Rational(1);
  }
  const bilinear::BilinearAlgorithm broken("broken", 2, b, std::move(u),
                                           std::move(v), std::move(w));
  EXPECT_FALSE(hall_condition_flow(broken, Side::A));
  EXPECT_FALSE(hall_condition_exhaustive(broken, Side::A));
}

TEST(ChainTest, ChainsAreGraphPaths) {
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const ChainRouter router(alg);
    const int k = 2;
    const Cdag cdag(alg, k, {.with_coefficients = false});
    const SubComputation sub(cdag, k, 0);
    const auto& layout = cdag.layout();
    std::vector<VertexId> chain;
    for (const Side side : {Side::A, Side::B}) {
      for (std::uint64_t vpos = 0; vpos < sub.inputs_per_side(); ++vpos) {
        for (std::uint64_t free = 0; free < guaranteed_fanout(layout, k);
             ++free) {
          const std::uint64_t wpos =
              guaranteed_output(layout, k, side, vpos, free);
          chain.clear();
          router.append_chain(sub, side, vpos, wpos, chain);
          ASSERT_EQ(chain.size(), 2u * k + 2);
          ASSERT_EQ(chain.front(), sub.input(side, vpos));
          ASSERT_EQ(chain.back(), sub.output(wpos));
          for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            ASSERT_TRUE(cdag.graph().has_edge(chain[i], chain[i + 1]))
                << name << " hop " << i;
          }
        }
      }
    }
  }
}

TEST(ChainTest, EveryInputHasExactlyN0kGuaranteedOutputs) {
  const auto alg = bilinear::strassen();
  const int k = 2;
  const Cdag cdag(alg, k, {.with_coefficients = false});
  const auto& layout = cdag.layout();
  for (std::uint64_t vpos = 0; vpos < layout.inputs_per_side(); ++vpos) {
    std::uint64_t count = 0;
    for (std::uint64_t wpos = 0; wpos < layout.inputs_per_side(); ++wpos) {
      count += is_guaranteed_dep(layout, k, Side::A, vpos, wpos) ? 1 : 0;
    }
    EXPECT_EQ(count, guaranteed_fanout(layout, k));
  }
}

TEST(ChainTest, GuaranteedOutputEnumerationIsConsistent) {
  const auto alg = bilinear::laderman();
  const int k = 2;
  const Cdag cdag(alg, k, {.with_coefficients = false});
  const auto& layout = cdag.layout();
  for (const Side side : {Side::A, Side::B}) {
    for (std::uint64_t vpos = 0; vpos < 20; ++vpos) {
      std::set<std::uint64_t> outputs;
      for (std::uint64_t free = 0; free < guaranteed_fanout(layout, k);
           ++free) {
        const std::uint64_t wpos =
            guaranteed_output(layout, k, side, vpos, free);
        EXPECT_TRUE(is_guaranteed_dep(layout, k, side, vpos, wpos));
        outputs.insert(wpos);
      }
      EXPECT_EQ(outputs.size(), guaranteed_fanout(layout, k));  // distinct
    }
  }
}

class RoutingBoundsTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RoutingBoundsTest, Lemma3ChainRoutingBound) {
  const auto& [name, k] = GetParam();
  const auto alg = bilinear::by_name(name);
  const ChainRouter router(alg);
  const Cdag cdag(alg, k, {.with_coefficients = false});
  const SubComputation sub(cdag, k, 0);
  const HitStats stats = verify_chain_routing(router, sub);
  EXPECT_TRUE(stats.ok()) << "max " << stats.max_hits << " bound "
                          << stats.bound;
  // The routing is tight: inputs/outputs themselves are hit exactly
  // n0^k times per side, so the bound is attained.
  EXPECT_EQ(stats.max_hits, stats.bound);
}

TEST_P(RoutingBoundsTest, Lemma4MultiplicitiesAreExactly3N0k) {
  const auto& [name, k] = GetParam();
  const auto alg = bilinear::by_name(name);
  const ChainRouter router(alg);
  const Cdag cdag(alg, k, {.with_coefficients = false});
  EXPECT_TRUE(verify_chain_multiplicities(router, SubComputation(cdag, k, 0)));
}

TEST_P(RoutingBoundsTest, Theorem2RoutingBound) {
  const auto& [name, k] = GetParam();
  const auto alg = bilinear::by_name(name);
  const ChainRouter router(alg);
  const Cdag cdag(alg, k, {.with_coefficients = false});
  const SubComputation sub(cdag, k, 0);
  const FullRoutingStats agg = verify_full_routing_aggregated(router, sub);
  EXPECT_TRUE(agg.ok()) << "max " << agg.max_vertex_hits << " bound "
                        << agg.bound;
  if (k <= 2) {
    const FullRoutingStats full = verify_full_routing_enumerated(router, sub);
    EXPECT_TRUE(full.ok());
    // Aggregated and enumerated counting agree on the max vertex hits.
    EXPECT_EQ(full.max_vertex_hits, agg.max_vertex_hits);
    EXPECT_TRUE(full.root_hit_property);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndDepths, RoutingBoundsTest,
    ::testing::Combine(::testing::Values("strassen", "winograd", "laderman",
                                         "strassen_squared"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FullPathTest, PathsConnectInputsToOutputs) {
  const auto alg = bilinear::strassen();
  const ChainRouter router(alg);
  const int k = 2;
  const Cdag cdag(alg, k, {.with_coefficients = false});
  const SubComputation sub(cdag, k, 0);
  support::Xoshiro256 rng(17);
  std::vector<VertexId> path;
  for (int trial = 0; trial < 200; ++trial) {
    const Side side = rng.below(2) == 0 ? Side::A : Side::B;
    const std::uint64_t vpos = rng.below(sub.inputs_per_side());
    const std::uint64_t wpos = rng.below(sub.inputs_per_side());
    path.clear();
    append_full_path(router, sub, side, vpos, wpos, path);
    ASSERT_EQ(path.front(), sub.input(side, vpos));
    ASSERT_EQ(path.back(), sub.output(wpos));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const bool fwd = cdag.graph().has_edge(path[i], path[i + 1]);
      const bool bwd = cdag.graph().has_edge(path[i + 1], path[i]);
      ASSERT_TRUE(fwd || bwd) << "hop " << i << " is not an edge";
    }
  }
}

TEST(DecodeRoutingTest, PathsAreValidAndClaim1BoundHolds) {
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const DecodeRouter router(alg);
    EXPECT_EQ(router.d1_size(), alg.a() + alg.b());
    const int k = alg.n0() == 2 ? 3 : 2;
    const Cdag cdag(alg, k, {.with_coefficients = false});
    const SubComputation sub(cdag, k, 0);
    support::Xoshiro256 rng(5);
    std::vector<VertexId> path;
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t q = rng.below(sub.num_products());
      const std::uint64_t e = rng.below(sub.inputs_per_side());
      path.clear();
      router.append_path(sub, q, e, path);
      ASSERT_EQ(path.front(), sub.dec(0, q, 0));
      ASSERT_EQ(path.back(), sub.output(e));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const bool fwd = cdag.graph().has_edge(path[i], path[i + 1]);
        const bool bwd = cdag.graph().has_edge(path[i + 1], path[i]);
        ASSERT_TRUE(fwd || bwd) << name << " hop " << i;
      }
    }
    const HitStats stats = verify_decode_routing(router, sub);
    EXPECT_TRUE(stats.ok()) << name << ": max " << stats.max_hits << " bound "
                            << stats.bound;
  }
}

TEST(DecodeRoutingTest, D1PathsAlternateAndConnect) {
  const auto alg = bilinear::strassen();
  const DecodeRouter router(alg);
  for (int q = 0; q < alg.b(); ++q) {
    for (int e = 0; e < alg.a(); ++e) {
      const auto& path = router.d1_path(q, e);
      ASSERT_GE(path.size(), 2u);
      ASSERT_EQ(path.size() % 2, 0u);
      EXPECT_EQ(path.front(), q);
      EXPECT_EQ(path.back(), e);
      // Consecutive hops are W-adjacent (even index = product, odd =
      // output).
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const int prod = static_cast<int>(i % 2 == 0 ? path[i] : path[i + 1]);
        const int out = static_cast<int>(i % 2 == 0 ? path[i + 1] : path[i]);
        EXPECT_FALSE(alg.w(out, prod).is_zero());
      }
    }
  }
}

TEST(Lemma6Test, FullAlgorithmHasAllCoefficientsCorrect) {
  for (const char* name : {"strassen", "winograd", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    const std::vector<bool> keep(static_cast<std::size_t>(alg.b()), true);
    for (int i = 0; i < alg.n0(); ++i) {
      const Lemma6Counts counts = lemma6_counts(alg, keep, i);
      EXPECT_EQ(counts.correct, alg.n0() * alg.n0()) << name;
      EXPECT_TRUE(counts.holds()) << name;
    }
  }
}

TEST(Lemma6Test, HoldsUnderRandomPruning) {
  support::Xoshiro256 rng(2024);
  for (const char* name : {"strassen", "laderman"}) {
    const auto alg = bilinear::by_name(name);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<bool> keep(static_cast<std::size_t>(alg.b()));
      for (std::size_t q = 0; q < keep.size(); ++q) {
        keep[q] = rng.below(2) == 1;
      }
      for (int i = 0; i < alg.n0(); ++i) {
        const Lemma6Counts counts = lemma6_counts(alg, keep, i);
        ASSERT_TRUE(counts.holds())
            << name << " trial " << trial << " row " << i
            << ": correct=" << counts.correct
            << " mults=" << counts.multiplications;
      }
    }
  }
}

TEST(Lemma6Test, CoefficientFormMatchesBrentView) {
  const auto alg = bilinear::strassen();
  const std::vector<bool> keep(7, true);
  // Coefficient of a01 in c01 must be the unit form b11 (entries:
  // a01 = 1, c01 = 1, b_{j'=1,j=1} = entry 3).
  const auto form = a_coefficient_form(alg, keep, 1, 1);
  for (int f = 0; f < 4; ++f) {
    EXPECT_EQ(form[static_cast<std::size_t>(f)],
              f == 3 ? support::Rational(1) : support::Rational(0));
  }
  EXPECT_TRUE(a_coefficient_correct(alg, keep, 1, 1));
  EXPECT_FALSE(a_coefficient_correct(alg, keep, 1, 2));  // rows differ
}

}  // namespace

namespace tensor_decode_tests {

using namespace pathrouting;           // NOLINT
using namespace pathrouting::routing;  // NOLINT

TEST(DecodeRoutingTest, WorksOnTensorSquareBases) {
  // strassen (x) strassen has a connected decoder with a = 16, b = 49:
  // Claim 1's general bound |D_1| * max(a,b)^k applies.
  const auto alg = bilinear::strassen_squared();
  const DecodeRouter router(alg);
  EXPECT_EQ(router.d1_size(), 16 + 49);
  const cdag::Cdag graph(alg, 2, {.with_coefficients = false});
  const auto stats =
      verify_decode_routing(router, cdag::SubComputation(graph, 2, 0));
  EXPECT_TRUE(stats.ok());
}

TEST(DecodeRoutingTest, AbortsOnDisconnectedDecoders) {
  // classical2 (x) strassen's decoder is disconnected: Claim 1 does not
  // apply and the router must refuse rather than emit broken paths.
  EXPECT_DEATH(DecodeRouter router(bilinear::classical2_x_strassen()),
               "disconnected");
}

}  // namespace tensor_decode_tests

namespace recursion_consistency_tests {

using namespace pathrouting;           // NOLINT
using namespace pathrouting::routing;  // NOLINT
using cdag::Cdag;
using cdag::SubComputation;
using cdag::VertexId;

TEST(ChainTest, RoutingIsRecursivelyConsistent) {
  // Claim 2's structure, checked directly: the chain routed inside an
  // embedded G_k^i equals the standalone G_k chain mapped through the
  // Fact-1 coordinate correspondence.
  const auto alg = bilinear::strassen();
  const ChainRouter router(alg);
  const int k = 2;
  const Cdag big(alg, 4, {.with_coefficients = false});
  const Cdag small(alg, k, {.with_coefficients = false});
  const SubComputation embedded(big, k, /*prefix=*/13);
  const SubComputation standalone(small, k, 0);
  const auto& small_layout = small.layout();
  const auto embed = [&](VertexId v) {
    const cdag::VertexRef ref = small_layout.ref(v);
    switch (ref.layer) {
      case cdag::LayerKind::EncA:
        return embedded.enc(Side::A, ref.rank, ref.q, ref.p);
      case cdag::LayerKind::EncB:
        return embedded.enc(Side::B, ref.rank, ref.q, ref.p);
      case cdag::LayerKind::Dec:
        return embedded.dec(ref.rank, ref.q, ref.p);
    }
    return cdag::kInvalidVertex;
  };
  std::vector<VertexId> small_chain, big_chain;
  for (const Side side : {Side::A, Side::B}) {
    for (std::uint64_t vpos = 0; vpos < 16; ++vpos) {
      for (std::uint64_t free = 0; free < 4; ++free) {
        const std::uint64_t wpos =
            guaranteed_output(small_layout, k, side, vpos, free);
        small_chain.clear();
        big_chain.clear();
        router.append_chain(standalone, side, vpos, wpos, small_chain);
        router.append_chain(embedded, side, vpos, wpos, big_chain);
        ASSERT_EQ(small_chain.size(), big_chain.size());
        for (std::size_t i = 0; i < small_chain.size(); ++i) {
          ASSERT_EQ(embed(small_chain[i]), big_chain[i]);
        }
      }
    }
  }
}

TEST(GuaranteedTest, FanoutFormula) {
  const cdag::Layout l2(2, 7, 5);
  EXPECT_EQ(guaranteed_fanout(l2, 3), 8u);   // 2^3
  const cdag::Layout l3(3, 23, 4);
  EXPECT_EQ(guaranteed_fanout(l3, 2), 9u);   // 3^2
  EXPECT_EQ(guaranteed_fanout(l3, 0), 1u);
}

}  // namespace recursion_consistency_tests
