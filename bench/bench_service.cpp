// E18 — Certificate service: content-addressed cache and batched
// concurrent serving.
//
// Four phases against a throwaway on-disk store:
//
//   1. service_cold_miss — a fresh service (empty store) answers
//      strassen k = 7 chain entirely through the implicit engine; the
//      end-to-end latency must stay under 50 ms.
//   2. service_trace — a seeded Zipf-ish trace (service/replay.hpp)
//      replayed by one client against an empty store. First occurrence
//      of each key misses, every repeat hits; hit/miss latency
//      percentiles are recorded and the cache-hit p99 must stay under
//      100 µs.
//   3. service_warm — a NEW service instance reopens the same store
//      directory and replays the same trace: every answer now comes
//      off the mmap'ed certificate files (no engine work at all).
//   4. service_throughput — the warmed service replayed from 1/2/4/8
//      concurrent client threads; reports requests/second.
//
// Counts in every record (hits, misses, unique keys, certificate
// words) are bit-identical re-runnable — pr_bench_gate replays the
// same trace against a fresh store and compares them exactly; only
// the *_us / rps / seconds fields are timing. Exits nonzero on a
// latency-threshold breach, a bound violation, or an error response,
// so the service-perfsmoke ctest entry is a hard gate.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/service/replay.hpp"
#include "pathrouting/service/service.hpp"
#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

constexpr double kHitP99LimitUs = 100.0;   // cache-hit p99 budget
constexpr double kColdMissLimitMs = 50.0;  // strassen k=7 chain, cold

void add_trace_record(bench::BenchJson& json, const char* experiment,
                      const service::TraceSpec& spec,
                      const service::ReplayResult& r, int client_threads) {
  json.add_record()
      .set("experiment", experiment)
      .set("engine", "service")
      .set("seed", spec.seed)
      .set("client_threads", client_threads)
      .set("requests", r.requests)
      .set("unique_keys", r.unique_keys)
      .set("ok", r.ok)
      .set("errors", r.errors)
      .set("cache_hits", r.cache_hits)
      .set("computed", r.computed)
      .set("seconds", r.seconds)
      .set("hit_p50_us", service::percentile_us(r.hit_us, 50))
      .set("hit_p99_us", service::percentile_us(r.hit_us, 99))
      .set("miss_p50_us", service::percentile_us(r.miss_us, 50))
      .set("miss_p99_us", service::percentile_us(r.miss_us, 99))
      .set("rps", r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds
                                : 0.0)
      .set("max_rss_bytes", obs::max_rss_bytes());
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::int64_t num_requests =
      cli.flag_int("requests", 2048, "trace length");
  const std::int64_t seed = cli.flag_int("seed", 20260807, "trace seed");
  cli.finish(
      "E18: certificate service — cold misses, cache-hit latency, mmap "
      "reload, and client-thread throughput scaling.");

  bench::print_banner(
      "E18: certificate service — content-addressed serving",
      "Claim: a cache hit is a shared-lock map probe (p99 < 100 us), a\n"
      "cold strassen k = 7 chain miss certifies through the implicit\n"
      "engine in < 50 ms, and a reopened store serves everything off\n"
      "mmap'ed certificate files with counts bit-identical to the\n"
      "first run.");

  const std::string store_dir =
      (std::filesystem::temp_directory_path() /
       ("pathrouting_bench_service." + std::to_string(::getpid())))
          .string();
  bench::BenchJson json("service");
  bool failed = false;

  // Phase 1 — cold miss. Fresh service, empty store: the whole request
  // (arena build + implicit chain certification) is on the clock.
  {
    service::ServiceConfig config;
    config.store_dir = store_dir + "/cold";
    service::CertificateService svc(config);
    const service::Request req{"strassen", 7, service::CertKind::kChain};
    bench::Stopwatch timer;
    const service::Response resp = svc.serve(req);
    const double secs = timer.seconds();
    const double ms = secs * 1e3;
    if (!resp.ok) {
      std::fprintf(stderr, "COLD MISS FAILED: %s\n", resp.error.c_str());
      failed = true;
    } else {
      const auto& w = resp.certificate.words;
      json.add_record()
          .set("experiment", "service_cold_miss")
          .set("engine", "service")
          .set("algorithm", req.algorithm)
          .set("k", req.k)
          .set("kind", service::kind_name(req.kind))
          .set("ok", resp.ok)
          .set("cached", resp.from_cache)
          .set("chains", w[service::kChainNumChains])
          .set("l3_max", w[service::kChainL3MaxHits])
          .set("l3_bound", w[service::kChainL3Bound])
          .set("l4", w[service::kChainL4Exact])
          .set("has_fnv", w[service::kChainHasHitDigest])
          .set("digest", resp.certificate.payload_digest)
          .set("cold_us", secs * 1e6)
          .set("seconds", secs)
          .set("max_rss_bytes", obs::max_rss_bytes());
      std::printf("cold miss  strassen k=7 chain: %.2f ms (limit %.0f ms)\n",
                  ms, kColdMissLimitMs);
      if (ms >= kColdMissLimitMs) {
        std::fprintf(stderr, "COLD MISS OVER BUDGET: %.2f ms >= %.0f ms\n", ms,
                     kColdMissLimitMs);
        failed = true;
      }
    }
  }

  // Phases 2-4 share one store directory: phase 2 populates it, phase
  // 3 reopens it cold (mmap path), phase 4 hammers the warm index.
  service::TraceSpec spec;
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.num_requests = static_cast<std::uint64_t>(num_requests);
  const std::vector<service::Request> trace = service::zipf_trace(spec);

  support::Table table({"phase", "clients", "requests", "hits", "computed",
                        "hit p50 us", "hit p99 us", "miss p50 us", "sec",
                        "req/s"});
  const auto add_row = [&](const char* phase, int clients,
                           const service::ReplayResult& r) {
    table.add_row({phase, std::to_string(clients), fmt_count(r.requests),
                   fmt_count(r.cache_hits), fmt_count(r.computed),
                   fmt_fixed(service::percentile_us(r.hit_us, 50), 1),
                   fmt_fixed(service::percentile_us(r.hit_us, 99), 1),
                   fmt_fixed(service::percentile_us(r.miss_us, 50), 1),
                   fmt_fixed(r.seconds, 3),
                   fmt_count(static_cast<std::uint64_t>(
                       r.seconds > 0 ? r.requests / r.seconds : 0))});
  };
  const auto check_clean = [&](const char* phase,
                               const service::ReplayResult& r) {
    if (r.errors != 0) {
      std::fprintf(stderr, "%s: %llu error responses\n", phase,
                   static_cast<unsigned long long>(r.errors));
      failed = true;
    }
  };

  service::ServiceConfig config;
  config.store_dir = store_dir + "/trace";

  {
    service::CertificateService svc(config);
    const service::ReplayResult r = service::replay_trace(svc, trace, 1);
    add_trace_record(json, "service_trace", spec, r, 1);
    add_row("trace (cold store)", 1, r);
    check_clean("service_trace", r);
    const double p99 = service::percentile_us(r.hit_us, 99);
    if (p99 >= kHitP99LimitUs) {
      std::fprintf(stderr, "CACHE-HIT P99 OVER BUDGET: %.1f us >= %.0f us\n",
                   p99, kHitP99LimitUs);
      failed = true;
    }
  }

  {
    // Reopen: a brand-new service on the populated directory. Every
    // request is a hit, first touch per key goes through mmap open +
    // full validation, repeats are index probes.
    service::CertificateService svc(config);
    const service::ReplayResult warm = service::replay_trace(svc, trace, 1);
    add_trace_record(json, "service_warm", spec, warm, 1);
    add_row("warm (mmap reload)", 1, warm);
    check_clean("service_warm", warm);
    if (warm.computed != 0) {
      std::fprintf(stderr,
                   "WARM REPLAY RECOMPUTED %llu KEYS (store should have "
                   "served everything)\n",
                   static_cast<unsigned long long>(warm.computed));
      failed = true;
    }

    // Throughput scaling on the now-warm index.
    for (const int clients : {1, 2, 4, 8}) {
      const service::ReplayResult r =
          service::replay_trace(svc, trace, clients);
      add_trace_record(json, "service_throughput", spec, r, clients);
      add_row("throughput (warm)", clients, r);
      check_clean("service_throughput", r);
    }
  }
  table.print(std::cout);

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  return failed ? 1 : 0;
}
