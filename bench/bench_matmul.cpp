// E14 — arithmetic counts and wall-clock of the executors: the
// practical motivation the paper's introduction leans on. The
// recursive executor's multiplication count follows b^r exactly; its
// runtime crossover against blocked classical shows why Strassen-like
// algorithms matter beyond asymptotics.
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/matmul/strassen_like.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
}  // namespace

int main() {
  bench::print_banner(
      "E14a: arithmetic operation counts",
      "Full recursion to the cutoff: multiplications = b^L * cutoff^3\n"
      "per recursion depth L; additions grow with the same exponent.");
  {
    support::Table table({"algorithm", "n", "cutoff", "mults", "adds",
                          "naive mults", "mult ratio"});
    support::Xoshiro256 rng(1);
    for (const char* name : {"strassen", "winograd", "laderman"}) {
      const auto alg = bilinear::by_name(name);
      const std::size_t n0 = static_cast<std::size_t>(alg.n0());
      const std::size_t n = n0 * n0 * n0 * (alg.n0() == 2 ? 2 : 1);
      const auto a = matmul::random_matrix<std::int64_t>(n, rng);
      const auto b = matmul::random_matrix<std::int64_t>(n, rng);
      matmul::OpCounts ops;
      matmul::strassen_like_multiply(alg, a, b, 1, &ops);
      const double naive = static_cast<double>(n) * n * n;
      table.add_row({name, std::to_string(n), "1", fmt_count(ops.mults),
                     fmt_count(ops.adds),
                     fmt_count(static_cast<std::uint64_t>(naive)),
                     fmt_fixed(ops.mults / naive, 3)});
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E14b: wall-clock, recursive vs blocked classical (int64)",
      "Cutoff 32; single core. The recursive executor overtakes blocked\n"
      "classical as n grows (the flop advantage wins over the overhead).");
  {
    support::Table table(
        {"n", "blocked (s)", "strassen-like (s)", "speedup"});
    support::Xoshiro256 rng(2);
    const auto alg = bilinear::strassen();
    for (const std::size_t n : {128u, 256u, 512u}) {
      const auto a = matmul::random_matrix<std::int64_t>(n, rng);
      const auto b = matmul::random_matrix<std::int64_t>(n, rng);
      bench::Stopwatch t1;
      const auto c1 = matmul::blocked_multiply(a, b, 32);
      const double blocked = t1.seconds();
      bench::Stopwatch t2;
      const auto c2 = matmul::strassen_like_multiply(alg, a, b, 32);
      const double fast = t2.seconds();
      PR_ASSERT_MSG(c1 == c2, "executors disagree");
      table.add_row({std::to_string(n), fmt_fixed(blocked, 3),
                     fmt_fixed(fast, 3), fmt_fixed(blocked / fast, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
