// E6 — Theorem 1 (sequential): I/O of the recursive schedule vs the
// lower bound, across n and M.
//
// The paper proves IO >= Omega((n/sqrt(M))^{omega0} * M) for every
// schedule, and [3] shows the recursive (DFS) schedule attains it. We
// measure the DFS schedule under Belady eviction on the exact machine
// model and report the ratio to the asymptotic form: it must stay in a
// constant band (no drift in n or M), with log-slopes matching omega0
// in n and 1 - omega0/2 in M. The paper-constant closed form
// (Theorem 1's floor expression) is also shown where non-vacuous.
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

struct Case {
  const char* name;
  int rmin, rmax;
};

}  // namespace

int main() {
  bench::print_banner(
      "E6: Theorem 1 — I/O scaling of Strassen-like algorithms",
      "Measured: DFS schedule + Belady eviction on the red-blue pebble\n"
      "game. Bound: (n/sqrt(M))^{omega0} * M. The ratio column must stay\n"
      "in a constant band as n grows (per fixed M); 'slope(n)' is the\n"
      "fitted exponent between consecutive r at fixed M and should\n"
      "approach omega0.");

  for (const Case c : {Case{"strassen", 4, 8}, Case{"winograd", 4, 6},
                       Case{"laderman", 2, 4}, Case{"strassen_squared", 2, 3}}) {
    const auto alg = bilinear::by_name(c.name);
    const double w0 = alg.omega0();
    std::printf("--- %s (omega0 = %.4f) ---\n", c.name, w0);
    support::Table table({"r", "n", "M", "IO (measured)", "asym bound",
                          "ratio", "slope(n)", "DFS model", "meas/model",
                          "paper-form"});
    const auto adds = bilinear::addition_counts(alg);
    const std::uint64_t e_u = static_cast<std::uint64_t>(adds.encode_a + alg.b());
    const std::uint64_t e_v = static_cast<std::uint64_t>(adds.encode_b + alg.b());
    const std::uint64_t e_w = static_cast<std::uint64_t>(adds.decode + alg.a());
    std::map<std::uint64_t, double> prev_io;  // by M
    for (int r = c.rmin; r <= c.rmax; ++r) {
      const cdag::Cdag graph(alg, r, {.with_coefficients = false});
      const auto order = schedule::dfs_schedule(graph);
      const auto is_out = [&](cdag::VertexId v) {
        return graph.layout().is_output(v);
      };
      const double n = static_cast<double>(graph.layout().n());
      for (const std::uint64_t m : {64ull, 256ull, 1024ull}) {
        if (static_cast<double>(m) > n * n / 2) continue;  // M = o(n^2)
        const auto res = pebble::simulate(graph.graph(), order,
                                          {.cache_size = m}, is_out);
        const double bound = bounds::asymptotic_io(n, static_cast<double>(m), w0);
        std::string slope = "-";
        if (const auto it = prev_io.find(m); it != prev_io.end()) {
          slope = fmt_fixed(std::log(static_cast<double>(res.io()) / it->second) /
                                std::log(static_cast<double>(alg.n0())),
                            3);
        }
        prev_io[m] = static_cast<double>(res.io());
        const std::uint64_t paper =
            bounds::theorem1_io_lower_bound(alg.a(), alg.b(), r, m);
        const double model =
            bounds::dfs_io_model(alg.a(), alg.b(), e_u, e_v, e_w, r, m);
        table.add_row({std::to_string(r), fmt_count(static_cast<std::uint64_t>(n)),
                       fmt_count(m), fmt_count(res.io()), fmt_count(static_cast<std::uint64_t>(bound)),
                       fmt_fixed(res.io() / bound, 2), slope,
                       fmt_count(static_cast<std::uint64_t>(model)),
                       fmt_fixed(res.io() / model, 2),
                       paper == 0 ? "(vacuous)" : fmt_count(paper)});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Reading the table: ratios converge to a constant per M (the DFS\n"
         "schedule is within a constant factor of optimal), and slope(n)\n"
         "approaches omega0 as r grows. The paper-constant form is vacuous\n"
         "at these scales because k = ceil(log_a 72M) exceeds r-2 — its\n"
         "content is carried by the segment certifier (bench_segment).\n";
  return 0;
}
