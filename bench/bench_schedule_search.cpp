// Experiment E20 — schedule-space search: gap-to-lower-bound
// trajectories of the branch-and-bound pebbling optimizer on catalog
// G_r at several cache sizes M, with certified-optimal instances as
// the exact gated headline.
//
// For each (algorithm, r, M) point the bench runs the full pipeline
// (DFS / BFS baselines, seeded local search, branch-and-bound) through
// search::run_search_point — the same code path pr_bench_gate re-runs
// against the committed BENCH_schedule_search.json, so every u64
// counter in the baseline is re-derived bit for bit in CI.
//
// The bench self-gates (exit 1) on:
//   * an inverted pipeline: searched > local or local > dfs I/O;
//   * a cost undercutting the root lower bound (unsound bound);
//   * a certificate the search.certified-optimal audit rule rejects;
//   * zero certified-optimal instances over the whole matrix.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/search/sweep.hpp"
#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT

struct Instance {
  const char* algorithm;
  int r;
  std::uint64_t m;
  std::uint64_t budget;
};

/// The committed matrix: M sweeps at fixed (algorithm, r). Budgets are
/// smoke-sized — the gate re-runs every point — and chosen so the
/// generous-M points close by meeting the root bound while the tight-M
/// points report their best-found gap.
constexpr Instance kMatrix[] = {
    {"strassen", 1, 6, 40000},   {"strassen", 1, 8, 40000},
    {"strassen", 1, 12, 40000},  {"strassen", 1, 16, 40000},
    {"strassen", 1, 24, 40000},  {"strassen", 1, 40, 40000},
    {"classical2", 1, 4, 40000}, {"classical2", 1, 6, 40000},
    {"classical2", 1, 8, 40000}, {"classical2", 1, 12, 40000},
    {"classical2", 1, 36, 40000},
    {"winograd", 1, 8, 40000},   {"winograd", 1, 40, 40000},
    {"strassen", 2, 16, 4000},   {"strassen", 2, 64, 4000},
    {"strassen", 2, 300, 4000},
};

/// Audits the point's certificate with search.certified-optimal; the
/// bench refuses to commit a baseline whose claims do not re-derive.
bool certificate_clean(const search::SweepPoint& point) {
  const bilinear::BilinearAlgorithm alg =
      bilinear::by_name(point.spec.algorithm);
  const cdag::Cdag cdag(alg, point.spec.r, {.with_coefficients = false});
  audit::SearchCertificateView cert;
  cert.graph = &cdag.graph();
  cert.schedule = point.witness;
  cert.output_mask = point.output_mask;
  cert.cache_size = point.spec.m;
  cert.claimed_io = point.searched_io;
  cert.claimed_lower_bound = point.lower_bound;
  cert.claims_bound_met_optimal = point.proof == search::Proof::kBoundMet;
  cert.theorem1_a = static_cast<std::uint64_t>(alg.a());
  cert.theorem1_b = static_cast<std::uint64_t>(alg.b());
  cert.theorem1_r = point.spec.r;
  const audit::AuditReport report = audit::audit_search_certificate(cert);
  if (!report.ok()) std::fputs(report.to_text().c_str(), stderr);
  return report.ok();
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::int64_t budget_scale = cli.flag_int(
      "budget-scale", 1, "multiply every instance's node budget");
  cli.finish(
      "E20: branch-and-bound schedule search on catalog G_r — DFS vs "
      "searched I/O gap curves and certified-optimal instances.");

  bench::print_banner(
      "E20: schedule-space search",
      "Branch-and-bound over red-blue pebblings closes the DFS-vs-optimal "
      "gap at small M and certifies optimal I/O where the cost meets the "
      "root lower bound.");

  bench::BenchJson json("schedule_search");
  support::Table table({"algorithm", "r", "M", "bfs", "dfs", "local",
                        "searched", "LB", "gap", "proof"});
  std::uint64_t certified_count = 0;
  bool failed = false;

  for (const Instance& inst : kMatrix) {
    search::SweepSpec spec;
    spec.algorithm = inst.algorithm;
    spec.r = inst.r;
    spec.m = inst.m;
    spec.node_budget = inst.budget * static_cast<std::uint64_t>(budget_scale);
    const bench::Stopwatch watch;
    const search::SweepPoint point = search::run_search_point(spec);
    const double seconds = watch.seconds();

    if (point.searched_io > point.local_io ||
        point.local_io > point.dfs_io) {
      std::fprintf(stderr,
                   "FAIL %s r=%d M=%llu: pipeline not monotone "
                   "(dfs %llu, local %llu, searched %llu)\n",
                   inst.algorithm, inst.r,
                   static_cast<unsigned long long>(inst.m),
                   static_cast<unsigned long long>(point.dfs_io),
                   static_cast<unsigned long long>(point.local_io),
                   static_cast<unsigned long long>(point.searched_io));
      failed = true;
    }
    if (point.searched_io < point.lower_bound) {
      std::fprintf(stderr,
                   "FAIL %s r=%d M=%llu: cost %llu undercuts lower bound "
                   "%llu — the bound is unsound\n",
                   inst.algorithm, inst.r,
                   static_cast<unsigned long long>(inst.m),
                   static_cast<unsigned long long>(point.searched_io),
                   static_cast<unsigned long long>(point.lower_bound));
      failed = true;
    }
    if (!certificate_clean(point)) {
      std::fprintf(stderr,
                   "FAIL %s r=%d M=%llu: search.certified-optimal fired\n",
                   inst.algorithm, inst.r,
                   static_cast<unsigned long long>(inst.m));
      failed = true;
    }
    if (point.certified && point.proof == search::Proof::kBoundMet) {
      ++certified_count;
    }

    table.add_row({inst.algorithm, std::to_string(inst.r),
                   std::to_string(inst.m), std::to_string(point.bfs_io),
                   std::to_string(point.dfs_io),
                   std::to_string(point.local_io),
                   std::to_string(point.searched_io),
                   std::to_string(point.lower_bound),
                   std::to_string(point.searched_io - point.lower_bound),
                   search::proof_name(point.proof)});

    obs::BenchRecord& rec = json.add_record();
    search::fill_search_record(point, rec);
    rec.set("seconds", seconds);
  }

  table.print(std::cout);

  const std::uint64_t instances =
      sizeof(kMatrix) / sizeof(kMatrix[0]);
  std::printf("\n%llu of %llu instances certified optimal (bound-met)\n",
              static_cast<unsigned long long>(certified_count),
              static_cast<unsigned long long>(instances));
  if (certified_count == 0) {
    std::fprintf(stderr,
                 "FAIL: no certified-optimal instance in the matrix\n");
    failed = true;
  }

  obs::BenchRecord& summary = json.add_record();
  summary.set("experiment", "schedule_search_summary")
      .set("engine", "search")
      .set("instances", instances)
      .set("certified_count", certified_count);

  return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
