// E13 — Section 8: lifting the single-use assumption (the paper's
// conjecture, probed empirically).
//
// When a base algorithm reuses a nontrivial linear combination in
// several multiplications, Lemma 5's accounting breaks and Theorem 1 is
// only conjectured. Building the CDAG with value-level meta-vertices
// (group_duplicate_rows) makes the segment argument well-defined again;
// here Equation (2) is evaluated on violating algorithms across
// schedules. It holds with slack on every instance we can build —
// evidence for the conjecture.
//
// Subjects:
//  * classical2 (x) strassen and strassen (x) classical2 — fast
//    (omega0 = 2.90) algorithms whose tensor structure repeats each
//    combination across the outer classical index;
//  * a random unimodular basis change of classical2 — every row is a
//    duplicated NONtrivial combination and nothing is a copy.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/transform.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

struct Subject {
  std::string label;
  bilinear::BilinearAlgorithm alg;
  int r;
  bounds::CertifyParams params;
};

}  // namespace

int main() {
  bench::print_banner(
      "E13: Section 8 — the single-use assumption, lifted empirically",
      "Equation (2) checked with value-level meta-vertices on algorithms\n"
      "that reuse combinations across multiplications. 'min ratio' is the\n"
      "worst |delta'(S')| / |S_bar| over complete segments; the paper\n"
      "conjectures it stays >= 1/12 = 0.083.");

  support::Xoshiro256 rng(2718);
  const auto p = bilinear::random_unimodular(2, rng);
  const auto q = bilinear::random_unimodular(2, rng);
  const auto rr = bilinear::random_unimodular(2, rng);
  auto twisted = bilinear::transform_basis(bilinear::classical(2), p, q, rr);
  twisted.set_name("classical2-twisted");

  std::vector<Subject> subjects;
  subjects.push_back({"classical2_x_strassen",
                      bilinear::classical2_x_strassen(), 3,
                      {.cache_size = 1, .k = 1, .s_bar_target = 8}});
  subjects.push_back({"strassen_x_classical2",
                      bilinear::strassen_x_classical2(), 3,
                      {.cache_size = 1, .k = 1, .s_bar_target = 8}});
  subjects.push_back(
      {"classical2-twisted", twisted, 7, {.cache_size = 2}});

  support::Table table({"algorithm", "single-use", "r", "dup (grouped)",
                        "schedule", "k", "quota", "segments", "min ratio",
                        "1/12", "verdict"});
  for (const Subject& subject : subjects) {
    const cdag::Cdag graph(subject.alg, subject.r,
                           {.with_coefficients = false,
                            .group_duplicate_rows = true});
    const std::uint64_t dup = cdag::count_duplicated_vertices(graph);
    struct Named {
      const char* name;
      std::vector<cdag::VertexId> order;
    };
    std::vector<Named> schedules;
    schedules.push_back({"dfs", schedule::dfs_schedule(graph)});
    schedules.push_back({"bfs", schedule::bfs_schedule(graph)});
    schedules.push_back(
        {"random", schedule::random_topological_schedule(graph.graph(), 4)});
    for (const auto& [name, order] : schedules) {
      const auto cert = bounds::certify_segments(graph, order, subject.params);
      double min_ratio = 1e18;
      for (const auto& seg : cert.segments) {
        if (!seg.complete) continue;
        min_ratio = std::min(min_ratio, static_cast<double>(seg.boundary) /
                                            static_cast<double>(seg.s_bar));
      }
      table.add_row(
          {subject.label,
           bilinear::satisfies_single_use_assumption(subject.alg) ? "yes"
                                                                  : "no",
           std::to_string(subject.r), fmt_count(dup), name,
           std::to_string(cert.k), fmt_count(cert.s_bar_target),
           fmt_count(cert.complete_segments()), fmt_fixed(min_ratio, 3),
           "0.083", min_ratio >= 1.0 / 12.0 ? "holds" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nNo violation has been observed on any instance — consistent "
               "with the\npaper's Section-8 conjecture that Theorem 1 does "
               "not need the\nsingle-use assumption.\n";
  return 0;
}
