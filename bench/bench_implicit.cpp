// E17 — Implicit-CDAG scaling: constant-memory verification at k = 10.
//
// The explicit G_r for Strassen at k = 10 has ~2.0e9 vertices — the
// CSR arrays alone would need tens of GiB. The implicit engine
// (cdag::ImplicitCdag + MemoRoutingEngine's view overloads) certifies
// the Lemma-3 / Lemma-4 / Theorem-2 chain routing and the Claim-1
// decode routing at that size from O(k * b * #digit-states) state.
//
// Phase 1 (implicit only) runs Strassen k = 1..kmax and the
// classical2 (x) strassen hybrid at matching problem sizes (n0 = 4, so
// k/2 ranks reach the same n) with NO explicit graph ever built, then
// asserts the process peak RSS stayed under 2 GiB — the headline
// bounded-memory claim of the implicit representation.
//
// Phase 2 (cross-check; skip with --implicit-only) rebuilds the
// explicit CDAG where it still fits (~4M vertices) and requires the
// implicit stats to be bit-identical to the array-backed memoized
// engine, field by field, including argmax tie-breaks.
//
// Exits nonzero on any bound violation, divergence, or RSS breach, so
// the implicit-perfsmoke ctest entry is a hard gate.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

constexpr std::uint64_t kRssLimitBytes = 2ull << 30;  // 2 GiB

struct Options {
  int kmax = 10;           // Strassen ranks; the hybrid runs kmax/2
  bool crosscheck = true;  // phase 2 (explicit comparison)
};

struct ImplicitRun {
  routing::HitStats l3;
  bool l4 = false;
  routing::FullRoutingStats t2;
  std::optional<routing::HitStats> decode;
  // The chain phase (L3/L4/T2) and the Claim-1 decode phase are
  // separate records in the JSON, so they are timed separately.
  double chain_secs = 0;
  double decode_secs = 0;
  [[nodiscard]] bool ok() const {
    return l3.ok() && l4 && t2.ok() && (!decode || decode->ok());
  }
};

ImplicitRun run_implicit(const routing::MemoRoutingEngine& engine,
                         const cdag::CdagView& view, int k) {
  ImplicitRun run;
  bench::Stopwatch chain_timer;
  run.l3 = engine.verify_chain_routing(view, k, 0);
  run.l4 = engine.verify_chain_multiplicities(view, k, 0);
  run.t2 = engine.verify_full_routing(view, k, 0);
  run.chain_secs = chain_timer.seconds();
  if (engine.has_decoder()) {
    bench::Stopwatch decode_timer;
    run.decode = engine.verify_decode_routing(view, k, 0);
    run.decode_secs = decode_timer.seconds();
  }
  return run;
}

ImplicitRun run_explicit(const routing::MemoRoutingEngine& engine,
                         const cdag::SubComputation& sub) {
  ImplicitRun run;
  run.l3 = engine.verify_chain_routing(sub);
  run.l4 = engine.verify_chain_multiplicities(sub);
  run.t2 = engine.verify_full_routing(sub);
  if (engine.has_decoder()) {
    run.decode = engine.verify_decode_routing(sub);
  }
  return run;
}

bool bit_identical(const ImplicitRun& a, const ImplicitRun& b) {
  bool same = a.l3.num_paths == b.l3.num_paths &&
              a.l3.max_hits == b.l3.max_hits && a.l3.bound == b.l3.bound &&
              a.l3.argmax == b.l3.argmax && a.l4 == b.l4 &&
              a.t2.num_paths == b.t2.num_paths &&
              a.t2.max_vertex_hits == b.t2.max_vertex_hits &&
              a.t2.argmax_vertex == b.t2.argmax_vertex &&
              a.t2.max_meta_hits == b.t2.max_meta_hits &&
              a.t2.bound == b.t2.bound &&
              a.t2.root_hit_property == b.t2.root_hit_property &&
              a.decode.has_value() == b.decode.has_value();
  if (same && a.decode) {
    same = a.decode->num_paths == b.decode->num_paths &&
           a.decode->max_hits == b.decode->max_hits &&
           a.decode->bound == b.decode->bound &&
           a.decode->argmax == b.decode->argmax;
  }
  return same;
}

void add_records(bench::BenchJson& json, const std::string& name, int k,
                 const ImplicitRun& run) {
  json.add_record()
      .set("experiment", "chain_routing")
      .set("algorithm", name)
      .set("k", k)
      .set("engine", routing::engine_name(routing::EngineKind::kImplicit))
      .set("chains", run.l3.num_paths)
      .set("l3_max_hits", run.l3.max_hits)
      .set("l3_bound", run.l3.bound)
      .set("l4_exact", run.l4)
      .set("t2_max_vertex_hits", run.t2.max_vertex_hits)
      .set("t2_max_meta_hits", run.t2.max_meta_hits)
      .set("t2_bound", run.t2.bound)
      .set("ok", run.l3.ok() && run.l4 && run.t2.ok())
      .set("seconds", run.chain_secs)
      .set("max_rss_bytes", obs::max_rss_bytes());
  if (run.decode) {
    json.add_record()
        .set("experiment", "decode_routing")
        .set("algorithm", name)
        .set("k", k)
        .set("engine", routing::engine_name(routing::EngineKind::kImplicit))
        .set("paths", run.decode->num_paths)
        .set("max_hits", run.decode->max_hits)
        .set("bound", run.decode->bound)
        .set("ok", run.decode->ok())
        .set("seconds", run.decode_secs)
        .set("max_rss_bytes", obs::max_rss_bytes());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kmax=", 0) == 0) {
      opt.kmax = std::atoi(arg.c_str() + 7);
    } else if (arg == "--implicit-only") {
      opt.crosscheck = false;
    } else {
      std::fprintf(stderr,
                   "usage: bench_implicit [--kmax=N] [--implicit-only]\n");
      return 2;
    }
  }
  if (opt.kmax < 1) opt.kmax = 1;

  bench::print_banner(
      "E17: implicit CDAG — constant-memory certificates at k = 10",
      "Claim: the Fact-1 virtual view certifies the Lemma-3/4, Theorem-2,\n"
      "and Claim-1 routings of G_k without materializing G_k; peak RSS\n"
      "stays under 2 GiB at Strassen k = 10 (~2.0e9 vertices), and the\n"
      "stats are bit-identical to the explicit engine wherever both run.");

  bench::BenchJson json("implicit_cdag");
  bool failed = false;

  // Phase 1 — implicit only. Workloads: Strassen at full depth, and
  // the disconnected-decoding hybrid at the rank reaching the same n
  // (n0 = 4: kmax/2 ranks give n = 2^kmax). The hybrid has no Claim-1
  // router, so it exercises the chain-only engine configuration.
  struct Workload {
    const char* name;
    int kmax;
  };
  const std::vector<Workload> workloads = {
      {"strassen", opt.kmax},
      {"classical2_x_strassen", std::max(1, opt.kmax / 2)},
  };

  support::Table table({"algorithm", "k", "n", "|V| (virtual)", "chains",
                        "l3", "l4", "t2", "claim1", "sec", "rss-MiB"});
  for (const Workload& w : workloads) {
    const auto alg = bilinear::by_name(w.name);
    const routing::ChainRouter router(alg);
    std::optional<routing::DecodeRouter> decoder;
    std::optional<routing::MemoRoutingEngine> engine;
    if (bilinear::decoding_components(alg) == 1) {
      decoder.emplace(alg);
      engine.emplace(router, *decoder);
    } else {
      engine.emplace(router);
    }
    for (int k = 1; k <= w.kmax; ++k) {
      const cdag::ImplicitCdag view(alg, k);
      const ImplicitRun run = run_implicit(*engine, view, k);
      const double secs = run.chain_secs + run.decode_secs;
      if (!run.ok()) {
        std::fprintf(stderr, "BOUND VIOLATION: %s k=%d (implicit)\n", w.name,
                     k);
        failed = true;
      }
      add_records(json, w.name, k, run);
      table.add_row(
          {w.name, std::to_string(k), std::to_string(view.layout().n()),
           fmt_count(view.num_vertices()), fmt_count(run.l3.num_paths),
           run.l3.ok() ? "OK" : "FAIL", run.l4 ? "OK" : "FAIL",
           run.t2.ok() ? "OK" : "FAIL",
           run.decode ? (run.decode->ok() ? "OK" : "FAIL") : "-",
           fmt_fixed(secs, 3),
           std::to_string(obs::max_rss_bytes() >> 20)});
    }
  }
  table.print(std::cout);

  // The bounded-memory claim: everything above ran without ever
  // allocating per-vertex state. ru_maxrss is monotonic, so this also
  // bounds every workload individually.
  const std::uint64_t phase1_rss = obs::max_rss_bytes();
  std::printf("\nimplicit phase peak RSS: %" PRIu64 " MiB (limit %" PRIu64
              " MiB)\n",
              phase1_rss >> 20, kRssLimitBytes >> 20);
  json.add_record()
      .set("experiment", "implicit_phase")
      .set("engine", routing::engine_name(routing::EngineKind::kImplicit))
      .set("kmax", opt.kmax)
      .set("rss_limit_bytes", kRssLimitBytes)
      .set("ok", phase1_rss < kRssLimitBytes)
      .set("max_rss_bytes", phase1_rss);
  if (phase1_rss >= kRssLimitBytes) {
    std::fprintf(stderr, "RSS LIMIT EXCEEDED: %" PRIu64 " >= %" PRIu64 "\n",
                 phase1_rss, kRssLimitBytes);
    failed = true;
  }

  // Phase 2 — cross-check against the explicit engine wherever the
  // CSR graph still fits (~4M vertices). The explicit build dominates
  // the RSS from here on, which is why phase 1 measured first.
  if (opt.crosscheck) {
    std::printf("\ncross-check vs explicit engine (<= ~4M vertices):\n");
    for (const Workload& w : workloads) {
      const auto alg = bilinear::by_name(w.name);
      int kx = w.kmax;
      while (kx > 1 && cdag::ImplicitCdag(alg, kx).num_vertices() > 4000000) {
        --kx;
      }
      const routing::ChainRouter router(alg);
      std::optional<routing::DecodeRouter> decoder;
      std::optional<routing::MemoRoutingEngine> engine;
      if (bilinear::decoding_components(alg) == 1) {
        decoder.emplace(alg);
        engine.emplace(router, *decoder);
      } else {
        engine.emplace(router);
      }
      for (int k = 1; k <= kx; ++k) {
        const cdag::Cdag graph(alg, k,
                               cdag::CdagOptions{.with_coefficients = false});
        const cdag::SubComputation sub(graph, k, 0);
        const cdag::ImplicitCdag view(alg, k);
        const ImplicitRun expl = run_explicit(*engine, sub);
        const ImplicitRun impl = run_implicit(*engine, view, k);
        const bool identical = bit_identical(expl, impl);
        if (!identical) {
          std::fprintf(stderr, "DIVERGENCE: %s k=%d implicit != explicit\n",
                       w.name, k);
          failed = true;
        }
        json.add_record()
            .set("experiment", "crosscheck")
            .set("algorithm", w.name)
            .set("k", k)
            .set("counts_bit_identical", identical)
            .set("max_rss_bytes", obs::max_rss_bytes());
        std::printf("  %-22s k=%d  %s\n", w.name, k,
                    identical ? "bit-identical" : "DIVERGED");
      }
    }
  }

  return failed ? 1 : 0;
}
