// Performance microbenchmarks (google-benchmark): construction and
// simulation throughput of the core components. These are engineering
// benchmarks, not experiment tables — they keep regressions visible.
#include <benchmark/benchmark.h>

#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/prng.hpp"

namespace {

using namespace pathrouting;  // NOLINT

void BM_CdagBuild(benchmark::State& state) {
  const auto alg = bilinear::strassen();
  const int r = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const cdag::Cdag graph(alg, r, {.with_coefficients = false});
    benchmark::DoNotOptimize(graph.graph().num_edges());
  }
  const cdag::Cdag graph(alg, r, {.with_coefficients = false});
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(graph.graph().num_edges()));
}
BENCHMARK(BM_CdagBuild)->Arg(3)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_PebbleSimulate(benchmark::State& state) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag graph(alg, static_cast<int>(state.range(0)),
                         {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  const auto is_out = [&](cdag::VertexId v) {
    return graph.layout().is_output(v);
  };
  for (auto _ : state) {
    const auto res =
        pebble::simulate(graph.graph(), order, {.cache_size = 256}, is_out);
    benchmark::DoNotOptimize(res.reads);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_PebbleSimulate)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_PebbleSimulateLru(benchmark::State& state) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag graph(alg, 5, {.with_coefficients = false});
  const auto order = schedule::dfs_schedule(graph);
  const auto is_out = [&](cdag::VertexId v) {
    return graph.layout().is_output(v);
  };
  for (auto _ : state) {
    const auto res = pebble::simulate(
        graph.graph(), order,
        {.cache_size = 256, .eviction = pebble::Eviction::Lru}, is_out);
    benchmark::DoNotOptimize(res.reads);
  }
}
BENCHMARK(BM_PebbleSimulateLru)->Unit(benchmark::kMillisecond);

void BM_ChainRouting(benchmark::State& state) {
  const auto alg = bilinear::strassen();
  const routing::ChainRouter router(alg);
  const int k = static_cast<int>(state.range(0));
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, k, 0);
  for (auto _ : state) {
    const auto counts = routing::count_chain_hits(router, sub);
    benchmark::DoNotOptimize(counts.max_hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(sub.inputs_per_side()));
}
BENCHMARK(BM_ChainRouting)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_BaseMatching(benchmark::State& state) {
  const auto alg = bilinear::laderman();
  for (auto _ : state) {
    const auto matching =
        routing::compute_base_matching(alg, routing::Side::A);
    benchmark::DoNotOptimize(matching.has_value());
  }
}
BENCHMARK(BM_BaseMatching)->Unit(benchmark::kMicrosecond);

void BM_CdagEvaluate(benchmark::State& state) {
  const auto alg = bilinear::strassen();
  const cdag::Cdag graph(alg, static_cast<int>(state.range(0)));
  const std::uint64_t in = graph.layout().inputs_per_side();
  support::Xoshiro256 rng(1);
  std::vector<std::int64_t> a(in), b(in);
  for (auto& x : a) x = rng.range(-3, 3);
  for (auto& x : b) x = rng.range(-3, 3);
  for (auto _ : state) {
    const auto out = cdag::evaluate<std::int64_t>(graph, a, b);
    benchmark::DoNotOptimize(out.front());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(graph.graph().num_vertices()));
}
BENCHMARK(BM_CdagEvaluate)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
