// Shared helpers for the experiment benches: consistent headers,
// wall-clock timing, and machine-readable result files.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "pathrouting/obs/bench_record.hpp"
#include "pathrouting/obs/export.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// The git commit the bench binary was built from (the top-level
/// CMakeLists bakes in `git rev-parse --short HEAD`), so committed
/// BENCH_*.json files record which code produced them.
inline const char* git_commit() {
#ifdef PR_GIT_COMMIT
  return PR_GIT_COMMIT;
#else
  return "unknown";
#endif
}

/// Machine-readable bench results on the unified record schema
/// (obs/bench_record.hpp). Collects flat key/value records and writes
/// them to `BENCH_<name>.json` in the working directory (or
/// `$PR_BENCH_JSON_DIR` if set) when `write()` is called or the object
/// is destroyed. Schema:
///   {"bench": <name>, "threads": <PR_THREADS resolution>,
///    "records": [{<config/counts/seconds fields>}, ...]}
/// The standard per-record fields "threads" and "commit" are injected
/// automatically at write time — bench main()s only set what is
/// specific to the measurement, and pr_bench_gate can parse any
/// baseline. Counts recorded here are the determinism contract
/// surface: they must be bit-identical across thread counts (see
/// README "Threading").
class BenchJson {
 public:
  explicit BenchJson(std::string name) { file_.bench = std::move(name); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { write(); }

  obs::BenchRecord& add_record() {
    file_.records.emplace_back();
    return file_.records.back();
  }

  void write() {
    if (written_) return;
    written_ = true;
    file_.threads = support::parallel::num_threads();
    obs::finalize_records(file_, git_commit());
    std::string dir;
    if (const char* env = std::getenv("PR_BENCH_JSON_DIR")) {
      dir = std::string(env) + "/";
    }
    const std::string path = dir + "BENCH_" + file_.bench + ".json";
    if (obs::write_bench_file(file_, path)) {
      std::printf("wrote %s\n", path.c_str());
    }
  }

 private:
  obs::BenchFile file_;
  bool written_ = false;
};

}  // namespace pathrouting::bench
