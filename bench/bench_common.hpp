// Shared helpers for the experiment benches: consistent headers and
// wall-clock timing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace pathrouting::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

}  // namespace pathrouting::bench
