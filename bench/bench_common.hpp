// Shared helpers for the experiment benches: consistent headers,
// wall-clock timing, and machine-readable result files.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "pathrouting/support/parallel.hpp"

namespace pathrouting::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_banner(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// The git commit the bench binary was built from (bench/CMakeLists.txt
/// bakes in `git rev-parse --short HEAD`), so committed BENCH_*.json
/// files record which code produced them.
inline const char* git_commit() {
#ifdef PR_GIT_COMMIT
  return PR_GIT_COMMIT;
#else
  return "unknown";
#endif
}

/// Machine-readable bench results. Collects flat key/value records and
/// writes them to `BENCH_<name>.json` in the working directory (or
/// `$PR_BENCH_JSON_DIR` if set) when `write()` is called or the object
/// is destroyed. Schema:
///   {"bench": <name>, "threads": <PR_THREADS resolution>,
///    "records": [{<config/counts/seconds fields>}, ...]}
/// Counts recorded here are the determinism contract surface: they must
/// be bit-identical across thread counts (see README "Threading").
class BenchJson {
 public:
  class Record {
   public:
    Record& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Record& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    Record& set(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Record& set(const std::string& key, std::uint32_t value) {
      return set(key, static_cast<std::uint64_t>(value));
    }
    Record& set(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Record& set(const std::string& key, double value) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& set(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class BenchJson;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { write(); }

  Record& add_record() {
    records_.emplace_back();
    return records_.back();
  }

  void write() {
    if (written_) return;
    written_ = true;
    std::string dir;
    if (const char* env = std::getenv("PR_BENCH_JSON_DIR")) {
      dir = std::string(env) + "/";
    }
    const std::string path = dir + "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"threads\": %d,\n",
                 name_.c_str(), support::parallel::num_threads());
    std::fprintf(f, "  \"records\": [");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      const auto& fields = records_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     fields[j].first.c_str(), fields[j].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace pathrouting::bench
