// E8 — Theorem 1 (parallel): bandwidth cost vs P and M.
//
// CAPS-style parallel Strassen-like execution on the simulated
// machine: the measured bandwidth must dominate BOTH lower bounds,
//   (n/sqrt(M))^{omega0} * M / P   (memory-dependent) and
//   n^2 / P^{2/omega0}             (memory-independent),
// and track their maximum within a constant factor. SUMMA / 2.5D give
// the classical comparison: their bandwidth carries the classical
// exponent and loses to CAPS as P grows.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/parallel/caps.hpp"
#include "pathrouting/parallel/summa.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
using support::fmt_sci;
}  // namespace

int main(int argc, char** argv) {
  // E8c runs real data through the machine, so the per-processor
  // memory is a sweep parameter, not a constant: shrink it to probe
  // the within-memory flag, grow it for larger grids.
  std::uint64_t summa_memory = 1ull << 30;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--summa-memory=", 15) == 0) {
      summa_memory = std::strtoull(arg + 15, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: bench_parallel [--summa-memory=WORDS]\n");
      return 2;
    }
  }

  bench::print_banner(
      "E8a: CAPS bandwidth vs P (Strassen, n = 2^12)",
      "Unlimited memory (all-BFS) follows the memory-independent bound\n"
      "n^2/P^{2/omega0}; limited memory (3x minimal) interleaves DFS\n"
      "steps and follows (n/sqrt(M))^{omega0} M / P. 'max(LBs)' is the\n"
      "larger lower bound; ratio = measured / max(LBs).");
  {
    const auto alg = bilinear::strassen();
    const double w0 = alg.omega0();
    const int r = 12;
    const double n = std::pow(2.0, r);
    support::Table table({"P", "memory", "BFS", "DFS", "bandwidth",
                          "lb mem-dep", "lb mem-ind", "ratio", "peak mem",
                          "within M"});
    for (const int l : {1, 2, 3, 4}) {
      const double p = std::pow(7.0, l);
      for (const bool limited : {false, true}) {
        const std::uint64_t mem =
            limited ? static_cast<std::uint64_t>(9.0 * n * n / p)
                    : (1ull << 62);
        const auto res =
            parallel::simulate_caps(alg, r, {.bfs_levels = l,
                                             .local_memory = mem});
        const double lb_mem = bounds::parallel_bandwidth_lb(
            n, res.peak_memory, p, w0);
        const double lb_ind = bounds::memory_independent_lb(n, p, w0);
        const double max_lb = std::max(lb_mem, lb_ind);
        table.add_row(
            {fmt_count(static_cast<std::uint64_t>(p)),
             limited ? fmt_count(mem) : "unbounded",
             std::to_string(res.bfs_steps), std::to_string(res.dfs_steps),
             fmt_sci(res.bandwidth_cost), fmt_sci(lb_mem), fmt_sci(lb_ind),
             fmt_fixed(res.bandwidth_cost / max_lb, 2),
             fmt_sci(res.peak_memory),
             res.peak_memory <= static_cast<double>(mem) ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E8b: fast vs classical parallel bandwidth",
      "CAPS (Strassen exponent) vs 2.5D/SUMMA cost models at matched P\n"
      "and replication; the fast algorithm's advantage grows with P.");
  {
    const auto alg = bilinear::strassen();
    const double w0 = alg.omega0();
    const int r = 14;
    const double n = std::pow(2.0, r);
    support::Table table({"P", "CAPS bw", "SUMMA bw (c=1)", "2.5D bw (c=4)",
                          "classical/CAPS"});
    for (const int l : {2, 3, 4, 5, 6}) {
      const double p = std::pow(7.0, l);
      const auto caps = parallel::simulate_caps(
          alg, r, {.bfs_levels = l, .local_memory = 1ull << 62});
      const auto summa = parallel::simulate_25d(n, p, 1);
      const auto d25 = parallel::simulate_25d(n, p, 4);
      table.add_row({fmt_count(static_cast<std::uint64_t>(p)),
                     fmt_sci(caps.bandwidth_cost),
                     fmt_sci(summa.bandwidth_cost),
                     fmt_sci(d25.bandwidth_cost),
                     fmt_fixed(d25.bandwidth_cost / caps.bandwidth_cost, 2)});
      (void)w0;
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E8c: value-level SUMMA execution (machine-model validation)",
      "Real data moves through the simulated machine; the distributed\n"
      "product is checked against a sequential reference.");
  {
    support::Table table(
        {"n", "grid", "P", "bandwidth", "4n^2/grid", "supersteps", "correct"});
    support::Xoshiro256 rng(77);
    const std::size_t n = 64;
    const auto a = matmul::random_matrix<std::int64_t>(n, rng);
    const auto b = matmul::random_matrix<std::int64_t>(n, rng);
    for (const int grid : {2, 4, 8}) {
      parallel::Machine machine(grid * grid, summa_memory);
      const auto res = parallel::run_summa(a, b, grid, 4, machine);
      table.add_row({std::to_string(n), std::to_string(grid),
                     std::to_string(grid * grid), fmt_count(res.bandwidth_cost),
                     fmt_count(4 * n * n / static_cast<std::size_t>(grid)),
                     fmt_count(res.supersteps),
                     res.correct ? "yes" : "NO"});
    }
    table.print(std::cout);
  }
  return 0;
}
