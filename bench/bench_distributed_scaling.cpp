// E19 — BDHLS strong scaling to 10^6 simulated processors.
//
// Sweeps the classical SUMMA schedule (grids up to 1024 x 1024 =
// 1,048,576 processors) and the Strassen-like CAPS schedule (7^l
// processors up to 5,764,801) across three memory regimes — minimal
// M = 3n^2/P, the knee M = n^2/P^{2/omega0} (where the
// Ballard-Demmel-Holtz-Schwartz-Lipshitz perfect-scaling range ends),
// and unbounded — on the sparse superstep machine. Every point records
// exact u64 machine counters plus the memory-dependent and
// memory-independent lower bounds; the curves show the classical
// P^{2/3} wall against the fast P^{2/omega0} falloff.
//
// Hard gates (exit 1), in the spirit of bench_implicit's RSS gate:
//   * the whole sweep must finish within --budget-seconds (default 20)
//     — the point of the aggregate machine is that a 10^6-processor
//     superstep costs O(classes), so wall-clock blowup means the
//     sparse path regressed;
//   * both schedules must actually reach P >= 10^6.
// The emitted BENCH_distributed_scaling.json is the pr_bench_gate
// baseline: counts exact, timings soft.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pathrouting/parallel/scaling.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
using support::fmt_sci;

const char* const kRegimes[] = {"minimal", "knee", "unbounded"};

parallel::ScalingPoint run_point(const parallel::ScalingSpec& spec,
                                 bench::BenchJson& json,
                                 std::vector<parallel::ScalingPoint>& out) {
  const bench::Stopwatch sw;
  const parallel::ScalingPoint point = parallel::run_scaling_point(spec);
  const double seconds = sw.seconds();
  obs::BenchRecord& rec = json.add_record();
  parallel::fill_scaling_record(point, rec);
  rec.set("seconds", seconds);
  out.push_back(point);
  return point;
}

std::string fmt_memory(const parallel::ScalingPoint& point) {
  return point.spec.regime == "unbounded" ? "unbounded"
                                          : fmt_count(point.local_memory);
}

}  // namespace

int main(int argc, char** argv) {
  double budget_seconds = 20.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--budget-seconds=", 17) == 0) {
      budget_seconds = std::atof(arg + 17);
    } else {
      std::fprintf(stderr,
                   "usage: bench_distributed_scaling "
                   "[--budget-seconds=S]\n");
      return 2;
    }
  }

  const bench::Stopwatch total;
  bench::BenchJson json("distributed_scaling");
  std::vector<parallel::ScalingPoint> points;

  bench::print_banner(
      "E19a: classical SUMMA strong scaling (n = 8192)",
      "Bandwidth 4n^2/sqrt(P) against the classical omega0 = 3 bounds:\n"
      "the ratio to max(LBs) grows like P^{1/6} past the knee — the\n"
      "P^{2/3} memory-independent wall no 2D classical schedule beats.");
  {
    support::Table table({"P", "regime", "M", "bandwidth", "supersteps",
                          "lb mem-dep", "lb mem-ind", "ratio"});
    for (const std::uint64_t grid : {8ull, 32ull, 128ull, 512ull, 1024ull}) {
      for (const char* regime : kRegimes) {
        parallel::ScalingSpec spec;
        spec.schedule = "summa";
        spec.algorithm = "classical";
        spec.regime = regime;
        spec.n = 8192;
        spec.grid = grid;
        spec.panel = spec.n / grid;
        const parallel::ScalingPoint point = run_point(spec, json, points);
        table.add_row({fmt_count(point.procs), regime, fmt_memory(point),
                       fmt_sci(static_cast<double>(point.bandwidth_cost)),
                       fmt_count(point.supersteps),
                       fmt_sci(point.lb_mem_dependent),
                       fmt_sci(point.lb_mem_independent),
                       fmt_fixed(point.ratio_vs_lb, 2)});
      }
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E19b: CAPS (Strassen) strong scaling, P = 7^l, n = 1024",
      "The superstep-machine replay of the CAPS BFS/DFS schedule: with\n"
      "memory at the knee or above, bandwidth tracks the\n"
      "memory-independent n^2/P^{2/omega0} falloff (omega0 ~ 2.807)\n"
      "that classical schedules cannot reach; at minimal memory DFS\n"
      "steps interleave and the memory-dependent bound takes over.");
  {
    support::Table table({"P", "regime", "M", "BFS", "DFS", "bandwidth",
                          "supersteps", "model bw", "lb mem-dep",
                          "lb mem-ind", "ratio"});
    for (int l = 2; l <= 8; ++l) {
      for (const char* regime : kRegimes) {
        parallel::ScalingSpec spec;
        spec.schedule = "caps";
        spec.algorithm = "strassen";
        spec.regime = regime;
        spec.r = 10;
        spec.bfs_levels = l;
        const parallel::ScalingPoint point = run_point(spec, json, points);
        table.add_row({fmt_count(point.procs), regime, fmt_memory(point),
                       std::to_string(point.bfs_steps),
                       std::to_string(point.dfs_steps),
                       fmt_sci(static_cast<double>(point.bandwidth_cost)),
                       fmt_count(point.supersteps),
                       fmt_sci(point.model_bandwidth),
                       fmt_sci(point.lb_mem_dependent),
                       fmt_sci(point.lb_mem_independent),
                       fmt_fixed(point.ratio_vs_lb, 2)});
      }
    }
    table.print(std::cout);
  }

  // ---- Hard gates. ----
  const double elapsed = total.seconds();
  std::uint64_t summa_pmax = 0;
  std::uint64_t caps_pmax = 0;
  for (const parallel::ScalingPoint& point : points) {
    if (point.spec.schedule == "summa" && point.procs > summa_pmax) {
      summa_pmax = point.procs;
    }
    if (point.spec.schedule == "caps" && point.procs > caps_pmax) {
      caps_pmax = point.procs;
    }
  }
  std::printf(
      "\nsweep: %zu points, SUMMA P up to %llu, CAPS P up to %llu, "
      "%.3fs (budget %.1fs)\n",
      points.size(), static_cast<unsigned long long>(summa_pmax),
      static_cast<unsigned long long>(caps_pmax), elapsed, budget_seconds);
  bool failed = false;
  if (summa_pmax < 1000000 || caps_pmax < 1000000) {
    std::fprintf(stderr,
                 "FAIL: sweep did not reach P >= 10^6 on both schedules\n");
    failed = true;
  }
  if (elapsed > budget_seconds) {
    std::fprintf(stderr,
                 "FAIL: sweep took %.3fs > budget %.1fs — the sparse "
                 "superstep machine has regressed\n",
                 elapsed, budget_seconds);
    failed = true;
  }
  json.write();
  return failed ? 1 : 0;
}
