// E15 — why the paper's technique is needed: spectral expansion of the
// decoding graphs.
//
// The edge-expansion proof of [6] needs the decoding graph D_k to be a
// (connected) expander. This table estimates the conductance of D_k via
// the lazy-walk spectral gap: Strassen-like bases with connected
// decoders keep lambda2 bounded away from 1, while the tensor products
// with a classical factor have DISCONNECTED decoders — lambda2 = 1,
// Cheeger bound 0, and the edge-expansion argument yields nothing. The
// path-routing certificate (bench_segment, bench_extension) covers
// those bases regardless: that is precisely the paper's contribution.
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/expansion.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

std::vector<cdag::VertexId> decode_vertices(const cdag::Cdag& graph) {
  const auto& layout = graph.layout();
  std::vector<cdag::VertexId> out;
  for (int t = 0; t <= layout.r(); ++t) {
    const std::uint64_t num_q = layout.pow_b()(layout.r() - t);
    const std::uint64_t num_p = layout.pow_a()(t);
    for (std::uint64_t q = 0; q < num_q; ++q) {
      for (std::uint64_t p = 0; p < num_p; ++p) {
        out.push_back(layout.dec(t, q, p));
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::print_banner(
      "E15: spectral expansion of decoding graphs (the [6] prerequisite)",
      "lambda2 of the lazy random walk on D_k; conductance >= (1-l2)/2\n"
      "by Cheeger. Disconnected decoders (classical tensor factors) give\n"
      "lambda2 = 1: the edge-expansion technique is empty there, while\n"
      "the path-routing certificate still applies (E9/E13).");
  support::Table table({"algorithm", "k", "|D_k|", "components", "lambda2",
                        "Cheeger lower", "[6] applies"});
  struct Case {
    const char* name;
    int k;
  };
  for (const Case c :
       {Case{"strassen", 2}, Case{"strassen", 3}, Case{"winograd", 3},
        Case{"laderman", 2}, Case{"strassen_squared", 2},
        Case{"classical2", 3}, Case{"classical2_x_strassen", 2},
        Case{"strassen_x_classical2", 2}}) {
    const auto alg = bilinear::by_name(c.name);
    const cdag::Cdag graph(alg, c.k, {.with_coefficients = false});
    const auto verts = decode_vertices(graph);
    const auto est = bounds::estimate_expansion(graph.graph(), verts, 7, 400);
    table.add_row({c.name, std::to_string(c.k), fmt_count(verts.size()),
                   std::to_string(est.components), fmt_fixed(est.lambda2, 4),
                   fmt_fixed(est.cheeger_lower(), 4),
                   est.components == 1 ? "yes" : "NO (disconnected)"});
  }
  table.print(std::cout);
  return 0;
}
