// E1 — CDAG construction and semantics.
//
// For every catalog algorithm: build G_r, report its size, copy
// structure, and base-graph properties, and validate that evaluating
// the CDAG reproduces the matrix product computed independently.
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/evaluate.hpp"
#include "pathrouting/cdag/meta.hpp"
#include "pathrouting/matmul/classical.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

bool evaluation_matches(const cdag::Cdag& graph) {
  const std::uint64_t n = graph.layout().n();
  support::Xoshiro256 rng(12345);
  const auto a = matmul::random_matrix<std::int64_t>(n, rng, -3, 3);
  const auto b = matmul::random_matrix<std::int64_t>(n, rng, -3, 3);
  const auto am = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(a.data()));
  const auto bm = cdag::to_morton<std::int64_t>(
      graph, std::span<const std::int64_t>(b.data()));
  const auto c_flat = cdag::from_morton<std::int64_t>(
      graph, cdag::evaluate<std::int64_t>(graph, am, bm));
  const auto ref = matmul::naive_multiply(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (ref(i, j) != c_flat[i * n + j]) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_banner(
      "E1: CDAG construction and semantics",
      "Claim: G_r (Section 3) computes C = AB for every Strassen-like base;\n"
      "copying appears exactly at trivial encoding rows (meta-vertices).");

  support::Table table(
      {"algorithm", "n0", "b", "omega0", "r", "n", "|V|", "|E|", "dup",
       "multi-copy", "enc-cc", "dec-cc", "single-use", "eval", "build-s"});
  bench::BenchJson json("cdag");
  for (const auto& name : bilinear::catalog_names()) {
    const auto alg = bilinear::by_name(name);
    const int r = alg.n0() == 2 ? 5 : (alg.b() <= 27 ? 3 : 2);
    bench::Stopwatch timer;
    const cdag::Cdag graph(alg, r);
    const double build = timer.seconds();
    json.add_record()
        .set("experiment", "cdag_build")
        .set("algorithm", name)
        .set("r", r)
        .set("vertices", graph.graph().num_vertices())
        .set("edges", graph.graph().num_edges())
        .set("duplicated", cdag::count_duplicated_vertices(graph))
        .set("build_seconds", build)
        .set("max_rss_bytes", obs::max_rss_bytes());
    table.add_row(
        {name, std::to_string(alg.n0()), std::to_string(alg.b()),
         fmt_fixed(alg.omega0(), 4), std::to_string(r),
         std::to_string(graph.layout().n()),
         fmt_count(graph.graph().num_vertices()),
         fmt_count(graph.graph().num_edges()),
         fmt_count(cdag::count_duplicated_vertices(graph)),
         cdag::has_multiple_copying(graph) ? "yes" : "no",
         std::to_string(bilinear::encoding_components(alg, bilinear::Side::A)),
         std::to_string(bilinear::decoding_components(alg)),
         bilinear::satisfies_single_use_assumption(alg) ? "yes" : "no",
         evaluation_matches(graph) ? "OK" : "FAIL", fmt_fixed(build, 3)});
  }
  table.print(std::cout);
  std::cout << "\nNote: classical bases are omega0 = 3 (excluded from Theorem "
               "1) and exhibit\nthe multiple copying of Figure 2; "
               "classical2_x_strassen is the disconnected-\ndecoding case "
               "that defeats the edge-expansion proof of [6].\n";
  return 0;
}
