// E10 — Lemma 5 / Theorem 3: the Hall condition and the many-to-one
// matching for every catalog base.
//
// Lemma 5: |N(D)| >= |D|/n0 for every set D of guaranteed dependencies
// of G'_1 — checked exhaustively for n0 = 2 (256 subsets per side) and
// by max-flow feasibility in general (the two are equivalent by Hall's
// theorem). Theorem 3's matching is constructed and its load profile
// over the middle-rank vertices reported.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/routing/hall.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using routing::Side;
using support::fmt_fixed;
}  // namespace

int main() {
  bench::print_banner(
      "E10: Lemma 5 (Hall condition) and Theorem 3 (matching)",
      "For each base and side: Hall condition (exhaustive where n0=2,\n"
      "flow otherwise), matching construction, and the load the matching\n"
      "places on the busiest middle-rank vertex (must be <= n0).");

  support::Table table({"algorithm", "side", "pairs |X|", "hall", "exhaustive",
                        "matched", "max load", "cap n0", "used products",
                        "sec"});
  for (const auto& name : bilinear::catalog_names()) {
    const auto alg = bilinear::by_name(name);
    for (const Side side : {Side::A, Side::B}) {
      bench::Stopwatch timer;
      const bool hall = routing::hall_condition_flow(alg, side);
      const std::string exhaustive =
          alg.n0() == 2
              ? (routing::hall_condition_exhaustive(alg, side) ? "yes" : "NO")
              : "(n/a)";
      const auto matching = routing::compute_base_matching(alg, side);
      int max_load = 0;
      int used = 0;
      const int pairs = alg.n0() * alg.n0() * alg.n0();
      if (matching.has_value()) {
        std::map<int, int> load;
        for (int d_in = 0; d_in < alg.a(); ++d_in) {
          for (int d_out = 0; d_out < alg.a(); ++d_out) {
            if (matching->defined(d_in, d_out)) {
              ++load[matching->product(d_in, d_out)];
            }
          }
        }
        used = static_cast<int>(load.size());
        for (const auto& [q, l] : load) max_load = std::max(max_load, l);
      }
      table.add_row({name, side == Side::A ? "A" : "B", std::to_string(pairs),
                     hall ? "holds" : "FAILS", exhaustive,
                     matching.has_value() ? "yes" : "NO",
                     std::to_string(max_load), std::to_string(alg.n0()),
                     std::to_string(used) + "/" + std::to_string(alg.b()),
                     fmt_fixed(timer.seconds(), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery base satisfies Lemma 5 on both sides (as the paper\n"
               "proves any correct fast algorithm must), and the flow-based\n"
               "decision agrees with the exhaustive one where both run.\n";
  return 0;
}
