// E9/E11 — the segment argument (Sections 5 and 6) on real schedules.
//
// For each schedule the certifier partitions the computation into
// segments of 36M counted vertices (inputs/outputs of an
// input-disjoint family of G_k's, Lemma 1) and computes the boundary
// |delta'(S')| exactly. The paper proves |delta'(S')| >= |S_bar|/12
// (Equation 2), hence >= 3M, hence >= M I/Os per segment; the pebble
// simulation confirms the I/O consequence segment by segment via the
// vertex-level boundary.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/hong_kung.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
}  // namespace

int main() {
  bench::print_banner(
      "E9: Equation (2) and the per-segment I/O bound",
      "For every schedule: every complete segment satisfies\n"
      "|delta'(S')| >= |S_bar|/12 and >= 3M (Theorem 1's engine), and the\n"
      "simulated I/O attributed to each segment is >= vertex-boundary - 2M.");

  const auto alg = bilinear::strassen();
  const std::uint64_t m = 8;
  const cdag::Cdag graph(alg, 7, {.with_coefficients = false});
  support::Table table({"schedule", "k", "|C|", "Lemma1 min", "segments",
                        "min delta'/Sbar", "min delta'", "3M", "IO bound",
                        "sim IO", "per-seg ok"});
  struct Named {
    std::string name;
    std::vector<cdag::VertexId> order;
  };
  std::vector<Named> schedules;
  schedules.push_back({"dfs", schedule::dfs_schedule(graph)});
  schedules.push_back({"bfs", schedule::bfs_schedule(graph)});
  schedules.push_back(
      {"random-1", schedule::random_topological_schedule(graph.graph(), 1)});
  schedules.push_back(
      {"random-2", schedule::random_topological_schedule(graph.graph(), 2)});
  // The four certifications are independent; run them as one batch on
  // the thread pool (PR_THREADS) — results are slot-for-slot identical
  // to certifying each schedule alone.
  std::vector<bounds::CertifyJob> jobs;
  jobs.reserve(schedules.size());
  for (const auto& [name, order] : schedules) {
    jobs.push_back({.schedule = order, .params = {.cache_size = m}});
  }
  bench::Stopwatch batch_timer;
  const std::vector<bounds::CertifyResult> certs =
      bounds::certify_segments_batch(graph, jobs);
  const double batch_seconds = batch_timer.seconds();
  bench::BenchJson json("segment");
  for (std::size_t si = 0; si < schedules.size(); ++si) {
    const auto& [name, order] = schedules[si];
    const auto& cert = certs[si];
    double min_ratio = 1e18;
    std::uint64_t min_delta = UINT64_MAX;
    for (const auto& seg : cert.segments) {
      if (!seg.complete) continue;
      min_ratio = std::min(min_ratio, static_cast<double>(seg.boundary) /
                                          static_cast<double>(seg.s_bar));
      min_delta = std::min(min_delta, seg.boundary);
    }
    pebble::PebbleOptions opts{.cache_size = m};
    opts.segment_ends =
        cert.segment_ends(static_cast<std::uint32_t>(order.size()));
    const auto sim =
        pebble::simulate(graph.graph(), order, opts, [&](cdag::VertexId v) {
          return graph.layout().is_output(v);
        });
    bool per_seg_ok = true;
    for (std::size_t i = 0; i < cert.segments.size(); ++i) {
      const std::uint64_t attributed =
          sim.segment_reads[i] + sim.segment_writes[i];
      const std::uint64_t bv = cert.segments[i].boundary_vertices;
      if (attributed + 2 * m < bv) per_seg_ok = false;
    }
    json.add_record()
        .set("experiment", "certify")
        .set("schedule", name)
        .set("k", cert.k)
        .set("family_size", cert.family_size)
        .set("complete_segments", cert.complete_segments())
        .set("io_lower_bound", cert.io_lower_bound(m))
        .set("sim_io", sim.io())
        .set("per_segment_ok", per_seg_ok)
        .set("batch_seconds", batch_seconds);
    table.add_row(
        {name, std::to_string(cert.k), fmt_count(cert.family_size),
         fmt_count(cert.family_guaranteed),
         fmt_count(cert.complete_segments()), fmt_fixed(min_ratio, 3),
         fmt_count(min_delta), fmt_count(3 * m),
         fmt_count(cert.io_lower_bound(m)), fmt_count(sim.io()),
         per_seg_ok ? "OK" : "VIOLATED"});
  }
  table.print(std::cout);
  std::cout << "\n'min delta'/Sbar' >= 1/12 = 0.083 is Equation (2); "
               "'min delta'' >= 3M\nis the step that makes every complete "
               "segment cost at least M I/Os.\n";

  bench::print_banner(
      "E9b: Section 5 decode-only certifier (Equation 1)",
      "Counting only decoding-rank-k vertices with quota 66M:\n"
      "|delta(S)| >= |S_bar|/22 for every complete segment.");
  {
    support::Table t5({"schedule", "k", "segments", "min delta/Sbar",
                       "min delta", "3M"});
    const cdag::Cdag g5(alg, 6, {.with_coefficients = false});
    const std::uint64_t m5 = 2;
    for (const auto& [name, order] :
         std::initializer_list<std::pair<const char*, std::vector<cdag::VertexId>>>{
             {"dfs", schedule::dfs_schedule(g5)},
             {"bfs", schedule::bfs_schedule(g5)},
             {"random", schedule::random_topological_schedule(g5.graph(), 3)}}) {
      const auto cert =
          bounds::certify_segments_decode_only(g5, order, {.cache_size = m5});
      double min_ratio = 1e18;
      std::uint64_t min_delta = UINT64_MAX;
      for (const auto& seg : cert.segments) {
        if (!seg.complete) continue;
        min_ratio = std::min(min_ratio, static_cast<double>(seg.boundary) /
                                            static_cast<double>(seg.s_bar));
        min_delta = std::min(min_delta, seg.boundary);
      }
      t5.add_row({name, std::to_string(cert.k),
                  fmt_count(cert.complete_segments()), fmt_fixed(min_ratio, 3),
                  fmt_count(min_delta), fmt_count(3 * m5)});
    }
    t5.print(std::cout);
  }

  bench::print_banner(
      "E9c: the Hong-Kung partition lemma [10] on real executions",
      "Re-segmenting each execution by M I/Os: every segment's dominator\n"
      "and minimum set stay within M + io(S) (~2M) — the classical\n"
      "machinery the path-routing technique supersedes for fast matmul.");
  {
    support::Table thk({"schedule", "M", "segments", "max dominator",
                        "max minimum", "~2M", "lemma"});
    const cdag::Cdag ghk(alg, 6, {.with_coefficients = false});
    const auto is_out = [&](cdag::VertexId v) {
      return ghk.layout().is_output(v);
    };
    for (const std::uint64_t mhk : {16ull, 64ull}) {
      for (const auto& [name, order] :
           std::initializer_list<
               std::pair<const char*, std::vector<cdag::VertexId>>>{
               {"dfs", schedule::dfs_schedule(ghk)},
               {"random", schedule::random_topological_schedule(ghk.graph(), 6)}}) {
        pebble::PebbleOptions opts{.cache_size = mhk};
        opts.record_step_io = true;
        const auto sim = pebble::simulate(ghk.graph(), order, opts, is_out);
        const auto hk =
            bounds::hong_kung_partition(ghk.graph(), order, sim.step_io, mhk);
        thk.add_row({name, fmt_count(mhk), fmt_count(hk.segments.size()),
                     fmt_count(hk.max_dominator()), fmt_count(hk.max_minimum()),
                     fmt_count(2 * mhk),
                     hk.lemma_holds() ? "holds" : "VIOLATED"});
      }
    }
    thk.print(std::cout);
  }

  bench::print_banner(
      "E11: Lemma 1 — input-disjoint families across the catalog",
      "The greedy family keeps at least a 1/b^2 fraction of the b^{r-k}\n"
      "subcomputations (usually far more).");
  {
    support::Table t11({"algorithm", "r", "k", "subcomputations", "kept",
                        "guaranteed (1/b^2)", "fraction"});
    for (const char* name :
         {"strassen", "winograd", "laderman", "strassen_squared"}) {
      const auto a = bilinear::by_name(name);
      const int r = a.n0() == 2 ? 5 : 3;
      const cdag::Cdag g(a, r, {.with_coefficients = false});
      const int k = 1;
      const auto family = bounds::build_disjoint_family(g, k);
      const std::uint64_t total =
          g.layout().pow_b()(g.layout().r() - k);
      t11.add_row({name, std::to_string(r), std::to_string(k),
                   fmt_count(total), fmt_count(family.prefixes.size()),
                   fmt_count(family.guaranteed),
                   fmt_fixed(static_cast<double>(family.prefixes.size()) /
                                 static_cast<double>(total),
                             3)});
    }
    t11.print(std::cout);
  }
  return 0;
}
