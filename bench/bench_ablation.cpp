// E12 — ablations on the design choices DESIGN.md calls out.
//
//  (a) Eviction policy: Belady vs LRU across cache sizes — how much of
//      the measured I/O headroom is policy, not schedule.
//  (b) Schedule: DFS vs BFS vs random — the DFS order is what makes
//      the upper bound match the lower bound.
//  (c) Segment quota: Equation (2) is checked for quotas other than the
//      paper's 36M; the 1/12 constant survives (footnote 1: constants
//      were not optimised).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
}  // namespace

int main() {
  const auto alg = bilinear::strassen();
  const cdag::Cdag graph(alg, 6, {.with_coefficients = false});
  const auto is_out = [&](cdag::VertexId v) {
    return graph.layout().is_output(v);
  };

  bench::print_banner(
      "E12a: eviction policy ablation (Strassen r=6, DFS schedule)",
      "Belady (offline optimal replacement) vs LRU: the gap quantifies\n"
      "how much replacement policy matters relative to schedule choice.");
  {
    support::Table table({"M", "IO Belady", "IO LRU", "LRU/Belady"});
    const auto order = schedule::dfs_schedule(graph);
    for (const std::uint64_t m : {16ull, 64ull, 256ull, 1024ull}) {
      const auto belady = pebble::simulate(
          graph.graph(), order,
          {.cache_size = m, .eviction = pebble::Eviction::Belady}, is_out);
      const auto lru = pebble::simulate(
          graph.graph(), order,
          {.cache_size = m, .eviction = pebble::Eviction::Lru}, is_out);
      table.add_row({fmt_count(m), fmt_count(belady.io()), fmt_count(lru.io()),
                     fmt_fixed(static_cast<double>(lru.io()) /
                                   static_cast<double>(belady.io()),
                               3)});
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E12b: schedule ablation (Strassen r=6, Belady)",
      "The recursive DFS order attains the lower bound within a constant;\n"
      "BFS streams whole ranks and random orders thrash.");
  {
    support::Table table({"M", "IO dfs", "IO bfs", "IO random", "bfs/dfs",
                          "random/dfs"});
    const auto dfs = schedule::dfs_schedule(graph);
    const auto bfs = schedule::bfs_schedule(graph);
    const auto rnd = schedule::random_topological_schedule(graph.graph(), 5);
    for (const std::uint64_t m : {64ull, 256ull, 1024ull}) {
      const auto rd = pebble::simulate(graph.graph(), dfs, {.cache_size = m},
                                       is_out);
      const auto rb = pebble::simulate(graph.graph(), bfs, {.cache_size = m},
                                       is_out);
      const auto rr = pebble::simulate(graph.graph(), rnd, {.cache_size = m},
                                       is_out);
      table.add_row(
          {fmt_count(m), fmt_count(rd.io()), fmt_count(rb.io()),
           fmt_count(rr.io()),
           fmt_fixed(static_cast<double>(rb.io()) / rd.io(), 2),
           fmt_fixed(static_cast<double>(rr.io()) / rd.io(), 2)});
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E12c: segment quota sensitivity (Equation 2)",
      "min |delta'(S')| / |S_bar| over complete segments, for varying\n"
      "quotas (paper: 36M with ratio >= 1/12 = 0.083). The inequality\n"
      "holds with slack at every quota, confirming the constants are\n"
      "conservative rather than tight.");
  {
    support::Table table({"quota", "k", "segments", "min ratio", "paper 1/12"});
    const auto order = schedule::random_topological_schedule(graph.graph(), 9);
    // Quotas above 72 would need k > r-2 at r = 6 (Lemma 1's hypothesis).
    for (const std::uint64_t quota : {4ull, 8ull, 16ull, 36ull, 72ull}) {
      const auto cert = bounds::certify_segments(
          graph, order, {.cache_size = 1, .s_bar_target = quota});
      double min_ratio = 1e18;
      for (const auto& seg : cert.segments) {
        if (!seg.complete) continue;
        min_ratio = std::min(min_ratio, static_cast<double>(seg.boundary) /
                                            static_cast<double>(seg.s_bar));
      }
      table.add_row({fmt_count(quota), std::to_string(cert.k),
                     fmt_count(cert.complete_segments()),
                     fmt_fixed(min_ratio, 3), "0.083"});
    }
    table.print(std::cout);
  }
  return 0;
}
