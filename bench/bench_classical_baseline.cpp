// E7 — classical baseline and crossover.
//
// (a) The flat classical CDAG under blocked schedules follows
//     Hong-Kung's Theta(n^3 / sqrt(M)) — slope 3 in n, slope -1/2 in M
//     — with the blocked tile ~ sqrt(M/3) far better than the naive
//     order.
// (b) Crossover: at fixed M, Strassen's CDAG costs more I/O than
//     classical for small n (bigger constants) and wins as n grows
//     (exponent 2.81 vs 3).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/formulas.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/flat_classical.hpp"
#include "pathrouting/pebble/cache_sim.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/table.hpp"

namespace {
using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;
}  // namespace

int main() {
  bench::print_banner(
      "E7a: Hong-Kung baseline — blocked classical matmul",
      "Flat classical CDAG, blocked schedule with tile ~ sqrt(M/3),\n"
      "Belady eviction. IO should track c * n^3 / sqrt(M); the naive\n"
      "(tile = n) order pays ~n^3.");
  {
    support::Table table({"n", "M", "tile", "IO blocked", "IO naive",
                          "n^3/sqrt(M)", "ratio", "HK bound"});
    for (const int n : {16, 32, 48, 64}) {
      const cdag::FlatClassicalCdag flat(n);
      const auto is_out = [&](cdag::VertexId v) {
        return flat.graph().out_degree(v) == 0 && flat.graph().in_degree(v) > 0;
      };
      for (const std::uint64_t m : {48ull, 192ull, 768ull}) {
        if (m >= static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n)) {
          continue;
        }
        const int tile = std::max(
            1, static_cast<int>(std::sqrt(static_cast<double>(m) / 3.0)));
        const auto blocked =
            pebble::simulate(flat.graph(), flat.blocked_schedule(tile),
                             {.cache_size = m}, is_out);
        const auto naive =
            pebble::simulate(flat.graph(), flat.blocked_schedule(n),
                             {.cache_size = m}, is_out);
        const double model =
            std::pow(n, 3) / std::sqrt(static_cast<double>(m));
        table.add_row({std::to_string(n), fmt_count(m), std::to_string(tile),
                       fmt_count(blocked.io()), fmt_count(naive.io()),
                       fmt_count(static_cast<std::uint64_t>(model)),
                       fmt_fixed(blocked.io() / model, 2),
                       fmt_count(static_cast<std::uint64_t>(std::max(
                           0.0, bounds::hong_kung_classical(
                                    n, static_cast<double>(m)))))});
      }
    }
    table.print(std::cout);
  }

  bench::print_banner(
      "E7c: loop-order ablation (flat classical, n = 48)",
      "The six classical loop nestings differ only in traversal order;\n"
      "their pebble-game I/O differs by which operand streams and which\n"
      "reuses — the textbook locality effect, reproduced on the exact\n"
      "model. All are far above the blocked schedule.");
  {
    using LO = cdag::FlatClassicalCdag::LoopOrder;
    const int n = 48;
    const cdag::FlatClassicalCdag flat(n);
    const auto is_out = [&](cdag::VertexId v) {
      return flat.graph().out_degree(v) == 0 && flat.graph().in_degree(v) > 0;
    };
    const std::uint64_t m = 192;
    support::Table table({"order", "IO", "vs blocked"});
    const auto blocked = pebble::simulate(flat.graph(), flat.blocked_schedule(8),
                                          {.cache_size = m}, is_out);
    struct Named {
      const char* name;
      LO order;
    };
    for (const Named c : {Named{"ijk", LO::kIJK}, Named{"ikj", LO::kIKJ},
                          Named{"jik", LO::kJIK}, Named{"jki", LO::kJKI},
                          Named{"kij", LO::kKIJ}, Named{"kji", LO::kKJI}}) {
      const auto res = pebble::simulate(flat.graph(), flat.loop_schedule(c.order),
                                        {.cache_size = m}, is_out);
      table.add_row({c.name, fmt_count(res.io()),
                     fmt_fixed(static_cast<double>(res.io()) /
                                   static_cast<double>(blocked.io()),
                               2)});
    }
    table.add_row({"blocked(8)", fmt_count(blocked.io()), "1.00"});
    table.print(std::cout);
  }

  bench::print_banner(
      "E7b: classical vs Strassen I/O crossover",
      "Both run as recursive CDAGs (DFS schedule, Belady) at fixed M.\n"
      "classical2 has omega0 = 3, strassen 2.81: the ratio\n"
      "IO(classical)/IO(strassen) grows with n and crosses 1.");
  {
    support::Table table(
        {"r", "n", "M", "IO classical2", "IO strassen", "classical/strassen"});
    const auto cls = bilinear::classical(2);
    const auto str = bilinear::strassen();
    for (const int r : {4, 5, 6, 7}) {
      const cdag::Cdag gc(cls, r, {.with_coefficients = false});
      const cdag::Cdag gs(str, r, {.with_coefficients = false});
      const auto oc = schedule::dfs_schedule(gc);
      const auto os = schedule::dfs_schedule(gs);
      const std::uint64_t m = 64;
      const auto rc = pebble::simulate(
          gc.graph(), oc, {.cache_size = m},
          [&](cdag::VertexId v) { return gc.layout().is_output(v); });
      const auto rs = pebble::simulate(
          gs.graph(), os, {.cache_size = m},
          [&](cdag::VertexId v) { return gs.layout().is_output(v); });
      table.add_row({std::to_string(r), fmt_count(gc.layout().n()),
                     fmt_count(m), fmt_count(rc.io()), fmt_count(rs.io()),
                     fmt_fixed(static_cast<double>(rc.io()) /
                                   static_cast<double>(rs.io()),
                               3)});
    }
    table.print(std::cout);
    std::cout << "\nThe last column increases by ~(8/7) per recursion level\n"
                 "(= 2^3 / 2^{log2 7}), the asymptotic separation Theorem 1\n"
                 "proves is unavoidable for classical but beatable by\n"
                 "Strassen-like algorithms.\n";
  }
  return 0;
}
