// E2-E5 — the routing theorems, verified by two engines.
//
//   E2 (Theorem 2): 6 a^k-routing between In and Out of G_k.
//   E3 (Lemma 3):   2 n0^k-routing of chains for guaranteed deps.
//   E4 (Lemma 4):   every chain reused exactly 3 n0^k times.
//   E5 (Claim 1):   |D_1| * max(a,b)^k-routing in the decoding graph.
//
// The brute engine enumerates every path (the oracle); the memoized
// engine (routing/memo_routing.hpp) fills the same hit arrays from the
// closed forms on a canonical G_k copy. Where both engines run, the
// full per-vertex arrays are compared bit for bit and the memo record
// carries counts_bit_identical plus the measured speedup. Any
// divergence or bound violation makes the bench exit nonzero, so CI
// can run it as a perf smoke test (--engine=memo --kmax=N under
// timeout).
//
// The implicit engine is the third column: the same closed forms
// evaluated through cdag::ImplicitCdag (no CSR arrays, no per-vertex
// hit arrays — digit-state DP only), so its records measure the
// constant-memory verification path and carry max_rss_bytes. Its
// stats must match the memoized engine's bit for bit.
//
// Flags:
//   --engine=both|memo|brute|implicit  which engines (default both=all)
//   --kmax=N                   cap every case's k (0 = per-case table)
//   --kmax-brute=N             cap only the brute engine's k
//   --full-catalog             add every catalog algorithm at k <= 3
#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/obs/export.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

struct Options {
  bool run_brute = true;
  bool run_memo = true;
  bool run_implicit = true;
  int kmax = 0;        // 0 = per-case table
  int kmax_brute = 0;  // 0 = per-case table
  bool full_catalog = false;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--engine=")) {
      const std::string engine = arg.substr(std::strlen("--engine="));
      opt.run_brute = engine == "both" || engine == "brute";
      opt.run_memo = engine == "both" || engine == "memo";
      opt.run_implicit = engine == "both" || engine == "implicit";
      if (!opt.run_brute && !opt.run_memo && !opt.run_implicit) {
        std::fprintf(stderr,
                     "unknown engine \"%s\" (valid engines: both, memo, "
                     "brute, implicit)\n",
                     engine.c_str());
        std::exit(2);
      }
    } else if (arg.starts_with("--kmax=")) {
      opt.kmax = std::atoi(arg.c_str() + std::strlen("--kmax="));
    } else if (arg.starts_with("--kmax-brute=")) {
      opt.kmax_brute = std::atoi(arg.c_str() + std::strlen("--kmax-brute="));
    } else if (arg == "--full-catalog") {
      opt.full_catalog = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_routing "
                   "[--engine=both|memo|brute|implicit] [--kmax=N] "
                   "[--kmax-brute=N] [--full-catalog]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

struct Case {
  std::string name;
  int kmax_brute;
  int kmax_memo;
};

/// A case with the CLI caps applied per engine. The implicit engine
/// shares the memoized k table (both evaluate closed forms; the
/// implicit engine's far larger feasible k lives in bench_implicit).
struct ActiveCase {
  std::string name;
  int kmax_brute = 0;
  int kmax_memo = 0;
  int kmax_implicit = 0;
  [[nodiscard]] int kmax() const {
    return std::max({kmax_brute, kmax_memo, kmax_implicit});
  }
};

ActiveCase capped(const Options& opt, const Case& raw) {
  ActiveCase c{raw.name, raw.kmax_brute, raw.kmax_memo, raw.kmax_memo};
  if (opt.kmax > 0) {
    c.kmax_brute = std::min(c.kmax_brute, opt.kmax);
    c.kmax_memo = std::min(c.kmax_memo, opt.kmax);
    c.kmax_implicit = std::min(c.kmax_implicit, opt.kmax);
  }
  if (opt.kmax_brute > 0) c.kmax_brute = std::min(c.kmax_brute, opt.kmax_brute);
  if (!opt.run_brute) c.kmax_brute = 0;
  if (!opt.run_memo) c.kmax_memo = 0;
  if (!opt.run_implicit) c.kmax_implicit = 0;
  return c;
}

/// --full-catalog: every catalog algorithm at k <= 3 (capped so the
/// CDAG stays under ~4M vertices), appended after the headline cases.
void add_catalog_cases(std::vector<Case>& cases, int kmax,
                       bool decode_only) {
  for (const std::string& name : bilinear::catalog_names()) {
    if (std::any_of(cases.begin(), cases.end(),
                    [&](const Case& c) { return c.name == name; })) {
      continue;
    }
    const auto alg = bilinear::by_name(name);
    if (decode_only && bilinear::decoding_components(alg) != 1) continue;
    int k = kmax;
    while (k > 1 &&
           cdag::Layout(alg.n0(), alg.b(), k).num_vertices() > 4000000) {
      --k;
    }
    cases.push_back({name, k, k});
  }
}

bool hits_equal(const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
  return a == b;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  bool failed = false;

  bench::print_banner(
      "E2/E3/E4: Lemma 3, Lemma 4 and the Routing Theorem (Theorem 2)",
      "Claim: chains for all guaranteed dependencies hit every vertex at\n"
      "most 2 n0^k times; the Lemma-4 concatenation uses every chain\n"
      "exactly 3 n0^k times; the composed routing hits every vertex and\n"
      "every meta-vertex at most 6 a^k times. The memoized engine must\n"
      "reproduce the brute-force hit arrays bit for bit.");

  support::Table table({"algorithm", "k", "engine", "chains", "L3 max",
                        "L3 bound", "L4 exact", "T2 max", "T2 meta",
                        "T2 bound", "ok", "sec", "speedup"});
  bench::BenchJson json("routing_memo");

  std::vector<Case> chain_cases = {{"strassen", 6, 7},
                                   {"winograd", 6, 7},
                                   {"laderman", 3, 4},
                                   {"strassen_squared", 3, 3},
                                   {"strassen_x_classical2", 3, 3}};
  if (opt.full_catalog) add_catalog_cases(chain_cases, 3, false);

  for (const Case& raw : chain_cases) {
    const ActiveCase c = capped(opt, raw);
    const auto alg = bilinear::by_name(c.name);
    const routing::ChainRouter router(alg);
    const routing::MemoRoutingEngine memo(router);
    for (int k = 1; k <= c.kmax(); ++k) {
      // The implicit engine needs no materialized graph; only the
      // array-backed engines do.
      std::optional<cdag::Cdag> graph;
      std::optional<cdag::SubComputation> sub;
      if (k <= c.kmax_brute || k <= c.kmax_memo) {
        graph.emplace(alg, k, cdag::CdagOptions{.with_coefficients = false});
        sub.emplace(*graph, k, 0);
      }

      struct ChainRun {
        routing::ChainHitCounts counts;
        routing::HitStats l3;
        bool l4 = false;
        routing::FullRoutingStats t2;
        double secs = 0;
        [[nodiscard]] bool ok() const { return l3.ok() && l4 && t2.ok(); }
      };
      std::optional<ChainRun> brute, memo_run;

      if (k <= c.kmax_brute) {
        bench::Stopwatch timer;
        ChainRun run;
        run.counts = routing::count_chain_hits(router, *sub);
        run.l3 = routing::chain_stats_from_counts(run.counts, *sub);
        run.l4 = routing::verify_chain_multiplicities(router, *sub);
        run.t2 = routing::full_routing_from_chain_counts(*sub, run.counts);
        run.secs = timer.seconds();
        brute.emplace(std::move(run));
      }
      if (k <= c.kmax_memo) {
        bench::Stopwatch timer;
        ChainRun run;
        run.counts = memo.chain_hits(*sub);
        run.l3 = routing::chain_stats_from_counts(run.counts, *sub);
        run.l4 = memo.verify_chain_multiplicities(*sub);
        run.t2 = routing::full_routing_from_chain_counts(*sub, run.counts);
        run.secs = timer.seconds();
        memo_run.emplace(std::move(run));
      }

      const auto emit = [&](const ChainRun& run, routing::EngineKind kind) {
        const char* engine = routing::engine_name(kind);
        auto& rec = json.add_record()
                        .set("experiment", "chain_routing")
                        .set("algorithm", c.name)
                        .set("k", k)
                        .set("engine", engine)
                        .set("chains", run.l3.num_paths)
                        .set("l3_max_hits", run.l3.max_hits)
                        .set("l3_bound", run.l3.bound)
                        .set("l4_exact", run.l4)
                        .set("t2_max_vertex_hits", run.t2.max_vertex_hits)
                        .set("t2_max_meta_hits", run.t2.max_meta_hits)
                        .set("t2_bound", run.t2.bound)
                        .set("ok", run.ok())
                        .set("seconds", run.secs)
                        .set("max_rss_bytes", obs::max_rss_bytes());
        std::string speed = "-";
        if (kind == routing::EngineKind::kMemo && brute.has_value()) {
          const bool identical =
              hits_equal(run.counts.hits, brute->counts.hits) &&
              run.counts.num_chains == brute->counts.num_chains &&
              run.counts.max_hits == brute->counts.max_hits &&
              run.counts.argmax == brute->counts.argmax;
          const double speedup =
              run.secs > 0 ? brute->secs / run.secs : 0.0;
          rec.set("counts_bit_identical", identical).set("speedup", speedup);
          speed = fmt_fixed(speedup, 1) + "x";
          if (!identical) {
            std::fprintf(stderr,
                         "DIVERGENCE: %s k=%d memo chain counts differ "
                         "from brute\n",
                         c.name.c_str(), k);
            failed = true;
          }
        }
        if (!run.ok()) failed = true;
        table.add_row({c.name, std::to_string(k), engine,
                       fmt_count(run.l3.num_paths), fmt_count(run.l3.max_hits),
                       fmt_count(run.l3.bound), run.l4 ? "yes" : "NO",
                       fmt_count(run.t2.max_vertex_hits),
                       fmt_count(run.t2.max_meta_hits),
                       fmt_count(run.t2.bound), run.ok() ? "OK" : "VIOLATED",
                       fmt_fixed(run.secs, 2), speed});
      };
      if (brute) emit(*brute, routing::EngineKind::kBrute);
      if (memo_run) emit(*memo_run, routing::EngineKind::kMemo);

      if (k <= c.kmax_implicit) {
        bench::Stopwatch timer;
        const cdag::ImplicitCdag iview(alg, k);
        const routing::HitStats l3 = memo.verify_chain_routing(iview, k, 0);
        const bool l4 = memo.verify_chain_multiplicities(iview, k, 0);
        const routing::FullRoutingStats t2 =
            memo.verify_full_routing(iview, k, 0);
        const double secs = timer.seconds();
        const bool run_ok = l3.ok() && l4 && t2.ok();
        auto& rec = json.add_record()
                        .set("experiment", "chain_routing")
                        .set("algorithm", c.name)
                        .set("k", k)
                        .set("engine",
                             routing::engine_name(
                                 routing::EngineKind::kImplicit))
                        .set("chains", l3.num_paths)
                        .set("l3_max_hits", l3.max_hits)
                        .set("l3_bound", l3.bound)
                        .set("l4_exact", l4)
                        .set("t2_max_vertex_hits", t2.max_vertex_hits)
                        .set("t2_max_meta_hits", t2.max_meta_hits)
                        .set("t2_bound", t2.bound)
                        .set("ok", run_ok)
                        .set("seconds", secs)
                        .set("max_rss_bytes", obs::max_rss_bytes());
        std::string speed = "-";
        if (memo_run.has_value()) {
          const bool identical =
              l3.num_paths == memo_run->l3.num_paths &&
              l3.max_hits == memo_run->l3.max_hits &&
              l3.bound == memo_run->l3.bound &&
              l3.argmax == memo_run->l3.argmax && l4 == memo_run->l4 &&
              t2.num_paths == memo_run->t2.num_paths &&
              t2.max_vertex_hits == memo_run->t2.max_vertex_hits &&
              t2.argmax_vertex == memo_run->t2.argmax_vertex &&
              t2.max_meta_hits == memo_run->t2.max_meta_hits &&
              t2.bound == memo_run->t2.bound &&
              t2.root_hit_property == memo_run->t2.root_hit_property;
          const double speedup = secs > 0 ? memo_run->secs / secs : 0.0;
          rec.set("counts_bit_identical", identical).set("speedup", speedup);
          speed = fmt_fixed(speedup, 1) + "x";
          if (!identical) {
            std::fprintf(stderr,
                         "DIVERGENCE: %s k=%d implicit chain stats differ "
                         "from memo\n",
                         c.name.c_str(), k);
            failed = true;
          }
        }
        if (!run_ok) failed = true;
        table.add_row(
            {c.name, std::to_string(k),
             routing::engine_name(routing::EngineKind::kImplicit),
             fmt_count(l3.num_paths), fmt_count(l3.max_hits),
             fmt_count(l3.bound), l4 ? "yes" : "NO",
             fmt_count(t2.max_vertex_hits), fmt_count(t2.max_meta_hits),
             fmt_count(t2.bound), run_ok ? "OK" : "VIOLATED",
             fmt_fixed(secs, 2), speed});
      }
    }
  }
  table.print(std::cout);

  bench::print_banner(
      "E5: Claim 1 — the decoding-graph routing of Section 5",
      "Claim: for bases with a connected decoding graph there is an\n"
      "(|D_1| * max(a,b)^k)-routing between the inputs and outputs of D_k\n"
      "(11 * 7^k for Strassen). The brute engine enumerates every\n"
      "zig-zag; the memoized engine fills the array from the D_1 visit\n"
      "tables.");
  support::Table claim1({"algorithm", "k", "engine", "paths", "max hits",
                         "bound", "slack", "ok", "sec", "speedup"});

  std::vector<Case> decode_cases = {
      {"strassen", 5, 6}, {"winograd", 5, 6}, {"laderman", 3, 4}};
  if (opt.full_catalog) add_catalog_cases(decode_cases, 3, true);

  for (const Case& raw : decode_cases) {
    const ActiveCase c = capped(opt, raw);
    const auto alg = bilinear::by_name(c.name);
    const routing::ChainRouter router(alg);
    const routing::DecodeRouter decoder(alg);
    const routing::MemoRoutingEngine memo(router, decoder);
    for (int k = 1; k <= c.kmax(); ++k) {
      std::optional<cdag::Cdag> graph;
      std::optional<cdag::SubComputation> sub;
      if (k <= c.kmax_brute || k <= c.kmax_memo) {
        graph.emplace(alg, k, cdag::CdagOptions{.with_coefficients = false});
        sub.emplace(*graph, k, 0);
      }

      struct DecodeRun {
        std::vector<std::uint64_t> hits;
        routing::HitStats stats;
        double secs = 0;
      };
      std::optional<DecodeRun> brute, memo_run;

      if (k <= c.kmax_brute) {
        bench::Stopwatch timer;
        DecodeRun run;
        run.hits = routing::count_decode_hits(decoder, *sub);
        const auto& layout = graph->layout();
        run.stats.num_paths = layout.pow_b()(k) * layout.pow_a()(k);
        run.stats.bound =
            static_cast<std::uint64_t>(decoder.d1_size()) *
            std::max(layout.pow_a()(k), layout.pow_b()(k));
        for (cdag::VertexId v = 0; v < run.hits.size(); ++v) {
          if (run.hits[v] > run.stats.max_hits) {
            run.stats.max_hits = run.hits[v];
            run.stats.argmax = v;
          }
        }
        run.secs = timer.seconds();
        brute.emplace(std::move(run));
      }
      if (k <= c.kmax_memo) {
        bench::Stopwatch timer;
        DecodeRun run;
        run.hits = memo.decode_hits(*sub);
        run.stats = memo.verify_decode_routing(*sub);
        run.secs = timer.seconds();
        memo_run.emplace(std::move(run));
      }

      const auto emit = [&](const DecodeRun& run, routing::EngineKind kind) {
        const char* engine = routing::engine_name(kind);
        auto& rec = json.add_record()
                        .set("experiment", "decode_routing")
                        .set("algorithm", c.name)
                        .set("k", k)
                        .set("engine", engine)
                        .set("paths", run.stats.num_paths)
                        .set("max_hits", run.stats.max_hits)
                        .set("bound", run.stats.bound)
                        .set("ok", run.stats.ok())
                        .set("seconds", run.secs)
                        .set("max_rss_bytes", obs::max_rss_bytes());
        std::string speed = "-";
        if (kind == routing::EngineKind::kMemo && brute.has_value()) {
          const bool identical = hits_equal(run.hits, brute->hits) &&
                                 run.stats.max_hits == brute->stats.max_hits &&
                                 run.stats.argmax == brute->stats.argmax;
          const double speedup =
              run.secs > 0 ? brute->secs / run.secs : 0.0;
          rec.set("counts_bit_identical", identical).set("speedup", speedup);
          speed = fmt_fixed(speedup, 1) + "x";
          if (!identical) {
            std::fprintf(stderr,
                         "DIVERGENCE: %s k=%d memo decode counts differ "
                         "from brute\n",
                         c.name.c_str(), k);
            failed = true;
          }
        }
        if (!run.stats.ok()) failed = true;
        claim1.add_row(
            {c.name, std::to_string(k), engine, fmt_count(run.stats.num_paths),
             fmt_count(run.stats.max_hits), fmt_count(run.stats.bound),
             fmt_fixed(static_cast<double>(run.stats.bound) /
                           static_cast<double>(run.stats.max_hits),
                       1),
             run.stats.ok() ? "OK" : "VIOLATED", fmt_fixed(run.secs, 2),
             speed});
      };
      if (brute) emit(*brute, routing::EngineKind::kBrute);
      if (memo_run) emit(*memo_run, routing::EngineKind::kMemo);

      if (k <= c.kmax_implicit) {
        bench::Stopwatch timer;
        const cdag::ImplicitCdag iview(alg, k);
        const routing::HitStats stats =
            memo.verify_decode_routing(iview, k, 0);
        const double secs = timer.seconds();
        auto& rec = json.add_record()
                        .set("experiment", "decode_routing")
                        .set("algorithm", c.name)
                        .set("k", k)
                        .set("engine",
                             routing::engine_name(
                                 routing::EngineKind::kImplicit))
                        .set("paths", stats.num_paths)
                        .set("max_hits", stats.max_hits)
                        .set("bound", stats.bound)
                        .set("ok", stats.ok())
                        .set("seconds", secs)
                        .set("max_rss_bytes", obs::max_rss_bytes());
        std::string speed = "-";
        if (memo_run.has_value()) {
          const bool identical =
              stats.num_paths == memo_run->stats.num_paths &&
              stats.max_hits == memo_run->stats.max_hits &&
              stats.bound == memo_run->stats.bound &&
              stats.argmax == memo_run->stats.argmax;
          const double speedup = secs > 0 ? memo_run->secs / secs : 0.0;
          rec.set("counts_bit_identical", identical).set("speedup", speedup);
          speed = fmt_fixed(speedup, 1) + "x";
          if (!identical) {
            std::fprintf(stderr,
                         "DIVERGENCE: %s k=%d implicit decode stats differ "
                         "from memo\n",
                         c.name.c_str(), k);
            failed = true;
          }
        }
        if (!stats.ok()) failed = true;
        claim1.add_row(
            {c.name, std::to_string(k),
             routing::engine_name(routing::EngineKind::kImplicit),
             fmt_count(stats.num_paths), fmt_count(stats.max_hits),
             fmt_count(stats.bound),
             fmt_fixed(static_cast<double>(stats.bound) /
                           static_cast<double>(stats.max_hits),
                       1),
             stats.ok() ? "OK" : "VIOLATED", fmt_fixed(secs, 2), speed});
      }
    }
  }
  claim1.print(std::cout);

  // With PR_OBS=1 in the environment the run was traced; PR_TRACE_OUT
  // dumps the spans as a chrome://tracing file and PR_METRICS_OUT the
  // obs counters in the BENCH record schema (see README
  // "Observability").
  obs::write_env_outputs("routing_metrics", bench::git_commit());

  if (failed) {
    std::fprintf(stderr,
                 "bench_routing: FAILED (divergence or bound violation)\n");
    return 1;
  }
  return 0;
}
