// E2-E5 — the routing theorems, verified by exhaustive counting.
//
//   E2 (Theorem 2): 6 a^k-routing between In and Out of G_k.
//   E3 (Lemma 3):   2 n0^k-routing of chains for guaranteed deps.
//   E4 (Lemma 4):   every chain reused exactly 3 n0^k times.
//   E5 (Claim 1):   |D_1| * b^k-routing inside the decoding graph.
#include <iostream>

#include "bench_common.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/support/table.hpp"

namespace {

using namespace pathrouting;  // NOLINT
using support::fmt_count;
using support::fmt_fixed;

}  // namespace

int main() {
  bench::print_banner(
      "E2/E3/E4: Lemma 3, Lemma 4 and the Routing Theorem (Theorem 2)",
      "Claim: chains for all guaranteed dependencies hit every vertex at\n"
      "most 2 n0^k times; the Lemma-4 concatenation uses every chain\n"
      "exactly 3 n0^k times; the composed routing hits every vertex and\n"
      "every meta-vertex at most 6 a^k times.");

  support::Table table({"algorithm", "k", "chains", "L3 max", "L3 bound",
                        "L4 exact", "T2 max", "T2 meta", "T2 bound", "ok",
                        "sec"});
  bench::BenchJson json("routing");
  struct Case {
    const char* name;
    int kmax;
  };
  for (const Case c : {Case{"strassen", 6}, Case{"winograd", 6},
                       Case{"laderman", 3}, Case{"strassen_squared", 3},
                       Case{"strassen_x_classical2", 3}}) {
    const auto alg = bilinear::by_name(c.name);
    const routing::ChainRouter router(alg);
    for (int k = 1; k <= c.kmax; ++k) {
      bench::Stopwatch timer;
      const cdag::Cdag graph(alg, k, {.with_coefficients = false});
      const cdag::SubComputation sub(graph, k, 0);
      const auto l3 = routing::verify_chain_routing(router, sub);
      const bool l4 = routing::verify_chain_multiplicities(router, sub);
      const auto t2 = routing::verify_full_routing_aggregated(router, sub);
      const bool ok = l3.ok() && l4 && t2.ok();
      const double secs = timer.seconds();
      json.add_record()
          .set("experiment", "chain_routing")
          .set("algorithm", c.name)
          .set("k", k)
          .set("chains", l3.num_paths)
          .set("l3_max_hits", l3.max_hits)
          .set("l3_bound", l3.bound)
          .set("l4_exact", l4)
          .set("t2_max_vertex_hits", t2.max_vertex_hits)
          .set("t2_max_meta_hits", t2.max_meta_hits)
          .set("t2_bound", t2.bound)
          .set("ok", ok)
          .set("seconds", secs);
      table.add_row({c.name, std::to_string(k), fmt_count(l3.num_paths),
                     fmt_count(l3.max_hits), fmt_count(l3.bound),
                     l4 ? "yes" : "NO", fmt_count(t2.max_vertex_hits),
                     fmt_count(t2.max_meta_hits), fmt_count(t2.bound),
                     ok ? "OK" : "VIOLATED", fmt_fixed(secs, 2)});
    }
  }
  table.print(std::cout);

  bench::print_banner(
      "E5: Claim 1 — the decoding-graph routing of Section 5",
      "Claim: for bases with a connected decoding graph there is an\n"
      "(|D_1| * max(a,b)^k)-routing between the inputs and outputs of D_k\n"
      "(11 * 7^k for Strassen). Paths are enumerated exhaustively.");
  support::Table claim1({"algorithm", "k", "paths", "max hits", "bound",
                         "slack", "ok", "sec"});
  for (const Case c : {Case{"strassen", 5}, Case{"winograd", 5},
                       Case{"laderman", 3}}) {
    const auto alg = bilinear::by_name(c.name);
    const routing::DecodeRouter router(alg);
    for (int k = 1; k <= c.kmax; ++k) {
      bench::Stopwatch timer;
      const cdag::Cdag graph(alg, k, {.with_coefficients = false});
      const cdag::SubComputation sub(graph, k, 0);
      const auto stats = routing::verify_decode_routing(router, sub);
      const double secs = timer.seconds();
      json.add_record()
          .set("experiment", "decode_routing")
          .set("algorithm", c.name)
          .set("k", k)
          .set("paths", stats.num_paths)
          .set("max_hits", stats.max_hits)
          .set("bound", stats.bound)
          .set("ok", stats.ok())
          .set("seconds", secs);
      claim1.add_row(
          {c.name, std::to_string(k), fmt_count(stats.num_paths),
           fmt_count(stats.max_hits), fmt_count(stats.bound),
           fmt_fixed(static_cast<double>(stats.bound) /
                         static_cast<double>(stats.max_hits),
                     1),
           stats.ok() ? "OK" : "VIOLATED", fmt_fixed(secs, 2)});
    }
  }
  claim1.print(std::cout);
  return 0;
}
