// pr_static: the determinism-hazard linter and the symbolic
// overflow-envelope analyzer as one command-line tool.
//
// Lint mode (default) scans the repo's own C++ sources for bit-identity
// hazards (see analysis/static_lint.hpp for the rule set). Findings are
// suppressed by inline `// pr-static: allow(<rule>)` comments or by the
// committed baseline; anything beyond that — including stale baseline
// entries — fails. Typical CI invocation, from the repo root:
//
//   pr_static                                   # src,tools,bench; baseline
//   pr_static --paths src --json
//   pr_static --write-baseline tools/pr_static_baseline.txt
//
// Envelope mode (--envelopes) derives, per catalog algorithm, the exact
// rank k at which each certificate quantity of the Lemma-3/Theorem-2
// chain formulas and the Claim-1 decode formulas first wraps u64, and
// with --check replays the memo/implicit engines against the derived
// envelope (audit rule analysis.k-envelope):
//
//   pr_static --envelopes --alg all --check     # hard-fail CI step
//   pr_static --envelopes --alg strassen --json
//
// Exit status: 0 = clean, 1 = findings, 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pathrouting/analysis/envelope.hpp"
#include "pathrouting/analysis/static_lint.hpp"
#include "pathrouting/audit/registry.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/support/cli.hpp"

namespace {

namespace fs = std::filesystem;
using pathrouting::analysis::AlgorithmEnvelopes;
using pathrouting::analysis::LintFinding;
using pathrouting::analysis::QuantityEnvelope;
using pathrouting::analysis::SuppressionBaseline;

bool has_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// All source files under root/<subdir> for each comma-separated subdir,
/// as sorted root-relative generic paths (deterministic scan order).
std::vector<std::string> list_sources(const fs::path& root,
                                      const std::string& paths_spec,
                                      std::string& error) {
  std::vector<std::string> files;
  std::size_t start = 0;
  while (start <= paths_spec.size()) {
    const std::size_t comma = paths_spec.find(',', start);
    const std::size_t end =
        comma == std::string::npos ? paths_spec.size() : comma;
    const std::string sub = paths_spec.substr(start, end - start);
    if (!sub.empty()) {
      const fs::path dir = root / sub;
      std::error_code ec;
      if (!fs::is_directory(dir, ec)) {
        error = "not a directory: " + dir.string();
        return {};
      }
      for (fs::recursive_directory_iterator it(dir, ec), last; it != last;
           it.increment(ec)) {
        if (ec) {
          error = "walking " + dir.string() + ": " + ec.message();
          return {};
        }
        if (it->is_regular_file() && has_source_extension(it->path())) {
          files.push_back(
              it->path().lexically_relative(root).generic_string());
        }
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int run_lint(const std::string& root_spec, const std::string& paths,
             const std::string& baseline_path,
             const std::string& write_baseline, bool json) {
  const fs::path root(root_spec);
  std::string error;
  const std::vector<std::string> files = list_sources(root, paths, error);
  if (!error.empty()) {
    std::fprintf(stderr, "pr_static: %s\n", error.c_str());
    return 2;
  }

  std::vector<LintFinding> findings;
  for (const std::string& file : files) {
    std::ifstream is(root / file, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "pr_static: cannot open '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    for (LintFinding& f : pathrouting::analysis::scan_source(file, text.str())) {
      findings.push_back(std::move(f));
    }
  }

  if (!write_baseline.empty()) {
    // Same resolution rule as --baseline, so the write/read round trip
    // names one file regardless of the invocation directory.
    const fs::path out = root / write_baseline;
    std::ofstream os(out, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "pr_static: cannot write '%s'\n",
                   out.string().c_str());
      return 2;
    }
    os << SuppressionBaseline::from_findings(findings).serialize();
    std::fprintf(stderr,
                 "pr_static: wrote %zu finding(s) over %zu file(s) to %s\n",
                 findings.size(), files.size(), out.string().c_str());
    return 0;
  }

  SuppressionBaseline baseline;
  std::vector<std::string> baseline_errors;
  if (!baseline_path.empty()) {
    std::ifstream is(root / baseline_path, std::ios::binary);
    if (is) {
      std::ostringstream text;
      text << is.rdbuf();
      baseline = SuppressionBaseline::parse(text.str(), &baseline_errors);
    } else {
      std::fprintf(stderr,
                   "pr_static: note: baseline '%s' not found; treating as "
                   "empty\n",
                   (root / baseline_path).string().c_str());
    }
  }
  const SuppressionBaseline::FilterResult filtered = baseline.apply(findings);

  bool failed = !filtered.unsuppressed.empty() || !baseline_errors.empty() ||
                !filtered.stale_keys.empty();
  if (json) {
    std::fputs(
        pathrouting::analysis::lint_report(filtered.unsuppressed).to_json().c_str(),
        stdout);
    std::fputc('\n', stdout);
  } else {
    for (const LintFinding& f : filtered.unsuppressed) {
      std::printf("%s:%d: [%s] %s\n    %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str(), f.source_line.c_str());
    }
    for (const std::string& err : baseline_errors) {
      std::printf("pr_static: %s\n", err.c_str());
    }
    for (const std::string& key : filtered.stale_keys) {
      std::printf(
          "pr_static: stale baseline entry (hazard no longer present): %s\n",
          key.c_str());
    }
    std::printf(
        "pr_static: %zu file(s), %zu finding(s), %zu beyond "
        "suppressions%s\n",
        files.size(), findings.size(), filtered.unsuppressed.size(),
        filtered.stale_keys.empty()
            ? ""
            : " (stale baseline entries: regenerate with --write-baseline)");
  }
  return failed ? 1 : 0;
}

void print_envelopes_text(const AlgorithmEnvelopes& env) {
  std::printf("== %s ==%s\n", env.algorithm.c_str(),
              env.has_decode ? "" : " (decoding graph disconnected: no "
                                    "decode quantities)");
  for (const QuantityEnvelope& q : env.quantities) {
    if (q.first_wrap_k == 0) {
      std::printf("  %-18s exact for all k <= %d\n", q.name.c_str(),
                  q.wrap_scan_kmax);
      continue;
    }
    std::printf("  %-18s wraps u64 at k=%-3d", q.name.c_str(), q.first_wrap_k);
    if (q.first_wrap_k > 1 && q.first_wrap_k - 1 <= q.value_kmax) {
      std::printf(" last exact value %llu at k=%d",
                  static_cast<unsigned long long>(q.low_at(q.first_wrap_k - 1)),
                  q.first_wrap_k - 1);
    }
    std::printf("\n");
  }
}

std::string envelopes_json(const AlgorithmEnvelopes& env) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << env.algorithm << "\",\"has_decode\":"
     << (env.has_decode ? "true" : "false") << ",\"quantities\":[";
  for (std::size_t i = 0; i < env.quantities.size(); ++i) {
    const QuantityEnvelope& q = env.quantities[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << q.name << "\",\"first_wrap_k\":" << q.first_wrap_k
       << ",\"wrap_scan_kmax\":" << q.wrap_scan_kmax
       << ",\"value_kmax\":" << q.value_kmax << ",\"low\":[";
    for (std::size_t j = 0; j < q.low.size(); ++j) {
      if (j > 0) os << ',';
      os << q.low[j];
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

int run_envelopes(const std::string& alg_name, bool check, bool json) {
  std::vector<std::string> names;
  if (alg_name == "all") {
    names = pathrouting::bilinear::catalog_names();
  } else {
    const std::vector<std::string> all = pathrouting::bilinear::catalog_names();
    if (std::find(all.begin(), all.end(), alg_name) == all.end()) {
      std::fprintf(stderr, "pr_static: unknown catalog algorithm '%s'\n",
                   alg_name.c_str());
      return 2;
    }
    names.push_back(alg_name);
  }

  std::uint64_t total_errors = 0;
  std::string json_out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    const pathrouting::bilinear::BilinearAlgorithm alg =
        pathrouting::bilinear::by_name(names[i]);
    const AlgorithmEnvelopes env =
        pathrouting::analysis::compute_envelopes(alg);
    std::string check_json;
    if (check) {
      const pathrouting::routing::ChainRouter router(alg);
      pathrouting::audit::AuditReport report;
      if (env.has_decode) {
        const pathrouting::routing::DecodeRouter decoder(alg);
        const pathrouting::routing::MemoRoutingEngine engine(router, decoder);
        report = pathrouting::analysis::check_envelopes(env, engine);
      } else {
        const pathrouting::routing::MemoRoutingEngine engine(router);
        report = pathrouting::analysis::check_envelopes(env, engine);
      }
      total_errors += report.num_errors();
      if (json) {
        check_json = ",\"report\":" + report.to_json();
      } else if (!report.ok()) {
        std::printf("%s", report.to_text().c_str());
      }
    }
    if (json) {
      if (i > 0) json_out += ',';
      json_out += "{\"envelopes\":" + envelopes_json(env) + check_json + '}';
    } else {
      print_envelopes_text(env);
      if (check) {
        std::printf("  analysis.k-envelope: %s\n",
                    total_errors == 0 ? "ok" : "FAILED");
      }
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return total_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  pathrouting::support::Cli cli(argc, argv);
  const std::string root = cli.flag_str("root", ".", "repo root to scan");
  const std::string paths = cli.flag_str(
      "paths", "src,tools,bench", "comma-separated subdirs to lint");
  const std::string baseline = cli.flag_str(
      "baseline", "tools/pr_static_baseline.txt",
      "suppression baseline (relative to --root; '' = none)");
  const std::string write_baseline = cli.flag_str(
      "write-baseline", "",
      "regenerate the baseline file (relative to --root) and exit");
  const bool envelopes = cli.flag_bool(
      "envelopes", false, "overflow-envelope mode instead of linting");
  const std::string alg =
      cli.flag_str("alg", "all", "catalog algorithm for --envelopes");
  const bool check = cli.flag_bool(
      "check", false,
      "with --envelopes: replay the memo/implicit engines against the "
      "derived envelopes (audit rule analysis.k-envelope)");
  const bool json = cli.flag_bool("json", false, "JSON output");
  const bool list_rules =
      cli.flag_bool("list-rules", false, "print the static.* and analysis.* "
                                         "rule registry entries and exit");
  cli.finish(
      "Static analysis for the determinism contract: lints the sources for "
      "bit-identity hazards and derives the exact u64-wraparound rank of "
      "every certificate bound formula.");

  if (list_rules) {
    for (const pathrouting::audit::RuleInfo& rule :
         pathrouting::audit::all_rules()) {
      if (!rule.id.starts_with("static.") &&
          !rule.id.starts_with("analysis.")) {
        continue;
      }
      std::printf("%-28s %.*s\n    %.*s\n", std::string(rule.id).c_str(),
                  static_cast<int>(rule.paper_ref.size()),
                  rule.paper_ref.data(),
                  static_cast<int>(rule.summary.size()), rule.summary.data());
    }
    return 0;
  }
  if (envelopes) return run_envelopes(alg, check, json);
  return run_lint(root, paths, baseline, write_baseline, json);
}
