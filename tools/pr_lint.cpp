// pr_lint: the paper-invariant linter as a command-line tool.
//
// Builds G_r for a catalog algorithm (or one loaded from the v1 text
// format), runs the audit rule suites (audit::run_all), and prints the
// findings as text or JSON. Exit status: 0 = no findings, 1 = findings,
// 2 = usage error. Typical CI invocation:
//
//   pr_lint --alg all --r 2            # every catalog base
//   pr_lint --file my_alg.txt --r 3 --json
//   pr_lint --alg strassen --rules cdag.,hall.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bilinear/serialize.hpp"
#include "pathrouting/support/cli.hpp"

namespace {

using pathrouting::audit::AuditReport;
using pathrouting::audit::RuleSelection;
using pathrouting::bilinear::BilinearAlgorithm;

/// Splits a comma-separated rule list, rejecting unknown ids (prefixes
/// must end in '.'). Returns false on a bad entry.
bool parse_rules(const std::string& spec, RuleSelection& selection) {
  std::vector<std::string> ids;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string id = spec.substr(start, end - start);
    if (!id.empty()) {
      const bool is_prefix = id.back() == '.';
      if (!is_prefix && pathrouting::audit::find_rule(id) == nullptr) {
        std::fprintf(stderr,
                     "pr_lint: unknown rule '%s' (see --list-rules; domain "
                     "prefixes end in '.', e.g. 'cdag.')\n",
                     id.c_str());
        return false;
      }
      ids.push_back(id);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (ids.empty()) {
    std::fprintf(stderr, "pr_lint: --rules given but no rule ids parsed\n");
    return false;
  }
  selection = RuleSelection::only(ids);
  return true;
}

struct NamedAlgorithm {
  std::string name;
  BilinearAlgorithm alg;
};

}  // namespace

int main(int argc, char** argv) {
  pathrouting::support::Cli cli(argc, argv);
  const std::string alg_name =
      cli.flag_str("alg", "strassen", "catalog algorithm name, or 'all'");
  const std::string file = cli.flag_str(
      "file", "", "load a pathrouting-bilinear-v1 file instead of --alg");
  const int r = static_cast<int>(cli.flag_int("r", 2, "recursion depth"));
  const int routing_k = static_cast<int>(cli.flag_int(
      "k", -1, "routing subcomputation order (-1 = auto, small)"));
  const bool json = cli.flag_bool("json", false, "JSON output");
  const bool no_routing =
      cli.flag_bool("no-routing", false, "skip routing/Hall/family audits");
  const bool no_certify =
      cli.flag_bool("no-certify", false, "skip segment-certificate audits");
  const bool no_coeffs = cli.flag_bool(
      "no-coeffs", false, "build without per-edge coefficients (saves "
                          "memory; disables the coefficient checks)");
  const std::string rules = cli.flag_str(
      "rules", "", "comma-separated rule ids or domain prefixes to run");
  const bool list_rules =
      cli.flag_bool("list-rules", false, "print the rule registry and exit");
  cli.finish(
      "Audits the constructed CDAG, routings, Hall matchings, schedules, "
      "and segment certificates of a Strassen-like base algorithm against "
      "the paper's structural invariants.");

  if (list_rules) {
    for (const pathrouting::audit::RuleInfo& rule :
         pathrouting::audit::all_rules()) {
      std::printf("%-24s %.*s\n    %.*s\n", std::string(rule.id).c_str(),
                  static_cast<int>(rule.paper_ref.size()), rule.paper_ref.data(),
                  static_cast<int>(rule.summary.size()), rule.summary.data());
    }
    return 0;
  }
  if (r < 1) {
    std::fprintf(stderr, "pr_lint: --r must be >= 1\n");
    return 2;
  }

  pathrouting::audit::RunAllOptions options;
  options.routing_k = routing_k;
  options.with_routing = !no_routing;
  options.with_certificate = !no_certify;
  if (!rules.empty() && !parse_rules(rules, options.selection)) return 2;

  std::vector<NamedAlgorithm> algorithms;
  if (!file.empty()) {
    std::ifstream is(file);
    if (!is) {
      std::fprintf(stderr, "pr_lint: cannot open '%s'\n", file.c_str());
      return 2;
    }
    pathrouting::bilinear::ParseResult parsed =
        pathrouting::bilinear::from_text(is);
    if (!parsed.algorithm) {
      std::fprintf(stderr, "pr_lint: %s: %s\n", file.c_str(),
                   parsed.error.c_str());
      return 2;
    }
    algorithms.push_back({file, *std::move(parsed.algorithm)});
  } else if (alg_name == "all") {
    for (const std::string& name : pathrouting::bilinear::catalog_names()) {
      algorithms.push_back({name, pathrouting::bilinear::by_name(name)});
    }
  } else {
    const std::vector<std::string> names =
        pathrouting::bilinear::catalog_names();
    if (std::find(names.begin(), names.end(), alg_name) == names.end()) {
      std::fprintf(stderr, "pr_lint: unknown catalog algorithm '%s'\n",
                   alg_name.c_str());
      return 2;
    }
    algorithms.push_back({alg_name, pathrouting::bilinear::by_name(alg_name)});
  }

  std::uint64_t total_errors = 0;
  std::string json_out = "[";
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    const NamedAlgorithm& entry = algorithms[i];
    const pathrouting::cdag::Cdag cdag(
        entry.alg, r, {.with_coefficients = !no_coeffs});
    const AuditReport report = pathrouting::audit::run_all(cdag, options);
    total_errors += report.num_errors();
    if (json) {
      if (i > 0) json_out += ',';
      json_out += "{\"algorithm\":\"" + entry.name +
                  "\",\"r\":" + std::to_string(r) +
                  ",\"report\":" + report.to_json() + '}';
    } else {
      std::printf("== %s (r=%d) ==\n%s", entry.name.c_str(), r,
                  report.to_text().c_str());
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return total_errors > 0 ? 1 : 0;
}
