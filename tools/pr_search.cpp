// pr_search: run the schedule-space optimizer on one catalog point and
// print the full pipeline — DFS / BFS baselines, local search, branch-
// and-bound, the root lower bound, and the certification verdict. The
// tool then audits its own certificate with search.certified-optimal
// and exits nonzero if the rule fires, so a scripted sweep cannot
// silently record an unsound claim.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/search/sweep.hpp"
#include "pathrouting/support/cli.hpp"
#include "pathrouting/support/table.hpp"

int main(int argc, char** argv) {
  using namespace pathrouting;

  support::Cli cli(argc, argv);
  search::SweepSpec spec;
  spec.algorithm = cli.flag_str("alg", "strassen", "catalog algorithm name");
  spec.r = static_cast<int>(cli.flag_int("r", 1, "recursion depth"));
  spec.m = static_cast<std::uint64_t>(
      cli.flag_int("m", 8, "cache size M, in values"));
  spec.node_budget = static_cast<std::uint64_t>(cli.flag_int(
      "budget", 100000, "branch-and-bound node budget (0 = unbounded)"));
  spec.seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 1, "local-search seed"));
  spec.ls_rounds = static_cast<std::uint64_t>(
      cli.flag_int("ls-rounds", 16, "local-search rounds"));
  spec.ls_moves = static_cast<std::uint64_t>(
      cli.flag_int("ls-moves", 64, "local-search moves per round"));
  cli.finish(
      "Branch-and-bound schedule search over red-blue pebblings of a "
      "catalog CDAG G_r (experiment E20).");

  // Validate at the CLI surface: bad inputs are exit-2 one-liners, not
  // library-precondition aborts.
  const std::vector<std::string> names = bilinear::catalog_names();
  if (std::find(names.begin(), names.end(), spec.algorithm) == names.end()) {
    std::fprintf(stderr, "pr_search: unknown catalog algorithm '%s'\n",
                 spec.algorithm.c_str());
    return 2;
  }
  if (spec.r < 1) {
    std::fprintf(stderr, "pr_search: --r must be >= 1 (got %d)\n", spec.r);
    return 2;
  }
  const bilinear::BilinearAlgorithm alg = bilinear::by_name(spec.algorithm);
  const cdag::Cdag cdag(alg, spec.r, {.with_coefficients = false});
  std::uint64_t min_m = 2;
  for (cdag::VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    min_m = std::max(
        min_m, static_cast<std::uint64_t>(cdag.graph().in_degree(v)) + 1);
  }
  if (spec.m < min_m) {
    std::fprintf(stderr,
                 "pr_search: --m %llu too small for %s r=%d — the pebble "
                 "game needs M >= max in-degree + 1 = %llu\n",
                 static_cast<unsigned long long>(spec.m),
                 spec.algorithm.c_str(), spec.r,
                 static_cast<unsigned long long>(min_m));
    return 2;
  }

  const search::SweepPoint point = search::run_search_point(spec);

  support::Table table({"schedule", "I/O"});
  table.add_row({"bfs", std::to_string(point.bfs_io)});
  table.add_row({"dfs", std::to_string(point.dfs_io)});
  table.add_row({"local search", std::to_string(point.local_io)});
  table.add_row({"branch-and-bound", std::to_string(point.searched_io)});
  table.add_row({"lower bound", std::to_string(point.lower_bound)});
  table.print(std::cout);
  std::cout << "\n"
            << spec.algorithm << " r=" << spec.r << " M=" << spec.m << ": "
            << point.num_vertices << " vertices, "
            << point.scheduled_vertices << " scheduled; best I/O "
            << point.searched_io << " = " << point.searched_reads
            << " reads + " << point.searched_writes << " writes\n"
            << "search: " << point.nodes_expanded << " expanded, "
            << point.nodes_pruned << " pruned, " << point.leaves_scored
            << " leaves scored, " << point.moves_accepted
            << " local moves accepted\n"
            << "verdict: "
            << (point.certified ? "CERTIFIED OPTIMAL" : "not certified")
            << " (proof: " << search::proof_name(point.proof)
            << ", graph fnv " << point.graph_fnv << ", witness fnv "
            << point.witness_fnv << ")\n";

  // Self-audit the certificate this run just produced.
  audit::SearchCertificateView cert;
  cert.graph = &cdag.graph();
  cert.schedule = point.witness;
  cert.output_mask = point.output_mask;
  cert.cache_size = spec.m;
  cert.claimed_io = point.searched_io;
  cert.claimed_lower_bound = point.lower_bound;
  cert.claims_bound_met_optimal = point.proof == search::Proof::kBoundMet;
  cert.theorem1_a = static_cast<std::uint64_t>(alg.a());
  cert.theorem1_b = static_cast<std::uint64_t>(alg.b());
  cert.theorem1_r = spec.r;
  const audit::AuditReport report = audit::audit_search_certificate(cert);
  if (!report.ok()) {
    std::cerr << report.to_text() << "pr_search: certificate audit FAILED\n";
    return EXIT_FAILURE;
  }
  std::cout << "certificate audit: clean (search.certified-optimal)\n";
  return EXIT_SUCCESS;
}
