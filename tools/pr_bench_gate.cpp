// pr_bench_gate — regression gate over committed BENCH_*.json files.
//
// Loads a baseline (BENCH_routing_memo.json or BENCH_service.json in
// CI), re-runs every workload it records — memoized perfsmoke
// (experiment chain_routing / decode_routing, engine memo, k <=
// --kmax) and certificate-service workloads (service_cold_miss /
// service_trace / service_warm, replayed with the recorded trace seed
// against a throwaway store) — through the observability layer, and
// fails when the fresh run regresses:
//
//   * count fields must match the baseline EXACTLY — the determinism
//     contract says hit counts, bounds, and verdicts are functions of
//     the algorithm alone, so any drift is a correctness bug, not
//     noise;
//   * "seconds" may grow up to --tolerance x the baseline (floored at
//     --min-seconds, under which timing is pure jitter).
//
// The text diff goes to stdout; --report writes the same verdicts as
// a BENCH-schema JSON file, and --trace / --metrics dump the chrome
// trace and obs counters of the fresh run (PR_TRACE_OUT /
// PR_METRICS_OUT work too). Reports are annotated with the build's
// commit and the resolved thread count, so a CI artifact is
// self-describing.
//
// --self-test-pessimize deliberately corrupts every fresh record
// (seconds x100, max-hit count +1) after measurement; the gate must
// then fail with a readable diff. tests/test_bench_gate.py-style
// mutation lives in tests/test_obs.cpp's gate section and CI runs the
// flag directly — a gate that cannot fail gates nothing.
//
// Exit codes: 0 pass, 1 count/verdict mismatch (hard: the determinism
// contract is broken, CI must fail), 2 usage/parse errors, 3
// timing-only regression (soft: CI reports but does not fail — shared
// runners make wall clocks noisy, counts are not). A run with both
// kinds of failure exits 1: the hard failure dominates.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/obs/bench_record.hpp"
#include "pathrouting/obs/export.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/parallel/scaling.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/search/sweep.hpp"
#include "pathrouting/service/replay.hpp"
#include "pathrouting/service/service.hpp"
#include "pathrouting/support/parallel.hpp"

namespace {

using namespace pathrouting;  // NOLINT

const char* git_commit() {
#ifdef PR_GIT_COMMIT
  return PR_GIT_COMMIT;
#else
  return "unknown";
#endif
}

struct Options {
  std::string baseline;
  int kmax = 5;
  double tolerance = 2.0;     // allowed fresh/base wall-clock ratio
  double min_seconds = 0.05;  // below this, timing is jitter: never fail
  std::string report_path;
  std::string trace_path;
  std::string metrics_path;
  bool pessimize = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "pr_bench_gate: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: pr_bench_gate --baseline BENCH_x.json [--kmax N] "
      "[--tolerance X] [--min-seconds S] [--report out.json] "
      "[--trace trace.json] [--metrics metrics.json] "
      "[--self-test-pessimize]\n");
  std::exit(2);
}

std::string flag_value(const std::string& arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
    return arg.substr(n + 1);
  }
  return "";
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage(what);
      return argv[++i];
    };
    if (arg == "--baseline") {
      opt.baseline = next("--baseline needs a path");
    } else if (std::string v = flag_value(arg, "--baseline"); !v.empty()) {
      opt.baseline = v;
    } else if (arg == "--kmax") {
      opt.kmax = std::atoi(next("--kmax needs a value").c_str());
    } else if (std::string v2 = flag_value(arg, "--kmax"); !v2.empty()) {
      opt.kmax = std::atoi(v2.c_str());
    } else if (arg == "--tolerance") {
      opt.tolerance = std::atof(next("--tolerance needs a value").c_str());
    } else if (std::string v3 = flag_value(arg, "--tolerance"); !v3.empty()) {
      opt.tolerance = std::atof(v3.c_str());
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::atof(next("--min-seconds needs a value").c_str());
    } else if (std::string v4 = flag_value(arg, "--min-seconds"); !v4.empty()) {
      opt.min_seconds = std::atof(v4.c_str());
    } else if (arg == "--report") {
      opt.report_path = next("--report needs a path");
    } else if (arg == "--trace") {
      opt.trace_path = next("--trace needs a path");
    } else if (arg == "--metrics") {
      opt.metrics_path = next("--metrics needs a path");
    } else if (arg == "--self-test-pessimize") {
      opt.pessimize = true;
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (opt.baseline.empty()) usage("--baseline is required");
  if (opt.kmax < 1) usage("--kmax must be >= 1");
  if (opt.tolerance < 1.0) usage("--tolerance must be >= 1.0");
  return opt;
}

/// One (experiment, algorithm, k) workload of the baseline; duplicate
/// records (the committed baseline concatenates a threads=1 and a
/// threads=8 run) collapse into one group whose timing reference is
/// the fastest baseline record.
struct Workload {
  std::string experiment;
  std::string algorithm;
  int k = 0;
  const obs::BenchRecord* reference = nullptr;  // count comparison
  double base_seconds = 0;
};

double seconds_of(const obs::BenchRecord& rec) {
  const obs::BenchValue* v = rec.find("seconds");
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

/// Fields that are run-dependent or derived, never compared exactly.
/// Latency percentiles ("*_us") and throughput ("rps") are timing like
/// "seconds" — the service bench enforces its own budgets on them.
/// Derived doubles of the scaling sweep ("lb_*", "model_*", "omega0",
/// "ratio_vs_lb") follow the machine counters they are computed from
/// but go through libm, which the determinism contract does not cover.
bool ignored_field(const std::string& key) {
  if (key.size() > 3 && key.compare(key.size() - 3, 3, "_us") == 0) {
    return true;
  }
  if (key.compare(0, 3, "lb_") == 0 || key.compare(0, 6, "model_") == 0) {
    return true;
  }
  return key == "seconds" || key == "speedup" ||
         key == "counts_bit_identical" || key == "threads" ||
         key == "commit" || key == "max_rss_bytes" || key == "rps" ||
         key == "omega0" || key == "ratio_vs_lb";
}

/// The certificate-service workloads the gate re-runs. The throughput
/// sweep (service_throughput) is timing-only and is not collected.
bool service_experiment(const std::string& experiment) {
  return experiment == "service_cold_miss" ||
         experiment == "service_trace" || experiment == "service_warm";
}

struct FreshRun {
  obs::BenchRecord rec;
  double seconds = 0;
};

FreshRun run_chain(const bilinear::BilinearAlgorithm& alg,
                   const std::string& name, int k) {
  const routing::ChainRouter router(alg);
  const routing::MemoRoutingEngine memo(router);
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, k, 0);
  const auto t0 = std::chrono::steady_clock::now();
  const routing::ChainHitCounts counts = memo.chain_hits(sub);
  const routing::HitStats l3 = routing::chain_stats_from_counts(counts, sub);
  const bool l4 = memo.verify_chain_multiplicities(sub);
  const routing::FullRoutingStats t2 =
      routing::full_routing_from_chain_counts(sub, counts);
  FreshRun run;
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  run.rec.set("experiment", "chain_routing")
      .set("algorithm", name)
      .set("k", k)
      .set("engine", "memo")
      .set("chains", l3.num_paths)
      .set("l3_max_hits", l3.max_hits)
      .set("l3_bound", l3.bound)
      .set("l4_exact", l4)
      .set("t2_max_vertex_hits", t2.max_vertex_hits)
      .set("t2_max_meta_hits", t2.max_meta_hits)
      .set("t2_bound", t2.bound)
      .set("ok", l3.ok() && l4 && t2.ok())
      .set("seconds", run.seconds);
  return run;
}

FreshRun run_decode(const bilinear::BilinearAlgorithm& alg,
                    const std::string& name, int k) {
  const routing::ChainRouter router(alg);
  const routing::DecodeRouter decoder(alg);
  const routing::MemoRoutingEngine memo(router, decoder);
  const cdag::Cdag graph(alg, k, {.with_coefficients = false});
  const cdag::SubComputation sub(graph, k, 0);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::uint64_t> hits = memo.decode_hits(sub);
  const routing::HitStats stats = memo.verify_decode_routing(sub);
  FreshRun run;
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  // The hit array itself feeds the obs counters / trace; the record
  // carries the same summary fields as bench_routing.
  (void)hits;
  run.rec.set("experiment", "decode_routing")
      .set("algorithm", name)
      .set("k", k)
      .set("engine", "memo")
      .set("paths", stats.num_paths)
      .set("max_hits", stats.max_hits)
      .set("bound", stats.bound)
      .set("ok", stats.ok())
      .set("seconds", run.seconds);
  return run;
}

/// Re-derives a distributed_scaling record: rebuilds the sweep point's
/// spec from the committed baseline fields and reruns it on a fresh
/// sparse superstep machine — the u64 machine counters must match the
/// baseline exactly.
FreshRun run_distributed_scaling(const obs::BenchRecord& ref) {
  const parallel::ScalingSpec spec = parallel::scaling_spec_from_record(ref);
  const auto t0 = std::chrono::steady_clock::now();
  const parallel::ScalingPoint point = parallel::run_scaling_point(spec);
  FreshRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  parallel::fill_scaling_record(point, run.rec);
  run.rec.set("seconds", run.seconds);
  return run;
}

/// Re-derives a schedule_search record: rebuilds the sweep spec from
/// the committed baseline fields and reruns the whole pipeline (DFS /
/// BFS baselines, local search, branch-and-bound) — every u64 counter,
/// the certification verdict, and the witness digest must match the
/// baseline exactly.
FreshRun run_schedule_search(const obs::BenchRecord& ref) {
  const search::SweepSpec spec = search::search_spec_from_record(ref);
  const auto t0 = std::chrono::steady_clock::now();
  const search::SweepPoint point = search::run_search_point(spec);
  FreshRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  search::fill_search_record(point, run.rec);
  run.rec.set("seconds", run.seconds);
  return run;
}

/// A throwaway store directory for the service replays, removed when
/// the gate exits.
std::string gate_store_dir() {
  return (std::filesystem::temp_directory_path() /
          ("pr_bench_gate_service." + std::to_string(::getpid())))
      .string();
}

/// Re-derives a service_cold_miss record: a fresh memory-only service
/// answers the recorded (algorithm, k, chain) request from nothing.
FreshRun run_service_cold(const obs::BenchRecord& ref) {
  const std::string algorithm = ref.text_or("algorithm", "");
  const int k = static_cast<int>(ref.int_or("k", 0));
  service::CertificateService svc(service::ServiceConfig{});
  const service::Request req{algorithm, k, service::CertKind::kChain};
  const auto t0 = std::chrono::steady_clock::now();
  const service::Response resp = svc.serve(req);
  FreshRun run;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.rec.set("experiment", "service_cold_miss")
      .set("engine", "service")
      .set("algorithm", algorithm)
      .set("k", k)
      .set("kind", service::kind_name(service::CertKind::kChain))
      .set("ok", resp.ok)
      .set("cached", resp.from_cache)
      .set("seconds", run.seconds);
  if (resp.ok) {
    const auto& w = resp.certificate.words;
    run.rec.set("chains", w[service::kChainNumChains])
        .set("l3_max", w[service::kChainL3MaxHits])
        .set("l3_bound", w[service::kChainL3Bound])
        .set("l4", w[service::kChainL4Exact])
        .set("has_fnv", w[service::kChainHasHitDigest])
        .set("digest", resp.certificate.payload_digest);
  }
  return run;
}

/// Re-derives a service_trace / service_warm record: rebuilds the
/// recorded Zipf trace from its seed and replays it against a fresh
/// on-disk store (service_warm reopens the populated directory with a
/// second service instance first, so every answer comes off mmap).
FreshRun run_service_trace(const std::string& experiment,
                           const obs::BenchRecord& ref) {
  service::TraceSpec spec;
  spec.seed = static_cast<std::uint64_t>(ref.int_or("seed", 0));
  spec.num_requests = static_cast<std::uint64_t>(ref.int_or("requests", 0));
  const std::vector<service::Request> trace = service::zipf_trace(spec);
  service::ServiceConfig config;
  config.store_dir = gate_store_dir() + "/" + experiment;
  std::error_code ec;
  std::filesystem::remove_all(config.store_dir, ec);
  service::ReplayResult r;
  {
    service::CertificateService svc(config);
    r = service::replay_trace(svc, trace, 1);
  }
  if (experiment == "service_warm") {
    service::CertificateService reopened(config);
    r = service::replay_trace(reopened, trace, 1);
  }
  FreshRun run;
  run.seconds = r.seconds;
  run.rec.set("experiment", experiment)
      .set("engine", "service")
      .set("seed", spec.seed)
      .set("client_threads", 1)
      .set("requests", r.requests)
      .set("unique_keys", r.unique_keys)
      .set("ok", r.ok)
      .set("errors", r.errors)
      .set("cache_hits", r.cache_hits)
      .set("computed", r.computed)
      .set("seconds", r.seconds);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  obs::BenchParseResult parsed = obs::load_bench_file(opt.baseline);
  if (!parsed.file.has_value()) {
    std::fprintf(stderr, "pr_bench_gate: %s\n", parsed.error.c_str());
    return 2;
  }
  const obs::BenchFile& baseline = *parsed.file;

  // Collect the memoized perfsmoke workloads, deduplicating repeated
  // (experiment, algorithm, k) records across baseline runs.
  std::vector<Workload> workloads;
  std::map<std::string, std::size_t> index;
  int skipped_k = 0;
  // The search bench's roll-up record: re-checked after the loop
  // against counters accumulated over the fresh schedule_search runs.
  const obs::BenchRecord* search_summary = nullptr;
  for (const obs::BenchRecord& rec : baseline.records) {
    const std::string experiment = rec.text_or("experiment", "");
    int k = 0;
    if (experiment == "schedule_search_summary") {
      if (search_summary != nullptr) {
        std::fprintf(stderr,
                     "pr_bench_gate: baseline has more than one "
                     "schedule_search_summary record\n");
        return 2;
      }
      search_summary = &rec;
      continue;
    }
    if (service_experiment(experiment)) {
      // Service workloads are re-run at their recorded size; --kmax
      // does not apply (the cold-miss k is the point of the workload).
      if (rec.text_or("engine", "") != "service") continue;
      k = static_cast<int>(rec.int_or("k", 0));
    } else if (experiment == "distributed_scaling") {
      // Scaling sweep points re-run at their recorded spec; "k" is the
      // grid (summa) or BFS-level count (caps), not a recursion rank,
      // so --kmax does not apply.
      if (rec.text_or("engine", "") != "machine") continue;
      k = static_cast<int>(rec.int_or("k", 0));
    } else if (experiment == "schedule_search") {
      // Search points re-run at their recorded spec; "k" is the
      // recursion depth r of G_r, gated by its own budget rather than
      // --kmax (the committed matrix is already smoke-sized).
      if (rec.text_or("engine", "") != "search") continue;
      k = static_cast<int>(rec.int_or("k", 0));
    } else {
      if (experiment != "chain_routing" && experiment != "decode_routing") {
        continue;
      }
      if (rec.text_or("engine", "") != "memo") continue;
      k = static_cast<int>(rec.int_or("k", 0));
      if (k < 1) continue;
      if (k > opt.kmax) {
        ++skipped_k;
        continue;
      }
    }
    const std::string algorithm = rec.text_or("algorithm", "");
    std::string key = experiment;
    key += '/';
    key += algorithm;
    key += '/';
    key += std::to_string(k);
    if (experiment == "schedule_search") {
      // The search sweeps M at fixed (algorithm, r): the cache size is
      // part of the workload identity.
      key += "/m";
      key += std::to_string(rec.int_or("m", 0));
    }
    const auto [it, inserted] = index.emplace(key, workloads.size());
    if (inserted) {
      workloads.push_back(
          {experiment, algorithm, k, &rec, seconds_of(rec)});
      continue;
    }
    Workload& wl = workloads[it->second];
    wl.base_seconds = std::min(wl.base_seconds, seconds_of(rec));
    // Baseline self-consistency: duplicate records must agree on every
    // compared field (they are bit-identical across thread counts).
    for (const auto& [fkey, fval] : wl.reference->fields()) {
      if (ignored_field(fkey)) continue;
      const obs::BenchValue* other = rec.find(fkey);
      if (other == nullptr || other->json() != fval.json()) {
        std::fprintf(stderr,
                     "pr_bench_gate: baseline is self-inconsistent: %s "
                     "field %s\n",
                     key.c_str(), fkey.c_str());
        return 2;
      }
    }
  }
  if (workloads.empty()) {
    std::fprintf(stderr,
                 "pr_bench_gate: baseline %s has no memoized "
                 "chain_routing/decode_routing records with k <= %d and "
                 "no service workloads\n",
                 opt.baseline.c_str(), opt.kmax);
    return 2;
  }

  // Trace and count the fresh runs regardless of env: the artifact CI
  // uploads should never be silently empty.
  obs::set_enabled(true);
  obs::reset_counters();
  obs::clear_spans();

  const std::string baseline_commit =
      baseline.records.front().text_or("commit", "unknown");
  std::printf(
      "pr_bench_gate: baseline %s (commit %s) vs build %s (threads %d), "
      "%zu workloads, tolerance %.2fx, floor %.3fs\n",
      opt.baseline.c_str(), baseline_commit.c_str(), git_commit(),
      support::parallel::num_threads(), workloads.size(), opt.tolerance,
      opt.min_seconds);
  if (skipped_k > 0) {
    std::printf("  (%d baseline records above --kmax=%d skipped)\n",
                skipped_k, opt.kmax);
  }
  if (opt.pessimize) {
    std::printf(
        "  self-test: pessimizing every fresh record — the gate MUST "
        "fail\n");
  }

  obs::BenchFile report;
  report.bench = "gate_report";
  report.threads = support::parallel::num_threads();
  report.extra.emplace_back("baseline", opt.baseline);
  report.extra.emplace_back("baseline_commit", baseline_commit);

  int count_failures = 0;
  int slow_failures = 0;
  std::uint64_t fresh_search_instances = 0;
  std::uint64_t fresh_search_certified = 0;
  for (const Workload& wl : workloads) {
    FreshRun fresh;
    if (wl.experiment == "service_cold_miss") {
      fresh = run_service_cold(*wl.reference);
    } else if (service_experiment(wl.experiment)) {
      fresh = run_service_trace(wl.experiment, *wl.reference);
    } else if (wl.experiment == "distributed_scaling") {
      fresh = run_distributed_scaling(*wl.reference);
    } else if (wl.experiment == "schedule_search") {
      fresh = run_schedule_search(*wl.reference);
      ++fresh_search_instances;
      const obs::BenchValue* cert = fresh.rec.find("certified");
      if (cert != nullptr && cert->bool_value) ++fresh_search_certified;
    } else {
      const auto alg = bilinear::by_name(wl.algorithm);
      if (wl.experiment == "decode_routing" &&
          bilinear::decoding_components(alg) != 1) {
        // Claim 1 needs a connected decoding graph; a baseline recording
        // such a workload predates that check — flag, don't crash.
        std::printf("SKIP %s %s k=%d: decoding graph is disconnected\n",
                    wl.experiment.c_str(), wl.algorithm.c_str(), wl.k);
        report.records.emplace_back();
        report.records.back()
            .set("experiment", wl.experiment)
            .set("algorithm", wl.algorithm)
            .set("k", wl.k)
            .set("status", "skipped");
        continue;
      }
      fresh = wl.experiment == "chain_routing"
                  ? run_chain(alg, wl.algorithm, wl.k)
                  : run_decode(alg, wl.algorithm, wl.k);
    }
    if (opt.pessimize) {
      // Corrupt the record (never the engines): prove the diff fires.
      fresh.seconds *= 100.0;
      fresh.rec.set("seconds", fresh.seconds);
      const char* hit_key = wl.experiment == "chain_routing" ? "l3_max_hits"
                            : wl.experiment == "decode_routing" ? "max_hits"
                            : wl.experiment == "service_cold_miss" ? "chains"
                            : wl.experiment == "distributed_scaling"
                                ? "bandwidth_cost"
                            : wl.experiment == "schedule_search"
                                ? "searched_io"
                                : "cache_hits";
      const obs::BenchValue* v = fresh.rec.find(hit_key);
      fresh.rec.set(hit_key,
                    static_cast<std::uint64_t>(v->int_value) + 1);
    }

    // Exact comparison of every tracked (count/verdict) field.
    std::string mismatched;
    for (const auto& [fkey, fval] : wl.reference->fields()) {
      if (ignored_field(fkey)) continue;
      const obs::BenchValue* fresh_v = fresh.rec.find(fkey);
      if (fresh_v == nullptr || fresh_v->json() != fval.json()) {
        if (!mismatched.empty()) mismatched += ",";
        mismatched += fkey;
        std::printf("FAIL %s %s k=%d: %s baseline=%s fresh=%s\n",
                    wl.experiment.c_str(), wl.algorithm.c_str(), wl.k,
                    fkey.c_str(), fval.json().c_str(),
                    fresh_v == nullptr ? "<missing>"
                                       : fresh_v->json().c_str());
      }
    }

    const double allowed =
        std::max(wl.base_seconds * opt.tolerance, opt.min_seconds);
    const bool slow = fresh.seconds > allowed;
    const double ratio =
        wl.base_seconds > 0 ? fresh.seconds / wl.base_seconds : 0.0;
    if (slow) {
      std::printf(
          "FAIL %s %s k=%d: seconds %.6f vs baseline %.6f "
          "(%.1fx, allowed %.6f)\n",
          wl.experiment.c_str(), wl.algorithm.c_str(), wl.k, fresh.seconds,
          wl.base_seconds, ratio, allowed);
      ++slow_failures;
    }
    if (!mismatched.empty()) ++count_failures;
    if (mismatched.empty() && !slow) {
      std::printf("ok   %s %s k=%d (%.6fs, baseline %.6fs)\n",
                  wl.experiment.c_str(), wl.algorithm.c_str(), wl.k,
                  fresh.seconds, wl.base_seconds);
    }

    report.records.emplace_back();
    auto& rrec = report.records.back()
                     .set("experiment", wl.experiment)
                     .set("algorithm", wl.algorithm)
                     .set("k", wl.k)
                     .set("status", !mismatched.empty() ? "count-mismatch"
                                    : slow              ? "slow"
                                                        : "ok")
                     .set("baseline_seconds", wl.base_seconds)
                     .set("seconds", fresh.seconds)
                     .set("ratio", ratio);
    if (!mismatched.empty()) rrec.set("fields_mismatched", mismatched);
  }

  // Roll-up check: the baseline's certified-optimal count must be
  // exactly reproduced by the fresh runs — a silently lost certificate
  // is a determinism break even if no single record mismatched.
  if (search_summary != nullptr) {
    const std::uint64_t base_instances =
        static_cast<std::uint64_t>(search_summary->int_or("instances", 0));
    const std::uint64_t base_certified = static_cast<std::uint64_t>(
        search_summary->int_or("certified_count", 0));
    if (opt.pessimize) ++fresh_search_certified;
    const bool summary_ok = base_instances == fresh_search_instances &&
                            base_certified == fresh_search_certified;
    if (!summary_ok) {
      std::printf(
          "FAIL schedule_search_summary: instances baseline=%llu fresh=%llu, "
          "certified_count baseline=%llu fresh=%llu\n",
          static_cast<unsigned long long>(base_instances),
          static_cast<unsigned long long>(fresh_search_instances),
          static_cast<unsigned long long>(base_certified),
          static_cast<unsigned long long>(fresh_search_certified));
      ++count_failures;
    } else {
      std::printf("ok   schedule_search_summary (%llu instances, %llu "
                  "certified optimal)\n",
                  static_cast<unsigned long long>(fresh_search_instances),
                  static_cast<unsigned long long>(fresh_search_certified));
    }
    report.records.emplace_back();
    report.records.back()
        .set("experiment", "schedule_search_summary")
        .set("instances", fresh_search_instances)
        .set("certified_count", fresh_search_certified)
        .set("status", summary_ok ? "ok" : "count-mismatch");
  }

  obs::finalize_records(report, git_commit());
  if (!opt.report_path.empty() &&
      !obs::write_bench_file(report, opt.report_path)) {
    return 2;
  }
  if (!opt.trace_path.empty() &&
      !obs::write_chrome_trace_file(opt.trace_path)) {
    return 2;
  }
  if (!opt.metrics_path.empty() &&
      !obs::write_bench_file(
          obs::counters_as_bench_file("gate_metrics", git_commit()),
          opt.metrics_path)) {
    return 2;
  }
  obs::write_env_outputs("gate_metrics", git_commit());
  std::error_code cleanup_ec;
  std::filesystem::remove_all(gate_store_dir(), cleanup_ec);

  const char* verdict = count_failures > 0  ? "FAILED"
                        : slow_failures > 0 ? "SLOW"
                                            : "PASSED";
  std::printf(
      "pr_bench_gate: %s (%d count mismatches, %d timing regressions "
      "over %zu workloads)\n",
      verdict, count_failures, slow_failures, workloads.size());
  // Counts are the determinism contract — exit 1 hard-fails CI.
  // Timing alone exits 3 so the workflow can downgrade it to a
  // warning without masking count drift.
  if (count_failures > 0) return 1;
  if (slow_failures > 0) return 3;
  return 0;
}
