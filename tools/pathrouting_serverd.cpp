// pathrouting_serverd — serve routing certificates over stdin/stdout.
//
// A thin shell around service::CertificateService speaking the line
// protocol of service/protocol.hpp:
//
//   $ pathrouting_serverd --store=/tmp/certs
//   ready store=/tmp/certs engine=1
//   get strassen 3 chain
//   cert alg=strassen k=3 kind=chain cached=0 ...
//   batch
//   get strassen 4 chain
//   get winograd 3 decode
//   end
//   cert ...
//   cert ...
//   end
//   stats
//   stats requests=3 store_hits=0 computed=3 ...
//   quit
//
// The CI smoke test drives exactly this loop: replay a small trace,
// assert cached=1 appears once a key repeats. Exits 0 on quit/EOF.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "pathrouting/service/protocol.hpp"
#include "pathrouting/service/replay.hpp"
#include "pathrouting/service/service.hpp"
#include "pathrouting/support/cli.hpp"

namespace {

using namespace pathrouting;  // NOLINT

int run(service::CertificateService& svc) {
  bool in_batch = false;
  std::vector<service::Request> batch;
  std::string line;
  while (std::getline(std::cin, line)) {
    const service::Command cmd = service::parse_command(line);
    switch (cmd.type) {
      case service::CommandType::kEmpty:
        break;
      case service::CommandType::kBad:
        std::cout << "error " << cmd.error << "\n" << std::flush;
        break;
      case service::CommandType::kGet:
        if (in_batch) {
          batch.push_back(cmd.request);
          break;
        }
        std::cout << service::format_response(cmd.request, svc.serve(cmd.request))
                  << "\n"
                  << std::flush;
        break;
      case service::CommandType::kBatch:
        if (in_batch) {
          std::cout << "error batch already open\n" << std::flush;
          break;
        }
        in_batch = true;
        batch.clear();
        break;
      case service::CommandType::kBatchEnd: {
        if (!in_batch) {
          std::cout << "error no batch open\n" << std::flush;
          break;
        }
        in_batch = false;
        const std::vector<service::Response> responses = svc.serve_batch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::cout << service::format_response(batch[i], responses[i]) << "\n";
        }
        std::cout << "end\n" << std::flush;
        batch.clear();
        break;
      }
      case service::CommandType::kStats:
        std::cout << service::format_stats(svc.metrics()) << "\n" << std::flush;
        break;
      case service::CommandType::kQuit:
        return 0;
    }
  }
  return 0;  // EOF is a clean shutdown
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli(argc, argv);
  const std::string store =
      cli.flag_str("store", "", "certificate store directory (empty = memory)");
  const bool audit = cli.flag_bool(
      "audit", false, "audit every served certificate (digest-match rule)");
  const std::int64_t segment_max_k = cli.flag_int(
      "segment-max-k", 5, "largest rank segment certificates may request");
  cli.finish(
      "Serve routing certificates over stdin/stdout (see "
      "service/protocol.hpp for the grammar).");

  service::ServiceConfig config;
  config.store_dir = store;
  config.audit_served = audit;
  config.segment_max_k = static_cast<int>(segment_max_k);
  service::CertificateService svc(config);
  std::printf("ready store=%s engine=%u\n",
              store.empty() ? "(memory)" : store.c_str(),
              service::kEngineVersion);
  std::fflush(stdout);
  return run(svc);
}
