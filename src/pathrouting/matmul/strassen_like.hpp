// Generic recursive executor for any catalog bilinear algorithm: one
// recursion level splits the operands into n0 x n0 blocks, forms the b
// encoded operand pairs from the U/V rows, recurses on each product,
// and decodes the outputs with W. Below the cutoff (or when the
// dimension stops dividing by n0) it falls back to the naive kernel.
//
// This is the executable counterpart of the CDAG: evaluating G_r and
// running this recursion on the same inputs must agree exactly (tested
// with int64 entries), and its operation counts realise the
// Theta(n^{omega0}) arithmetic the paper's bounds are parameterised by.
#pragma once

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/matmul/classical.hpp"

namespace pathrouting::matmul {

using bilinear::BilinearAlgorithm;

namespace detail {

template <typename T>
Matrix<T> extract_block(const Matrix<T>& m, std::size_t bi, std::size_t bj,
                        std::size_t size) {
  Matrix<T> block(size, size);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      block(i, j) = m(bi * size + i, bj * size + j);
    }
  }
  return block;
}

template <typename T>
T scaled(const support::Rational& c, const T& x) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(c.to_double()) * x;
  } else {
    PR_REQUIRE_MSG(c.is_integer(),
                   "integer executor needs integer coefficients");
    return static_cast<T>(c.num()) * x;
  }
}

}  // namespace detail

template <typename T>
Matrix<T> strassen_like_multiply(const BilinearAlgorithm& alg,
                                 const Matrix<T>& a, const Matrix<T>& b,
                                 std::size_t cutoff = 1,
                                 OpCounts* ops = nullptr) {
  PR_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols());
  PR_REQUIRE(a.rows() == b.rows());
  const std::size_t n = a.rows();
  const std::size_t n0 = static_cast<std::size_t>(alg.n0());
  if (n <= cutoff || n % n0 != 0 || n == 1) {
    return naive_multiply(a, b, ops);
  }
  const std::size_t half = n / n0;
  // Stage the input blocks once.
  std::vector<Matrix<T>> a_blocks, b_blocks;
  a_blocks.reserve(static_cast<std::size_t>(alg.a()));
  b_blocks.reserve(static_cast<std::size_t>(alg.a()));
  for (std::size_t i = 0; i < n0; ++i) {
    for (std::size_t j = 0; j < n0; ++j) {
      a_blocks.push_back(detail::extract_block(a, i, j, half));
      b_blocks.push_back(detail::extract_block(b, i, j, half));
    }
  }
  Matrix<T> c(n, n);
  std::vector<Matrix<T>> products;
  products.reserve(static_cast<std::size_t>(alg.b()));
  for (int q = 0; q < alg.b(); ++q) {
    Matrix<T> ta(half, half), tb(half, half);
    int nnz_u = 0, nnz_v = 0;
    for (int d = 0; d < alg.a(); ++d) {
      const auto& u = alg.u(q, d);
      if (!u.is_zero()) {
        ++nnz_u;
        for (std::size_t i = 0; i < half; ++i) {
          for (std::size_t j = 0; j < half; ++j) {
            ta(i, j) = ta(i, j) +
                       detail::scaled(u, a_blocks[static_cast<std::size_t>(d)](i, j));
          }
        }
      }
      const auto& v = alg.v(q, d);
      if (!v.is_zero()) {
        ++nnz_v;
        for (std::size_t i = 0; i < half; ++i) {
          for (std::size_t j = 0; j < half; ++j) {
            tb(i, j) = tb(i, j) +
                       detail::scaled(v, b_blocks[static_cast<std::size_t>(d)](i, j));
          }
        }
      }
    }
    if (ops != nullptr) {
      ops->adds += static_cast<std::uint64_t>(nnz_u - 1 + nnz_v - 1) * half * half;
    }
    products.push_back(strassen_like_multiply(alg, ta, tb, cutoff, ops));
  }
  for (int d = 0; d < alg.a(); ++d) {
    const std::size_t bi = static_cast<std::size_t>(d) / n0;
    const std::size_t bj = static_cast<std::size_t>(d) % n0;
    int nnz_w = 0;
    for (int q = 0; q < alg.b(); ++q) {
      const auto& w = alg.w(d, q);
      if (w.is_zero()) continue;
      ++nnz_w;
      for (std::size_t i = 0; i < half; ++i) {
        for (std::size_t j = 0; j < half; ++j) {
          c(bi * half + i, bj * half + j) =
              c(bi * half + i, bj * half + j) +
              detail::scaled(w, products[static_cast<std::size_t>(q)](i, j));
        }
      }
    }
    if (ops != nullptr && nnz_w > 1) {
      ops->adds += static_cast<std::uint64_t>(nnz_w - 1) * half * half;
    }
  }
  return c;
}

}  // namespace pathrouting::matmul
