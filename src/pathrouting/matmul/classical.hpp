// Classical matrix multiplication executors: the arithmetic baseline
// (Theta(n^3) work) against which the Strassen-like recursion is
// compared in the benches.
#pragma once

#include "pathrouting/matmul/matrix.hpp"

namespace pathrouting::matmul {

/// Arithmetic-operation counters (multiplications and additions of the
/// ring; copies and scalar bookkeeping are free).
struct OpCounts {
  std::uint64_t mults = 0;
  std::uint64_t adds = 0;
  [[nodiscard]] std::uint64_t total() const { return mults + adds; }
};

/// i-k-j naive triple loop.
template <typename T>
Matrix<T> naive_multiply(const Matrix<T>& a, const Matrix<T>& b,
                         OpCounts* ops = nullptr) {
  PR_REQUIRE(a.cols() == b.rows());
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) = c(i, j) + aik * b(k, j);
      }
    }
  }
  if (ops != nullptr) {
    ops->mults += a.rows() * a.cols() * b.cols();
    ops->adds += a.rows() * (a.cols() - 1) * b.cols();
  }
  return c;
}

/// Cache-blocked multiplication with square tiles of side `tile` — the
/// algorithm that attains Hong-Kung's Theta(n^3/sqrt(M)) with
/// tile ~ sqrt(M/3).
template <typename T>
Matrix<T> blocked_multiply(const Matrix<T>& a, const Matrix<T>& b,
                           std::size_t tile, OpCounts* ops = nullptr) {
  PR_REQUIRE(a.cols() == b.rows());
  PR_REQUIRE(tile >= 1);
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t ii = 0; ii < a.rows(); ii += tile) {
    for (std::size_t kk = 0; kk < a.cols(); kk += tile) {
      for (std::size_t jj = 0; jj < b.cols(); jj += tile) {
        const std::size_t i_end = std::min(ii + tile, a.rows());
        const std::size_t k_end = std::min(kk + tile, a.cols());
        const std::size_t j_end = std::min(jj + tile, b.cols());
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const T aik = a(i, k);
            for (std::size_t j = jj; j < j_end; ++j) {
              c(i, j) = c(i, j) + aik * b(k, j);
            }
          }
        }
      }
    }
  }
  if (ops != nullptr) {
    ops->mults += a.rows() * a.cols() * b.cols();
    ops->adds += a.rows() * (a.cols() - 1) * b.cols();
  }
  return c;
}

}  // namespace pathrouting::matmul
