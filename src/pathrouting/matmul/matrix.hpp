// Dense row-major matrix with the small API the executors need.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/support/check.hpp"
#include "pathrouting/support/prng.hpp"

namespace pathrouting::matmul {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  T& operator()(std::size_t i, std::size_t j) {
    PR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    PR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<const T> data() const { return data_; }
  [[nodiscard]] std::span<T> data() { return data_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Square matrix with iid entries uniform on [lo, hi] (integral T).
template <typename T>
Matrix<T> random_matrix(std::size_t n, support::Xoshiro256& rng,
                        std::int64_t lo = -8, std::int64_t hi = 8) {
  Matrix<T> m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = static_cast<T>(rng.range(lo, hi));
    }
  }
  return m;
}

}  // namespace pathrouting::matmul
