#include "pathrouting/service/protocol.hpp"

#include <sstream>

#include "pathrouting/support/check.hpp"

namespace pathrouting::service {

Command parse_command(const std::string& line) {
  if (line.size() > kMaxLineLength) {
    std::ostringstream os;
    os << "request line too long (" << line.size() << " > " << kMaxLineLength
       << " bytes)";
    return Command{CommandType::kBad, {}, os.str()};
  }
  std::istringstream is(line);
  std::string word;
  if (!(is >> word) || word[0] == '#') {
    return Command{CommandType::kEmpty, {}, {}};
  }
  const auto bad = [](std::string msg) {
    return Command{CommandType::kBad, {}, std::move(msg)};
  };
  if (word == "batch") return Command{CommandType::kBatch, {}, {}};
  if (word == "end") return Command{CommandType::kBatchEnd, {}, {}};
  if (word == "stats") return Command{CommandType::kStats, {}, {}};
  if (word == "quit") return Command{CommandType::kQuit, {}, {}};
  if (word != "get") {
    return bad("unknown command '" + word + "' (expected get/batch/end/"
               "stats/quit)");
  }
  Command cmd;
  cmd.type = CommandType::kGet;
  std::string kind_word;
  if (!(is >> cmd.request.algorithm >> cmd.request.k >> kind_word)) {
    return bad("usage: get <algorithm> <k> <kind>");
  }
  const std::optional<CertKind> kind = kind_from_name(kind_word);
  if (!kind.has_value()) {
    return bad("unknown certificate kind '" + kind_word +
               "' (expected chain/decode/full/segment)");
  }
  cmd.request.kind = *kind;
  std::string extra;
  if (is >> extra) return bad("trailing input after get request");
  return cmd;
}

std::string format_response(const Request& request, const Response& response) {
  if (!response.ok) return "error " + response.error;
  const Certificate& cert = response.certificate;
  PR_ASSERT(cert.words.size() == payload_word_count(cert.kind));
  std::ostringstream os;
  os << "cert alg=" << request.algorithm << " k=" << cert.k
     << " kind=" << kind_name(cert.kind)
     << " cached=" << (response.from_cache ? 1 : 0)
     << " engine=" << cert.engine_version << " digest=" << cert.payload_digest
     << " wrap_k=" << response.envelope_wrap_k
     << " exact=" << (response.envelope_exact ? 1 : 0);
  const auto& w = cert.words;
  switch (cert.kind) {
    case CertKind::kChain:
      os << " chains=" << w[kChainNumChains] << " l3_max=" << w[kChainL3MaxHits]
         << " l3_bound=" << w[kChainL3Bound]
         << " l3_argmax=" << w[kChainL3Argmax] << " l4=" << w[kChainL4Exact]
         << " hit_fnv=" << w[kChainHitDigest]
         << " has_fnv=" << w[kChainHasHitDigest];
      break;
    case CertKind::kDecode:
      os << " decode_paths=" << w[kDecodeNumPaths]
         << " decode_max=" << w[kDecodeMaxHits]
         << " decode_bound=" << w[kDecodeBound]
         << " decode_argmax=" << w[kDecodeArgmax]
         << " hit_fnv=" << w[kDecodeHitDigest]
         << " has_fnv=" << w[kDecodeHasHitDigest];
      break;
    case CertKind::kFull:
      os << " t2_paths=" << w[kFullNumPaths]
         << " t2_max=" << w[kFullMaxVertexHits]
         << " t2_argmax=" << w[kFullArgmaxVertex]
         << " t2_meta=" << w[kFullMaxMetaHits] << " t2_bound=" << w[kFullBound]
         << " root=" << w[kFullRootHitProperty]
         << " hit_fnv=" << w[kFullHitDigest]
         << " has_fnv=" << w[kFullHasHitDigest];
      break;
    case CertKind::kSegment:
      os << " cert_k=" << w[kSegmentCertK]
         << " s_bar=" << w[kSegmentSBarTarget]
         << " counted=" << w[kSegmentCountedTotal]
         << " complete=" << w[kSegmentCompleteSegments]
         << " m=" << w[kSegmentCacheSize] << " eq=" << w[kSegmentEqHolds]
         << " schedule=" << w[kSegmentScheduleSize];
      break;
  }
  return os.str();
}

std::string format_stats(const ServiceMetrics& m) {
  std::ostringstream os;
  os << "stats requests=" << m.requests << " store_hits=" << m.store_hits
     << " computed=" << m.computed << " inflight_waits=" << m.inflight_waits
     << " batches=" << m.batches << " batched_requests=" << m.batched_requests
     << " errors=" << m.errors << " inflight_peak=" << m.inflight_peak;
  return os.str();
}

}  // namespace pathrouting::service
