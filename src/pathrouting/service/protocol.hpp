// The line protocol pathrouting_serverd speaks on stdin/stdout.
//
// Requests (one per line, whitespace separated):
//
//   get <algorithm> <k> <kind>     kind in {chain, decode, full, segment}
//   batch                          collect following "get" lines ...
//   end                            ... serve them as one batch
//   stats                          one line of service metrics
//   quit                           exit
//
// Responses are single lines, machine-parseable "key=value" fields in
// a fixed order:
//
//   cert alg=strassen k=3 kind=chain cached=1 engine=1 digest=...
//     wrap_k=... exact=1
//     chains=... l3_max=... l3_bound=... l3_argmax=... l4=1
//     hit_fnv=... has_fnv=1      (one line in the actual protocol)
//   error <message>
//
// wrap_k/exact carry the kind's statically derived overflow envelope
// (analysis/envelope.hpp): the smallest rank at which some quantity of
// the kind wraps u64 (0 = none within the scan depth) and whether this
// certificate's counts are exact integers rather than mod-2^64
// residues. Request lines longer than kMaxLineLength are rejected.
//
// Parsing and formatting live here (not in the tool) so the bench, the
// CI smoke test, and the daemon agree on one grammar.
#pragma once

#include <string>

#include "pathrouting/service/service.hpp"

namespace pathrouting::service {

enum class CommandType {
  kGet,       // request carries the parsed Request
  kBatch,     // open a batch
  kBatchEnd,  // close and serve the batch
  kStats,
  kQuit,
  kEmpty,  // blank or comment line — ignore
  kBad,    // error carries the diagnostic
};

struct Command {
  CommandType type = CommandType::kEmpty;
  Request request;    // valid for kGet
  std::string error;  // valid for kBad
};

/// Longest accepted request line; anything longer is rejected as kBad
/// before parsing (a stuck or hostile client cannot make the daemon
/// buffer unbounded tokens).
inline constexpr std::size_t kMaxLineLength = 4096;

/// Parses one request line ('#' starts a comment).
[[nodiscard]] Command parse_command(const std::string& line);

/// The response line for one request (either the "cert ..." line with
/// the kind's payload fields, or "error <message>").
[[nodiscard]] std::string format_response(const Request& request,
                                          const Response& response);

/// The "stats ..." line.
[[nodiscard]] std::string format_stats(const ServiceMetrics& metrics);

}  // namespace pathrouting::service
