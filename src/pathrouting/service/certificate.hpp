// The binary certificate format — the unit the certificate service
// stores, mmaps, and serves.
//
// A certificate freezes the *outcome* of one routing verification: the
// same Lemma-3/Lemma-4/Theorem-2 chain counts, Claim-1 decode counts,
// or Sections-5/6 segment counts the golden corpus pins, plus the
// FNV-1a digest of the full per-vertex hit array where the array was
// materialized (support/digest.hpp — one definition shared with
// tests/golden). Every number is a pure function of
// (algorithm, k, kind, engine version), which is exactly why the store
// can be content-addressed: two identical requests MUST produce
// byte-identical certificates.
//
// On-disk layout (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     8  magic "PRCERTF1"
//        8     8  endian marker 0x0102030405060708 (foreign-endian
//                 files are rejected, never byte-swapped)
//       16     4  format version (kFormatVersion)
//       20     4  engine version (kEngineVersion of the writer)
//       24     8  algorithm digest (FNV-1a of the serialized algorithm)
//       32     4  kind (CertKind)
//       36     4  k
//       40     4  n0
//       44     4  b
//       48     8  payload word count N
//       56     8  payload digest (fnv1a_words of the payload)
//       64   N*8  payload words (meaning indexed by kind, see below)
//    64+N*8    8  file digest (fnv1a_bytes of everything before it)
//
// The header is 64 bytes, so in an mmap'ed file the payload sits
// 8-byte aligned and the zero-copy reader (MappedCertificate) hands
// out a span directly into the mapping. Readers validate sizes and
// all three digests BEFORE exposing anything, so truncated, corrupted,
// or version-mismatched files produce a diagnostic, never UB (the
// round-trip and rejection paths run under ASan/UBSan in CI).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pathrouting::service {

/// Bumped whenever the meaning of any cached count changes (new
/// routing engine semantics, payload layout change). Part of the store
/// key: certificates from an older engine are never served as current
/// ones — the counts are tied to the SPAA'15 single-use model (see
/// PAPER_MAP "Serving layer"), so a future recomputation-allowed or
/// hybrid-bound engine bumps this and repopulates.
inline constexpr std::uint32_t kEngineVersion = 1;

/// Binary layout version of the file format itself.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Which verification a certificate freezes.
enum class CertKind : std::uint32_t {
  kChain = 0,    // Lemma 3 stats + Lemma 4 multiplicity verdict
  kDecode = 1,   // Claim 1 stats
  kFull = 2,     // Theorem 2 stats
  kSegment = 3,  // Sections 5/6 segment certificate summary
};

/// Stable lowercase names ("chain", "decode", "full", "segment") used
/// in store file names and the serverd protocol.
[[nodiscard]] const char* kind_name(CertKind kind);
[[nodiscard]] std::optional<CertKind> kind_from_name(std::string_view name);

// Payload word indices per kind. Booleans are stored as 0/1 words;
// *HasHitDigest distinguishes "digest is 0" from "array was never
// materialized" (deep k, where only the implicit engine runs — the
// same cutoff the golden corpus has between its explicit and implicit
// lines).
enum ChainWord : std::size_t {
  kChainNumChains = 0,
  kChainL3MaxHits,
  kChainL3Bound,
  kChainL3Argmax,
  kChainL4Exact,
  kChainHitDigest,
  kChainHasHitDigest,
  kChainWordCount,
};
enum DecodeWord : std::size_t {
  kDecodeNumPaths = 0,
  kDecodeMaxHits,
  kDecodeBound,
  kDecodeArgmax,
  kDecodeHitDigest,
  kDecodeHasHitDigest,
  kDecodeWordCount,
};
enum FullWord : std::size_t {
  kFullNumPaths = 0,
  kFullMaxVertexHits,
  kFullArgmaxVertex,
  kFullMaxMetaHits,
  kFullBound,
  kFullRootHitProperty,
  kFullHitDigest,
  kFullHasHitDigest,
  kFullWordCount,
};
enum SegmentWord : std::size_t {
  kSegmentCertK = 0,        // the certifier's subcomputation rank
  kSegmentSBarTarget,
  kSegmentCountedTotal,
  kSegmentCompleteSegments,
  kSegmentCacheSize,
  kSegmentEqHolds,
  kSegmentScheduleSize,
  kSegmentWordCount,
};

/// The number of payload words `kind` carries.
[[nodiscard]] std::size_t payload_word_count(CertKind kind);

/// A certificate in memory: the header fields plus the payload words.
/// `payload_digest` is the digest *recorded* when the certificate was
/// built or loaded — the audit rule service.cert-digest-match
/// recomputes the digest from `words` and compares (a served
/// certificate whose counts drifted from its recorded digest must
/// never leave the service).
struct Certificate {
  std::uint32_t engine_version = kEngineVersion;
  std::uint64_t algorithm_digest = 0;
  CertKind kind = CertKind::kChain;
  std::uint32_t k = 0;
  std::uint32_t n0 = 0;
  std::uint32_t b = 0;
  std::uint64_t payload_digest = 0;
  std::vector<std::uint64_t> words;

  /// Stamps payload_digest from the current words.
  void seal();

  bool operator==(const Certificate&) const = default;
};

/// Serializes to the exact on-disk byte layout (byte-stable: equal
/// certificates serialize to equal bytes on every platform).
[[nodiscard]] std::string serialize_certificate(const Certificate& cert);

struct DecodeResult {
  std::optional<Certificate> certificate;
  std::string error;  // diagnostic on rejection; empty on success
};

/// Validates and decodes the byte layout: magic, endianness, format
/// version, declared sizes against the actual size, the payload word
/// count of the declared kind, and the payload + file digests. Any
/// mismatch is a rejection with a diagnostic.
[[nodiscard]] DecodeResult decode_certificate(
    std::span<const unsigned char> bytes);

struct MappedOpenResult;

/// A certificate file mapped read-only into memory. The payload span
/// points INTO the mapping (zero-copy; 8-byte aligned by layout);
/// header fields are decoded once at open. The mapping lives as long
/// as the object.
class MappedCertificate {
 public:
  MappedCertificate(MappedCertificate&& other) noexcept;
  MappedCertificate& operator=(MappedCertificate&& other) noexcept;
  MappedCertificate(const MappedCertificate&) = delete;
  MappedCertificate& operator=(const MappedCertificate&) = delete;
  ~MappedCertificate();

  /// mmaps `path` and validates it exactly like decode_certificate;
  /// a missing, truncated, corrupted, or version-mismatched file is an
  /// error, never UB.
  [[nodiscard]] static MappedOpenResult open(const std::string& path);

  [[nodiscard]] std::uint32_t engine_version() const {
    return header_.engine_version;
  }
  [[nodiscard]] std::uint64_t algorithm_digest() const {
    return header_.algorithm_digest;
  }
  [[nodiscard]] CertKind kind() const { return header_.kind; }
  [[nodiscard]] std::uint32_t k() const { return header_.k; }
  [[nodiscard]] std::uint32_t n0() const { return header_.n0; }
  [[nodiscard]] std::uint32_t b() const { return header_.b; }
  [[nodiscard]] std::uint64_t payload_digest() const {
    return header_.payload_digest;
  }
  /// Zero-copy view of the payload words inside the mapping.
  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

  /// Copies out an owning Certificate (what the store index caches).
  [[nodiscard]] Certificate to_certificate() const;

 private:
  MappedCertificate() = default;

  struct Header {
    std::uint32_t engine_version = 0;
    std::uint64_t algorithm_digest = 0;
    CertKind kind = CertKind::kChain;
    std::uint32_t k = 0;
    std::uint32_t n0 = 0;
    std::uint32_t b = 0;
    std::uint64_t payload_digest = 0;
  };

  void* data_ = nullptr;
  std::size_t size_ = 0;
  Header header_;
  std::span<const std::uint64_t> words_;
};

struct MappedOpenResult {
  std::optional<MappedCertificate> file;
  std::string error;  // empty on success
};

}  // namespace pathrouting::service
