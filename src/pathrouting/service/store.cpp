#include "pathrouting/service/store.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "pathrouting/bilinear/serialize.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/digest.hpp"

namespace pathrouting::service {

std::uint64_t algorithm_digest(const bilinear::BilinearAlgorithm& alg) {
  std::ostringstream os;
  bilinear::to_text(alg, os);
  return support::fnv1a_text(os.str());
}

std::string store_file_name(const StoreKey& key) {
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(key.algorithm_digest));
  std::ostringstream os;
  os << digest_hex << "-k" << key.k << "-" << kind_name(key.kind) << "-e"
     << key.engine_version << ".cert";
  return os.str();
}

StoreKey key_of(const Certificate& cert) {
  return StoreKey{cert.algorithm_digest, cert.k, cert.kind,
                  cert.engine_version};
}

CertificateStore::CertificateStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // A failed create surfaces on the first write, with a path in hand.
  }
}

std::string CertificateStore::path_of(const StoreKey& key) const {
  return dir_ + "/" + store_file_name(key);
}

std::optional<Certificate> CertificateStore::lookup(const StoreKey& key) {
  static obs::Counter index_hits("service.store.index_hits");
  static obs::Counter file_hits("service.store.file_hits");
  static obs::Counter misses("service.store.misses");
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      index_hits.add();
      return it->second;
    }
  }
  if (dir_.empty()) {
    misses.add();
    return std::nullopt;
  }
  MappedOpenResult mapped = MappedCertificate::open(path_of(key));
  if (!mapped.file.has_value()) {
    // Missing file is the normal miss; a file that exists but fails
    // validation is ALSO a miss (the service recomputes and the
    // rewrite replaces the bad bytes) — but it is worth a trace.
    misses.add();
    return std::nullopt;
  }
  Certificate cert = mapped.file->to_certificate();
  if (key_of(cert) != key) {
    // The file is internally consistent but describes a different
    // request than its name claims — treat as a miss and rewrite.
    misses.add();
    return std::nullopt;
  }
  file_hits.add();
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return index_.emplace(key, std::move(cert)).first->second;
}

bool CertificateStore::insert(const StoreKey& key, const Certificate& cert) {
  PR_REQUIRE_MSG(key_of(cert) == key,
                 "certificate inserted under a key it does not address");
  PR_REQUIRE_MSG(cert.payload_digest == support::fnv1a_words(cert.words),
                 "certificate must be sealed before insertion");
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!index_.emplace(key, cert).second) return true;  // already stored
  }
  if (dir_.empty()) return true;
  // Temp file + rename: readers never observe a partial write, and two
  // racing writers of the same key both rename byte-identical bodies.
  const std::string body = serialize_certificate(cert);
  const std::string path = path_of(key);
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << reinterpret_cast<std::uintptr_t>(&cert);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::uint64_t CertificateStore::recorded_digest(const StoreKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.payload_digest;
}

std::size_t CertificateStore::indexed_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return index_.size();
}

}  // namespace pathrouting::service
