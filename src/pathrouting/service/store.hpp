// Content-addressed certificate store.
//
// A certificate is a pure function of
// (algorithm, k, kind, engine version), so that tuple — with the
// algorithm collapsed to the FNV-1a digest of its canonical serialized
// text (bilinear::to_text, the same digest primitive as the golden
// corpus) — IS the address. Two services given the same algorithm
// catalog produce the same keys, the same file names, and byte-equal
// certificate files.
//
// The engine version is part of the key on purpose: the cached counts
// encode the SPAA'15 single-use routing model, and a future engine with
// different semantics (e.g. a recomputation-allowed or hybrid-bound
// regime) must repopulate under a new version rather than silently
// serve stale numbers.
//
// The store is a directory of certificate files plus an in-memory
// index. Lookups that miss the index mmap the file (zero-copy
// validation, see certificate.hpp) and cache the decoded words; inserts
// write through a temp file + rename, so concurrent writers of the
// SAME key race benignly — both bodies are byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/service/certificate.hpp"

namespace pathrouting::service {

/// FNV-1a digest of the canonical serialized text of `alg`
/// (bilinear::to_text) — the algorithm component of every store key.
[[nodiscard]] std::uint64_t algorithm_digest(
    const bilinear::BilinearAlgorithm& alg);

struct StoreKey {
  std::uint64_t algorithm_digest = 0;
  std::uint32_t k = 0;
  CertKind kind = CertKind::kChain;
  std::uint32_t engine_version = kEngineVersion;

  friend auto operator<=>(const StoreKey&, const StoreKey&) = default;
};

/// Deterministic file name of a key:
/// "<algorithm digest, 16 hex>-k<k>-<kind>-e<engine version>.cert".
[[nodiscard]] std::string store_file_name(const StoreKey& key);

/// The key a certificate addresses itself under.
[[nodiscard]] StoreKey key_of(const Certificate& cert);

class CertificateStore {
 public:
  /// `dir` empty = memory-only store (tests); otherwise the directory
  /// is created if missing and certificate files live directly in it.
  explicit CertificateStore(std::string dir);

  /// Index hit, else mmap + validate the key's file. A file that fails
  /// validation (truncated/corrupted/foreign version) is treated as a
  /// miss — the service recomputes and rewrites it. Returns a copy;
  /// certificate payloads are a handful of words.
  [[nodiscard]] std::optional<Certificate> lookup(const StoreKey& key);

  /// Write-through insert (no-op if the key is already indexed).
  /// Returns false only when the disk write failed; the in-memory
  /// index is updated regardless.
  bool insert(const StoreKey& key, const Certificate& cert);

  /// The payload digest recorded in the index for `key` (0 if absent):
  /// the reference value for the service.cert-digest-match audit rule.
  [[nodiscard]] std::uint64_t recorded_digest(const StoreKey& key) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::size_t indexed_count() const;

 private:
  [[nodiscard]] std::string path_of(const StoreKey& key) const;

  std::string dir_;
  mutable std::shared_mutex mutex_;
  std::map<StoreKey, Certificate> index_;
};

}  // namespace pathrouting::service
