#include "pathrouting/service/certificate.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "pathrouting/support/check.hpp"
#include "pathrouting/support/digest.hpp"

namespace pathrouting::service {
namespace {

constexpr char kMagic[8] = {'P', 'R', 'C', 'E', 'R', 'T', 'F', '1'};
constexpr std::uint64_t kEndianMarker = 0x0102030405060708ull;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kFooterBytes = 8;  // trailing file digest

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

const char* kind_name(CertKind kind) {
  switch (kind) {
    case CertKind::kChain:
      return "chain";
    case CertKind::kDecode:
      return "decode";
    case CertKind::kFull:
      return "full";
    case CertKind::kSegment:
      return "segment";
  }
  PR_UNREACHABLE();
}

std::optional<CertKind> kind_from_name(std::string_view name) {
  if (name == "chain") return CertKind::kChain;
  if (name == "decode") return CertKind::kDecode;
  if (name == "full") return CertKind::kFull;
  if (name == "segment") return CertKind::kSegment;
  return std::nullopt;
}

std::size_t payload_word_count(CertKind kind) {
  switch (kind) {
    case CertKind::kChain:
      return kChainWordCount;
    case CertKind::kDecode:
      return kDecodeWordCount;
    case CertKind::kFull:
      return kFullWordCount;
    case CertKind::kSegment:
      return kSegmentWordCount;
  }
  PR_UNREACHABLE();
}

void Certificate::seal() { payload_digest = support::fnv1a_words(words); }

std::string serialize_certificate(const Certificate& cert) {
  PR_REQUIRE_MSG(cert.words.size() == payload_word_count(cert.kind),
                 "certificate payload size does not match its kind");
  std::string out;
  out.reserve(kHeaderBytes + cert.words.size() * 8 + kFooterBytes);
  out.append(kMagic, sizeof(kMagic));
  put_u64(out, kEndianMarker);
  put_u32(out, kFormatVersion);
  put_u32(out, cert.engine_version);
  put_u64(out, cert.algorithm_digest);
  put_u32(out, static_cast<std::uint32_t>(cert.kind));
  put_u32(out, cert.k);
  put_u32(out, cert.n0);
  put_u32(out, cert.b);
  put_u64(out, static_cast<std::uint64_t>(cert.words.size()));
  put_u64(out, cert.payload_digest);
  PR_ASSERT(out.size() == kHeaderBytes);
  for (const std::uint64_t w : cert.words) put_u64(out, w);
  put_u64(out, support::fnv1a_bytes(out.data(), out.size()));
  return out;
}

DecodeResult decode_certificate(std::span<const unsigned char> bytes) {
  const auto reject = [](std::string msg) {
    return DecodeResult{std::nullopt, std::move(msg)};
  };
  if (bytes.size() < kHeaderBytes) {
    std::ostringstream os;
    os << "truncated header: " << bytes.size() << " bytes, need "
       << kHeaderBytes;
    return reject(os.str());
  }
  const unsigned char* p = bytes.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic: not a pathrouting certificate file");
  }
  // The marker is validated by a NATIVE read: the zero-copy payload
  // span reinterprets mapped bytes as host u64, which is only sound
  // when the host reads the little-endian file natively.
  std::uint64_t native_marker = 0;
  std::memcpy(&native_marker, p + 8, 8);
  if (native_marker != kEndianMarker) {
    return reject("foreign endianness: certificate files are "
                  "little-endian and are never byte-swapped");
  }
  const std::uint32_t format = get_u32(p + 16);
  if (format != kFormatVersion) {
    std::ostringstream os;
    os << "unsupported format version " << format << " (expected "
       << kFormatVersion << ")";
    return reject(os.str());
  }
  const std::uint32_t kind_raw = get_u32(p + 32);
  if (kind_raw > static_cast<std::uint32_t>(CertKind::kSegment)) {
    std::ostringstream os;
    os << "unknown certificate kind " << kind_raw;
    return reject(os.str());
  }
  const CertKind kind = static_cast<CertKind>(kind_raw);
  const std::uint64_t declared_words = get_u64(p + 48);
  if (declared_words != payload_word_count(kind)) {
    std::ostringstream os;
    os << "payload word count " << declared_words << " does not match kind '"
       << kind_name(kind) << "' (expected " << payload_word_count(kind) << ")";
    return reject(os.str());
  }
  const std::size_t expected_size =
      kHeaderBytes + static_cast<std::size_t>(declared_words) * 8 +
      kFooterBytes;
  if (bytes.size() != expected_size) {
    std::ostringstream os;
    os << "file size " << bytes.size() << " does not match declared payload"
       << " (expected " << expected_size << " bytes; truncated?)";
    return reject(os.str());
  }

  Certificate cert;
  cert.engine_version = get_u32(p + 20);
  cert.algorithm_digest = get_u64(p + 24);
  cert.kind = kind;
  cert.k = get_u32(p + 36);
  cert.n0 = get_u32(p + 40);
  cert.b = get_u32(p + 44);
  cert.payload_digest = get_u64(p + 56);
  cert.words.resize(static_cast<std::size_t>(declared_words));
  for (std::size_t i = 0; i < cert.words.size(); ++i) {
    cert.words[i] = get_u64(p + kHeaderBytes + 8 * i);
  }
  if (support::fnv1a_words(cert.words) != cert.payload_digest) {
    return reject("payload digest mismatch: certificate counts are "
                  "corrupted");
  }
  const std::size_t digested = expected_size - kFooterBytes;
  if (support::fnv1a_bytes(p, digested) != get_u64(p + digested)) {
    return reject("file digest mismatch: certificate file is corrupted");
  }
  return DecodeResult{std::move(cert), std::string()};
}

MappedCertificate::MappedCertificate(MappedCertificate&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      header_(other.header_),
      words_(std::exchange(other.words_, {})) {}

MappedCertificate& MappedCertificate::operator=(
    MappedCertificate&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    header_ = other.header_;
    words_ = std::exchange(other.words_, {});
  }
  return *this;
}

MappedCertificate::~MappedCertificate() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedOpenResult MappedCertificate::open(const std::string& path) {
  const auto fail = [&](const char* what) {
    std::ostringstream os;
    os << path << ": " << what;
    const int err = errno;
    if (err != 0) os << " (" << std::strerror(err) << ")";
    return MappedOpenResult{std::nullopt, os.str()};
  };
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("cannot open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    MappedOpenResult r = fail("cannot stat");
    ::close(fd);
    return r;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    errno = 0;
    return fail("empty file: truncated certificate");
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) return fail("mmap failed");

  MappedCertificate mapped;
  mapped.data_ = data;
  mapped.size_ = size;
  const std::span<const unsigned char> bytes(
      static_cast<const unsigned char*>(data), size);
  DecodeResult decoded = decode_certificate(bytes);
  if (!decoded.certificate.has_value()) {
    std::ostringstream os;
    os << path << ": " << decoded.error;
    return MappedOpenResult{std::nullopt, os.str()};
  }
  const Certificate& cert = *decoded.certificate;
  mapped.header_ = Header{cert.engine_version, cert.algorithm_digest,
                          cert.kind,           cert.k,
                          cert.n0,             cert.b,
                          cert.payload_digest};
  // Validated above: the file is native-endian and exactly
  // header + words + footer, and the payload starts 8-byte aligned
  // inside the page-aligned mapping.
  mapped.words_ = std::span<const std::uint64_t>(
      reinterpret_cast<const std::uint64_t*>(
          static_cast<const unsigned char*>(data) + kHeaderBytes),
      cert.words.size());
  return MappedOpenResult{std::move(mapped), std::string()};
}

Certificate MappedCertificate::to_certificate() const {
  Certificate cert;
  cert.engine_version = header_.engine_version;
  cert.algorithm_digest = header_.algorithm_digest;
  cert.kind = header_.kind;
  cert.k = header_.k;
  cert.n0 = header_.n0;
  cert.b = header_.b;
  cert.payload_digest = header_.payload_digest;
  cert.words.assign(words_.begin(), words_.end());
  return cert;
}

}  // namespace pathrouting::service
