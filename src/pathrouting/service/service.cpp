#include "pathrouting/service/service.hpp"

#include <algorithm>
#include <future>
#include <sstream>
#include <utility>

#include "pathrouting/analysis/envelope.hpp"
#include "pathrouting/audit/audit.hpp"
#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/bilinear/catalog.hpp"
#include "pathrouting/bounds/segment_certifier.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/schedule/schedules.hpp"
#include "pathrouting/support/digest.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::service {
namespace {

/// Vertex count of the G_r layout without constructing it (the Layout
/// ctor aborts past 32-bit ids): sum_t 2 b^t a^(r-t) + b^(r-t) a^t,
/// saturated at kInvalidVertex.
unsigned __int128 layout_vertex_count(const bilinear::BilinearAlgorithm& alg,
                                      int r) {
  unsigned __int128 total = 0;
  for (int t = 0; t <= r; ++t) {
    unsigned __int128 enc = 2, dec = 1;
    for (int i = 0; i < t; ++i) enc *= alg.b(), dec *= alg.a();
    for (int i = t; i < r; ++i) enc *= alg.a(), dec *= alg.b();
    total += enc + dec;
    if (total >= cdag::kInvalidVertex) return cdag::kInvalidVertex;
  }
  return total;
}

/// Largest rank whose layout stays within the 32-bit id space — the
/// same limit every engine in the repo lives under.
int max_rank_within_ids(const bilinear::BilinearAlgorithm& alg) {
  int r = 0;
  while (r < 64 &&
         layout_vertex_count(alg, r + 1) < cdag::kInvalidVertex) {
    ++r;
  }
  return r;
}

bool known_algorithm(const std::string& name) {
  const std::vector<std::string> names = bilinear::catalog_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

/// Everything needed to compute any certificate of one algorithm,
/// built once and shared read-only by all serving threads. The memo
/// engine's canonical cache is internally synchronized; the rest is
/// immutable after construction.
struct CertificateService::EngineArena {
  bilinear::BilinearAlgorithm alg;
  std::uint64_t digest = 0;  // algorithm_digest(alg)
  int max_rank = 0;          // id-space ceiling for requests
  bool has_decode = false;   // decoding graph connected (Claim 1 applies)
  std::optional<routing::MemoRoutingEngine> engine;
  /// Per-kind overflow envelopes for response annotation. Only the
  /// first-wrap ranks are consumed here, so the value tracks are kept
  /// at minimal depth — the wrap scan itself is closed-form arithmetic
  /// and does not move the cold-miss latency budget (bench_service).
  analysis::AlgorithmEnvelopes envelopes;

  explicit EngineArena(bilinear::BilinearAlgorithm algorithm)
      : alg(std::move(algorithm)),
        digest(algorithm_digest(alg)),
        max_rank(max_rank_within_ids(alg)),
        has_decode(bilinear::decoding_components(alg) == 1) {
    const routing::ChainRouter router(alg);
    if (has_decode) {
      const routing::DecodeRouter decoder(alg);
      engine.emplace(router, decoder);
    } else {
      engine.emplace(router);
    }
    analysis::EnvelopeOptions envelope_options;
    envelope_options.value_kmax = 1;
    envelope_options.stats_value_kmax = 1;
    envelopes = analysis::compute_envelopes(alg, envelope_options);
  }

  /// Stamps the kind's envelope onto a successful response.
  void annotate(const Request& request, Response& response) const {
    if (!response.ok || request.kind == CertKind::kSegment) return;
    const char* prefix = request.kind == CertKind::kChain ? "chain."
                         : request.kind == CertKind::kFull ? "full."
                                                           : "decode.";
    const int wrap = envelopes.first_wrap_for_kind(prefix);
    response.envelope_wrap_k = static_cast<std::uint32_t>(wrap);
    response.envelope_exact = wrap == 0 || request.k < wrap;
  }
};

struct CertificateService::Inflight {
  std::promise<Response> promise;
  std::shared_future<Response> future = promise.get_future().share();
};

CertificateService::CertificateService(ServiceConfig config)
    : config_(std::move(config)), store_(config_.store_dir) {}

CertificateService::~CertificateService() = default;

std::shared_ptr<const CertificateService::EngineArena>
CertificateService::arena_for(const std::string& name, std::string* error) {
  std::lock_guard<std::mutex> lock(arenas_mutex_);
  const auto it = arenas_.find(name);
  if (it != arenas_.end()) return it->second;
  if (!known_algorithm(name)) {
    *error = "unknown algorithm '" + name + "'";
    return nullptr;
  }
  const obs::TraceSpan span("service.arena_build");
  auto arena = std::make_shared<const EngineArena>(bilinear::by_name(name));
  arenas_.emplace(name, arena);
  return arena;
}

std::string CertificateService::validate(const EngineArena& arena,
                                         const Request& request) const {
  std::ostringstream os;
  if (request.k < 1) {
    os << "k must be >= 1 (got " << request.k << ")";
    return os.str();
  }
  if (request.k > arena.max_rank) {
    os << "k " << request.k << " exceeds the id-space limit " << arena.max_rank
       << " for algorithm '" << arena.alg.name() << "'";
    return os.str();
  }
  if (request.kind == CertKind::kDecode && !arena.has_decode) {
    os << "algorithm '" << arena.alg.name()
       << "' has a disconnected decoding graph; Claim 1 does not apply";
    return os.str();
  }
  if (request.kind == CertKind::kSegment &&
      request.k > config_.segment_max_k) {
    os << "segment certificates build an explicit CDAG; k " << request.k
       << " exceeds the configured ceiling " << config_.segment_max_k;
    return os.str();
  }
  return std::string();
}

Certificate CertificateService::compute(const EngineArena& arena,
                                        const Request& request) const {
  const obs::TraceSpan span("service.compute");
  const int k = request.k;
  Certificate cert;
  cert.engine_version = kEngineVersion;
  cert.algorithm_digest = arena.digest;
  cert.kind = request.kind;
  cert.k = static_cast<std::uint32_t>(k);
  cert.n0 = static_cast<std::uint32_t>(arena.alg.n0());
  cert.b = static_cast<std::uint32_t>(arena.alg.b());
  cert.words.assign(payload_word_count(request.kind), 0);

  const routing::MemoRoutingEngine& engine = *arena.engine;
  const bool digestible =
      layout_vertex_count(arena.alg, k) <= config_.digest_max_vertices;

  switch (request.kind) {
    case CertKind::kChain: {
      const cdag::ImplicitCdag view(arena.alg, k);
      const routing::HitStats l3 = engine.verify_chain_routing(view, k, 0);
      cert.words[kChainNumChains] = l3.num_paths;
      cert.words[kChainL3MaxHits] = l3.max_hits;
      cert.words[kChainL3Bound] = l3.bound;
      cert.words[kChainL3Argmax] = l3.argmax;
      cert.words[kChainL4Exact] =
          engine.verify_chain_multiplicities(view, k, 0) ? 1 : 0;
      if (digestible) {
        cert.words[kChainHitDigest] =
            support::fnv1a_words(engine.canonical_chain_hit_array(k));
        cert.words[kChainHasHitDigest] = 1;
      }
      break;
    }
    case CertKind::kDecode: {
      const cdag::ImplicitCdag view(arena.alg, k);
      const routing::HitStats d = engine.verify_decode_routing(view, k, 0);
      cert.words[kDecodeNumPaths] = d.num_paths;
      cert.words[kDecodeMaxHits] = d.max_hits;
      cert.words[kDecodeBound] = d.bound;
      cert.words[kDecodeArgmax] = d.argmax;
      if (digestible) {
        cert.words[kDecodeHitDigest] =
            support::fnv1a_words(engine.canonical_decode_hit_array(k));
        cert.words[kDecodeHasHitDigest] = 1;
      }
      break;
    }
    case CertKind::kFull: {
      const cdag::ImplicitCdag view(arena.alg, k);
      const routing::FullRoutingStats t2 =
          engine.verify_full_routing(view, k, 0);
      cert.words[kFullNumPaths] = t2.num_paths;
      cert.words[kFullMaxVertexHits] = t2.max_vertex_hits;
      cert.words[kFullArgmaxVertex] = t2.argmax_vertex;
      cert.words[kFullMaxMetaHits] = t2.max_meta_hits;
      cert.words[kFullBound] = t2.bound;
      cert.words[kFullRootHitProperty] = t2.root_hit_property ? 1 : 0;
      if (digestible) {
        // Theorem 2 aggregates the chain hit array, so the full-kind
        // digest pins that same canonical array.
        cert.words[kFullHitDigest] =
            support::fnv1a_words(engine.canonical_chain_hit_array(k));
        cert.words[kFullHasHitDigest] = 1;
      }
      break;
    }
    case CertKind::kSegment: {
      const cdag::Cdag graph(arena.alg, k, {.with_coefficients = false});
      const std::vector<cdag::VertexId> order = schedule::dfs_schedule(graph);
      // The smallest honest parameters, matching audit::run_all: k = 1
      // with the half-rank target a/2 (paper-sized 66M targets need
      // astronomically large ranks).
      bounds::CertifyParams params;
      params.cache_size = 1;
      params.k = 1;
      params.s_bar_target = static_cast<std::uint64_t>(arena.alg.a() / 2);
      const bounds::CertifyResult result =
          bounds::certify_segments_decode_only(graph, order, params);
      cert.words[kSegmentCertK] = static_cast<std::uint64_t>(result.k);
      cert.words[kSegmentSBarTarget] = result.s_bar_target;
      cert.words[kSegmentCountedTotal] = result.counted_total;
      cert.words[kSegmentCompleteSegments] = result.complete_segments();
      cert.words[kSegmentCacheSize] = params.cache_size;
      // Section 5's boundary inequality, Equation (1): denominator 22.
      cert.words[kSegmentEqHolds] = result.eq_holds(22) ? 1 : 0;
      cert.words[kSegmentScheduleSize] = order.size();
      break;
    }
  }
  cert.seal();
  return cert;
}

Response CertificateService::finish(const StoreKey& key, Certificate cert,
                                    bool from_cache) {
  if (config_.audit_served) {
    const audit::ServedCertificateView view{
        cert.words, cert.payload_digest, store_.recorded_digest(key)};
    const audit::AuditReport report = audit::audit_served_certificate(view);
    if (!report.ok()) {
      static obs::Counter audit_refusals("service.audit_refusals");
      audit_refusals.add();
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        ++metrics_.errors;
      }
      Response resp;
      resp.error = "service.cert-digest-match: " +
                   report.diagnostics().front().message;
      return resp;
    }
  }
  Response resp;
  resp.ok = true;
  resp.from_cache = from_cache;
  resp.certificate = std::move(cert);
  return resp;
}

Response CertificateService::serve(const Request& request) {
  static obs::Counter obs_requests("service.requests");
  static obs::Counter obs_hits("service.store_hits");
  static obs::Counter obs_computed("service.computed");
  static obs::Counter obs_waits("service.inflight_waits");
  static obs::Counter obs_errors("service.errors");
  obs_requests.add();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.requests;
  }

  std::string error;
  const std::shared_ptr<const EngineArena> arena =
      arena_for(request.algorithm, &error);
  if (arena == nullptr) {
    obs_errors.add();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.errors;
    Response resp;
    resp.error = std::move(error);
    return resp;
  }
  error = validate(*arena, request);
  if (!error.empty()) {
    obs_errors.add();
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.errors;
    Response resp;
    resp.error = std::move(error);
    return resp;
  }

  const StoreKey key{arena->digest, static_cast<std::uint32_t>(request.k),
                     request.kind, kEngineVersion};
  if (std::optional<Certificate> hit = store_.lookup(key)) {
    obs_hits.add();
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.store_hits;
    }
    Response resp = finish(key, std::move(*hit), true);
    arena->annotate(request, resp);
    return resp;
  }

  // Admission: the first requester of a missing key computes; everyone
  // else parks on its future.
  std::shared_ptr<Inflight> owned;
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      const std::shared_ptr<Inflight> other = it->second;
      lock.unlock();
      obs_waits.add();
      {
        std::lock_guard<std::mutex> mlock(metrics_mutex_);
        ++metrics_.inflight_waits;
      }
      return other->future.get();
    }
    owned = std::make_shared<Inflight>();
    inflight_.emplace(key, owned);
    std::lock_guard<std::mutex> mlock(metrics_mutex_);
    metrics_.inflight_peak =
        std::max(metrics_.inflight_peak,
                 static_cast<std::uint64_t>(inflight_.size()));
  }

  Certificate cert = compute(*arena, request);
  store_.insert(key, cert);
  obs_computed.add();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.computed;
  }
  Response resp = finish(key, std::move(cert), false);
  arena->annotate(request, resp);
  owned->promise.set_value(resp);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  return resp;
}

std::vector<Response> CertificateService::serve_batch(
    std::span<const Request> requests) {
  static obs::Counter obs_batches("service.batches");
  static obs::Counter obs_batched("service.batched_requests");
  obs_batches.add();
  obs_batched.add(requests.size());
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++metrics_.batches;
    metrics_.batched_requests += requests.size();
  }

  struct Slot {
    std::shared_ptr<const EngineArena> arena;
    StoreKey key;
    std::string error;
  };
  std::vector<Slot> slots(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Slot& slot = slots[i];
    slot.arena = arena_for(requests[i].algorithm, &slot.error);
    if (slot.arena == nullptr) continue;
    slot.error = validate(*slot.arena, requests[i]);
    if (!slot.error.empty()) continue;
    slot.key = StoreKey{slot.arena->digest,
                        static_cast<std::uint32_t>(requests[i].k),
                        requests[i].kind, kEngineVersion};
  }

  // Distinct missing keys, in first-occurrence order (deterministic).
  std::map<StoreKey, std::size_t> first_index;
  std::vector<std::size_t> miss_reps;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slots[i].arena == nullptr || !slots[i].error.empty()) continue;
    if (!first_index.emplace(slots[i].key, i).second) continue;
    if (!store_.lookup(slots[i].key).has_value()) miss_reps.push_back(i);
  }

  // Compute the misses as fixed unit chunks on the deterministic pool;
  // each writes its own slot, so results are bit-identical to serial.
  std::vector<Certificate> computed(miss_reps.size());
  support::parallel::for_chunks(
      0, miss_reps.size(), 1,
      [&](std::uint64_t lo, std::uint64_t hi, int) {
        for (std::uint64_t j = lo; j < hi; ++j) {
          const std::size_t i = miss_reps[j];
          computed[j] = compute(*slots[i].arena, requests[i]);
        }
      });
  for (std::size_t j = 0; j < miss_reps.size(); ++j) {
    store_.insert(slots[miss_reps[j]].key, computed[j]);
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.requests += requests.size();
    metrics_.computed += miss_reps.size();
  }

  std::vector<Response> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slots[i].arena == nullptr || !slots[i].error.empty()) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.errors;
      responses[i].error = slots[i].error;
      continue;
    }
    std::optional<Certificate> cert = store_.lookup(slots[i].key);
    PR_ASSERT(cert.has_value());
    // Mirrors serial replay: the first requester of a computed key
    // reports a miss, every other request of the batch a hit.
    const bool computed_here =
        std::find(miss_reps.begin(), miss_reps.end(), i) != miss_reps.end();
    if (!computed_here) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.store_hits;
    }
    responses[i] = finish(slots[i].key, std::move(*cert), !computed_here);
    slots[i].arena->annotate(requests[i], responses[i]);
  }
  return responses;
}

ServiceMetrics CertificateService::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_;
}

}  // namespace pathrouting::service
