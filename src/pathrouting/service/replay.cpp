#include "pathrouting/service/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>

#include "pathrouting/support/check.hpp"
#include "pathrouting/support/prng.hpp"

namespace pathrouting::service {
namespace {

struct SpaceEntry {
  const char* alg;
  CertKind kind;
  int kmax;
};

// k ranges sized so one cold sweep of the whole space stays in the
// tens of milliseconds (the deepest entry, strassen chain k=7, is the
// bench's cold-miss headline and costs a few ms on the implicit path).
constexpr SpaceEntry kSpace[] = {
    {"strassen", CertKind::kChain, 7},
    {"strassen", CertKind::kFull, 6},
    {"strassen", CertKind::kDecode, 6},
    {"strassen", CertKind::kSegment, 3},
    {"winograd", CertKind::kChain, 5},
    {"winograd", CertKind::kDecode, 4},
    {"laderman", CertKind::kChain, 4},
    {"classical2_x_strassen", CertKind::kChain, 4},
    {"classical2_x_strassen", CertKind::kFull, 3},
};

}  // namespace

std::vector<Request> request_space() {
  std::vector<Request> space;
  for (const SpaceEntry& entry : kSpace) {
    for (int k = 1; k <= entry.kmax; ++k) {
      space.push_back(Request{entry.alg, k, entry.kind});
    }
  }
  return space;
}

std::vector<Request> zipf_trace(const TraceSpec& spec) {
  std::vector<Request> space = request_space();
  support::Xoshiro256 rng(spec.seed);
  // Seeded rank permutation (Fisher-Yates), so which requests are
  // "hot" varies with the seed while staying reproducible.
  for (std::size_t i = space.size(); i > 1; --i) {
    std::swap(space[i - 1], space[rng.below(i)]);
  }
  // Integer harmonic weights: rank i draws with weight W/(i+1). Pure
  // integer arithmetic keeps the trace platform-independent.
  constexpr std::uint64_t kScale = 1u << 20;
  std::vector<std::uint64_t> cumulative(space.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    total += kScale / static_cast<std::uint64_t>(i + 1);
    cumulative[i] = total;
  }
  std::vector<Request> trace;
  trace.reserve(spec.num_requests);
  for (std::uint64_t n = 0; n < spec.num_requests; ++n) {
    const std::uint64_t draw = rng.below(total);
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), draw);
    trace.push_back(space[static_cast<std::size_t>(
        std::distance(cumulative.begin(), it))]);
  }
  return trace;
}

ReplayResult replay_trace(CertificateService& svc,
                          std::span<const Request> trace,
                          int client_threads) {
  PR_REQUIRE(client_threads >= 1);
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::uint64_t ok = 0, errors = 0, hits = 0, computed = 0;
    std::vector<double> hit_us, miss_us;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(client_threads));
  const std::size_t n = trace.size();

  const auto run_shard = [&](int c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) /
                           static_cast<std::size_t>(client_threads);
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) /
                           static_cast<std::size_t>(client_threads);
    Shard& shard = shards[static_cast<std::size_t>(c)];
    for (std::size_t i = lo; i < hi; ++i) {
      const Clock::time_point t0 = Clock::now();
      const Response resp = svc.serve(trace[i]);
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count();
      if (!resp.ok) {
        ++shard.errors;
        continue;
      }
      ++shard.ok;
      if (resp.from_cache) {
        ++shard.hits;
        shard.hit_us.push_back(us);
      } else {
        ++shard.computed;
        shard.miss_us.push_back(us);
      }
    }
  };

  const Clock::time_point start = Clock::now();
  if (client_threads == 1) {
    run_shard(0);
  } else {
    // Replay clients model independent external callers, so they are
    // deliberately NOT pool workers: the determinism contract covers
    // the served responses (fixed shard split + per-shard metrics),
    // not client scheduling.
    std::vector<std::thread> clients;  // pr-static: allow(static.raw-thread)
    clients.reserve(static_cast<std::size_t>(client_threads));
    for (int c = 0; c < client_threads; ++c) {
      clients.emplace_back(run_shard, c);
    }
    // pr-static: allow(static.raw-thread)
    for (std::thread& t : clients) t.join();
  }

  ReplayResult result;
  result.requests = n;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::set<std::tuple<std::string, int, CertKind>> unique;
  for (const Request& req : trace) {
    unique.emplace(req.algorithm, req.k, req.kind);
  }
  result.unique_keys = unique.size();
  for (const Shard& shard : shards) {
    result.ok += shard.ok;
    result.errors += shard.errors;
    result.cache_hits += shard.hits;
    result.computed += shard.computed;
    result.hit_us.insert(result.hit_us.end(), shard.hit_us.begin(),
                         shard.hit_us.end());
    result.miss_us.insert(result.miss_us.end(), shard.miss_us.begin(),
                          shard.miss_us.end());
  }
  return result;
}

double percentile_us(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = idx == 0 ? 0 : idx - 1;
  idx = std::min(idx, values.size() - 1);
  return values[idx];
}

}  // namespace pathrouting::service
