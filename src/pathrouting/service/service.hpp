// CertificateService: batched, concurrent serving of routing
// certificates out of the content-addressed store.
//
// Request path:
//
//   serve(request)
//     -> store lookup (shared lock + mmap; a hit never touches an
//        engine and is the latency the service is optimized for)
//     -> in-flight admission: concurrent requests for the SAME key
//        coalesce onto one computation (a shared_future); only the
//        first requester computes
//     -> compute on the shared engine arena of the algorithm, insert
//        into the store, publish.
//
//   serve_batch(requests)
//     -> dedupes keys inside the batch, serves hits, and runs the
//        distinct misses as fixed chunks on the deterministic parallel
//        substrate (support/parallel). Responses land in fixed slots,
//        so a batch is bit-identical to serving its requests serially
//        — the property tests/test_service.cpp pins under TSan.
//
// One EngineArena per algorithm holds the ChainRouter / DecodeRouter /
// MemoRoutingEngine. Arenas are immutable after construction and the
// memo engine's canonical cache is concurrent-reader-safe
// (routing/memo_routing.hpp), so any number of serving threads share
// one arena without copying CDAGs or tables.
//
// What gets computed per kind (all through the constant-memory
// implicit view, so cold misses never materialize a CDAG):
//   chain   — Lemma-3 stats + Lemma-4 multiplicity verdict
//   full    — Theorem-2 stats
//   decode  — Claim-1 stats (connected decoding graphs only)
//   segment — Sections-5 certifier summary over a DFS schedule (this
//             one builds an explicit CDAG, hence config.segment_max_k)
// plus, for chain/decode/full below config.digest_max_vertices, the
// FNV-1a digest of the canonical per-vertex hit array — bit-identical
// to the golden corpus digests, because for sub(G_k, k, 0) the Fact-1
// translation is the identity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pathrouting/service/certificate.hpp"
#include "pathrouting/service/store.hpp"

namespace pathrouting::service {

struct ServiceConfig {
  /// Store directory; empty = memory-only (tests).
  std::string store_dir;
  /// Materialize + digest canonical hit arrays only while the G_k
  /// layout stays within this many vertices (two permanent u64 arrays
  /// per (algorithm, k) are the cost). Above it certificates carry
  /// has_hit_digest = 0 — the same explicit/implicit cutoff as the
  /// golden corpus. The default covers the whole golden corpus
  /// (strassen/winograd k <= 6, laderman k <= 4).
  std::uint64_t digest_max_vertices = 1u << 20;
  /// Segment certificates build an explicit CDAG + DFS schedule; cap
  /// the rank so a request cannot ask for a 100 GiB build.
  int segment_max_k = 5;
  /// Run the service.cert-digest-match audit rule on every served
  /// certificate and refuse to serve on a finding.
  bool audit_served = false;
};

struct Request {
  std::string algorithm;  // catalog name (bilinear::by_name)
  int k = 0;
  CertKind kind = CertKind::kChain;

  bool operator==(const Request&) const = default;
};

struct Response {
  bool ok = false;
  std::string error;        // set when !ok
  bool from_cache = false;  // served from the store (no engine work)
  /// Overflow envelope of the served kind (analysis::compute_envelopes):
  /// the smallest rank at which some quantity of this kind wraps u64
  /// (0 = none within the analyzer's scan depth) and whether this
  /// certificate's counts are therefore exact integers (k below that
  /// rank) rather than wrap-exact residues. Segment certificates are
  /// not formula-modeled: wrap_k = 0, exact = true.
  std::uint32_t envelope_wrap_k = 0;
  bool envelope_exact = true;
  Certificate certificate;  // valid when ok
};

/// Monotonic totals since construction (also exported as obs counters
/// under service.*).
struct ServiceMetrics {
  std::uint64_t requests = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t computed = 0;
  std::uint64_t inflight_waits = 0;  // coalesced onto another request
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t inflight_peak = 0;  // admission queue depth high-water
};

class CertificateService {
 public:
  explicit CertificateService(ServiceConfig config);
  ~CertificateService();
  CertificateService(const CertificateService&) = delete;
  CertificateService& operator=(const CertificateService&) = delete;

  /// Serves one request. Thread-safe; concurrent calls with the same
  /// key coalesce onto one computation.
  [[nodiscard]] Response serve(const Request& request);

  /// Serves a batch: responses[i] answers requests[i] and is
  /// bit-identical to serve(requests[i]) in isolation. Distinct
  /// missing keys are computed concurrently (PR_THREADS).
  [[nodiscard]] std::vector<Response> serve_batch(
      std::span<const Request> requests);

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] CertificateStore& store() { return store_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct EngineArena;
  struct Inflight;

  /// Resolves (and lazily builds) the shared arena for a catalog
  /// algorithm; nullptr + error message for unknown names.
  std::shared_ptr<const EngineArena> arena_for(const std::string& name,
                                               std::string* error);
  /// Validates the request against the arena (k range, kind support)
  /// without computing; empty string = valid.
  std::string validate(const EngineArena& arena, const Request& request) const;
  /// Computes the certificate (store untouched). Requires validate()
  /// passed.
  Certificate compute(const EngineArena& arena, const Request& request) const;
  /// Hit path + digest-match audit; increments error metrics on audit
  /// refusal.
  Response finish(const StoreKey& key, Certificate cert, bool from_cache);

  ServiceConfig config_;
  CertificateStore store_;

  mutable std::mutex arenas_mutex_;
  std::map<std::string, std::shared_ptr<const EngineArena>> arenas_;

  mutable std::mutex inflight_mutex_;
  std::map<StoreKey, std::shared_ptr<Inflight>> inflight_;

  mutable std::mutex metrics_mutex_;
  ServiceMetrics metrics_;
};

}  // namespace pathrouting::service
