// Deterministic Zipf-ish request traces and a replay driver, shared by
// bench/bench_service.cpp and tools/pr_bench_gate.cpp so the committed
// BENCH_service.json counts can be re-derived exactly.
//
// The request space is a fixed catalog slice (per-algorithm kind/k
// ranges sized so a full cold sweep stays cheap); a seeded Xoshiro256
// permutation assigns Zipf ranks and requests are drawn with integer
// harmonic weights (weight of rank i proportional to 1/(i+1)) —
// integer arithmetic only, so the trace is bit-identical across
// platforms and libms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/service/service.hpp"

namespace pathrouting::service {

struct TraceSpec {
  std::uint64_t seed = 20260807;
  std::uint64_t num_requests = 2048;

  bool operator==(const TraceSpec&) const = default;
};

/// The enumerated request space the trace draws from (deterministic
/// order, before the seeded rank permutation).
[[nodiscard]] std::vector<Request> request_space();

/// The trace: num_requests draws, Zipf-ish over request_space().
[[nodiscard]] std::vector<Request> zipf_trace(const TraceSpec& spec);

struct ReplayResult {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;  // responses with from_cache
  std::uint64_t computed = 0;    // responses computed on the spot
  std::uint64_t unique_keys = 0;  // distinct requests in the trace
  double seconds = 0;             // wall clock for the whole replay
  /// Client-observed per-request latencies in microseconds, split by
  /// hit/miss. Ordered by (client thread, request order) — sort before
  /// taking percentiles.
  std::vector<double> hit_us;
  std::vector<double> miss_us;
};

/// Replays `trace` against `svc` from `client_threads` concurrent
/// clients (contiguous shards, each served in order). With one client
/// every count in the result is deterministic: the first occurrence of
/// each key in the trace is a miss, every later one a hit.
[[nodiscard]] ReplayResult replay_trace(CertificateService& svc,
                                        std::span<const Request> trace,
                                        int client_threads);

/// p in [0,100] percentile of `values` (nearest-rank; 0 when empty).
[[nodiscard]] double percentile_us(std::vector<double> values, double p);

}  // namespace pathrouting::service
