// Construction of G_r. Vertices are emitted in id order (encA ranks
// 0..r, encB ranks 0..r, dec ranks 0..r), which is topological, so the
// in-adjacency CSR is written in a single streaming pass.
#include <unordered_map>
#include <utility>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::cdag {

namespace {

struct SparseTerm {
  std::uint64_t index;  // entry d for U/V rows, product q for W rows
  Rational coeff;
};

/// Row q of U or V as sparse terms over entries d.
std::vector<std::vector<SparseTerm>> sparse_uv(const BilinearAlgorithm& alg,
                                               Side side) {
  std::vector<std::vector<SparseTerm>> rows(
      static_cast<std::size_t>(alg.b()));
  for (int q = 0; q < alg.b(); ++q) {
    for (int d = 0; d < alg.a(); ++d) {
      const Rational& c = side == Side::A ? alg.u(q, d) : alg.v(q, d);
      if (!c.is_zero()) {
        rows[static_cast<std::size_t>(q)].push_back(
            {static_cast<std::uint64_t>(d), c});
      }
    }
    PR_REQUIRE_MSG(!rows[static_cast<std::size_t>(q)].empty(),
                   "base algorithm has an identically-zero encoding row");
  }
  return rows;
}

/// Row d of W as sparse terms over products q.
std::vector<std::vector<SparseTerm>> sparse_w(const BilinearAlgorithm& alg) {
  std::vector<std::vector<SparseTerm>> rows(static_cast<std::size_t>(alg.a()));
  for (int d = 0; d < alg.a(); ++d) {
    for (int q = 0; q < alg.b(); ++q) {
      const Rational& c = alg.w(d, q);
      if (!c.is_zero()) {
        rows[static_cast<std::size_t>(d)].push_back(
            {static_cast<std::uint64_t>(q), c});
      }
    }
    PR_REQUIRE_MSG(!rows[static_cast<std::size_t>(d)].empty(),
                   "base algorithm has an identically-zero output row");
  }
  return rows;
}

}  // namespace

Cdag::Cdag(BilinearAlgorithm alg, int r, CdagOptions options)
    : alg_(std::move(alg)), layout_(alg_.n0(), alg_.b(), r) {
  const auto u_rows = sparse_uv(alg_, Side::A);
  const auto v_rows = sparse_uv(alg_, Side::B);
  const auto w_rows = sparse_w(alg_);
  // Lemma 2 precondition: no decoding copies. A trivial W row would
  // make an output a verbatim copy of a product and meta-vertices would
  // grow upward into the decoding graph; the paper (and this library)
  // excludes such degenerate bases.
  for (const auto& row : w_rows) {
    PR_REQUIRE_MSG(!(row.size() == 1 && row.front().coeff.is_one()),
                   "decoding row is a verbatim copy (violates Lemma 2 setup)");
  }

  const auto& pa = layout_.pow_a();
  const auto& pb = layout_.pow_b();
  const std::uint64_t n = layout_.num_vertices();

  // Count edges to reserve: per encoding rank t>=1 vertex with final
  // recursion digit q, in-degree is nnz(row q); decode rank t>=1 vertex
  // with leading position digit d has in-degree nnz(W row d); products
  // have in-degree 2.
  std::uint64_t num_edges = 0;
  for (int t = 1; t <= r; ++t) {
    const std::uint64_t per_q = pb(t - 1) * pa(r - t);
    for (int q = 0; q < alg_.b(); ++q) {
      num_edges += per_q * (u_rows[static_cast<std::size_t>(q)].size() +
                            v_rows[static_cast<std::size_t>(q)].size());
    }
    const std::uint64_t per_d = pb(r - t) * pa(t - 1);
    for (int d = 0; d < alg_.a(); ++d) {
      num_edges += per_d * w_rows[static_cast<std::size_t>(d)].size();
    }
  }
  num_edges += 2 * pb(r);
  PR_REQUIRE_MSG(num_edges < kInvalidVertex,
                 "CDAG too large for 32-bit edge offsets");

  std::vector<std::uint32_t> in_off;
  in_off.reserve(n + 1);
  in_off.push_back(0);
  std::vector<VertexId> in_adj;
  in_adj.reserve(num_edges);
  if (options.with_coefficients) in_coeff_.reserve(num_edges);
  copy_parent_.assign(n, kInvalidVertex);

  const auto emit = [&](VertexId from, const Rational& coeff) {
    in_adj.push_back(from);
    if (options.with_coefficients) in_coeff_.push_back(coeff);
  };
  const auto close_vertex = [&] {
    in_off.push_back(static_cast<std::uint32_t>(in_adj.size()));
  };

  // Section-8 grouping: canonical operand classes. Two encoding
  // vertices carry the same (generic) value iff their operands were
  // built by the same canonical sequence of nontrivial rows applied to
  // the same input side — trivial rows merely select a sub-block and
  // fold into the position via the copy chain. Each operand q⃗ at rank
  // t gets a class id interned on (parent class, representative row);
  // the meta-root of a nontrivial vertex is then the first vertex seen
  // with its (class, position) pair.
  grouped_duplicates_ = options.group_duplicate_rows;
  std::vector<int> rep_a(static_cast<std::size_t>(alg_.b()));
  std::vector<int> rep_b(static_cast<std::size_t>(alg_.b()));
  if (options.group_duplicate_rows) {
    const auto fill_reps = [&](Side side, std::vector<int>& rep) {
      for (int q = 0; q < alg_.b(); ++q) {
        rep[static_cast<std::size_t>(q)] = q;
        for (int q2 = 0; q2 < q; ++q2) {
          bool equal = true;
          for (int d = 0; d < alg_.a() && equal; ++d) {
            const Rational& x = side == Side::A ? alg_.u(q, d) : alg_.v(q, d);
            const Rational& y =
                side == Side::A ? alg_.u(q2, d) : alg_.v(q2, d);
            equal = x == y;
          }
          if (equal) {
            rep[static_cast<std::size_t>(q)] = q2;
            break;
          }
        }
      }
    };
    fill_reps(Side::A, rep_a);
    fill_reps(Side::B, rep_b);
  }
  // dup_ref[v]: the same-value vertex with smaller id that v merges
  // with (kInvalidVertex if none).
  std::vector<VertexId> dup_ref;
  std::unordered_map<std::uint64_t, std::uint32_t> class_intern;
  std::unordered_map<std::uint64_t, VertexId> value_root;
  std::uint32_t next_class = 2;  // 0 = operand A, 1 = operand B
  if (options.group_duplicate_rows) {
    dup_ref.assign(n, kInvalidVertex);
    class_intern.reserve(1 << 12);
    value_root.reserve(static_cast<std::size_t>(n) / 2);
  }
  // Class of operand q⃗ at the PREVIOUS rank (parent classes) and the
  // one being built. Trivial rows keep the parent class but tag the
  // selected block so distinct sub-blocks stay distinct.
  std::vector<std::uint32_t> parent_classes, current_classes;
  const auto intern_class = [&](std::uint32_t parent, bool trivial,
                                std::uint32_t value) {
    const std::uint64_t key = (static_cast<std::uint64_t>(parent) << 24) |
                              (static_cast<std::uint64_t>(trivial) << 23) |
                              value;
    const auto [it, inserted] = class_intern.try_emplace(key, next_class);
    if (inserted) {
      ++next_class;
      PR_ASSERT_MSG(next_class < (1u << 22), "too many operand classes");
    }
    return it->second;
  };

  // Encoding layers. Rank 0 vertices (inputs) have no in-edges.
  for (const Side side : {Side::A, Side::B}) {
    const auto& rows = side == Side::A ? u_rows : v_rows;
    const auto& rep = side == Side::A ? rep_a : rep_b;
    for (std::uint64_t p = 0; p < pa(r); ++p) close_vertex();
    if (options.group_duplicate_rows) {
      parent_classes.assign(1, side == Side::A ? 0u : 1u);
    }
    for (int t = 1; t <= r; ++t) {
      const std::uint64_t plen = pa(r - t);
      if (options.group_duplicate_rows) {
        current_classes.resize(pb(t));
      }
      for (std::uint64_t q_hi = 0; q_hi < pb(t - 1); ++q_hi) {
        for (int q = 0; q < alg_.b(); ++q) {
          const auto& row = rows[static_cast<std::size_t>(q)];
          const bool trivial =
              row.size() == 1 && row.front().coeff.is_one();
          std::uint32_t op_class = 0;
          if (options.group_duplicate_rows) {
            op_class = intern_class(
                parent_classes[q_hi], trivial,
                trivial ? static_cast<std::uint32_t>(row.front().index)
                        : static_cast<std::uint32_t>(
                              rep[static_cast<std::size_t>(q)]));
            current_classes[q_hi * static_cast<std::uint64_t>(alg_.b()) +
                            static_cast<std::uint64_t>(q)] = op_class;
          }
          for (std::uint64_t p = 0; p < plen; ++p) {
            const VertexId self = layout_.enc(
                side, t, q_hi * static_cast<std::uint64_t>(alg_.b()) +
                             static_cast<std::uint64_t>(q),
                p);
            for (const SparseTerm& term : row) {
              const VertexId parent =
                  layout_.enc(side, t - 1, q_hi, term.index * plen + p);
              emit(parent, term.coeff);
              if (trivial) copy_parent_[self] = parent;
            }
            if (options.group_duplicate_rows && !trivial) {
              PR_ASSERT(p < (std::uint64_t{1} << 40));
              const std::uint64_t key =
                  (static_cast<std::uint64_t>(op_class) << 40) | p;
              const auto [it, inserted] = value_root.try_emplace(key, self);
              if (!inserted) dup_ref[self] = it->second;
            }
            close_vertex();
          }
        }
      }
      if (options.group_duplicate_rows) {
        parent_classes.swap(current_classes);
      }
    }
  }

  // Multiplication layer (= decoding rank 0).
  for (std::uint64_t q = 0; q < pb(r); ++q) {
    emit(layout_.enc(Side::A, r, q, 0), Rational(1));
    emit(layout_.enc(Side::B, r, q, 0), Rational(1));
    close_vertex();
  }

  // Decoding layers.
  for (int t = 1; t <= r; ++t) {
    const std::uint64_t plen = pa(t - 1);
    for (std::uint64_t q_hi = 0; q_hi < pb(r - t); ++q_hi) {
      for (int d = 0; d < alg_.a(); ++d) {
        const auto& row = w_rows[static_cast<std::size_t>(d)];
        for (std::uint64_t p_lo = 0; p_lo < plen; ++p_lo) {
          for (const SparseTerm& term : row) {
            emit(layout_.dec(t - 1,
                             q_hi * static_cast<std::uint64_t>(alg_.b()) +
                                 term.index,
                             p_lo),
                 term.coeff);
          }
          close_vertex();
        }
      }
    }
  }

  PR_ASSERT(in_off.size() == n + 1);
  PR_ASSERT(in_adj.size() == num_edges);
  graph_ = Graph(std::move(in_off), std::move(in_adj));

  // Meta-vertex roots: follow copy parents (and duplicate-row
  // references, when grouping) downward. Both point to smaller ids, so
  // one forward pass suffices.
  meta_root_.resize(n);
  meta_size_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (copy_parent_[v] != kInvalidVertex) {
      meta_root_[v] = meta_root_[copy_parent_[v]];
    } else if (options.group_duplicate_rows &&
               dup_ref[v] != kInvalidVertex) {
      PR_ASSERT(dup_ref[v] < v);
      meta_root_[v] = meta_root_[dup_ref[v]];
    } else {
      meta_root_[v] = v;
    }
    ++meta_size_[meta_root_[v]];
  }
}

}  // namespace pathrouting::cdag
