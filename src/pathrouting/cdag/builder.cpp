// Construction of G_r. Vertices are emitted in id order (encA ranks
// 0..r, encB ranks 0..r, dec ranks 0..r), which is topological. The
// in-adjacency CSR offsets are known in closed form — within a rank,
// vertex (q_hi, q, p) starts at
//     rank_edge_base + q_hi * (Σ_q' nnz(q')) * plen + prefix_nnz(q) * plen
//                    + p * nnz(q)
// — so every row block writes its in_off / in_adj / in_coeff slice
// independently and the fill parallelizes over fixed blocks
// (support/parallel.hpp; bit-identical to the serial emission at any
// thread count because each slot has exactly one writer at a fixed
// offset). The Section-8 grouping and the meta-root pass are serial:
// class interning and duplicate detection are order-dependent by
// design.
#include <unordered_map>
#include <utility>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/cdag/cdag.hpp"
#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/debug_hooks.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::cdag {

namespace {

namespace parallel = support::parallel;

struct SparseTerm {
  std::uint64_t index;  // entry d for U/V rows, product q for W rows
  Rational coeff;
};

/// Row q of U or V as sparse terms over entries d.
std::vector<std::vector<SparseTerm>> sparse_uv(const BilinearAlgorithm& alg,
                                               Side side) {
  std::vector<std::vector<SparseTerm>> rows(
      static_cast<std::size_t>(alg.b()));
  for (int q = 0; q < alg.b(); ++q) {
    for (int d = 0; d < alg.a(); ++d) {
      const Rational& c = side == Side::A ? alg.u(q, d) : alg.v(q, d);
      if (!c.is_zero()) {
        rows[static_cast<std::size_t>(q)].push_back(
            {static_cast<std::uint64_t>(d), c});
      }
    }
    PR_REQUIRE_MSG(!rows[static_cast<std::size_t>(q)].empty(),
                   "base algorithm has an identically-zero encoding row");
  }
  return rows;
}

/// Row d of W as sparse terms over products q.
std::vector<std::vector<SparseTerm>> sparse_w(const BilinearAlgorithm& alg) {
  std::vector<std::vector<SparseTerm>> rows(static_cast<std::size_t>(alg.a()));
  for (int d = 0; d < alg.a(); ++d) {
    for (int q = 0; q < alg.b(); ++q) {
      const Rational& c = alg.w(d, q);
      if (!c.is_zero()) {
        rows[static_cast<std::size_t>(d)].push_back(
            {static_cast<std::uint64_t>(q), c});
      }
    }
    PR_REQUIRE_MSG(!rows[static_cast<std::size_t>(d)].empty(),
                   "base algorithm has an identically-zero output row");
  }
  return rows;
}

/// Prefix sums of nnz over a row set: pre[q] = Σ_{q'<q} nnz(q'),
/// pre[rows.size()] = total.
std::vector<std::uint64_t> nnz_prefix(
    const std::vector<std::vector<SparseTerm>>& rows) {
  std::vector<std::uint64_t> pre(rows.size() + 1, 0);
  for (std::size_t q = 0; q < rows.size(); ++q) {
    pre[q + 1] = pre[q] + rows[q].size();
  }
  return pre;
}

/// Fixed block grain targeting ~16k edges per chunk; depends only on
/// the rank's structure, never on the thread count.
std::uint64_t block_grain(std::uint64_t edges_per_block_times_rows,
                          std::uint64_t rows_per_group) {
  const std::uint64_t avg =
      edges_per_block_times_rows / (rows_per_group == 0 ? 1 : rows_per_group);
  const std::uint64_t target = 16384;
  return avg == 0 ? target : (target + avg - 1) / avg;
}

}  // namespace

Cdag::Cdag(BilinearAlgorithm alg, int r, CdagOptions options)
    : alg_(std::move(alg)), layout_(alg_.n0(), alg_.b(), r) {
  const obs::TraceSpan span("cdag.build");
  const auto u_rows = sparse_uv(alg_, Side::A);
  const auto v_rows = sparse_uv(alg_, Side::B);
  const auto w_rows = sparse_w(alg_);
  // Lemma 2 precondition: no decoding copies. A trivial W row would
  // make an output a verbatim copy of a product and meta-vertices would
  // grow upward into the decoding graph; the paper (and this library)
  // excludes such degenerate bases.
  for (const auto& row : w_rows) {
    PR_REQUIRE_MSG(!(row.size() == 1 && row.front().coeff.is_one()),
                   "decoding row is a verbatim copy (violates Lemma 2 setup)");
  }

  const auto& pa = layout_.pow_a();
  const auto& pb = layout_.pow_b();
  const std::uint64_t n = layout_.num_vertices();
  const std::uint64_t b_dim = static_cast<std::uint64_t>(alg_.b());
  const std::uint64_t a_dim = static_cast<std::uint64_t>(alg_.a());
  const auto u_pre = nnz_prefix(u_rows);
  const auto v_pre = nnz_prefix(v_rows);
  const auto w_pre = nnz_prefix(w_rows);

  // Count edges to reserve: per encoding rank t>=1 vertex with final
  // recursion digit q, in-degree is nnz(row q); decode rank t>=1 vertex
  // with leading position digit d has in-degree nnz(W row d); products
  // have in-degree 2.
  std::uint64_t num_edges = 0;
  for (int t = 1; t <= r; ++t) {
    num_edges += pb(t - 1) * pa(r - t) * (u_pre.back() + v_pre.back());
    num_edges += pb(r - t) * pa(t - 1) * w_pre.back();
  }
  num_edges += 2 * pb(r);
  PR_REQUIRE_MSG(num_edges < kInvalidVertex,
                 "CDAG too large for 32-bit edge offsets");

  std::vector<std::uint32_t> in_off(n + 1);
  in_off[0] = 0;
  std::vector<VertexId> in_adj(num_edges);
  const bool coeffs = options.with_coefficients;
  if (coeffs) in_coeff_.assign(num_edges, Rational());
  copy_parent_.assign(n, kInvalidVertex);

  std::uint64_t edge_base = 0;

  // Encoding layers. Rank 0 vertices (inputs) have no in-edges.
  for (const Side side : {Side::A, Side::B}) {
    const auto& rows = side == Side::A ? u_rows : v_rows;
    const auto& pre = side == Side::A ? u_pre : v_pre;
    const VertexId rank0_base = layout_.enc(side, 0, 0, 0);
    parallel::parallel_for(0, pa(r), 1 << 16,
                           [&](std::uint64_t lo, std::uint64_t hi) {
                             for (std::uint64_t p = lo; p < hi; ++p) {
                               in_off[rank0_base + p + 1] =
                                   static_cast<std::uint32_t>(edge_base);
                             }
                           });
    for (int t = 1; t <= r; ++t) {
      const std::uint64_t plen = pa(r - t);
      const std::uint64_t num_blocks = pb(t);  // (q_hi, q) row blocks
      const VertexId rank_vbase = layout_.enc(side, t, 0, 0);
      const std::uint64_t group_edges = pre.back() * plen;  // per q_hi
      const std::uint64_t grain = block_grain(group_edges, b_dim);
      parallel::parallel_for(
          0, num_blocks, grain, [&](std::uint64_t blo, std::uint64_t bhi) {
            for (std::uint64_t j = blo; j < bhi; ++j) {
              const std::uint64_t q_hi = j / b_dim;
              const std::uint64_t q = j % b_dim;
              const auto& row = rows[static_cast<std::size_t>(q)];
              const bool trivial =
                  row.size() == 1 && row.front().coeff.is_one();
              const std::uint64_t vbase = rank_vbase + j * plen;
              const std::uint64_t ebase =
                  edge_base + q_hi * group_edges + pre[q] * plen;
              for (std::uint64_t p = 0; p < plen; ++p) {
                const VertexId self = static_cast<VertexId>(vbase + p);
                std::uint64_t e = ebase + p * row.size();
                for (const SparseTerm& term : row) {
                  in_adj[e] = layout_.enc(side, t - 1, q_hi,
                                          term.index * plen + p);
                  if (coeffs) in_coeff_[e] = term.coeff;
                  ++e;
                }
                if (trivial) copy_parent_[self] = in_adj[e - 1];
                in_off[self + 1] = static_cast<std::uint32_t>(e);
              }
            }
          });
      edge_base += pb(t - 1) * group_edges;
    }
  }

  // Multiplication layer (= decoding rank 0).
  {
    const VertexId mult_base = layout_.dec(0, 0, 0);
    parallel::parallel_for(
        0, pb(r), 1 << 14, [&](std::uint64_t lo, std::uint64_t hi) {
          for (std::uint64_t q = lo; q < hi; ++q) {
            const std::uint64_t e = edge_base + 2 * q;
            in_adj[e] = layout_.enc(Side::A, r, q, 0);
            in_adj[e + 1] = layout_.enc(Side::B, r, q, 0);
            if (coeffs) {
              in_coeff_[e] = Rational(1);
              in_coeff_[e + 1] = Rational(1);
            }
            in_off[mult_base + q + 1] = static_cast<std::uint32_t>(e + 2);
          }
        });
    edge_base += 2 * pb(r);
  }

  // Decoding layers.
  for (int t = 1; t <= r; ++t) {
    const std::uint64_t plen = pa(t - 1);
    const std::uint64_t num_blocks = pb(r - t) * a_dim;  // (q_hi, d)
    const VertexId rank_vbase = layout_.dec(t, 0, 0);
    const std::uint64_t group_edges = w_pre.back() * plen;  // per q_hi
    const std::uint64_t grain = block_grain(group_edges, a_dim);
    parallel::parallel_for(
        0, num_blocks, grain, [&](std::uint64_t blo, std::uint64_t bhi) {
          for (std::uint64_t j = blo; j < bhi; ++j) {
            const std::uint64_t q_hi = j / a_dim;
            const std::uint64_t d = j % a_dim;
            const auto& row = w_rows[static_cast<std::size_t>(d)];
            const std::uint64_t vbase = rank_vbase + j * plen;
            const std::uint64_t ebase =
                edge_base + q_hi * group_edges + w_pre[d] * plen;
            for (std::uint64_t p_lo = 0; p_lo < plen; ++p_lo) {
              const VertexId self = static_cast<VertexId>(vbase + p_lo);
              std::uint64_t e = ebase + p_lo * row.size();
              for (const SparseTerm& term : row) {
                in_adj[e] = layout_.dec(t - 1, q_hi * b_dim + term.index,
                                        p_lo);
                if (coeffs) in_coeff_[e] = term.coeff;
                ++e;
              }
              in_off[self + 1] = static_cast<std::uint32_t>(e);
            }
          }
        });
    edge_base += pb(r - t) * group_edges;
  }

  PR_ASSERT(edge_base == num_edges);
  graph_ = Graph(std::move(in_off), std::move(in_adj));

  // Section-8 grouping: canonical operand classes. Two encoding
  // vertices carry the same (generic) value iff their operands were
  // built by the same canonical sequence of nontrivial rows applied to
  // the same input side — trivial rows merely select a sub-block and
  // fold into the position via the copy chain. Each operand q⃗ at rank
  // t gets a class id interned on (parent class, representative row);
  // the meta-root of a nontrivial vertex is then the first vertex seen
  // with its (class, position) pair. Interning is order-dependent, so
  // this pass stays serial.
  grouped_duplicates_ = options.group_duplicate_rows;
  // dup_ref[v]: the same-value vertex with smaller id that v merges
  // with (kInvalidVertex if none).
  std::vector<VertexId> dup_ref;
  if (options.group_duplicate_rows) {
    std::vector<int> rep_a(static_cast<std::size_t>(alg_.b()));
    std::vector<int> rep_b(static_cast<std::size_t>(alg_.b()));
    const auto fill_reps = [&](Side side, std::vector<int>& rep) {
      for (int q = 0; q < alg_.b(); ++q) {
        rep[static_cast<std::size_t>(q)] = q;
        for (int q2 = 0; q2 < q; ++q2) {
          bool equal = true;
          for (int d = 0; d < alg_.a() && equal; ++d) {
            const Rational& x = side == Side::A ? alg_.u(q, d) : alg_.v(q, d);
            const Rational& y =
                side == Side::A ? alg_.u(q2, d) : alg_.v(q2, d);
            equal = x == y;
          }
          if (equal) {
            rep[static_cast<std::size_t>(q)] = q2;
            break;
          }
        }
      }
    };
    fill_reps(Side::A, rep_a);
    fill_reps(Side::B, rep_b);

    dup_ref.assign(n, kInvalidVertex);
    std::unordered_map<std::uint64_t, std::uint32_t> class_intern;
    std::unordered_map<std::uint64_t, VertexId> value_root;
    std::uint32_t next_class = 2;  // 0 = operand A, 1 = operand B
    class_intern.reserve(1 << 12);
    value_root.reserve(static_cast<std::size_t>(n) / 2);
    // Class of operand q⃗ at the PREVIOUS rank (parent classes) and the
    // one being built. Trivial rows keep the parent class but tag the
    // selected block so distinct sub-blocks stay distinct.
    std::vector<std::uint32_t> parent_classes, current_classes;
    const auto intern_class = [&](std::uint32_t parent, bool trivial,
                                  std::uint32_t value) {
      const std::uint64_t key = (static_cast<std::uint64_t>(parent) << 24) |
                                (static_cast<std::uint64_t>(trivial) << 23) |
                                value;
      const auto [it, inserted] = class_intern.try_emplace(key, next_class);
      if (inserted) {
        ++next_class;
        PR_ASSERT_MSG(next_class < (1u << 22), "too many operand classes");
      }
      return it->second;
    };

    for (const Side side : {Side::A, Side::B}) {
      const auto& rows = side == Side::A ? u_rows : v_rows;
      const auto& rep = side == Side::A ? rep_a : rep_b;
      parent_classes.assign(1, side == Side::A ? 0u : 1u);
      for (int t = 1; t <= r; ++t) {
        const std::uint64_t plen = pa(r - t);
        current_classes.resize(pb(t));
        for (std::uint64_t q_hi = 0; q_hi < pb(t - 1); ++q_hi) {
          for (int q = 0; q < alg_.b(); ++q) {
            const auto& row = rows[static_cast<std::size_t>(q)];
            const bool trivial =
                row.size() == 1 && row.front().coeff.is_one();
            const std::uint32_t op_class = intern_class(
                parent_classes[q_hi], trivial,
                trivial ? static_cast<std::uint32_t>(row.front().index)
                        : static_cast<std::uint32_t>(
                              rep[static_cast<std::size_t>(q)]));
            const std::uint64_t q_word =
                q_hi * b_dim + static_cast<std::uint64_t>(q);
            current_classes[q_word] = op_class;
            if (trivial) continue;
            for (std::uint64_t p = 0; p < plen; ++p) {
              const VertexId self = layout_.enc(side, t, q_word, p);
              PR_ASSERT(p < (std::uint64_t{1} << 40));
              const std::uint64_t key =
                  (static_cast<std::uint64_t>(op_class) << 40) | p;
              const auto [it, inserted] = value_root.try_emplace(key, self);
              if (!inserted) dup_ref[self] = it->second;
            }
          }
        }
        parent_classes.swap(current_classes);
      }
    }
  }

  // Meta-vertex roots: follow copy parents (and duplicate-row
  // references, when grouping) downward. Both point to smaller ids, so
  // one forward pass suffices.
  meta_root_.resize(n);
  meta_size_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (copy_parent_[v] != kInvalidVertex) {
      meta_root_[v] = meta_root_[copy_parent_[v]];
    } else if (options.group_duplicate_rows &&
               dup_ref[v] != kInvalidVertex) {
      PR_ASSERT(dup_ref[v] < v);
      meta_root_[v] = meta_root_[dup_ref[v]];
    } else {
      meta_root_[v] = v;
    }
    ++meta_size_[meta_root_[v]];
  }

  static obs::Counter obs_builds("cdag.builds");
  static obs::Counter obs_edges("cdag.edges");
  obs_builds.add();
  obs_edges.add(num_edges);

  // Debug-check builds re-audit every freshly constructed CDAG; the
  // hook is installed by the audit layer (see audit::install_debug_hooks)
  // and is a single null-pointer load otherwise.
  support::run_debug_hook(support::DebugHookPoint::kCdagBuilt, this);
}

}  // namespace pathrouting::cdag
