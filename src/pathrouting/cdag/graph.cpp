#include "pathrouting/cdag/graph.hpp"

#include <algorithm>

namespace pathrouting::cdag {

Graph::Graph(std::vector<std::uint32_t> in_off, std::vector<VertexId> in_adj)
    : in_off_(std::move(in_off)), in_adj_(std::move(in_adj)) {
  PR_REQUIRE(!in_off_.empty());
  PR_REQUIRE(in_off_.front() == 0);
  PR_REQUIRE(in_off_.back() == in_adj_.size());
  const VertexId n = num_vertices();
  // Derive out-adjacency by counting sort over edge sources.
  out_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId from : in_adj_) {
    PR_REQUIRE(from < n);
    ++out_off_[from + 1];
  }
  for (VertexId v = 0; v < n; ++v) out_off_[v + 1] += out_off_[v];
  out_adj_.resize(in_adj_.size());
  std::vector<std::uint32_t> cursor(out_off_.begin(), out_off_.end() - 1);
  for (VertexId to = 0; to < n; ++to) {
    for (const VertexId from : in(to)) {
      out_adj_[cursor[from]++] = to;
    }
  }
}

bool Graph::has_edge(VertexId from, VertexId to) const {
  const auto preds = in(to);
  return std::find(preds.begin(), preds.end(), from) != preds.end();
}

}  // namespace pathrouting::cdag
