#include "pathrouting/cdag/graph.hpp"

#include <algorithm>

namespace pathrouting::cdag {

Graph::Graph(std::vector<std::uint32_t> in_off, std::vector<VertexId> in_adj)
    : in_off_(std::move(in_off)), in_adj_(std::move(in_adj)) {
  PR_REQUIRE(!in_off_.empty());
  PR_REQUIRE(in_off_.front() == 0);
  PR_REQUIRE(in_off_.back() == in_adj_.size());
  const VertexId n = num_vertices();
  // Derive out-adjacency by counting sort over edge sources. Targets
  // are scattered in ascending `to` order, so every out-list comes out
  // sorted — has_edge relies on this invariant (checked below).
  out_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId from : in_adj_) {
    PR_REQUIRE(from < n);
    ++out_off_[from + 1];
  }
  for (VertexId v = 0; v < n; ++v) out_off_[v + 1] += out_off_[v];
  out_adj_.resize(in_adj_.size());
  std::vector<std::uint32_t> cursor(out_off_.begin(), out_off_.end() - 1);
  for (VertexId to = 0; to < n; ++to) {
    for (const VertexId from : in(to)) {
      out_adj_[cursor[from]++] = to;
    }
  }
#if defined(PATHROUTING_DEBUG_CHECKS)
  for (VertexId v = 0; v < n; ++v) {
    const auto succs = out(v);
    PR_DCHECK_MSG(std::is_sorted(succs.begin(), succs.end()),
                  "out-lists must be sorted (has_edge binary-searches them)");
  }
#endif
}

bool Graph::has_edge(VertexId from, VertexId to) const {
  // Out-lists are sorted ascending (construction invariant), so a
  // binary search beats the linear scan on high-out-degree vertices
  // (encoding rank-0 inputs fan out to every product).
  const auto succs = out(from);
  return std::binary_search(succs.begin(), succs.end(), to);
}

}  // namespace pathrouting::cdag
