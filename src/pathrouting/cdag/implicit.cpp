#include "pathrouting/cdag/implicit.hpp"

#include <algorithm>

namespace pathrouting::cdag {

namespace {

/// Sparse nonzero positions of the b x a (or a x b) coefficient table,
/// row-major, ascending within each row — the same order the explicit
/// builder emits edges in.
template <typename CoeffAt>
void fill_sparse(std::uint64_t rows, std::uint64_t cols,
                 const CoeffAt& coeff_at, std::vector<std::uint32_t>& off,
                 std::vector<std::uint32_t>& indices) {
  off.assign(rows + 1, 0);
  indices.clear();
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t j = 0; j < cols; ++j) {
      if (!coeff_at(i, j).is_zero()) {
        indices.push_back(static_cast<std::uint32_t>(j));
      }
    }
    off[i + 1] = static_cast<std::uint32_t>(indices.size());
  }
}

}  // namespace

ImplicitCdag::ImplicitCdag(BilinearAlgorithm alg, int r)
    : alg_(std::move(alg)), layout_(alg_.n0(), alg_.b(), r) {
  const std::uint64_t a = static_cast<std::uint64_t>(alg_.a());
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  const auto u = [&](std::uint64_t q, std::uint64_t d) -> const Rational& {
    return alg_.u(static_cast<int>(q), static_cast<int>(d));
  };
  const auto v = [&](std::uint64_t q, std::uint64_t d) -> const Rational& {
    return alg_.v(static_cast<int>(q), static_cast<int>(d));
  };
  const auto w = [&](std::uint64_t d, std::uint64_t q) -> const Rational& {
    return alg_.w(static_cast<int>(d), static_cast<int>(q));
  };
  fill_sparse(b, a, u, u_rows_.off, u_rows_.indices);
  fill_sparse(b, a, v, v_rows_.off, v_rows_.indices);
  fill_sparse(a, b, w, w_rows_.off, w_rows_.indices);
  const auto ut = [&](std::uint64_t d, std::uint64_t q) -> const Rational& {
    return u(q, d);
  };
  const auto vt = [&](std::uint64_t d, std::uint64_t q) -> const Rational& {
    return v(q, d);
  };
  const auto wt = [&](std::uint64_t q, std::uint64_t d) -> const Rational& {
    return w(d, q);
  };
  fill_sparse(a, b, ut, u_cols_.off, u_cols_.indices);
  fill_sparse(a, b, vt, v_cols_.off, v_cols_.indices);
  fill_sparse(b, a, wt, w_cols_.off, w_cols_.indices);

  // Same base-graph preconditions as the explicit builder.
  for (std::uint64_t q = 0; q < b; ++q) {
    PR_REQUIRE_MSG(u_rows_.nnz(q) > 0 && v_rows_.nnz(q) > 0,
                   "base algorithm has an identically-zero encoding row");
  }
  for (std::uint64_t d = 0; d < a; ++d) {
    PR_REQUIRE_MSG(
        !(w_rows_.nnz(d) == 1 &&
          w(d, w_rows_.row(d).front()).is_one()),
        "decoding row is a verbatim copy (violates Lemma 2 setup)");
    PR_REQUIRE_MSG(w_rows_.nnz(d) > 0,
                   "base algorithm has an identically-zero output row");
  }

  triv_a_.assign(b, 0);
  triv_b_.assign(b, 0);
  copy_src_a_.assign(b, 0);
  copy_src_b_.assign(b, 0);
  fan_a_.assign(a, 0);
  fan_b_.assign(a, 0);
  for (std::uint64_t q = 0; q < b; ++q) {
    if (u_rows_.nnz(q) == 1 && u(q, u_rows_.row(q).front()).is_one()) {
      triv_a_[q] = 1;
      copy_src_a_[q] = u_rows_.row(q).front();
      ++fan_a_[copy_src_a_[q]];
    }
    if (v_rows_.nnz(q) == 1 && v(q, v_rows_.row(q).front()).is_one()) {
      triv_b_[q] = 1;
      copy_src_b_[q] = v_rows_.row(q).front();
      ++fan_b_[copy_src_b_[q]];
    }
  }

  // Builder's edge count, in closed form (no 32-bit offset limit: the
  // implicit graph stores no offsets).
  const auto& pa = layout_.pow_a();
  const auto& pb = layout_.pow_b();
  const std::uint64_t uv_nnz = u_rows_.indices.size() + v_rows_.indices.size();
  const std::uint64_t w_nnz = w_rows_.indices.size();
  for (int t = 1; t <= r; ++t) {
    num_edges_ += pb(t - 1) * pa(r - t) * uv_nnz;
    num_edges_ += pb(r - t) * pa(t - 1) * w_nnz;
  }
  num_edges_ += 2 * pb(r);
}

std::uint32_t ImplicitCdag::in_degree(VertexId v) const {
  const VertexRef ref = layout_.ref(v);
  if (ref.layer != LayerKind::Dec) {
    if (ref.rank == 0) return 0;
    const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
    return enc_rows(side).nnz(ref.q % static_cast<std::uint64_t>(alg_.b()));
  }
  if (ref.rank == 0) return 2;
  return w_rows_.nnz(ref.p / layout_.pow_a()(ref.rank - 1));
}

std::uint32_t ImplicitCdag::out_degree(VertexId v) const {
  const VertexRef ref = layout_.ref(v);
  const int r = layout_.r();
  if (ref.layer != LayerKind::Dec) {
    if (ref.rank == r) return 1;
    const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
    return enc_cols(side).nnz(ref.p / layout_.pow_a()(r - ref.rank - 1));
  }
  if (ref.rank == r) return 0;
  return w_cols_.nnz(ref.q % static_cast<std::uint64_t>(alg_.b()));
}

std::span<const VertexId> ImplicitCdag::in(
    VertexId v, std::vector<VertexId>& scratch) const {
  const VertexRef ref = layout_.ref(v);
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  scratch.clear();
  if (ref.layer != LayerKind::Dec) {
    if (ref.rank == 0) return {};
    const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
    const std::uint64_t plen = layout_.pow_a()(layout_.r() - ref.rank);
    const std::uint64_t q_hi = ref.q / b;
    for (const std::uint32_t d : enc_rows(side).row(ref.q % b)) {
      scratch.push_back(
          layout_.enc(side, ref.rank - 1, q_hi, d * plen + ref.p));
    }
  } else if (ref.rank == 0) {
    scratch.push_back(layout_.enc(Side::A, layout_.r(), ref.q, 0));
    scratch.push_back(layout_.enc(Side::B, layout_.r(), ref.q, 0));
  } else {
    const std::uint64_t plen = layout_.pow_a()(ref.rank - 1);
    const std::uint64_t p_lo = ref.p % plen;
    for (const std::uint32_t q_term : w_rows_.row(ref.p / plen)) {
      scratch.push_back(layout_.dec(ref.rank - 1, ref.q * b + q_term, p_lo));
    }
  }
  return {scratch.data(), scratch.size()};
}

std::span<const VertexId> ImplicitCdag::out(
    VertexId v, std::vector<VertexId>& scratch) const {
  const VertexRef ref = layout_.ref(v);
  const int r = layout_.r();
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  scratch.clear();
  if (ref.layer != LayerKind::Dec) {
    const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
    if (ref.rank == r) {
      scratch.push_back(layout_.dec(0, ref.q, 0));
    } else {
      const std::uint64_t plen = layout_.pow_a()(r - ref.rank - 1);
      const std::uint64_t p_rest = ref.p % plen;
      for (const std::uint32_t q_next : enc_cols(side).row(ref.p / plen)) {
        scratch.push_back(
            layout_.enc(side, ref.rank + 1, ref.q * b + q_next, p_rest));
      }
    }
  } else if (ref.rank < r) {
    const std::uint64_t plen = layout_.pow_a()(ref.rank);
    const std::uint64_t q_hi = ref.q / b;
    for (const std::uint32_t d : w_cols_.row(ref.q % b)) {
      scratch.push_back(layout_.dec(ref.rank + 1, q_hi, d * plen + ref.p));
    }
  }
  return {scratch.data(), scratch.size()};
}

bool ImplicitCdag::has_edge(VertexId from, VertexId to) const {
  if (from >= to) return false;  // ids are topological
  std::vector<VertexId> buf;
  const std::span<const VertexId> preds = in(to, buf);
  return std::find(preds.begin(), preds.end(), from) != preds.end();
}

VertexId ImplicitCdag::enc_copy_parent(Side side, int t, std::uint64_t q,
                                       std::uint64_t p) const {
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  const std::uint64_t q_last = q % b;
  if (!trivial_row(side, static_cast<int>(q_last))) return kInvalidVertex;
  const auto& src = side == Side::A ? copy_src_a_ : copy_src_b_;
  const std::uint64_t plen = layout_.pow_a()(layout_.r() - t);
  return layout_.enc(side, t - 1, q / b, src[q_last] * plen + p);
}

VertexId ImplicitCdag::copy_parent(VertexId v) const {
  const VertexRef ref = layout_.ref(v);
  if (ref.layer == LayerKind::Dec || ref.rank == 0) return kInvalidVertex;
  const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
  return enc_copy_parent(side, ref.rank, ref.q, ref.p);
}

VertexId ImplicitCdag::meta_root(VertexId v) const {
  const VertexRef ref = layout_.ref(v);
  if (ref.layer == LayerKind::Dec) return v;
  const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  const auto& triv = side == Side::A ? triv_a_ : triv_b_;
  const auto& src = side == Side::A ? copy_src_a_ : copy_src_b_;
  int t = ref.rank;
  std::uint64_t q = ref.q;
  std::uint64_t p = ref.p;
  while (t >= 1 && triv[q % b] != 0) {
    p = src[q % b] * layout_.pow_a()(layout_.r() - t) + p;
    q /= b;
    --t;
  }
  return layout_.enc(side, t, q, p);
}

std::uint32_t ImplicitCdag::meta_size(VertexId v) const {
  const VertexRef ref = layout_.ref(v);
  if (ref.layer == LayerKind::Dec) return 1;
  const Side side = ref.layer == LayerKind::EncA ? Side::A : Side::B;
  const std::uint64_t b = static_cast<std::uint64_t>(alg_.b());
  const std::uint64_t a = static_cast<std::uint64_t>(alg_.a());
  const auto& triv = side == Side::A ? triv_a_ : triv_b_;
  const auto& src = side == Side::A ? copy_src_a_ : copy_src_b_;
  const auto& fan = side == Side::A ? fan_a_ : fan_b_;
  // Walk down to the root, then count the root's copy subtree: a root
  // at position p = d_1..d_len spawns T_side[d_1] copies whose
  // positions are d_2..d_len, recursively —
  //   size(d_1..d_len) = 1 + T_side[d_1] * size(d_2..d_len).
  int t = ref.rank;
  std::uint64_t q = ref.q;
  std::uint64_t p = ref.p;
  while (t >= 1 && triv[q % b] != 0) {
    p = src[q % b] * layout_.pow_a()(layout_.r() - t) + p;
    q /= b;
    --t;
  }
  std::uint64_t size = 1;
  for (int len = layout_.r() - t; len > 0; --len) {
    size = 1 + fan[p % a] * size;  // innermost position digit first
    p /= a;
  }
  PR_ASSERT(size <= kInvalidVertex);
  return static_cast<std::uint32_t>(size);
}

}  // namespace pathrouting::cdag
