// Numeric evaluation of a CDAG.
//
// Evaluating G_r on concrete inputs and comparing against direct matrix
// multiplication is the library's end-to-end semantic check: it
// validates the builder's edge rules, coefficient placement, and the
// Morton position convention all at once, for every catalog algorithm.
#pragma once

#include <span>
#include <vector>

#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::cdag {

namespace detail {
inline double scale(const Rational& c, double x) { return c.to_double() * x; }
inline Rational scale(const Rational& c, const Rational& x) { return c * x; }
inline std::int64_t scale(const Rational& c, std::int64_t x) {
  PR_REQUIRE_MSG(c.is_integer(), "int64 evaluation needs integer coefficients");
  return c.num() * x;
}
}  // namespace detail

/// Computes the value of every vertex. `a_in` / `b_in` are the a^r
/// inputs of each operand in Morton order.
template <typename T>
std::vector<T> evaluate_all(const Cdag& cdag, std::span<const T> a_in,
                            std::span<const T> b_in) {
  PR_REQUIRE_MSG(cdag.has_coefficients(),
                 "evaluation requires with_coefficients=true");
  const Layout& layout = cdag.layout();
  const Graph& g = cdag.graph();
  PR_REQUIRE(a_in.size() == layout.inputs_per_side());
  PR_REQUIRE(b_in.size() == layout.inputs_per_side());
  std::vector<T> value(g.num_vertices(), T{});
  for (std::uint64_t p = 0; p < layout.inputs_per_side(); ++p) {
    value[layout.input(Side::A, p)] = a_in[p];
    value[layout.input(Side::B, p)] = b_in[p];
  }
  const VertexId first_product = layout.product(0);
  const VertexId last_product = layout.product(layout.num_products() - 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto preds = g.in(v);
    if (preds.empty()) continue;  // input
    if (v >= first_product && v <= last_product) {
      PR_DCHECK_MSG(preds.size() == 2,
                    "product vertices multiply exactly two operands");
      value[v] = value[preds[0]] * value[preds[1]];
    } else {
      T sum{};
      const std::uint32_t base = g.in_edge_base(v);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        sum = sum + detail::scale(cdag.in_coeff(base + i), value[preds[i]]);
      }
      value[v] = sum;
    }
  }
  return value;
}

/// Computes only the outputs, in Morton order.
template <typename T>
std::vector<T> evaluate(const Cdag& cdag, std::span<const T> a_in,
                        std::span<const T> b_in) {
  const std::vector<T> value = evaluate_all<T>(cdag, a_in, b_in);
  const Layout& layout = cdag.layout();
  std::vector<T> out(layout.inputs_per_side());
  for (std::uint64_t p = 0; p < out.size(); ++p) {
    out[p] = value[layout.output(p)];
  }
  return out;
}

/// Row-major n x n matrix (n = n0^r) -> Morton-ordered input vector.
template <typename T>
std::vector<T> to_morton(const Cdag& cdag, std::span<const T> row_major) {
  const Layout& layout = cdag.layout();
  const std::uint64_t n = layout.n();
  PR_REQUIRE(row_major.size() == n * n);
  std::vector<T> morton(layout.inputs_per_side());
  for (std::uint64_t p = 0; p < morton.size(); ++p) {
    const RowCol rc =
        morton_to_rowcol(layout.pow_a(), layout.n0(), p, layout.r());
    morton[p] = row_major[rc.row * n + rc.col];
  }
  return morton;
}

/// Morton-ordered vector -> row-major n x n matrix.
template <typename T>
std::vector<T> from_morton(const Cdag& cdag, std::span<const T> morton) {
  const Layout& layout = cdag.layout();
  const std::uint64_t n = layout.n();
  PR_REQUIRE(morton.size() == layout.inputs_per_side());
  std::vector<T> row_major(n * n);
  for (std::uint64_t p = 0; p < morton.size(); ++p) {
    const RowCol rc =
        morton_to_rowcol(layout.pow_a(), layout.n0(), p, layout.r());
    row_major[rc.row * n + rc.col] = morton[p];
  }
  return row_major;
}

}  // namespace pathrouting::cdag
