#include "pathrouting/cdag/layout.hpp"

namespace pathrouting::cdag {

Layout::Layout(int n0, int b, int r)
    : n0_(n0), a_(n0 * n0), b_(b), r_(r),
      pow_a_(static_cast<std::uint64_t>(a_), r),
      pow_b_(static_cast<std::uint64_t>(b_), r) {
  PR_REQUIRE(n0 >= 2);
  PR_REQUIRE(b >= 1);
  PR_REQUIRE(r >= 1);
  enc_a_base_.resize(static_cast<std::size_t>(r_) + 1);
  enc_b_base_.resize(static_cast<std::size_t>(r_) + 1);
  dec_base_.resize(static_cast<std::size_t>(r_) + 1);
  std::uint64_t cursor = 0;
  for (int t = 0; t <= r_; ++t) {
    enc_a_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += enc_rank_size(t);
  }
  for (int t = 0; t <= r_; ++t) {
    enc_b_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += enc_rank_size(t);
  }
  for (int t = 0; t <= r_; ++t) {
    dec_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += dec_rank_size(t);
  }
  num_vertices_ = cursor;
  PR_REQUIRE_MSG(num_vertices_ < kInvalidVertex,
                 "CDAG too large for 32-bit vertex ids");
}

std::uint64_t Layout::n() const {
  std::uint64_t n = 1;
  for (int i = 0; i < r_; ++i) n *= static_cast<std::uint64_t>(n0_);
  return n;
}

VertexRef Layout::ref(VertexId v) const {
  PR_REQUIRE(v < num_vertices_);
  const std::uint64_t id = v;
  // Layers are laid out contiguously; scan the O(r) rank bases. Rank 0
  // of each layer starts at the layer base, so the scans always hit —
  // falling out of one would mean the bases are corrupt.
  if (id < enc_b_base_[0]) {
    for (int t = r_; t >= 0; --t) {
      const std::uint64_t base = enc_a_base_[static_cast<std::size_t>(t)];
      if (id >= base) {
        const std::uint64_t local = id - base;
        return {LayerKind::EncA, t, local / pow_a_(r_ - t),
                local % pow_a_(r_ - t)};
      }
    }
    PR_UNREACHABLE();
  }
  if (id < dec_base_[0]) {
    for (int t = r_; t >= 0; --t) {
      const std::uint64_t base = enc_b_base_[static_cast<std::size_t>(t)];
      if (id >= base) {
        const std::uint64_t local = id - base;
        return {LayerKind::EncB, t, local / pow_a_(r_ - t),
                local % pow_a_(r_ - t)};
      }
    }
    PR_UNREACHABLE();
  }
  for (int t = r_; t >= 0; --t) {
    const std::uint64_t base = dec_base_[static_cast<std::size_t>(t)];
    if (id >= base) {
      const std::uint64_t local = id - base;
      return {LayerKind::Dec, t, local / pow_a_(t), local % pow_a_(t)};
    }
  }
  PR_UNREACHABLE();
}

int Layout::level(VertexId v) const {
  const VertexRef rf = ref(v);
  return rf.layer == LayerKind::Dec ? r_ + 1 + rf.rank : rf.rank;
}

RowCol morton_to_rowcol(const PowTable& pow_a, int n0, std::uint64_t p,
                        int len) {
  std::uint64_t row = 0, col = 0;
  for (int i = 0; i < len; ++i) {
    const std::uint64_t d = support::digit_at(pow_a, p, len, i);
    row = row * static_cast<std::uint64_t>(n0) + d / static_cast<std::uint64_t>(n0);
    col = col * static_cast<std::uint64_t>(n0) + d % static_cast<std::uint64_t>(n0);
  }
  return {row, col};
}

std::uint64_t rowcol_to_morton(int n0, std::uint64_t row, std::uint64_t col,
                               int len) {
  // Interleave base-n0 digits of row and col into base-a digits,
  // building from the least significant (innermost level) upward.
  const std::uint64_t base = static_cast<std::uint64_t>(n0);
  std::uint64_t p = 0;
  std::uint64_t place = 1;
  for (int i = 0; i < len; ++i) {
    const std::uint64_t d = (row % base) * base + (col % base);
    p += d * place;
    place *= base * base;
    row /= base;
    col /= base;
  }
  PR_ENSURE(row == 0 && col == 0);
  return p;
}

}  // namespace pathrouting::cdag
