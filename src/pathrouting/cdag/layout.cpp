#include "pathrouting/cdag/layout.hpp"

#include <algorithm>

namespace pathrouting::cdag {

Layout::Layout(int n0, int b, int r)
    : n0_(n0), a_(n0 * n0), b_(b), r_(r),
      pow_a_(static_cast<std::uint64_t>(a_), r),
      pow_b_(static_cast<std::uint64_t>(b_), r) {
  PR_REQUIRE(n0 >= 2);
  PR_REQUIRE(b >= 1);
  PR_REQUIRE(r >= 1);
  enc_a_base_.resize(static_cast<std::size_t>(r_) + 1);
  enc_b_base_.resize(static_cast<std::size_t>(r_) + 1);
  dec_base_.resize(static_cast<std::size_t>(r_) + 1);
  std::uint64_t cursor = 0;
  for (int t = 0; t <= r_; ++t) {
    enc_a_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += enc_rank_size(t);
  }
  for (int t = 0; t <= r_; ++t) {
    enc_b_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += enc_rank_size(t);
  }
  for (int t = 0; t <= r_; ++t) {
    dec_base_[static_cast<std::size_t>(t)] = cursor;
    cursor += dec_rank_size(t);
  }
  num_vertices_ = cursor;
  PR_REQUIRE_MSG(num_vertices_ < kInvalidVertex,
                 "CDAG too large for 32-bit vertex ids");
}

std::uint64_t Layout::n() const {
  std::uint64_t n = 1;
  for (int i = 0; i < r_; ++i) n *= static_cast<std::uint64_t>(n0_);
  return n;
}

VertexRef Layout::ref(VertexId v) const {
  PR_REQUIRE(v < num_vertices_);
  const std::uint64_t id = v;
  // Layers are laid out contiguously; scan the O(r) rank bases. Rank 0
  // of each layer starts at the layer base, so the scans always hit —
  // falling out of one would mean the bases are corrupt.
  if (id < enc_b_base_[0]) {
    for (int t = r_; t >= 0; --t) {
      const std::uint64_t base = enc_a_base_[static_cast<std::size_t>(t)];
      if (id >= base) {
        const std::uint64_t local = id - base;
        return {LayerKind::EncA, t, local / pow_a_(r_ - t),
                local % pow_a_(r_ - t)};
      }
    }
    PR_UNREACHABLE();
  }
  if (id < dec_base_[0]) {
    for (int t = r_; t >= 0; --t) {
      const std::uint64_t base = enc_b_base_[static_cast<std::size_t>(t)];
      if (id >= base) {
        const std::uint64_t local = id - base;
        return {LayerKind::EncB, t, local / pow_a_(r_ - t),
                local % pow_a_(r_ - t)};
      }
    }
    PR_UNREACHABLE();
  }
  for (int t = r_; t >= 0; --t) {
    const std::uint64_t base = dec_base_[static_cast<std::size_t>(t)];
    if (id >= base) {
      const std::uint64_t local = id - base;
      return {LayerKind::Dec, t, local / pow_a_(t), local % pow_a_(t)};
    }
  }
  PR_UNREACHABLE();
}

int Layout::level(VertexId v) const {
  const VertexRef rf = ref(v);
  return rf.layer == LayerKind::Dec ? r_ + 1 + rf.rank : rf.rank;
}

CopyTranslation::CopyTranslation(const Layout& global, int k,
                                 std::uint64_t prefix)
    : local_(global.n0(), global.b(), k), prefix_(prefix) {
  const int r = global.r();
  PR_REQUIRE_MSG(k >= 1 && k <= r, "CopyTranslation: k outside 1..r");
  PR_REQUIRE_MSG(prefix < global.pow_b()(r - k),
                 "CopyTranslation: prefix outside 0..b^(r-k)-1");
  blocks_.reserve(static_cast<std::size_t>(3 * (k + 1)));
  const auto add = [&](VertexId local_base, VertexId global_base,
                       std::uint64_t length) {
    blocks_.push_back({local_base, global_base, length});
  };
  // Local ids are laid out encA ranks 0..k, encB ranks 0..k, dec ranks
  // 0..k — the same rank order the global ids of the copy follow, so
  // emitting rank runs in this order keeps blocks sorted on both sides.
  for (const Side side : {Side::A, Side::B}) {
    for (int t = 0; t <= k; ++t) {
      add(local_.enc(side, t, 0, 0),
          global.enc(side, r - k + t, prefix * global.pow_b()(t), 0),
          local_.enc_rank_size(t));
    }
  }
  for (int t = 0; t <= k; ++t) {
    add(local_.dec(t, 0, 0),
        global.dec(t, prefix * global.pow_b()(k - t), 0),
        local_.dec_rank_size(t));
  }
  PR_ENSURE(blocks_.front().local_base == 0);
  PR_ENSURE(blocks_.back().local_base + blocks_.back().length ==
            local_.num_vertices());
}

VertexId CopyTranslation::to_global(VertexId local) const {
  PR_REQUIRE(local < local_.num_vertices());
  // Blocks are sorted by local_base and tile the local id space; find
  // the run containing `local`.
  auto it = std::upper_bound(blocks_.begin(), blocks_.end(), local,
                             [](VertexId v, const CopyBlock& blk) {
                               return v < blk.local_base;
                             });
  PR_ASSERT(it != blocks_.begin());
  --it;
  return static_cast<VertexId>(it->global_base + (local - it->local_base));
}

VertexId CopyTranslation::to_local(VertexId global) const {
  auto it = std::upper_bound(blocks_.begin(), blocks_.end(), global,
                             [](VertexId v, const CopyBlock& blk) {
                               return v < blk.global_base;
                             });
  PR_REQUIRE_MSG(it != blocks_.begin(),
                 "CopyTranslation::to_local: vertex below the copy's runs");
  --it;
  PR_REQUIRE_MSG(global < it->global_base + it->length,
                 "CopyTranslation::to_local: vertex is not in this copy");
  return static_cast<VertexId>(it->local_base + (global - it->global_base));
}

RowCol morton_to_rowcol(const PowTable& pow_a, int n0, std::uint64_t p,
                        int len) {
  std::uint64_t row = 0, col = 0;
  for (int i = 0; i < len; ++i) {
    const std::uint64_t d = support::digit_at(pow_a, p, len, i);
    row = row * static_cast<std::uint64_t>(n0) + d / static_cast<std::uint64_t>(n0);
    col = col * static_cast<std::uint64_t>(n0) + d % static_cast<std::uint64_t>(n0);
  }
  return {row, col};
}

std::uint64_t rowcol_to_morton(int n0, std::uint64_t row, std::uint64_t col,
                               int len) {
  // Interleave base-n0 digits of row and col into base-a digits,
  // building from the least significant (innermost level) upward.
  const std::uint64_t base = static_cast<std::uint64_t>(n0);
  std::uint64_t p = 0;
  std::uint64_t place = 1;
  for (int i = 0; i < len; ++i) {
    const std::uint64_t d = (row % base) * base + (col % base);
    p += d * place;
    place *= base * base;
    row /= base;
    col /= base;
  }
  PR_ENSURE(row == 0 && col == 0);
  return p;
}

}  // namespace pathrouting::cdag
