// Fact 1: the middle 2(k+1) ranks of G_r decompose into b^{r-k}
// vertex-disjoint copies of G_k. A SubComputation is a view of one such
// copy G_k^i, mapping G_k-local addresses to global vertex ids.
#pragma once

#include <vector>

#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::cdag {

class SubComputation {
 public:
  /// The i-th copy of G_k inside cdag (0 <= i < b^{r-k}, 0 <= k <= r).
  /// `prefix` = i is the shared leading recursion path of all its
  /// vertices.
  SubComputation(const Cdag& cdag, int k, std::uint64_t prefix);

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::uint64_t prefix() const { return prefix_; }
  [[nodiscard]] const Cdag& cdag() const { return *cdag_; }

  /// a^k inputs per side; also the number of outputs.
  [[nodiscard]] std::uint64_t inputs_per_side() const {
    return cdag_->layout().pow_a()(k_);
  }
  [[nodiscard]] std::uint64_t num_products() const {
    return cdag_->layout().pow_b()(k_);
  }

  /// Global id of the G_k-local encoding vertex
  /// (side, rank t in 0..k, q⃗' in [b]^t, p⃗' in [a]^{k-t}).
  [[nodiscard]] VertexId enc(Side side, int t, std::uint64_t q,
                             std::uint64_t p) const {
    const Layout& layout = cdag_->layout();
    PR_DCHECK_MSG(t >= 0 && t <= k_, "G_k-local encoding rank outside 0..k");
    return layout.enc(side, layout.r() - k_ + t,
                      prefix_ * layout.pow_b()(t) + q, p);
  }
  /// Global id of the G_k-local decoding vertex
  /// (rank t in 0..k, q⃗' in [b]^{k-t}, p⃗' in [a]^t).
  [[nodiscard]] VertexId dec(int t, std::uint64_t q, std::uint64_t p) const {
    const Layout& layout = cdag_->layout();
    PR_DCHECK_MSG(t >= 0 && t <= k_, "G_k-local decoding rank outside 0..k");
    return layout.dec(t, prefix_ * layout.pow_b()(k_ - t) + q, p);
  }
  [[nodiscard]] VertexId input(Side side, std::uint64_t p) const {
    return enc(side, 0, 0, p);
  }
  [[nodiscard]] VertexId output(std::uint64_t p) const {
    return dec(k_, 0, p);
  }

  /// True iff global vertex v belongs to this subcomputation.
  [[nodiscard]] bool contains(VertexId v) const;

  /// All global ids of this subcomputation, in id order.
  [[nodiscard]] std::vector<VertexId> vertices() const;

  /// Meta-vertex roots of all 2a^k inputs. Two subcomputations are
  /// input-disjoint (Section 6) iff these sets are disjoint.
  [[nodiscard]] std::vector<VertexId> input_meta_roots() const;

 private:
  const Cdag* cdag_;
  int k_;
  std::uint64_t prefix_;
};

/// True iff no meta-vertex contains inputs of both subcomputations.
bool input_disjoint(const SubComputation& x, const SubComputation& y);

}  // namespace pathrouting::cdag
