// The recursive computation DAG G_r of a Strassen-like algorithm,
// together with per-edge coefficients and the copy/meta-vertex
// structure (Section 3 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/cdag/graph.hpp"
#include "pathrouting/cdag/layout.hpp"

namespace pathrouting::cdag {

using bilinear::BilinearAlgorithm;
using support::Rational;

struct CdagOptions {
  /// Store per-edge coefficients (needed for numeric evaluation; the
  /// pebble game and routings only need the structure).
  bool with_coefficients = true;
  /// Extend meta-vertices to group encoding vertices whose defining
  /// rows are identical *nontrivial* combinations (the value-level
  /// equivalence for algorithms that use one combination in several
  /// multiplications — the regime of Section 8, where the paper's
  /// single-use assumption fails and it conjectures the bound still
  /// holds). With this on, meta-vertices are general same-value
  /// classes, no longer upward subtrees; the routing-theorem meta
  /// claims do not apply, but the segment certifier does and is how
  /// the conjecture is probed empirically (bench_extension).
  bool group_duplicate_rows = false;
};

class Cdag {
 public:
  /// Builds G_r for the given base algorithm. Aborts if any encoding
  /// row of the base is identically zero (a product of nothing) or any
  /// decoding row is trivial (an output that IS a product would extend
  /// meta-vertices into the decoding graph, which Lemma 2 rules out for
  /// the algorithms in scope).
  Cdag(BilinearAlgorithm alg, int r, CdagOptions options = {});

  [[nodiscard]] const BilinearAlgorithm& algorithm() const { return alg_; }
  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] int r() const { return layout_.r(); }

  [[nodiscard]] bool has_coefficients() const { return !in_coeff_.empty(); }
  /// Coefficient of global in-edge `e` (index into the in-adjacency
  /// array; see Graph::in_edge_base). Product vertices have coefficient
  /// 1 on both in-edges (they multiply, not combine).
  [[nodiscard]] const Rational& in_coeff(std::uint64_t e) const {
    PR_DCHECK_MSG(e < in_coeff_.size(), "global in-edge index out of range");
    return in_coeff_[e];
  }

  /// The unique predecessor v is a verbatim copy of, or kInvalidVertex
  /// if v is not a copy vertex. Copies arise exactly at encoding
  /// vertices whose base row is trivial (single coefficient 1).
  [[nodiscard]] VertexId copy_parent(VertexId v) const {
    return copy_parent_[v];
  }
  /// Root of v's meta-vertex (v itself when v is not a copy). All
  /// vertices with the same root carry the same value; the root is the
  /// unique vertex of the meta-vertex with a non-copy definition
  /// ("rooted at one of the input vertices" under the paper's
  /// single-use assumption).
  [[nodiscard]] VertexId meta_root(VertexId v) const { return meta_root_[v]; }
  /// Number of vertices in v's meta-vertex (queried on any member).
  [[nodiscard]] std::uint32_t meta_size(VertexId v) const {
    return meta_size_[meta_root_[v]];
  }
  /// True iff v's meta-vertex has more than one vertex ("duplicated
  /// vertex" in Section 6).
  [[nodiscard]] bool is_duplicated(VertexId v) const {
    return meta_size(v) > 1;
  }

  /// True when built with group_duplicate_rows (meta-vertices are
  /// same-value classes rather than copy subtrees).
  [[nodiscard]] bool grouped_duplicates() const {
    return grouped_duplicates_;
  }

  /// Whole-table views of the per-vertex copy/meta structure and
  /// per-edge coefficients (empty when built without coefficients).
  /// The audit layer scans these wholesale; per-vertex accessors above
  /// remain the API for point queries.
  [[nodiscard]] std::span<const VertexId> copy_parents() const {
    return copy_parent_;
  }
  [[nodiscard]] std::span<const VertexId> meta_roots() const {
    return meta_root_;
  }
  [[nodiscard]] std::span<const std::uint32_t> meta_sizes() const {
    return meta_size_;
  }
  [[nodiscard]] std::span<const Rational> in_coeffs() const {
    return in_coeff_;
  }

 private:
  BilinearAlgorithm alg_;
  Layout layout_;
  Graph graph_;
  std::vector<Rational> in_coeff_;
  std::vector<VertexId> copy_parent_;
  std::vector<VertexId> meta_root_;
  std::vector<std::uint32_t> meta_size_;
  bool grouped_duplicates_ = false;
};

}  // namespace pathrouting::cdag
