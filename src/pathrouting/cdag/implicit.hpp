// The Fact-1 virtual CDAG: every CdagView query of G_r synthesized on
// demand from the base algorithm's sparse rows and mixed-radix index
// arithmetic, with no O(b^r) allocation.
//
// The builder (builder.cpp) emits G_r from three local stencils — the
// encoding rows of U/V, the product gates, and the decoding rows of W —
// applied at every (recursion path, Morton position) pair. Those
// stencils ARE the graph: for a vertex decoded to (layer, rank, q⃗, p⃗),
// its neighbors, copy parent, and meta-subtree size are closed-form in
// the digits of q⃗ and p⃗. ImplicitCdag precomputes only the O(a + b)
// sparse row/column tables and answers every query in O(degree + r)
// time, so the only size limit left is Layout's id space
// (num_vertices < 2^32) — for Strassen that is r = 10 and ~2 * 10^9
// vertices, where the explicit CSR build (num_edges < 2^32) aborted at
// r = 8 and would need ~200 GiB at r = 10.
//
// Answers are bit-identical to ExplicitView over Cdag(alg, r,
// {.with_coefficients = false}) — pinned by tests/test_implicit_cdag
// for the whole catalog wherever the explicit build still fits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/cdag/view.hpp"

namespace pathrouting::cdag {

class ImplicitCdag final : public CdagView {
 public:
  /// Virtual G_r. Enforces the same base-graph preconditions as the
  /// explicit builder (no zero encoding rows, no trivial decoding
  /// rows), so an ImplicitCdag exists exactly when Cdag would.
  ImplicitCdag(BilinearAlgorithm alg, int r);

  [[nodiscard]] const BilinearAlgorithm& algorithm() const override {
    return alg_;
  }
  [[nodiscard]] const Layout& layout() const override { return layout_; }
  [[nodiscard]] ViewCapabilities capabilities() const override {
    return {};  // structure only: no CSR arrays, coefficients, grouping
  }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return num_edges_;
  }

  [[nodiscard]] std::uint32_t in_degree(VertexId v) const override;
  [[nodiscard]] std::uint32_t out_degree(VertexId v) const override;
  [[nodiscard]] std::span<const VertexId> in(
      VertexId v, std::vector<VertexId>& scratch) const override;
  [[nodiscard]] std::span<const VertexId> out(
      VertexId v, std::vector<VertexId>& scratch) const override;
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const override;
  [[nodiscard]] VertexId copy_parent(VertexId v) const override;
  [[nodiscard]] VertexId meta_root(VertexId v) const override;
  [[nodiscard]] std::uint32_t meta_size(VertexId v) const override;

  /// #trivial encoding rows of `side` selecting input entry d (the
  /// fan-out of one copy step; drives meta_size and the implicit
  /// Theorem-2 accounting in routing/memo_routing).
  [[nodiscard]] std::span<const std::uint32_t> trivial_fanout(
      Side side) const {
    return side == Side::A ? fan_a_ : fan_b_;
  }
  /// True iff encoding row q of `side` is trivial (one coefficient, 1).
  [[nodiscard]] bool trivial_row(Side side, int q) const {
    return (side == Side::A ? triv_a_ : triv_b_)[static_cast<std::size_t>(q)] !=
           0;
  }

 private:
  struct SparseRows {
    std::vector<std::uint32_t> off;      // |rows|+1 prefix offsets
    std::vector<std::uint32_t> indices;  // nonzero positions, ascending
    [[nodiscard]] std::span<const std::uint32_t> row(std::uint64_t i) const {
      return {indices.data() + off[i], indices.data() + off[i + 1]};
    }
    [[nodiscard]] std::uint32_t nnz(std::uint64_t i) const {
      return off[i + 1] - off[i];
    }
  };

  [[nodiscard]] const SparseRows& enc_rows(Side side) const {
    return side == Side::A ? u_rows_ : v_rows_;
  }
  [[nodiscard]] const SparseRows& enc_cols(Side side) const {
    return side == Side::A ? u_cols_ : v_cols_;
  }
  /// copy_parent for an address known to be an encoding vertex at rank
  /// t >= 1 (kInvalidVertex when row q mod b is nontrivial).
  [[nodiscard]] VertexId enc_copy_parent(Side side, int t, std::uint64_t q,
                                         std::uint64_t p) const;

  BilinearAlgorithm alg_;
  Layout layout_;
  std::uint64_t num_edges_ = 0;
  SparseRows u_rows_, v_rows_, w_rows_;  // by row: U/V over entries, W over products
  SparseRows u_cols_, v_cols_, w_cols_;  // transposed: out-neighbor stencils
  std::vector<std::uint8_t> triv_a_, triv_b_;    // row trivial? (size b)
  std::vector<std::uint32_t> copy_src_a_, copy_src_b_;  // trivial row's entry
  std::vector<std::uint32_t> fan_a_, fan_b_;     // T_side[d] (size a)
};

}  // namespace pathrouting::cdag
