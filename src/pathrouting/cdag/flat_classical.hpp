// Flat (non-recursive) classical matrix multiplication CDAG: the
// Hong-Kung baseline graph. For an n x n multiplication it has
//
//   inputs   A(i,k), B(k,j)                      2 n^2 vertices
//   products P(i,k,j) = A(i,k) * B(k,j)            n^3 vertices
//   partial sums S(i,j,k) = S(i,j,k-1) + P(i,k,j)  n^2 (n-1) vertices,
//                with S(i,j,0) := P(i,0,j) and S(i,j,n-1) = C(i,j).
//
// Running the pebble game on it with blocked schedules reproduces the
// classical Theta(n^3 / sqrt(M)) I/O behaviour [Hong-Kung 81] that
// Theorem 1's fast algorithms beat (experiment E7).
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::cdag {

class FlatClassicalCdag {
 public:
  explicit FlatClassicalCdag(int n);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }

  [[nodiscard]] VertexId a(int i, int k) const {
    return idx2(i, k);
  }
  [[nodiscard]] VertexId b(int k, int j) const {
    return static_cast<VertexId>(nn_) + idx2(k, j);
  }
  [[nodiscard]] VertexId product(int i, int k, int j) const {
    return static_cast<VertexId>(2 * nn_) + idx3(i, k, j);
  }
  /// Partial sum over k' <= k; valid for k >= 1 (k = 0 is product(i,0,j)).
  [[nodiscard]] VertexId partial(int i, int j, int k) const {
    PR_DCHECK_MSG(k >= 1 && k < n_,
                  "partial sums exist only for 1 <= k < n (k=0 is the "
                  "bare product)");
    return static_cast<VertexId>(
        2 * nn_ + nn_ * static_cast<std::uint64_t>(n_) +
        (static_cast<std::uint64_t>(i) * n_ + static_cast<std::uint64_t>(j)) *
            static_cast<std::uint64_t>(n_ - 1) +
        static_cast<std::uint64_t>(k - 1));
  }
  [[nodiscard]] VertexId output(int i, int j) const {
    return partial(i, j, n_ - 1);
  }
  [[nodiscard]] bool is_input(VertexId v) const { return v < 2 * nn_; }

  /// Schedule visiting products/partials in i,j,k nesting over square
  /// tiles of side `tile` (tile = n degenerates to the naive i,j,k
  /// order). With tile ~ sqrt(M/3) this is the classical blocked
  /// algorithm. Returns computed (non-input) vertices only, in order.
  [[nodiscard]] std::vector<VertexId> blocked_schedule(int tile) const;

  /// Untiled triple-loop schedules in the named nesting order. The
  /// accumulation chain forces k to ascend per (i,j), which all six
  /// classic orders satisfy; their I/O differs by which operand streams
  /// (the textbook "loop order matters" effect, measurable with the
  /// pebble game).
  enum class LoopOrder { kIJK, kIKJ, kJIK, kJKI, kKIJ, kKJI };
  [[nodiscard]] std::vector<VertexId> loop_schedule(LoopOrder order) const;

 private:
  [[nodiscard]] VertexId idx2(int x, int y) const {
    PR_DCHECK_MSG(x >= 0 && x < n_ && y >= 0 && y < n_,
                  "matrix coordinate out of range");
    return static_cast<VertexId>(static_cast<std::uint64_t>(x) * n_ + y);
  }
  [[nodiscard]] VertexId idx3(int x, int y, int z) const {
    return static_cast<VertexId>(
        (static_cast<std::uint64_t>(x) * n_ + y) * n_ + z);
  }

  int n_;
  std::uint64_t nn_;
  Graph graph_;
};

}  // namespace pathrouting::cdag
