// Meta-vertex structure checks and queries (Section 3, Figure 2).
//
// A meta-vertex groups all vertices carrying the same value: a root
// (the unique member with a non-copy definition) plus copies reachable
// through chains of trivial encoding rows. Under the paper's single-use
// assumption every meta-vertex in the base graph is a single vertex or
// rooted at an input; in G_r roots can also sit at intermediate
// encoding ranks (a trivial row applied to a nontrivial combination).
#pragma once

#include <vector>

#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::cdag {

/// All members of the meta-vertex rooted at `root` (root included),
/// discovered by walking copy edges upward. `root` must be a root.
std::vector<VertexId> meta_members(const Cdag& cdag, VertexId root);

/// Structural validation of the copy forest: every copy vertex has
/// in-degree 1 with unit coefficient, parents have smaller ids, roots
/// are fixed points, meta sizes are consistent, and each meta-vertex is
/// an upward-branching subtree (each member's path of copy-parents
/// reaches the root). Returns true when all hold.
bool validate_meta_structure(const Cdag& cdag);

/// Number of duplicated vertices (members of meta-vertices of size >1).
std::uint64_t count_duplicated_vertices(const Cdag& cdag);

/// True iff some meta-vertex branches (a vertex is copy-parent of two
/// or more copies) — the paper's "multiple copying".
bool has_multiple_copying(const Cdag& cdag);

}  // namespace pathrouting::cdag
