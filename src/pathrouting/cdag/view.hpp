// One interface over explicit and implicit CDAGs.
//
// The memoized verifier (routing/memo_routing) made the *arithmetic* of
// the routing certificates nearly free, but every consumer still took a
// `const Cdag&` — an O(num_edges) CSR materialization that becomes the
// scaling wall around r = 7 and is hopeless at r = 10. By Fact 1 the
// graph never needs to exist: the middle layers of G_r are b^{r-k}
// translated copies of a canonical G_k, and every adjacency/copy/meta
// query is index arithmetic on the base algorithm's sparse rows.
//
// CdagView is the seam. ExplicitView adapts today's CSR-backed Cdag;
// cdag::ImplicitCdag (implicit.hpp) synthesizes the same answers on
// demand with O(a + b) state. Consumers written against the view — the
// routing engines, the segment certifier, the view-safe audit rules —
// run unchanged on either; consumers that genuinely need whole-graph
// arrays test `capabilities().explicit_edges` and degrade with a report
// note instead of silently passing (see audit/audit.hpp).
//
// Contract mirrored from Graph/Cdag so results are bit-identical:
//   - in(v) lists predecessors in builder emission order (encoding rows
//     by ascending entry, product A-then-B, decoding rows by ascending
//     product) — the order coefficient tables align to;
//   - out(v) lists successors in ascending id order (Graph derives its
//     out-CSR stably from the rank-ordered in-emission, which for this
//     layout is exactly ascending order);
//   - copy_parent/meta_root/meta_size reproduce the builder's
//     Section-3 copy bookkeeping (no Section-8 grouping).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::cdag {

/// What a view can answer beyond the core interface. Consumers that
/// need a missing capability must skip (and say so) rather than crash.
struct ViewCapabilities {
  /// Whole-graph CSR arrays exist (Graph/whole-table spans; anything
  /// that scans edges wholesale or needs per-edge indices).
  bool explicit_edges = false;
  /// Per-edge coefficients are stored (numeric evaluation).
  bool coefficients = false;
  /// Section-8 duplicate-row grouping was applied (meta-vertices are
  /// same-value classes, not copy subtrees).
  bool grouped_duplicates = false;
};

class CdagView {
 public:
  CdagView() = default;
  CdagView(const CdagView&) = default;
  CdagView& operator=(const CdagView&) = default;
  virtual ~CdagView() = default;

  [[nodiscard]] virtual const BilinearAlgorithm& algorithm() const = 0;
  [[nodiscard]] virtual const Layout& layout() const = 0;
  [[nodiscard]] virtual ViewCapabilities capabilities() const = 0;
  [[nodiscard]] int r() const { return layout().r(); }
  [[nodiscard]] std::uint64_t num_vertices() const {
    return layout().num_vertices();
  }
  [[nodiscard]] virtual std::uint64_t num_edges() const = 0;

  [[nodiscard]] virtual std::uint32_t in_degree(VertexId v) const = 0;
  [[nodiscard]] virtual std::uint32_t out_degree(VertexId v) const = 0;

  /// Neighbor lists. `scratch` is caller-owned storage the view MAY
  /// synthesize into (implicit views do; the explicit adapter returns
  /// the CSR span untouched) — the returned span is invalidated by the
  /// next call on the same scratch. Using one scratch per worker keeps
  /// concurrent traversals safe: views are immutable and thread-safe.
  [[nodiscard]] virtual std::span<const VertexId> in(
      VertexId v, std::vector<VertexId>& scratch) const = 0;
  [[nodiscard]] virtual std::span<const VertexId> out(
      VertexId v, std::vector<VertexId>& scratch) const = 0;

  [[nodiscard]] virtual bool has_edge(VertexId from, VertexId to) const = 0;

  [[nodiscard]] virtual VertexId copy_parent(VertexId v) const = 0;
  [[nodiscard]] virtual VertexId meta_root(VertexId v) const = 0;
  [[nodiscard]] virtual std::uint32_t meta_size(VertexId v) const = 0;
  [[nodiscard]] bool is_duplicated(VertexId v) const {
    return meta_size(v) > 1;
  }

  /// The backing Cdag when this view wraps one, else nullptr — the
  /// escape hatch for consumers that genuinely need whole-graph arrays
  /// (gate on capabilities().explicit_edges first).
  [[nodiscard]] virtual const Cdag* explicit_cdag() const { return nullptr; }
};

/// The CSR-backed Cdag as a CdagView (borrows; keep `cdag` alive).
class ExplicitView final : public CdagView {
 public:
  explicit ExplicitView(const Cdag& cdag) : cdag_(&cdag) {}

  [[nodiscard]] const BilinearAlgorithm& algorithm() const override {
    return cdag_->algorithm();
  }
  [[nodiscard]] const Layout& layout() const override {
    return cdag_->layout();
  }
  [[nodiscard]] ViewCapabilities capabilities() const override {
    return {.explicit_edges = true,
            .coefficients = cdag_->has_coefficients(),
            .grouped_duplicates = cdag_->grouped_duplicates()};
  }
  [[nodiscard]] std::uint64_t num_edges() const override {
    return cdag_->graph().num_edges();
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const override {
    return cdag_->graph().in_degree(v);
  }
  [[nodiscard]] std::uint32_t out_degree(VertexId v) const override {
    return cdag_->graph().out_degree(v);
  }
  [[nodiscard]] std::span<const VertexId> in(
      VertexId v, std::vector<VertexId>& scratch) const override {
    (void)scratch;
    return cdag_->graph().in(v);
  }
  [[nodiscard]] std::span<const VertexId> out(
      VertexId v, std::vector<VertexId>& scratch) const override {
    (void)scratch;
    return cdag_->graph().out(v);
  }
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const override {
    return cdag_->graph().has_edge(from, to);
  }
  [[nodiscard]] VertexId copy_parent(VertexId v) const override {
    return cdag_->copy_parent(v);
  }
  [[nodiscard]] VertexId meta_root(VertexId v) const override {
    return cdag_->meta_root(v);
  }
  [[nodiscard]] std::uint32_t meta_size(VertexId v) const override {
    return cdag_->meta_size(v);
  }
  [[nodiscard]] const Cdag* explicit_cdag() const override { return cdag_; }

 private:
  const Cdag* cdag_;
};

}  // namespace pathrouting::cdag
