#include "pathrouting/cdag/flat_classical.hpp"

#include <algorithm>

namespace pathrouting::cdag {

FlatClassicalCdag::FlatClassicalCdag(int n)
    : n_(n), nn_(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n)) {
  PR_REQUIRE(n >= 2);
  const std::uint64_t num_vertices =
      2 * nn_ + nn_ * static_cast<std::uint64_t>(n) +
      nn_ * static_cast<std::uint64_t>(n - 1);
  PR_REQUIRE_MSG(num_vertices < kInvalidVertex, "flat CDAG too large");
  std::vector<std::uint32_t> in_off;
  in_off.reserve(num_vertices + 1);
  in_off.push_back(0);
  std::vector<VertexId> in_adj;
  in_adj.reserve(2 * nn_ * static_cast<std::uint64_t>(n) +
                 2 * nn_ * static_cast<std::uint64_t>(n - 1));
  const auto close_vertex = [&] {
    in_off.push_back(static_cast<std::uint32_t>(in_adj.size()));
  };
  // Inputs.
  for (std::uint64_t i = 0; i < 2 * nn_; ++i) close_vertex();
  // Products, in (i,k,j) order to match their id layout.
  for (int i = 0; i < n_; ++i) {
    for (int k = 0; k < n_; ++k) {
      for (int j = 0; j < n_; ++j) {
        in_adj.push_back(a(i, k));
        in_adj.push_back(b(k, j));
        close_vertex();
      }
    }
  }
  // Partial sums, in (i,j,k) order.
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      for (int k = 1; k < n_; ++k) {
        in_adj.push_back(k == 1 ? product(i, 0, j) : partial(i, j, k - 1));
        in_adj.push_back(product(i, k, j));
        close_vertex();
      }
    }
  }
  PR_ASSERT(in_off.size() == num_vertices + 1);
  graph_ = Graph(std::move(in_off), std::move(in_adj));
}

std::vector<VertexId> FlatClassicalCdag::loop_schedule(LoopOrder order) const {
  std::vector<VertexId> out;
  out.reserve(nn_ * static_cast<std::uint64_t>(n_) +
              nn_ * static_cast<std::uint64_t>(n_ - 1));
  // Map the chosen nesting onto loop variables (x, y, z); the innermost
  // statement computes P(i,k,j) and, for k >= 1, the partial sum.
  const auto emit = [&](int i, int j, int k) {
    out.push_back(product(i, k, j));
    if (k >= 1) out.push_back(partial(i, j, k));
  };
  for (int x = 0; x < n_; ++x) {
    for (int y = 0; y < n_; ++y) {
      for (int z = 0; z < n_; ++z) {
        switch (order) {
          case LoopOrder::kIJK: emit(x, y, z); break;
          case LoopOrder::kIKJ: emit(x, z, y); break;
          case LoopOrder::kJIK: emit(y, x, z); break;
          case LoopOrder::kJKI: emit(z, x, y); break;
          case LoopOrder::kKIJ: emit(y, z, x); break;
          case LoopOrder::kKJI: emit(z, y, x); break;
        }
      }
    }
  }
  return out;
}

std::vector<VertexId> FlatClassicalCdag::blocked_schedule(int tile) const {
  PR_REQUIRE(tile >= 1 && tile <= n_);
  std::vector<VertexId> order;
  order.reserve(nn_ * static_cast<std::uint64_t>(n_) +
                nn_ * static_cast<std::uint64_t>(n_ - 1));
  // Tile loops (ii, jj, kk) with the classical accumulation order
  // inside: for each (i, j) in the tile, multiply-and-add over k. The
  // product P(i,k,j) is emitted immediately before the partial sum that
  // consumes it, which is what the blocked algorithm does.
  for (int ii = 0; ii < n_; ii += tile) {
    for (int jj = 0; jj < n_; jj += tile) {
      for (int kk = 0; kk < n_; kk += tile) {
        const int i_end = std::min(ii + tile, n_);
        const int j_end = std::min(jj + tile, n_);
        const int k_end = std::min(kk + tile, n_);
        for (int i = ii; i < i_end; ++i) {
          for (int j = jj; j < j_end; ++j) {
            for (int k = kk; k < k_end; ++k) {
              order.push_back(product(i, k, j));
              if (k >= 1) order.push_back(partial(i, j, k));
            }
          }
        }
      }
    }
  }
  return order;
}

}  // namespace pathrouting::cdag
