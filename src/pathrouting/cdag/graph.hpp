// Immutable directed graph in CSR form (both directions).
//
// Computation DAGs in this library are built once and then queried
// heavily (pebble simulation walks every edge; routings count hits per
// vertex), so the representation is two flat CSR arrays over dense
// uint32 vertex ids. Vertex semantics (rank, side, position) live in the
// owning structure (cdag::Layout or flat graphs' own tables), not here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::cdag {

using VertexId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class Graph {
 public:
  Graph() = default;

  /// Builds from in-adjacency CSR: `in_off` has n+1 entries;
  /// predecessors of v are in_adj[in_off[v] .. in_off[v+1]). The
  /// out-adjacency is derived. Edge order within a vertex's in-list is
  /// preserved (the CDAG evaluator relies on it to align coefficients).
  Graph(std::vector<std::uint32_t> in_off, std::vector<VertexId> in_adj);

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(in_off_.empty() ? 0 : in_off_.size() - 1);
  }
  [[nodiscard]] std::uint64_t num_edges() const { return in_adj_.size(); }

  [[nodiscard]] std::span<const VertexId> in(VertexId v) const {
    PR_DCHECK_MSG(v < num_vertices(), "in(): vertex id out of range");
    return {in_adj_.data() + in_off_[v], in_adj_.data() + in_off_[v + 1]};
  }
  [[nodiscard]] std::span<const VertexId> out(VertexId v) const {
    PR_DCHECK_MSG(v < num_vertices(), "out(): vertex id out of range");
    return {out_adj_.data() + out_off_[v], out_adj_.data() + out_off_[v + 1]};
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const {
    return in_off_[v + 1] - in_off_[v];
  }
  [[nodiscard]] std::uint32_t out_degree(VertexId v) const {
    return out_off_[v + 1] - out_off_[v];
  }
  /// Offset of v's first in-edge in the global edge array; edge
  /// `in_edge_base(v) + i` corresponds to predecessor in(v)[i]. Used to
  /// index per-edge side data (coefficients).
  [[nodiscard]] std::uint32_t in_edge_base(VertexId v) const {
    return in_off_[v];
  }

  /// True if (from, to) is an edge; binary search over the sorted
  /// out-list of `from` (out-lists are sorted ascending by
  /// construction; in-adjacency order is untouched — the evaluator's
  /// coefficient alignment depends on it).
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const;

 private:
  std::vector<std::uint32_t> in_off_;
  std::vector<VertexId> in_adj_;
  std::vector<std::uint32_t> out_off_;
  std::vector<VertexId> out_adj_;
};

}  // namespace pathrouting::cdag
