#include "pathrouting/cdag/meta.hpp"

namespace pathrouting::cdag {

std::vector<VertexId> meta_members(const Cdag& cdag, VertexId root) {
  PR_REQUIRE(cdag.meta_root(root) == root);
  std::vector<VertexId> members = {root};
  // Copies have larger ids than their parents, so a worklist walk over
  // out-neighbours finds the whole subtree.
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (const VertexId succ : cdag.graph().out(members[i])) {
      if (succ < cdag.graph().num_vertices() &&
          cdag.copy_parent(succ) == members[i]) {
        members.push_back(succ);
      }
    }
  }
  return members;
}

bool validate_meta_structure(const Cdag& cdag) {
  const Graph& g = cdag.graph();
  std::vector<std::uint32_t> sizes(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId parent = cdag.copy_parent(v);
    if (parent == kInvalidVertex) {
      // Without duplicate-row grouping, non-copies are their own roots;
      // with grouping they may defer to an equal-row representative
      // (with a smaller id) instead.
      if (cdag.meta_root(v) != v &&
          !(cdag.grouped_duplicates() && cdag.meta_root(v) < v)) {
        return false;
      }
    } else {
      if (parent >= v) return false;
      if (g.in_degree(v) != 1 || g.in(v)[0] != parent) return false;
      if (cdag.has_coefficients() &&
          !cdag.in_coeff(g.in_edge_base(v)).is_one()) {
        return false;
      }
      if (cdag.meta_root(v) != cdag.meta_root(parent)) return false;
    }
    ++sizes[cdag.meta_root(v)];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cdag.meta_root(v) == v && sizes[v] != cdag.meta_size(v)) return false;
  }
  return true;
}

std::uint64_t count_duplicated_vertices(const Cdag& cdag) {
  std::uint64_t count = 0;
  for (VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    if (cdag.is_duplicated(v)) ++count;
  }
  return count;
}

bool has_multiple_copying(const Cdag& cdag) {
  std::vector<std::uint8_t> has_copy_child(cdag.graph().num_vertices(), 0);
  for (VertexId v = 0; v < cdag.graph().num_vertices(); ++v) {
    const VertexId parent = cdag.copy_parent(v);
    if (parent == kInvalidVertex) continue;
    if (has_copy_child[parent]) return true;
    has_copy_child[parent] = 1;
  }
  return false;
}

}  // namespace pathrouting::cdag
