// Vertex addressing for the recursive CDAG G_r (Section 3).
//
// G_r for a base algorithm <n0,n0,n0;b>, a = n0^2, has three layers:
//
//   encoding side X in {A, B}, ranks t = 0..r:
//       vertex (q⃗ ∈ [b]^t, p⃗ ∈ [a]^{r-t});  rank 0 = the a^r inputs of X.
//   decoding side, ranks t = 0..r:
//       vertex (q⃗ ∈ [b]^{r-t}, p⃗ ∈ [a]^t);  rank 0 = the b^r products,
//       rank r = the a^r outputs.
//
// q⃗ is the recursion path (digit 0 = outermost level); p⃗ is the Morton
// position within the current operand block (digit 0 = outermost level,
// each digit d ≅ (i,j) with d = i*n0 + j). Edges (see builder.cpp):
//
//   enc:  (q⃗, d·p⃗) -> (q⃗·q, p⃗)    iff U[q,d] != 0   (resp. V),
//   mult: encA(r, q⃗), encB(r, q⃗) -> dec(0, q⃗),
//   dec:  (q⃗·q, p⃗) -> (q⃗, d·p⃗)    iff W[d,q] != 0.
//
// Ids are dense uint32, laid out encA rank 0..r, encB rank 0..r, dec
// rank 0..r; within a rank, index = q⃗ * a^{len(p⃗)} + p⃗. This order is
// topological, and in-edges of consecutive ids can be emitted
// streaming.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pathrouting/bilinear/analysis.hpp"  // for bilinear::Side
#include "pathrouting/cdag/graph.hpp"
#include "pathrouting/support/mixed_radix.hpp"

namespace pathrouting::cdag {

using bilinear::Side;
using support::PowTable;

enum class LayerKind : std::uint8_t { EncA, EncB, Dec };

/// Fully decoded vertex address.
struct VertexRef {
  LayerKind layer;
  int rank;         // 0..r within the layer
  std::uint64_t q;  // recursion path word
  std::uint64_t p;  // Morton position word
};

class Layout {
 public:
  Layout(int n0, int b, int r);

  [[nodiscard]] int n0() const { return n0_; }
  [[nodiscard]] int a() const { return a_; }
  [[nodiscard]] int b() const { return b_; }
  [[nodiscard]] int r() const { return r_; }
  [[nodiscard]] const PowTable& pow_a() const { return pow_a_; }
  [[nodiscard]] const PowTable& pow_b() const { return pow_b_; }

  [[nodiscard]] std::uint64_t num_vertices() const { return num_vertices_; }
  /// a^r: inputs per operand (also the number of outputs).
  [[nodiscard]] std::uint64_t inputs_per_side() const { return pow_a_(r_); }
  [[nodiscard]] std::uint64_t num_products() const { return pow_b_(r_); }
  /// n = n0^r, the matrix dimension.
  [[nodiscard]] std::uint64_t n() const;

  [[nodiscard]] std::uint64_t enc_rank_size(int t) const {
    return pow_b_(t) * pow_a_(r_ - t);
  }
  [[nodiscard]] std::uint64_t dec_rank_size(int t) const {
    return pow_b_(r_ - t) * pow_a_(t);
  }

  [[nodiscard]] VertexId enc(Side side, int t, std::uint64_t q,
                             std::uint64_t p) const {
    PR_DCHECK_MSG(t >= 0 && t <= r_, "enc(): rank outside 0..r");
    PR_DCHECK_MSG(q < pow_b_(t) && p < pow_a_(r_ - t),
                  "enc(): recursion path or position word out of range");
    const std::uint64_t base =
        (side == Side::A ? enc_a_base_ : enc_b_base_)[static_cast<std::size_t>(t)];
    return static_cast<VertexId>(base + q * pow_a_(r_ - t) + p);
  }
  [[nodiscard]] VertexId dec(int t, std::uint64_t q, std::uint64_t p) const {
    PR_DCHECK_MSG(t >= 0 && t <= r_, "dec(): rank outside 0..r");
    PR_DCHECK_MSG(q < pow_b_(r_ - t) && p < pow_a_(t),
                  "dec(): recursion path or position word out of range");
    return static_cast<VertexId>(dec_base_[static_cast<std::size_t>(t)] +
                                 q * pow_a_(t) + p);
  }
  [[nodiscard]] VertexId input(Side side, std::uint64_t p) const {
    return enc(side, 0, 0, p);
  }
  [[nodiscard]] VertexId product(std::uint64_t q) const { return dec(0, q, 0); }
  [[nodiscard]] VertexId output(std::uint64_t p) const { return dec(r_, 0, p); }

  [[nodiscard]] VertexRef ref(VertexId v) const;

  [[nodiscard]] bool is_input(VertexId v) const {
    return (v >= enc_a_base_[0] && v < enc_a_base_[0] + pow_a_(r_)) ||
           (v >= enc_b_base_[0] && v < enc_b_base_[0] + pow_a_(r_));
  }
  [[nodiscard]] bool is_output(VertexId v) const {
    return v >= dec_base_[static_cast<std::size_t>(r_)] && v < num_vertices_;
  }

  /// Global level for rank-ordered (BFS) traversals: enc rank t -> t,
  /// dec rank t -> r+1+t. Inputs are level 0, outputs level 2r+1.
  [[nodiscard]] int level(VertexId v) const;

 private:
  int n0_, a_, b_, r_;
  PowTable pow_a_, pow_b_;
  std::vector<std::uint64_t> enc_a_base_, enc_b_base_, dec_base_;
  std::uint64_t num_vertices_ = 0;
};

/// One contiguous id run of a Fact-1 vertex-renaming map: local ids
/// [local_base, local_base + length) of a standalone G_k layout map to
/// global ids [global_base, global_base + length) of G_r, in order.
struct CopyBlock {
  VertexId local_base = 0;
  VertexId global_base = 0;
  std::uint64_t length = 0;
};

/// The Fact-1 vertex renaming between a standalone canonical G_k
/// (`Layout(n0, b, k)`) and the copy G_k^prefix inside G_r.
///
/// Within one G_k-local rank the subcomputation address formulas
///   enc(X, t, q, p) -> global enc(X, r-k+t, prefix*b^t + q, p)
///   dec(t, q, p)    -> global dec(t, prefix*b^(k-t) + q, p)
/// are affine in the packed index q*|p-range| + p, so each of the
/// 3(k+1) local ranks maps to ONE contiguous global id run and the
/// whole renaming is these blocks. The map is strictly increasing
/// (blocks appear in both local and global id order), so id-order
/// tie-breaks (smallest argmax) translate verbatim: per-vertex counts
/// computed once on the canonical copy move to any copy by block
/// copies (memo_routing.hpp builds on exactly this).
class CopyTranslation {
 public:
  /// The renaming for copy `prefix` of G_k inside `global`
  /// (1 <= k <= r, 0 <= prefix < b^(r-k)).
  CopyTranslation(const Layout& global, int k, std::uint64_t prefix);

  [[nodiscard]] int k() const { return local_.r(); }
  [[nodiscard]] std::uint64_t prefix() const { return prefix_; }
  /// The canonical standalone G_k the local side of the map lives in.
  [[nodiscard]] const Layout& local() const { return local_; }
  /// The 3(k+1) runs, in (common) id order.
  [[nodiscard]] std::span<const CopyBlock> blocks() const { return blocks_; }

  [[nodiscard]] VertexId to_global(VertexId local) const;
  /// Inverse; `global` must belong to the copy (aborts otherwise).
  [[nodiscard]] VertexId to_local(VertexId global) const;

 private:
  Layout local_;
  std::uint64_t prefix_;
  std::vector<CopyBlock> blocks_;
};

/// Morton position word (length `len` digits in base n0^2) -> (row, col)
/// within the n0^len x n0^len matrix.
struct RowCol {
  std::uint64_t row;
  std::uint64_t col;
};
RowCol morton_to_rowcol(const PowTable& pow_a, int n0, std::uint64_t p,
                        int len);
std::uint64_t rowcol_to_morton(int n0, std::uint64_t row, std::uint64_t col,
                               int len);

}  // namespace pathrouting::cdag
