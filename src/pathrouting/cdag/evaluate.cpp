#include "pathrouting/cdag/evaluate.hpp"

namespace pathrouting::cdag {

// Explicit instantiations for the common value types, so most
// translation units only pay for the template once.
template std::vector<double> evaluate_all<double>(const Cdag&,
                                                  std::span<const double>,
                                                  std::span<const double>);
template std::vector<Rational> evaluate_all<Rational>(
    const Cdag&, std::span<const Rational>, std::span<const Rational>);
template std::vector<std::int64_t> evaluate_all<std::int64_t>(
    const Cdag&, std::span<const std::int64_t>,
    std::span<const std::int64_t>);
template std::vector<double> evaluate<double>(const Cdag&,
                                              std::span<const double>,
                                              std::span<const double>);
template std::vector<Rational> evaluate<Rational>(const Cdag&,
                                                  std::span<const Rational>,
                                                  std::span<const Rational>);
template std::vector<std::int64_t> evaluate<std::int64_t>(
    const Cdag&, std::span<const std::int64_t>,
    std::span<const std::int64_t>);

}  // namespace pathrouting::cdag
