#include "pathrouting/cdag/subcomputation.hpp"

#include <algorithm>

namespace pathrouting::cdag {

SubComputation::SubComputation(const Cdag& cdag, int k, std::uint64_t prefix)
    : cdag_(&cdag), k_(k), prefix_(prefix) {
  PR_REQUIRE(k >= 0 && k <= cdag.r());
  PR_REQUIRE(prefix < cdag.layout().pow_b()(cdag.r() - k));
}

bool SubComputation::contains(VertexId v) const {
  const Layout& layout = cdag_->layout();
  const VertexRef rf = layout.ref(v);
  if (rf.layer == LayerKind::Dec) {
    if (rf.rank > k_) return false;
    // q⃗ has length r-rank; its leading r-k digits must equal prefix.
    return rf.q / layout.pow_b()(k_ - rf.rank) == prefix_;
  }
  const int local_rank = rf.rank - (layout.r() - k_);
  if (local_rank < 0) return false;
  return rf.q / layout.pow_b()(local_rank) == prefix_;
}

std::vector<VertexId> SubComputation::vertices() const {
  const Layout& layout = cdag_->layout();
  std::vector<VertexId> out;
  for (const Side side : {Side::A, Side::B}) {
    for (int t = 0; t <= k_; ++t) {
      const std::uint64_t num_q = layout.pow_b()(t);
      const std::uint64_t num_p = layout.pow_a()(k_ - t);
      for (std::uint64_t q = 0; q < num_q; ++q) {
        for (std::uint64_t p = 0; p < num_p; ++p) {
          out.push_back(enc(side, t, q, p));
        }
      }
    }
  }
  for (int t = 0; t <= k_; ++t) {
    const std::uint64_t num_q = layout.pow_b()(k_ - t);
    const std::uint64_t num_p = layout.pow_a()(t);
    for (std::uint64_t q = 0; q < num_q; ++q) {
      for (std::uint64_t p = 0; p < num_p; ++p) {
        out.push_back(dec(t, q, p));
      }
    }
  }
  return out;
}

std::vector<VertexId> SubComputation::input_meta_roots() const {
  std::vector<VertexId> roots;
  roots.reserve(2 * inputs_per_side());
  for (const Side side : {Side::A, Side::B}) {
    for (std::uint64_t p = 0; p < inputs_per_side(); ++p) {
      roots.push_back(cdag_->meta_root(input(side, p)));
    }
  }
  return roots;
}

bool input_disjoint(const SubComputation& x, const SubComputation& y) {
  std::vector<VertexId> rx = x.input_meta_roots();
  std::vector<VertexId> ry = y.input_meta_roots();
  std::sort(rx.begin(), rx.end());
  std::sort(ry.begin(), ry.end());
  std::vector<VertexId> common;
  std::set_intersection(rx.begin(), rx.end(), ry.begin(), ry.end(),
                        std::back_inserter(common));
  return common.empty();
}

}  // namespace pathrouting::cdag
