#include "pathrouting/schedule/validate.hpp"

#include <vector>

namespace pathrouting::schedule {

ValidationResult validate_schedule(const Graph& graph,
                                   std::span<const VertexId> order) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint8_t> done(n, 0);
  // Inputs are available from the start.
  std::uint64_t num_inputs = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (graph.in_degree(v) == 0) {
      done[v] = 1;
      ++num_inputs;
    }
  }
  for (std::size_t s = 0; s < order.size(); ++s) {
    const VertexId v = order[s];
    if (v >= n) return {false, "vertex id out of range"};
    if (graph.in_degree(v) == 0) return {false, "schedule contains an input"};
    if (done[v]) return {false, "vertex scheduled twice"};
    for (const VertexId p : graph.in(v)) {
      if (!done[p]) return {false, "operand used before it is computed"};
    }
    done[v] = 1;
  }
  if (order.size() + num_inputs != n) {
    return {false, "schedule does not cover every computed vertex"};
  }
  return {};
}

}  // namespace pathrouting::schedule
