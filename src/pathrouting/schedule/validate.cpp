#include "pathrouting/schedule/validate.hpp"

#include <vector>

#include "pathrouting/obs/obs.hpp"

namespace pathrouting::schedule {

namespace {

audit::Diagnostic finding(std::string_view rule, std::string_view message,
                          std::uint64_t vertex,
                          std::uint64_t edge = audit::kNoId) {
  audit::Diagnostic diag;
  diag.rule = std::string(rule);
  diag.message = std::string(message);
  diag.vertex = vertex;
  diag.edge = edge;
  return diag;
}

}  // namespace

std::vector<audit::Diagnostic> schedule_diagnostics(
    const Graph& graph, std::span<const VertexId> order) {
  const obs::TraceSpan span("schedule.validate");
  static obs::Counter obs_validations("schedule.validations");
  obs_validations.add();
  const VertexId n = graph.num_vertices();
  std::vector<audit::Diagnostic> diags;
  std::vector<std::uint8_t> done(n, 0);
  // Inputs are available from the start.
  for (VertexId v = 0; v < n; ++v) {
    if (graph.in_degree(v) == 0) done[v] = 1;
  }
  for (std::size_t s = 0; s < order.size(); ++s) {
    const VertexId v = order[s];
    if (v >= n) {
      diags.push_back(
          finding("schedule.vertex-range", "vertex id out of range", v));
      continue;
    }
    if (graph.in_degree(v) == 0) {
      diags.push_back(
          finding("schedule.no-inputs", "schedule contains an input", v));
      continue;
    }
    if (done[v]) {
      diags.push_back(
          finding("schedule.no-duplicates", "vertex scheduled twice", v));
      continue;
    }
    const std::span<const VertexId> preds = graph.in(v);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (!done[preds[i]]) {
        diags.push_back(finding("schedule.topological",
                                "operand used before it is computed", v,
                                graph.in_edge_base(v) + i));
      }
    }
    done[v] = 1;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!done[v]) {
      diags.push_back(finding("schedule.coverage",
                              "schedule does not cover every computed vertex",
                              v));
    }
  }
  return diags;
}

ValidationResult validate_schedule(const Graph& graph,
                                   std::span<const VertexId> order) {
  const std::vector<audit::Diagnostic> diags =
      schedule_diagnostics(graph, order);
  if (diags.empty()) return {};
  return {false, diags.front().message};
}

}  // namespace pathrouting::schedule
