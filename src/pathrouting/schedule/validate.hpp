// Schedule validation: the pebble game's preconditions.
#pragma once

#include <span>
#include <string>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::schedule {

using cdag::Graph;
using cdag::VertexId;

struct ValidationResult {
  bool ok = true;
  std::string error;
};

/// Checks that `order` contains every non-input vertex exactly once, no
/// input vertices, and respects all edges (operands computed before
/// use).
ValidationResult validate_schedule(const Graph& graph,
                                   std::span<const VertexId> order);

}  // namespace pathrouting::schedule
