// Schedule validation: the pebble game's preconditions, reported as
// audit Diagnostics (schedule.* rules of the audit registry). The
// legacy first-error ValidationResult survives as a shim over the
// diagnostic scan.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"
#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::schedule {

using cdag::Graph;
using cdag::VertexId;

/// Full diagnosis of `order` against the machine model: every non-input
/// vertex exactly once, no input vertices, operands computed before
/// use. Findings carry the schedule.* rule ids in schedule-position
/// order (coverage findings last, in vertex-id order) and are uncapped;
/// audit::audit_schedule layers rule selection and per-rule capping on
/// top. The scan keeps going past the first violation, so a corrupted
/// schedule yields every independent finding in one pass.
std::vector<audit::Diagnostic> schedule_diagnostics(
    const Graph& graph, std::span<const VertexId> order);

struct ValidationResult {
  bool ok = true;
  std::string error;
};

/// Legacy shim over schedule_diagnostics: ok iff no findings, else the
/// first finding mapped to the historical one-line error string.
ValidationResult validate_schedule(const Graph& graph,
                                   std::span<const VertexId> order);

}  // namespace pathrouting::schedule
