// Schedule (topological order) generators for the pebble game.
//
// The I/O-complexity of an algorithm is the minimum over all schedules;
// the lower bound of Theorem 1 must hold for every one of them, while
// the recursive depth-first order (the schedule of the
// communication-optimal algorithm [3]) attains it within a constant
// factor. BFS and random topological orders provide the contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/cdag/cdag.hpp"

namespace pathrouting::schedule {

using cdag::Cdag;
using cdag::Graph;
using cdag::VertexId;

/// The natural recursive execution order: at each recursion node,
/// encode the operands of each child, recurse, and after all children
/// are done decode the node's outputs. With an ideal cache this order
/// achieves O((n/sqrt(M))^{omega0} * M) I/Os — the matching upper bound
/// for Theorem 1 ([3] in the paper).
std::vector<VertexId> dfs_schedule(const Cdag& cdag);

/// Rank by rank (all of encoding rank 1, then rank 2, ...): the
/// breadth-first order. Each rank is streamed through cache, costing
/// Theta(|V|) I/Os once ranks exceed M.
std::vector<VertexId> bfs_schedule(const Cdag& cdag);

/// Uniformly random topological order (Kahn's algorithm with random
/// tie-breaking). Works on any DAG, not just G_r.
std::vector<VertexId> random_topological_schedule(const Graph& graph,
                                                  std::uint64_t seed);

}  // namespace pathrouting::schedule
