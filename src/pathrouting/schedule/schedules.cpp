#include "pathrouting/schedule/schedules.hpp"

#include <algorithm>

#include "pathrouting/support/prng.hpp"

namespace pathrouting::schedule {

namespace {

using bilinear::Side;

void dfs_visit(const Cdag& cdag, int t, std::uint64_t prefix,
               std::vector<VertexId>& order) {
  const cdag::Layout& layout = cdag.layout();
  const int r = layout.r();
  if (t == r) {
    order.push_back(layout.product(prefix));
    return;
  }
  const std::uint64_t b = static_cast<std::uint64_t>(layout.b());
  const std::uint64_t child_positions = layout.pow_a()(r - t - 1);
  for (std::uint64_t q = 0; q < b; ++q) {
    const std::uint64_t child = prefix * b + q;
    // Encode both operands of child q, then solve it recursively.
    for (const Side side : {Side::A, Side::B}) {
      for (std::uint64_t p = 0; p < child_positions; ++p) {
        order.push_back(layout.enc(side, t + 1, child, p));
      }
    }
    dfs_visit(cdag, t + 1, child, order);
  }
  // All children decoded their sub-results; combine them.
  const std::uint64_t positions = layout.pow_a()(r - t);
  for (std::uint64_t p = 0; p < positions; ++p) {
    order.push_back(layout.dec(r - t, prefix, p));
  }
}

}  // namespace

std::vector<VertexId> dfs_schedule(const Cdag& cdag) {
  std::vector<VertexId> order;
  order.reserve(cdag.graph().num_vertices() -
                2 * cdag.layout().inputs_per_side());
  dfs_visit(cdag, 0, 0, order);
  return order;
}

std::vector<VertexId> bfs_schedule(const Cdag& cdag) {
  const cdag::Layout& layout = cdag.layout();
  const int r = layout.r();
  std::vector<VertexId> order;
  order.reserve(cdag.graph().num_vertices() - 2 * layout.inputs_per_side());
  for (int t = 1; t <= r; ++t) {
    for (const Side side : {Side::A, Side::B}) {
      const std::uint64_t num_q = layout.pow_b()(t);
      const std::uint64_t num_p = layout.pow_a()(r - t);
      for (std::uint64_t q = 0; q < num_q; ++q) {
        for (std::uint64_t p = 0; p < num_p; ++p) {
          order.push_back(layout.enc(side, t, q, p));
        }
      }
    }
  }
  for (int t = 0; t <= r; ++t) {
    const std::uint64_t num_q = layout.pow_b()(r - t);
    const std::uint64_t num_p = layout.pow_a()(t);
    for (std::uint64_t q = 0; q < num_q; ++q) {
      for (std::uint64_t p = 0; p < num_p; ++p) {
        order.push_back(layout.dec(t, q, p));
      }
    }
  }
  return order;
}

std::vector<VertexId> random_topological_schedule(const Graph& graph,
                                                  std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  const VertexId n = graph.num_vertices();
  std::vector<std::uint32_t> missing(n);
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    missing[v] = graph.in_degree(v);
    if (missing[v] == 0) ready.push_back(v);  // inputs seed the frontier
  }
  std::vector<VertexId> order;
  order.reserve(n);
  while (!ready.empty()) {
    // Swap a uniformly random ready vertex to the back and pop it.
    const std::size_t pick =
        static_cast<std::size_t>(rng.below(ready.size()));
    std::swap(ready[pick], ready.back());
    const VertexId v = ready.back();
    ready.pop_back();
    if (graph.in_degree(v) > 0) order.push_back(v);  // inputs are not steps
    for (const VertexId succ : graph.out(v)) {
      if (--missing[succ] == 0) ready.push_back(succ);
    }
  }
  PR_ENSURE_MSG(std::count_if(missing.begin(), missing.end(),
                              [](std::uint32_t m) { return m != 0; }) == 0,
                "graph has a cycle");
  return order;
}

}  // namespace pathrouting::schedule
