#include "pathrouting/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pathrouting::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

/// Arms the flag from the environment before main() so PR_OBS=1 traces
/// a bench run without code changes. set_enabled() can override later.
const bool g_env_armed = [] {
  const char* env = std::getenv("PR_OBS");
  if (env != nullptr && std::strcmp(env, "0") != 0 && *env != '\0') {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

std::uint64_t now_ns() {
  // The epoch is the first instrumented event, so trace timestamps
  // start near zero regardless of process start-up work.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Per-thread span log. Owned by the registry (so records survive
/// thread exit); written only by its owning thread.
struct ThreadLog {
  explicit ThreadLog(int tid) : tid(tid) {}
  int tid;
  int open_depth = 0;
  std::vector<SpanRecord> spans;
};

struct Registry {
  std::mutex mutex;
  std::vector<Counter*> counters;
  std::vector<std::unique_ptr<ThreadLog>> logs;
};

Registry& registry() {
  // Meyers singleton: constructed before the first Counter that
  // registers into it, hence destroyed after every function-local
  // static Counter.
  static Registry reg;
  return reg;
}

ThreadLog& thread_log() {
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.logs.push_back(
        std::make_unique<ThreadLog>(static_cast<int>(reg.logs.size())));
    log = reg.logs.back().get();
  }
  return *log;
}

}  // namespace

void set_enabled(bool on) {
  (void)g_env_armed;  // anchor the env initializer
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

Counter::Counter(const char* name) : name_(name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.counters.push_back(this);
}

std::vector<CounterValue> counters_snapshot() {
  Registry& reg = registry();
  std::vector<CounterValue> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    out.reserve(reg.counters.size());
    for (const Counter* c : reg.counters) {
      out.push_back({c->name(), c->value()});
    }
  }
  // Name order, not registration order: registration order depends on
  // which translation unit's static reached its first call first.
  std::stable_sort(out.begin(), out.end(),
                   [](const CounterValue& a, const CounterValue& b) {
                     return a.name < b.name;
                   });
  // Several instrumentation sites may share one logical counter name
  // (memo.copy_blocks is bumped by both hit-array translators); the
  // snapshot presents the summed total under the single name.
  std::vector<CounterValue> merged;
  for (CounterValue& c : out) {
    if (!merged.empty() && merged.back().name == c.name) {
      merged.back().value += c.value;
    } else {
      merged.push_back(std::move(c));
    }
  }
  return merged;
}

void reset_counters() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (Counter* c : reg.counters) {
    c->value_.store(0, std::memory_order_relaxed);
  }
}

void TraceSpan::open(const char* name) {
  ThreadLog& log = thread_log();
  name_ = name;
  depth_ = log.open_depth++;
  open_ = true;
  start_ns_ = now_ns();
}

void TraceSpan::close() {
  const std::uint64_t end = now_ns();
  ThreadLog& log = thread_log();
  --log.open_depth;
  log.spans.push_back({name_, start_ns_, end - start_ns_, log.tid, depth_});
  open_ = false;
}

std::vector<SpanRecord> spans_snapshot() {
  Registry& reg = registry();
  std::vector<SpanRecord> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& log : reg.logs) {
      out.insert(out.end(), log->spans.begin(), log->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.depth < b.depth;
                   });
  return out;
}

void clear_spans() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& log : reg.logs) log->spans.clear();
}

std::uint64_t max_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

}  // namespace pathrouting::obs
