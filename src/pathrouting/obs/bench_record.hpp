// The one BENCH_*.json record schema.
//
// Before this header each bench binary improvised its own field set —
// bench_routing added threads/engine/commit per record, bench_cdag and
// bench_segment did not — so nothing downstream could parse "any
// baseline". Now every bench (and the metrics exporter, and
// pr_bench_gate's reports) goes through BenchFile:
//
//   {"bench": <name>, "threads": <resolved PR_THREADS>,
//    "records": [{<flat key/value fields>}, ...]}
//
// plus optional extra top-level string fields (committed baselines
// carry a "note" describing the machine). finalize_records() injects
// the standard per-record fields ("threads", "commit") into records
// that lack them, so bench main()s only state what is specific to the
// measurement.
//
// Values keep their exact JSON lexeme: parse_bench_json() followed by
// to_json() reproduces a writer-produced file byte for byte, which is
// what lets test_obs pin the round trip and the gate diff baselines
// textually. The parser accepts the full JSON number grammar
// (committed baselines contain "9e-06") and ignores no fields — an
// unknown record field is data, an unknown top-level non-string is an
// error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pathrouting::obs {

/// One typed record field. `lexeme` is the exact token as it appears
/// (or will appear) in the JSON file; strings store their unescaped
/// content instead and re-escape on output.
struct BenchValue {
  enum class Kind { kString, kInt, kDouble, kBool };

  static BenchValue of(std::string value);
  static BenchValue of(const char* value) { return of(std::string(value)); }
  static BenchValue of(std::uint64_t value);
  static BenchValue of(std::int64_t value);
  static BenchValue of(double value);  // %.6f, the historical format
  static BenchValue of(bool value);

  /// The token to splice into JSON (strings come back quoted+escaped).
  [[nodiscard]] std::string json() const;

  [[nodiscard]] bool is_number() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }
  [[nodiscard]] double as_double() const;

  Kind kind = Kind::kInt;
  std::string lexeme;            // unescaped content for kString
  std::int64_t int_value = 0;    // kInt
  double double_value = 0.0;     // kInt and kDouble
  bool bool_value = false;       // kBool
};

/// A flat, ordered field list. set() replaces an existing key in place
/// (field order is what the writer emits, so replacement keeps files
/// diffable).
class BenchRecord {
 public:
  BenchRecord& set(const std::string& key, BenchValue value);
  BenchRecord& set(const std::string& key, const std::string& value) {
    return set(key, BenchValue::of(value));
  }
  BenchRecord& set(const std::string& key, const char* value) {
    return set(key, BenchValue::of(value));
  }
  BenchRecord& set(const std::string& key, std::uint64_t value) {
    return set(key, BenchValue::of(value));
  }
  BenchRecord& set(const std::string& key, std::uint32_t value) {
    return set(key, BenchValue::of(static_cast<std::uint64_t>(value)));
  }
  BenchRecord& set(const std::string& key, int value) {
    return set(key, BenchValue::of(static_cast<std::int64_t>(value)));
  }
  BenchRecord& set(const std::string& key, double value) {
    return set(key, BenchValue::of(value));
  }
  BenchRecord& set(const std::string& key, bool value) {
    return set(key, BenchValue::of(value));
  }

  [[nodiscard]] const BenchValue* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// The string content of `key`, or `fallback` when absent or not a
  /// string.
  [[nodiscard]] std::string text_or(std::string_view key,
                                    const std::string& fallback) const;
  /// The integer value of `key`, or `fallback` when absent / not kInt.
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;

  [[nodiscard]] const std::vector<std::pair<std::string, BenchValue>>& fields()
      const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, BenchValue>> fields_;
};

/// A whole BENCH_*.json file.
struct BenchFile {
  std::string bench;
  int threads = 0;
  /// Top-level string fields beyond bench/threads/records ("note"),
  /// in file order; round-tripped verbatim.
  std::vector<std::pair<std::string, std::string>> extra;
  std::vector<BenchRecord> records;

  [[nodiscard]] std::string to_json() const;
};

/// Injects the standard per-record fields every baseline must carry —
/// "threads" (the file-level resolution) and "commit" — into records
/// missing them. Benches call this (via bench::BenchJson) right before
/// writing.
void finalize_records(BenchFile& file, const std::string& commit);

struct BenchParseResult {
  std::optional<BenchFile> file;
  std::string error;  // empty on success; includes 1-based line number
};

[[nodiscard]] BenchParseResult parse_bench_json(std::string_view text);

/// Reads and parses `path`; a missing or unreadable file is an error.
[[nodiscard]] BenchParseResult load_bench_file(const std::string& path);

}  // namespace pathrouting::obs
