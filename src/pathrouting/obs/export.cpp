#include "pathrouting/obs/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::obs {

void write_chrome_trace(std::ostream& os) {
  const std::vector<SpanRecord> spans = spans_snapshot();
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    // Microsecond timestamps with nanosecond resolution kept in the
    // fraction (chrome://tracing accepts fractional ts/dur).
    char ts[32];
    char dur[32];
    std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                  static_cast<unsigned long long>(s.start_ns / 1000),
                  static_cast<unsigned long long>(s.start_ns % 1000));
    std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                  static_cast<unsigned long long>(s.duration_ns / 1000),
                  static_cast<unsigned long long>(s.duration_ns % 1000));
    os << "\n  {\"name\": \"" << s.name << "\", \"ph\": \"X\", \"ts\": " << ts
       << ", \"dur\": " << dur << ", \"pid\": 0, \"tid\": " << s.tid
       << ", \"args\": {\"depth\": " << s.depth << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n", path.c_str());
    return false;
  }
  write_chrome_trace(out);
  return out.good();
}

BenchFile counters_as_bench_file(const std::string& bench_name,
                                 const std::string& commit) {
  BenchFile file;
  file.bench = bench_name;
  file.threads = support::parallel::num_threads();
  for (const CounterValue& c : counters_snapshot()) {
    BenchRecord rec;
    rec.set("metric", c.name).set("value", c.value);
    file.records.push_back(std::move(rec));
  }
  finalize_records(file, commit);
  return file;
}

bool write_bench_file(const BenchFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << file.to_json();
  return out.good();
}

bool write_env_outputs(const std::string& metrics_name,
                       const std::string& commit) {
  bool ok = true;
  if (const char* path = std::getenv("PR_TRACE_OUT")) {
    ok = write_chrome_trace_file(path) && ok;
  }
  if (const char* path = std::getenv("PR_METRICS_OUT")) {
    ok = write_bench_file(counters_as_bench_file(metrics_name, commit), path) &&
         ok;
  }
  return ok;
}

}  // namespace pathrouting::obs
