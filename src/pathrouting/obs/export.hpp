// Exporters for the data obs.hpp collects.
//
// Two output shapes, one per consumer:
//
//   * write_chrome_trace — the Trace Event Format ("X" complete
//     events) chrome://tracing and Perfetto load directly; spans keep
//     their logical tid and nesting depth.
//   * counters_as_bench_file — every counter as one record
//     {"metric": <name>, "value": <count>} in the BENCH_*.json schema
//     (bench_record.hpp), so metrics files and bench baselines go
//     through the same parser and the same gate.
//
// write_env_outputs() drives both from the environment (PR_TRACE_OUT,
// PR_METRICS_OUT); bench binaries call it at exit so
//
//   PR_OBS=1 PR_TRACE_OUT=trace.json ./bench_routing --engine=memo
//
// needs no flags. Writing anything with the layer disabled yields
// structurally valid, empty files — silence is never ambiguous.
#pragma once

#include <ostream>
#include <string>

#include "pathrouting/obs/bench_record.hpp"

namespace pathrouting::obs {

/// Chrome Trace Event Format dump of spans_snapshot(): one complete
/// ("X") event per span, timestamps in microseconds, pid 0, the span's
/// logical tid, and the nesting depth under "args".
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to `path`; false (with a stderr warning) when
/// the file cannot be created.
bool write_chrome_trace_file(const std::string& path);

/// counters_snapshot() in the BENCH_*.json schema: one record per
/// counter, name order. `commit` annotates every record (pass
/// bench::git_commit() or "unknown").
[[nodiscard]] BenchFile counters_as_bench_file(const std::string& bench_name,
                                               const std::string& commit);

/// Writes `file.to_json()` to `path`; false on I/O failure.
bool write_bench_file(const BenchFile& file, const std::string& path);

/// Honors PR_TRACE_OUT (chrome trace) and PR_METRICS_OUT (counters as
/// BENCH records named `metrics_name`). Returns false iff a requested
/// write failed.
bool write_env_outputs(const std::string& metrics_name,
                       const std::string& commit);

}  // namespace pathrouting::obs
