#include "pathrouting/obs/bench_record.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pathrouting::obs {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

BenchValue BenchValue::of(std::string value) {
  BenchValue v;
  v.kind = Kind::kString;
  v.lexeme = std::move(value);
  return v;
}

BenchValue BenchValue::of(std::uint64_t value) {
  BenchValue v;
  v.kind = Kind::kInt;
  v.lexeme = std::to_string(value);
  v.int_value = static_cast<std::int64_t>(value);
  v.double_value = static_cast<double>(value);
  return v;
}

BenchValue BenchValue::of(std::int64_t value) {
  BenchValue v;
  v.kind = Kind::kInt;
  v.lexeme = std::to_string(value);
  v.int_value = value;
  v.double_value = static_cast<double>(value);
  return v;
}

BenchValue BenchValue::of(double value) {
  BenchValue v;
  v.kind = Kind::kDouble;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  v.lexeme = buf;
  v.double_value = value;
  return v;
}

BenchValue BenchValue::of(bool value) {
  BenchValue v;
  v.kind = Kind::kBool;
  v.lexeme = value ? "true" : "false";
  v.bool_value = value;
  return v;
}

std::string BenchValue::json() const {
  return kind == Kind::kString ? quote(lexeme) : lexeme;
}

double BenchValue::as_double() const {
  return kind == Kind::kInt ? static_cast<double>(int_value) : double_value;
}

BenchRecord& BenchRecord::set(const std::string& key, BenchValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

const BenchValue* BenchRecord::find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string BenchRecord::text_or(std::string_view key,
                                 const std::string& fallback) const {
  const BenchValue* v = find(key);
  return v != nullptr && v->kind == BenchValue::Kind::kString ? v->lexeme
                                                              : fallback;
}

std::int64_t BenchRecord::int_or(std::string_view key,
                                 std::int64_t fallback) const {
  const BenchValue* v = find(key);
  return v != nullptr && v->kind == BenchValue::Kind::kInt ? v->int_value
                                                           : fallback;
}

std::string BenchFile::to_json() const {
  // Byte-compatible with the historical bench_common.hpp writer, so
  // committed baselines and freshly exported files diff cleanly.
  std::string out = "{\n  \"bench\": " + quote(bench) +
                    ",\n  \"threads\": " + std::to_string(threads) + ",\n";
  for (const auto& [key, value] : extra) {
    out += "  " + quote(key) + ": " + quote(value) + ",\n";
  }
  out += "  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += i == 0 ? "\n    {" : ",\n    {";
    const auto& fields = records[i].fields();
    for (std::size_t j = 0; j < fields.size(); ++j) {
      if (j != 0) out += ", ";
      out += quote(fields[j].first) + ": " + fields[j].second.json();
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void finalize_records(BenchFile& file, const std::string& commit) {
  for (BenchRecord& rec : file.records) {
    if (!rec.has("threads")) rec.set("threads", file.threads);
    if (!rec.has("commit")) rec.set("commit", commit);
  }
}

namespace {

/// Recursive-descent parser for the BenchFile subset of JSON: one
/// top-level object whose "records" member is an array of flat objects
/// holding strings, numbers, and booleans.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  BenchParseResult run() {
    BenchFile file;
    bool saw_records = false;
    skip_ws();
    if (!consume('{')) return error("expected '{'");
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      if (!first && !consume(',')) return error("expected ',' or '}'");
      skip_ws();
      first = false;
      std::string key;
      if (!parse_string(key)) return error("expected member name");
      skip_ws();
      if (!consume(':')) return error("expected ':'");
      skip_ws();
      if (key == "records") {
        if (!parse_records(file.records)) return error(error_);
        saw_records = true;
      } else if (key == "bench") {
        if (!parse_string(file.bench)) return error("\"bench\" must be a string");
      } else if (key == "threads") {
        BenchValue v;
        if (!parse_scalar(v) || v.kind != BenchValue::Kind::kInt) {
          return error("\"threads\" must be an integer");
        }
        file.threads = static_cast<int>(v.int_value);
      } else {
        // Unknown top-level members are annotations ("note"); only
        // strings round-trip, anything else is a schema violation.
        std::string value;
        if (!parse_string(value)) {
          return error("top-level \"" + key + "\" must be a string");
        }
        file.extra.emplace_back(key, value);
      }
    }
    skip_ws();
    if (pos_ != text_.size()) return error("trailing content after '}'");
    if (file.bench.empty()) return error("missing \"bench\" member");
    if (!saw_records) return error("missing \"records\" member");
    return {std::move(file), ""};
  }

 private:
  BenchParseResult error(const std::string& msg) {
    const std::size_t line =
        1 + static_cast<std::size_t>(
                std::count(text_.begin(),
                           text_.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos_, text_.size())),
                           '\n'));
    return {std::nullopt, "line " + std::to_string(line) + ": " + msg};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_scalar(BenchValue& out) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = BenchValue::of(std::move(s));
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = BenchValue::of(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = BenchValue::of(false);
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return false;
  }

  bool parse_number(BenchValue& out) {
    const std::size_t start = pos_;
    bool integral = true;
    consume('-');
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    if (lexeme.empty() || lexeme == "-") return false;
    BenchValue v;
    v.lexeme = lexeme;  // exact token: re-serialization is byte-stable
    if (integral) {
      v.kind = BenchValue::Kind::kInt;
      v.int_value = std::strtoll(lexeme.c_str(), nullptr, 10);
      v.double_value = static_cast<double>(v.int_value);
    } else {
      v.kind = BenchValue::Kind::kDouble;
      v.double_value = std::strtod(lexeme.c_str(), nullptr);
    }
    out = std::move(v);
    return true;
  }

  bool parse_records(std::vector<BenchRecord>& out) {
    if (!consume('[')) return set_error("expected '[' after \"records\"");
    bool first = true;
    while (true) {
      skip_ws();
      if (consume(']')) return true;
      if (!first && !consume(',')) return set_error("expected ',' or ']'");
      skip_ws();
      first = false;
      BenchRecord rec;
      if (!parse_record(rec)) return false;
      out.push_back(std::move(rec));
    }
  }

  bool parse_record(BenchRecord& out) {
    if (!consume('{')) return set_error("expected '{' for a record");
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) return true;
      if (!first && !consume(',')) return set_error("expected ',' or '}'");
      skip_ws();
      first = false;
      std::string key;
      if (!parse_string(key)) return set_error("expected record field name");
      skip_ws();
      if (!consume(':')) return set_error("expected ':'");
      skip_ws();
      BenchValue value;
      if (!parse_scalar(value)) {
        return set_error("record field \"" + key + "\" must be a scalar");
      }
      out.set(key, std::move(value));
    }
  }

  bool set_error(const std::string& msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

BenchParseResult parse_bench_json(std::string_view text) {
  return Parser(text).run();
}

BenchParseResult load_bench_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {std::nullopt, "cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  BenchParseResult result = parse_bench_json(buf.str());
  if (!result.file.has_value()) result.error = path + ": " + result.error;
  return result;
}

}  // namespace pathrouting::obs
