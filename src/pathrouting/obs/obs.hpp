// Zero-overhead-when-disabled tracing and metrics.
//
// The routing verifiers are the product: their counts are correctness
// claims and their runtimes are the ROADMAP's headline numbers. This
// layer makes both observable without perturbing either:
//
//   * Counter — a named monotonic counter. add() is a relaxed atomic
//     fetch_add behind one branch on the global enabled flag; with the
//     layer disabled (the default) the branch is the entire cost and
//     no memory is touched. Relaxed integer addition is exactly
//     commutative, so — like support/parallel's HitCounter — totals
//     are bit-identical at any PR_THREADS.
//   * TraceSpan — an RAII wall-clock span. Disabled, the constructor
//     is one branch: no clock read, no thread-local access, and no
//     allocation (test_obs proves this with a counting allocator).
//     Enabled, completed spans land in a per-thread log (no
//     cross-thread writes on the hot path) with the nesting depth
//     recorded at open time.
//
// Aggregation is deterministic: counters_snapshot() orders by name and
// spans_snapshot() by (thread id, start, depth), where thread ids are
// assigned in registration order under a lock — never from the OS
// thread id. Snapshots must be taken between parallel regions (the
// same contract as HitCounter::take); support/parallel joins before
// every for_chunks return, so any point after a verifier call is safe.
//
// Enabling: set PR_OBS=1 in the environment, or call set_enabled(true)
// (tests and the bench gate do). exporters for the collected data live
// in obs/export.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pathrouting::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when the observability layer records anything. Reads one
/// relaxed atomic bool — this is the only cost instrumentation adds to
/// a disabled hot path.
inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Programmatic switch (overrides the PR_OBS environment default).
void set_enabled(bool on);

/// A named monotonic counter. Instances register themselves on
/// construction and are expected to be function-local statics at the
/// instrumentation site (so each name registers exactly once):
///
///   static obs::Counter hits("routing.chains_enumerated");
///   hits.add(counts.num_chains);
///
/// `name` must outlive the counter (string literals do).
class Counter {
 public:
  explicit Counter(const char* name);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend void reset_counters();
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// All registered counters ordered by name — the deterministic
/// aggregation order every exporter uses. Counters sharing a name
/// (several instrumentation sites, one logical metric) are merged by
/// summing. Zero-valued counters are included so a metrics file
/// always has the full schema.
[[nodiscard]] std::vector<CounterValue> counters_snapshot();

/// Zeroes every registered counter (gate and tests isolate runs).
void reset_counters();

/// RAII trace span. Records nothing (and allocates nothing) while the
/// layer is disabled; `name` must be a string literal or otherwise
/// outlive the final snapshot.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!enabled()) return;
    open(name);
  }
  ~TraceSpan() {
    if (open_) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* name);
  void close();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool open_ = false;
};

/// A completed span. Times are nanoseconds on the steady clock since
/// the process-wide trace epoch (first instrumented event).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int tid = 0;    // registration-ordered logical thread id
  int depth = 0;  // open spans on the same thread at open time
};

/// Completed spans of every thread, ordered by (tid, start_ns, depth).
/// Call between parallel regions only (see the header comment).
[[nodiscard]] std::vector<SpanRecord> spans_snapshot();

/// Drops all completed spans (open spans are unaffected).
void clear_spans();

/// Peak resident set size of the process in bytes (getrusage
/// ru_maxrss; 0 on platforms without it). Monotonic over the process
/// lifetime, so a bench record that should bound a workload's memory
/// must be stamped right after that workload and before any larger
/// one. Benches store it as the standard record field
/// "max_rss_bytes"; pr_bench_gate treats that field as run-dependent
/// (never compared against a baseline).
[[nodiscard]] std::uint64_t max_rss_bytes();

}  // namespace pathrouting::obs
