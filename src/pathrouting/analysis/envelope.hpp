// Symbolic overflow envelopes for the certificate bound formulas.
//
// Every engine in the repo evaluates the Lemma-3 / Theorem-2
// prefix-product formulas and the Claim-1 decode formulas in wrap-exact
// uint64 arithmetic ("exact incl. wraparound"): at small k the counts
// are the paper's true integers, and past some rank each quantity
// silently wraps 2^64 while staying bit-identical across engines. This
// analyzer derives, per catalog algorithm and per certificate quantity,
// the EXACT first rank k at which that happens — without running any
// engine — by re-evaluating the same formula DAGs in a two-track
// arithmetic:
//
//   * Wrapped  — the value mod 2^64 (what the engines report) plus a
//     saturation flag meaning "the exact integer is >= 2^64". The flag
//     composes exactly under + and * (a product wraps iff a factor had
//     wrapped and the other is nonzero, or the 128-bit product of the
//     residues overflows), so the low word stays bit-identical to the
//     engines while wrap detection stays exact.
//   * a saturating 128-bit maximum track for the max-hit quantities,
//     whose candidate sets (prefix-product classes of Fact-1 recursion
//     words) the engines scan: the largest EXACT candidate at word
//     length t factorizes to (max_d M[d])^t per side, and the decoding
//     candidates (P_A + P_B) keep a small Pareto frontier of exact
//     (P_A, P_B) pairs. Some candidate wraps iff the exact maximum
//     does, so the first-wrap rank of a max quantity is exact even far
//     beyond the rank where materializing the class sets is feasible.
//
// The derived envelopes are machine-checkable facts (audit rule
// analysis.k-envelope): check_envelopes() replays the engines' own
// closed-form accessors at the boundary ranks and the constant-memory
// implicit verifier at small ranks and reports any divergence as
// audit::Diagnostics. CertificateService annotates every served
// certificate with its kind's envelope (wrap_k / exact fields of the
// line protocol).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"
#include "pathrouting/bilinear/bilinear.hpp"

namespace pathrouting::routing {
class MemoRoutingEngine;
}  // namespace pathrouting::routing

namespace pathrouting::analysis {

/// An exact nonnegative integer tracked as (value mod 2^64, did it
/// reach 2^64). `low` is bit-identical to the engines' uint64
/// arithmetic; `wrapped` is exact under wrap_add / wrap_mul.
struct Wrapped {
  std::uint64_t low = 0;
  bool wrapped = false;

  friend bool operator==(const Wrapped&, const Wrapped&) = default;
  /// Deterministic ordering for class-set keys (low, then wrapped) —
  /// NOT a numeric order once wrapped.
  friend auto operator<=>(const Wrapped&, const Wrapped&) = default;
};

[[nodiscard]] Wrapped wrap_add(Wrapped x, Wrapped y);
[[nodiscard]] Wrapped wrap_mul(Wrapped x, Wrapped y);
[[nodiscard]] Wrapped wrap_pow(std::uint64_t base, int exp);

/// Machine-counter envelopes: the same two-track arithmetic applied to
/// the simulated distributed machine's lifetime counters. Unlike the
/// certificate engines, parallel::Machine does NOT wrap — its
/// checked_add aborts at 2^64 — so here `wrapped` marks the problem
/// sizes a sweep must not cross, and `low` is bit-identical to the
/// counters the machine reports everywhere below that frontier
/// (audit rule machine.superstep-conservation ties the counters to the
/// per-superstep log; these forms tie them to the schedule).
///
/// SUMMA on a grid x grid torus with nb = n/grid block rows: each of
/// the n/panel panel supersteps moves 2*grid*(grid-1) slices of
/// nb*panel words, so total_words = 2*grid^2*(grid-1)*nb^2, and the
/// per-superstep max traffic is 4 slices for grid >= 3 (a mid-ring
/// processor sends and receives one slice in each of its two rings)
/// and 2 for grid = 2, so bandwidth = 4*grid*nb^2 (resp. 2*grid*nb^2);
/// both are 0 for grid = 1 (no ring hops).
[[nodiscard]] Wrapped machine_summa_total_words(std::uint64_t grid,
                                                std::uint64_t nb);
[[nodiscard]] Wrapped machine_summa_bandwidth(std::uint64_t grid,
                                              std::uint64_t nb);

/// One level of the Strassen-like distribution over b products with
/// half x half operand quadrants: phase 1 broadcasts 2*(b-1)*half^2
/// words and phase 3 gathers (b-1)*half^2, so
/// total_words = 3*(b-1)*half^2.
[[nodiscard]] Wrapped machine_strassen_total_words(std::uint64_t b,
                                                   std::uint64_t half);

/// The envelope of one certificate quantity: its engine-identical
/// values per rank plus the exact first rank where the underlying
/// exact integer reaches 2^64.
struct QuantityEnvelope {
  std::string name;  // e.g. "chain.num_chains" (kind prefix + field)

  /// Smallest k with an exact value >= 2^64; 0 = no wrap found for any
  /// k <= wrap_scan_kmax. All modeled quantities grow monotonically in
  /// k, so the quantity is exact for k < first_wrap_k and wrapped (the
  /// engines report only the low 64 bits) from first_wrap_k on.
  int first_wrap_k = 0;
  int wrap_scan_kmax = 0;

  /// low[k-1] = the engines' uint64 value at rank k, for
  /// k = 1..value_kmax (max-hit quantities materialize prefix-product
  /// class sets, so their value depth may stop short of the wrap scan).
  int value_kmax = 0;
  std::vector<std::uint64_t> low;

  [[nodiscard]] std::uint64_t low_at(int k) const;
  [[nodiscard]] bool wrapped_at(int k) const {
    return first_wrap_k > 0 && k >= first_wrap_k;
  }
};

struct EnvelopeOptions {
  /// Depth of the exact first-wrap scan (cheap: closed forms and the
  /// Pareto maximum track only). Every catalog quantity wraps by
  /// k <= 64 (the slowest grower, the Lemma-3 bound 2*n0^k with
  /// n0 = 2, wraps at k = 63), so the default finds every boundary.
  int wrap_scan_kmax = 72;
  /// Depth of the engine-identical value track for the closed-form
  /// ("scalar") quantities.
  int value_kmax = 72;
  /// Depth of the value track for the max-hit quantities, which walk
  /// the Fact-1 digit-state class sets like the implicit engine does.
  int stats_value_kmax = 12;
  /// Class-set ceiling for the max-hit value track; when a level
  /// exceeds it the value depth stops there (the wrap scan is
  /// unaffected — it never materializes classes).
  std::size_t max_classes = std::size_t{1} << 16;
};

/// Per-algorithm envelopes. Quantity names are "<kind>.<field>":
///   chain.num_chains  chain.total_hits  chain.l3_bound  chain.l3_max
///   full.t2_paths     full.t2_bound     full.t2_max     full.t2_meta
///   decode.num_paths  decode.total_hits decode.bound    decode.max
/// (decode.* only when the base decoding graph is connected). The
/// max-hit quantities model the whole-graph view (r = k, prefix 0) —
/// exactly what the certificate service and the golden corpus compute.
struct AlgorithmEnvelopes {
  std::string algorithm;
  bool has_decode = false;
  std::vector<QuantityEnvelope> quantities;

  [[nodiscard]] const QuantityEnvelope* find(std::string_view name) const;
  /// Smallest positive first_wrap_k over quantities whose name starts
  /// with `kind_prefix` ("chain." / "full." / "decode."); 0 = none of
  /// them wraps within its scan depth.
  [[nodiscard]] int first_wrap_for_kind(std::string_view kind_prefix) const;
};

[[nodiscard]] AlgorithmEnvelopes compute_envelopes(
    const bilinear::BilinearAlgorithm& alg, const EnvelopeOptions& options = {});

struct EnvelopeCheckOptions {
  /// Compare the closed-form quantities against the engine's
  /// expected_* accessors for k = 1..scalar_kmax and around each
  /// first-wrap boundary (the accessors are pure arithmetic, so any
  /// rank is cheap).
  int scalar_kmax = 24;
  int boundary_window = 2;
  /// Compare every quantity (max-hit ones included) against the
  /// constant-memory implicit verifier at k = 1..stats_kmax.
  int stats_kmax = 3;
};

/// Cross-checks `envelopes` against the memo/implicit engines of the
/// same algorithm, reporting divergences under the audit rule
/// analysis.k-envelope. The engine must be built from the algorithm
/// the envelopes were computed for.
[[nodiscard]] audit::AuditReport check_envelopes(
    const AlgorithmEnvelopes& envelopes,
    const routing::MemoRoutingEngine& engine,
    const EnvelopeCheckOptions& options = {});

}  // namespace pathrouting::analysis
