#include "pathrouting/analysis/static_lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <iomanip>
#include <set>
#include <sstream>

#include "pathrouting/support/digest.hpp"

namespace pathrouting::analysis {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

struct Token {
  enum class Kind : std::uint8_t { kIdent, kNumber, kPunct, kLiteral };
  Kind kind = Kind::kPunct;
  std::string text;  // empty for string/char literals
  int line = 1;
};

struct Lexed {
  std::vector<Token> tokens;
  /// line -> rules allowed by a `pr-static: allow(...)` comment there.
  std::map<int, std::set<std::string>> allows;
  std::vector<std::string> lines;  // lines[i] = source line i+1
};

/// Registers every `pr-static: allow(r1, r2, ...)` occurrence inside a
/// comment, at the line the directive starts on.
void record_allows(std::string_view comment, int first_line,
                   std::map<int, std::set<std::string>>& allows) {
  constexpr std::string_view kDirective = "pr-static: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kDirective, pos)) != std::string_view::npos) {
    const int line =
        first_line +
        static_cast<int>(std::count(comment.begin(),
                                    comment.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
    pos += kDirective.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string_view list = comment.substr(pos, close - pos);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view rule = trim(list.substr(0, comma));
      if (!rule.empty()) allows[line].emplace(rule);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
    pos = close + 1;
  }
}

/// Purely lexical scan: strips comments (recording allow directives),
/// string/char/raw-string literals, and preprocessor lines; emits
/// identifier / number / punctuation tokens with their line numbers.
Lexed lex(std::string_view text) {
  Lexed out;
  {
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t nl = text.find('\n', start);
      if (nl == std::string_view::npos) {
        out.lines.emplace_back(text.substr(start));
        break;
      }
      out.lines.emplace_back(text.substr(start, nl - start));
      start = nl + 1;
    }
  }

  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  const auto advance = [&](std::size_t n) {
    for (std::size_t j = 0; j < n && i < text.size(); ++j, ++i) {
      if (text[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor line (with backslash continuations).
      while (i < text.size()) {
        const std::size_t nl = text.find('\n', i);
        if (nl == std::string_view::npos) {
          i = text.size();
          break;
        }
        std::size_t back = nl;
        while (back > i && (text[back - 1] == '\r' || text[back - 1] == ' ' ||
                            text[back - 1] == '\t')) {
          --back;
        }
        const bool continued = back > i && text[back - 1] == '\\';
        advance(nl + 1 - i);
        if (!continued) break;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const std::size_t nl = text.find('\n', i);
      const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
      record_allows(text.substr(i, end - i), line, out.allows);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t close = text.find("*/", i + 2);
      const std::size_t end =
          close == std::string_view::npos ? text.size() : close + 2;
      record_allows(text.substr(i, end - i), line, out.allows);
      advance(end - i);
      continue;
    }
    if (c == '"') {
      // Raw string? The just-lexed token must be an adjacent encoding
      // prefix ending in R.
      const bool raw = !out.tokens.empty() &&
                       out.tokens.back().kind == Token::Kind::kIdent &&
                       out.tokens.back().text.size() <= 3 &&
                       out.tokens.back().text.back() == 'R' &&
                       i > 0 && is_ident_char(text[i - 1]);
      if (raw) {
        out.tokens.pop_back();
        const std::size_t paren = text.find('(', i + 1);
        if (paren == std::string_view::npos) {
          advance(text.size() - i);
          continue;
        }
        const std::string closer =
            ")" + std::string(text.substr(i + 1, paren - i - 1)) + "\"";
        const std::size_t close = text.find(closer, paren + 1);
        const std::size_t end = close == std::string_view::npos
                                    ? text.size()
                                    : close + closer.size();
        out.tokens.push_back({Token::Kind::kLiteral, "", line});
        advance(end - i);
        continue;
      }
      out.tokens.push_back({Token::Kind::kLiteral, "", line});
      advance(1);
      while (i < text.size() && text[i] != '"') {
        advance(text[i] == '\\' && i + 1 < text.size() ? 2 : 1);
      }
      advance(1);
      continue;
    }
    if (c == '\'') {
      out.tokens.push_back({Token::Kind::kLiteral, "", line});
      advance(1);
      while (i < text.size() && text[i] != '\'') {
        advance(text[i] == '\\' && i + 1 < text.size() ? 2 : 1);
      }
      advance(1);
      continue;
    }
    if (is_ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      out.tokens.push_back(
          {Token::Kind::kIdent, std::string(text.substr(i, end - i)), line});
      advance(end - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < text.size() &&
             (is_ident_char(text[end]) || text[end] == '.' ||
              text[end] == '\'' ||
              ((text[end] == '+' || text[end] == '-') && end > i &&
               (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                text[end - 1] == 'p' || text[end - 1] == 'P')))) {
        ++end;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, std::string(text.substr(i, end - i)), line});
      advance(end - i);
      continue;
    }
    // Punctuation; a few two-char tokens the rules key on stay fused.
    static constexpr std::array<std::string_view, 6> kTwoChar = {
        "::", "->", "+=", "-=", "*=", "/="};
    std::string tok(1, c);
    if (i + 1 < text.size()) {
      const std::string_view two = text.substr(i, 2);
      for (const std::string_view cand : kTwoChar) {
        if (two == cand) {
          tok = std::string(two);
          break;
        }
      }
    }
    out.tokens.push_back({Token::Kind::kPunct, tok, line});
    advance(tok.size());
  }
  return out;
}

const std::set<std::string, std::less<>> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
const std::set<std::string, std::less<>> kOrderedTypes = {"map", "set",
                                                          "multimap",
                                                          "multiset"};
const std::set<std::string, std::less<>> kIterFns = {"begin", "cbegin",
                                                     "rbegin", "end",
                                                     "cend",  "rend"};
const std::set<std::string, std::less<>> kDeclSkip = {"const", "&", "*", "&&"};

bool token_is(const std::vector<Token>& toks, std::size_t i,
              std::string_view text) {
  return i < toks.size() && toks[i].text == text;
}

/// True when the identifier at `i` is a plain or std:: reference — not a
/// member access (x.rand) and not another namespace's (mylib::rand).
bool plain_or_std(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") return i >= 2 && toks[i - 2].text == "std";
  return true;
}

/// Index just past a balanced <...> starting at `open` (toks[open] must
/// be "<"); toks.size() when unbalanced.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (toks[j].text == ";") break;  // statement end: not template args
  }
  return toks.size();
}

/// Names declared with a type in `type_names` (declarations, members,
/// parameters): `type<args...>? [const&*]* name`.
std::set<std::string, std::less<>> declared_names(
    const std::vector<Token>& toks,
    const std::set<std::string, std::less<>>& type_names,
    bool has_template_args) {
  std::set<std::string, std::less<>> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !type_names.contains(toks[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    if (has_template_args) {
      if (!token_is(toks, j, "<")) continue;
      j = skip_template_args(toks, j);
    }
    while (j < toks.size() && kDeclSkip.contains(toks[j].text)) ++j;
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

void add_finding(std::vector<LintFinding>& out, const Lexed& lexed,
                 std::string rule, int line, std::string message) {
  LintFinding f;
  f.rule = std::move(rule);
  f.file = "";  // filled by scan_source
  f.line = line;
  f.message = std::move(message);
  if (line >= 1 && line <= static_cast<int>(lexed.lines.size())) {
    f.source_line = lexed.lines[static_cast<std::size_t>(line) - 1];
  }
  out.push_back(std::move(f));
}

void rule_unordered_iteration(const Lexed& lexed,
                              std::vector<LintFinding>& out) {
  const auto& toks = lexed.tokens;
  const auto tracked = declared_names(toks, kUnorderedTypes, true);
  if (tracked.empty()) return;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i].kind != Token::Kind::kIdent ||
        !token_is(toks, i + 1, "(")) {
      continue;
    }
    // Walk the for header.
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = toks.size();
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && toks[j].text == ":" && colon == 0) colon = j;
    }
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind != Token::Kind::kIdent || !tracked.contains(toks[j].text)) {
        continue;
      }
      const bool ranged = colon != 0 && j > colon;
      const bool iter_call = j + 2 < close &&
                             (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
                             kIterFns.contains(toks[j + 2].text);
      if (ranged || iter_call) {
        add_finding(out, lexed, "static.unordered-iteration", toks[j].line,
                    "iteration over unordered container '" + toks[j].text +
                        "' — visit order is implementation-defined and can "
                        "leak into results");
      }
    }
  }
}

void rule_float_accumulation(const Lexed& lexed, std::vector<LintFinding>& out) {
  const auto& toks = lexed.tokens;
  const auto tracked =
      declared_names(toks, {"float", "double"}, /*has_template_args=*/false);
  if (tracked.empty()) return;
  static const std::set<std::string, std::less<>> kCompound = {"+=", "-=", "*=",
                                                               "/="};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent && tracked.contains(toks[i].text) &&
        kCompound.contains(toks[i + 1].text)) {
      add_finding(out, lexed, "static.float-accumulation", toks[i].line,
                  "floating-point accumulation into '" + toks[i].text +
                      "' — FP reduction order changes the result; counted "
                      "paths must stay integral");
    }
  }
}

void rule_nondeterminism_source(const Lexed& lexed,
                                std::vector<LintFinding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !plain_or_std(toks, i)) continue;
    const std::string& name = toks[i].text;
    const bool call = token_is(toks, i + 1, "(");
    std::string what;
    if ((name == "rand" || name == "srand" || name == "drand48" ||
         name == "lrand48") &&
        call) {
      what = name + "()";
    } else if (name == "random_device" || name == "system_clock") {
      what = "std::" + name;
    } else if (name == "time" && call && i + 3 < toks.size() &&
               (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" ||
                toks[i + 2].text == "0") &&
               toks[i + 3].text == ")") {
      what = "time(" + toks[i + 2].text + ")";
    }
    if (!what.empty()) {
      add_finding(out, lexed, "static.nondeterminism-source", toks[i].line,
                  "ambient entropy source " + what +
                      " — results must be reproducible run-to-run");
    }
  }
}

void rule_pointer_keyed_order(const Lexed& lexed,
                              std::vector<LintFinding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        !kOrderedTypes.contains(toks[i].text) || toks[i - 1].text != "::" ||
        toks[i - 2].text != "std" || !token_is(toks, i + 1, "<")) {
      continue;
    }
    // Last token of the first template argument.
    int depth = 0;
    std::size_t last = 0;
    bool first_arg = true;
    for (std::size_t j = i + 1; j < toks.size() && first_arg; ++j) {
      if (toks[j].text == "<") {
        ++depth;
        continue;
      }
      if (toks[j].text == ">") {
        --depth;
        if (depth == 0) first_arg = false;
        continue;
      }
      if (depth == 1 && toks[j].text == ",") {
        first_arg = false;
        continue;
      }
      if (toks[j].text == ";") break;
      last = j;
    }
    if (last != 0 && toks[last].text == "*") {
      add_finding(out, lexed, "static.pointer-keyed-order", toks[i].line,
                  "std::" + toks[i].text +
                      " keyed by a raw pointer — address order varies per "
                      "run (ASLR, allocator)");
    }
  }
}

void rule_raw_thread(const Lexed& lexed, std::vector<LintFinding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = toks[i].text;
    if (name == "pthread_create" && plain_or_std(toks, i)) {
      add_finding(out, lexed, "static.raw-thread", toks[i].line,
                  "pthread_create bypasses support/parallel — work outside "
                  "the pool escapes the ordered-reduction contract");
      continue;
    }
    if ((name == "thread" || name == "jthread" || name == "async") &&
        i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
        !token_is(toks, i + 1, "::")) {
      add_finding(out, lexed, "static.raw-thread", toks[i].line,
                  "raw std::" + name +
                      " bypasses support/parallel — spawn work through the "
                      "deterministic pool instead");
    }
  }
}

}  // namespace

std::vector<LintFinding> scan_source(std::string_view file_label,
                                     std::string_view text) {
  const Lexed lexed = lex(text);
  std::vector<LintFinding> findings;
  rule_unordered_iteration(lexed, findings);
  rule_float_accumulation(lexed, findings);
  rule_nondeterminism_source(lexed, findings);
  rule_pointer_keyed_order(lexed, findings);
  rule_raw_thread(lexed, findings);

  const auto allowed = [&](const LintFinding& f) {
    for (const int line : {f.line, f.line - 1}) {
      const auto it = lexed.allows.find(line);
      if (it != lexed.allows.end() && it->second.contains(f.rule)) return true;
    }
    return false;
  };
  std::erase_if(findings, allowed);

  for (LintFinding& f : findings) f.file = std::string(file_label);
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& x, const LintFinding& y) {
              return std::tie(x.line, x.rule, x.message) <
                     std::tie(y.line, y.rule, y.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());
  return findings;
}

std::string SuppressionBaseline::key(const LintFinding& finding) {
  std::ostringstream os;
  os << finding.rule << '|' << finding.file << '|' << std::hex
     << std::setfill('0') << std::setw(16)
     << support::fnv1a_text(trim(finding.source_line));
  return os.str();
}

SuppressionBaseline SuppressionBaseline::parse(
    std::string_view text, std::vector<std::string>* errors) {
  SuppressionBaseline baseline;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream fields{std::string(stripped)};
    int count = 0;
    std::string key;
    if (!(fields >> count >> key) || count <= 0 ||
        std::count(key.begin(), key.end(), '|') != 2) {
      if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(lineno) +
                          ": expected '<count> <rule|file|hash>', got '" +
                          std::string(stripped) + "'");
      }
      continue;
    }
    baseline.entries_[key] += count;
  }
  return baseline;
}

SuppressionBaseline SuppressionBaseline::from_findings(
    const std::vector<LintFinding>& findings) {
  SuppressionBaseline baseline;
  for (const LintFinding& f : findings) ++baseline.entries_[key(f)];
  return baseline;
}

std::string SuppressionBaseline::serialize() const {
  std::ostringstream os;
  os << "# pr_static suppression baseline: '<count> <rule|file|hash>' per "
        "line.\n"
     << "# Regenerate with: pr_static --write-baseline <this file>\n";
  for (const auto& [key, count] : entries_) {
    os << count << ' ' << key << '\n';
  }
  return os.str();
}

SuppressionBaseline::FilterResult SuppressionBaseline::apply(
    const std::vector<LintFinding>& findings) const {
  FilterResult result;
  std::map<std::string, int> budget = entries_;
  for (const LintFinding& f : findings) {
    const auto it = budget.find(key(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
    } else {
      result.unsuppressed.push_back(f);
    }
  }
  for (const auto& [key, remaining] : budget) {
    if (remaining > 0) result.stale_keys.push_back(key);
  }
  return result;
}

const std::vector<std::string>& lint_rule_ids() {
  static const std::vector<std::string> kIds = {
      "static.unordered-iteration", "static.float-accumulation",
      "static.nondeterminism-source", "static.pointer-keyed-order",
      "static.raw-thread"};
  return kIds;
}

audit::AuditReport lint_report(const std::vector<LintFinding>& findings) {
  audit::AuditReport report;
  for (const std::string& rule : lint_rule_ids()) report.mark_rule_run(rule);
  for (const LintFinding& f : findings) {
    audit::Diagnostic diag;
    diag.rule = f.rule;
    diag.message = f.file + ":" + std::to_string(f.line) + ": " + f.message;
    diag.vertex = static_cast<std::uint64_t>(f.line);
    report.add(diag);
  }
  return report;
}

}  // namespace pathrouting::analysis
