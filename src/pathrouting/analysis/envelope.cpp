#include "pathrouting/analysis/envelope.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "pathrouting/bilinear/analysis.hpp"
#include "pathrouting/cdag/implicit.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"
#include "pathrouting/routing/guaranteed.hpp"
#include "pathrouting/routing/memo_routing.hpp"
#include "pathrouting/support/check.hpp"

namespace pathrouting::analysis {

namespace {

using bilinear::BilinearAlgorithm;
using bilinear::Side;
using u128 = unsigned __int128;

/// Saturation ceiling for the exact maximum track: high enough that a
/// capped value is unambiguously >= 2^64, low enough that sums of two
/// capped values cannot overflow the 128-bit carrier.
constexpr u128 kSatCap = u128{1} << 126;

u128 sat_mul(u128 x, u128 y) {
  if (x == 0 || y == 0) return 0;
  if (x > kSatCap / y) return kSatCap;
  return x * y;
}

/// x >= 2^64 (exact on the saturating track: capped values qualify).
bool reaches_u64(u128 x) { return (x >> 64) != 0; }

/// base^exp on the saturating track, for exp = 0..kmax.
std::vector<u128> sat_pow_table(std::uint64_t base, int kmax) {
  std::vector<u128> pow(static_cast<std::size_t>(kmax) + 1, 1);
  for (int t = 1; t <= kmax; ++t) {
    pow[static_cast<std::size_t>(t)] =
        sat_mul(pow[static_cast<std::size_t>(t) - 1], base);
  }
  return pow;
}

std::vector<Wrapped> wrap_pow_table(std::uint64_t base, int kmax) {
  std::vector<Wrapped> pow(static_cast<std::size_t>(kmax) + 1,
                           Wrapped{1, false});
  for (int t = 1; t <= kmax; ++t) {
    pow[static_cast<std::size_t>(t)] =
        wrap_mul(pow[static_cast<std::size_t>(t) - 1], Wrapped{base, false});
  }
  return pow;
}

/// M_side[q] = #{guaranteed digit pairs (d, e) matched to product q} —
/// the same table the memoized engine builds (memo_routing.cpp).
std::vector<std::uint64_t> matched_pair_counts(const BilinearAlgorithm& alg,
                                               Side side,
                                               const routing::BaseMatching& mu) {
  std::vector<std::uint64_t> m(static_cast<std::size_t>(alg.b()), 0);
  for (int d = 0; d < alg.a(); ++d) {
    for (int e = 0; e < alg.a(); ++e) {
      if (routing::is_guaranteed_digit_pair(alg.n0(), side, d, e)) {
        ++m[static_cast<std::size_t>(mu.product(d, e))];
      }
    }
  }
  return m;
}

/// Trivial (single-coefficient-1) encoding rows per side, as the memo
/// engine derives them for the Theorem-2 meta accounting.
std::vector<std::uint8_t> trivial_row_flags(const BilinearAlgorithm& alg,
                                            Side side) {
  std::vector<std::uint8_t> triv(static_cast<std::size_t>(alg.b()), 0);
  for (int q = 0; q < alg.b(); ++q) {
    triv[static_cast<std::size_t>(q)] =
        bilinear::is_trivial_row(alg, side, q) ? 1 : 0;
  }
  return triv;
}

/// Pareto frontier of the exact (P_A, P_B) prefix-product pairs per
/// word length, kept only to answer "what is the largest exact
/// P_A + P_B" (the decoding-rank candidate of the Lemma-3 scan). The
/// frontier of products of digit values stays tiny for the catalog
/// bases; the ceiling is a correctness guard, not a budget.
std::vector<u128> pareto_sum_max(const std::vector<std::uint64_t>& m_a,
                                 const std::vector<std::uint64_t>& m_b, int b,
                                 int kmax) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> digit_pairs;
  for (int d = 0; d < b; ++d) {
    digit_pairs.emplace(m_a[static_cast<std::size_t>(d)],
                        m_b[static_cast<std::size_t>(d)]);
  }
  std::vector<std::pair<u128, u128>> frontier{{1, 1}};
  std::vector<u128> s_max(static_cast<std::size_t>(kmax) + 1, 2);
  for (int t = 1; t <= kmax; ++t) {
    std::vector<std::pair<u128, u128>> points;
    points.reserve(frontier.size() * digit_pairs.size());
    for (const auto& [pa, pb] : frontier) {
      for (const auto& [da, db] : digit_pairs) {
        points.emplace_back(sat_mul(pa, da), sat_mul(pb, db));
      }
    }
    // Pareto prune: sort by pa desc then pb desc; keep strictly
    // increasing pb (a point survives iff no other dominates it).
    std::sort(points.begin(), points.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second > y.second;
    });
    frontier.clear();
    u128 best_pb = 0;
    bool have = false;
    for (const auto& pt : points) {
      if (!have || pt.second > best_pb) {
        frontier.push_back(pt);
        best_pb = pt.second;
        have = true;
      }
    }
    PR_REQUIRE_MSG(frontier.size() <= (std::size_t{1} << 16),
                   "prefix-product Pareto frontier exploded; the envelope "
                   "analyzer assumes few distinct matched-pair counts");
    u128 best = 0;
    for (const auto& [pa, pb] : frontier) {
      best = std::max(best, pa + pb);  // both <= kSatCap: no overflow
    }
    s_max[static_cast<std::size_t>(t)] = best;
  }
  return s_max;
}

}  // namespace

Wrapped wrap_add(Wrapped x, Wrapped y) {
  Wrapped r;
  r.low = x.low + y.low;
  r.wrapped = x.wrapped || y.wrapped || r.low < x.low;
  return r;
}

Wrapped wrap_mul(Wrapped x, Wrapped y) {
  const bool x_zero = !x.wrapped && x.low == 0;
  const bool y_zero = !y.wrapped && y.low == 0;
  Wrapped r;
  r.low = x.low * y.low;
  if (x_zero || y_zero) return r;  // exact zero annihilates wrap
  r.wrapped = x.wrapped || y.wrapped ||
              (static_cast<u128>(x.low) * static_cast<u128>(y.low)) >> 64 != 0;
  return r;
}

Wrapped wrap_pow(std::uint64_t base, int exp) {
  Wrapped r{1, false};
  for (int t = 0; t < exp; ++t) r = wrap_mul(r, Wrapped{base, false});
  return r;
}

Wrapped machine_summa_total_words(std::uint64_t grid, std::uint64_t nb) {
  if (grid < 2) return {};
  return wrap_mul(
      wrap_mul(Wrapped{2}, wrap_mul(Wrapped{grid}, Wrapped{grid})),
      wrap_mul(Wrapped{grid - 1}, wrap_mul(Wrapped{nb}, Wrapped{nb})));
}

Wrapped machine_summa_bandwidth(std::uint64_t grid, std::uint64_t nb) {
  if (grid < 2) return {};
  const std::uint64_t slices = grid >= 3 ? 4 : 2;
  return wrap_mul(wrap_mul(Wrapped{slices}, Wrapped{grid}),
                  wrap_mul(Wrapped{nb}, Wrapped{nb}));
}

Wrapped machine_strassen_total_words(std::uint64_t b, std::uint64_t half) {
  if (b < 2) return {};
  return wrap_mul(Wrapped{3},
                  wrap_mul(Wrapped{b - 1},
                           wrap_mul(Wrapped{half}, Wrapped{half})));
}

std::uint64_t QuantityEnvelope::low_at(int k) const {
  PR_REQUIRE_MSG(k >= 1 && k <= value_kmax,
                 "envelope value queried outside the analyzed range");
  return low[static_cast<std::size_t>(k) - 1];
}

const QuantityEnvelope* AlgorithmEnvelopes::find(std::string_view name) const {
  for (const QuantityEnvelope& q : quantities) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

int AlgorithmEnvelopes::first_wrap_for_kind(std::string_view kind_prefix) const {
  int best = 0;
  for (const QuantityEnvelope& q : quantities) {
    if (!std::string_view(q.name).starts_with(kind_prefix)) continue;
    if (q.first_wrap_k == 0) continue;
    if (best == 0 || q.first_wrap_k < best) best = q.first_wrap_k;
  }
  return best;
}

AlgorithmEnvelopes compute_envelopes(const BilinearAlgorithm& alg,
                                     const EnvelopeOptions& options) {
  const int n0 = alg.n0();
  const std::uint64_t a = static_cast<std::uint64_t>(alg.a());
  const std::uint64_t b = static_cast<std::uint64_t>(alg.b());
  const int scan_k = options.wrap_scan_kmax;
  const int val_k = std::min(options.value_kmax, scan_k);
  PR_REQUIRE_MSG(scan_k >= 1 && val_k >= 1, "envelope depths must be >= 1");

  const routing::ChainRouter router(alg);
  const std::vector<std::uint64_t> m_a =
      matched_pair_counts(alg, Side::A, router.matching(Side::A));
  const std::vector<std::uint64_t> m_b =
      matched_pair_counts(alg, Side::B, router.matching(Side::B));
  const std::vector<std::uint8_t> triv_a = trivial_row_flags(alg, Side::A);
  const std::vector<std::uint8_t> triv_b = trivial_row_flags(alg, Side::B);

  AlgorithmEnvelopes env;
  env.algorithm = alg.name();
  env.has_decode = bilinear::decoding_components(alg) == 1;

  // Claim-1 D_1 visit tables, as the memo engine derives them.
  std::vector<std::uint64_t> cpint, co;
  std::uint64_t cpint_sum = 0, co_sum = 0;
  int d1_size = 0;
  if (env.has_decode) {
    const routing::DecodeRouter decoder(alg);
    d1_size = decoder.d1_size();
    cpint.assign(static_cast<std::size_t>(b), 0);
    co.assign(static_cast<std::size_t>(a), 0);
    for (int q = 0; q < alg.b(); ++q) {
      for (int e = 0; e < alg.a(); ++e) {
        const std::vector<int>& path = decoder.d1_path(q, e);
        for (std::size_t i = 1; i < path.size(); ++i) {
          auto& table = i % 2 == 1 ? co : cpint;
          ++table[static_cast<std::size_t>(path[i])];
        }
      }
    }
    for (const std::uint64_t c : cpint) cpint_sum += c;
    for (const std::uint64_t c : co) co_sum += c;
  }

  const std::vector<Wrapped> wpow_a = wrap_pow_table(a, scan_k);
  const std::vector<Wrapped> wpow_b = wrap_pow_table(b, scan_k);
  const std::vector<Wrapped> wpow_n0 =
      wrap_pow_table(static_cast<std::uint64_t>(n0), scan_k);

  // One closed-form quantity: engine-identical low words to val_k,
  // exact wrap flags to scan_k.
  const auto scalar = [&](std::string name, const auto& value_at) {
    QuantityEnvelope q;
    q.name = std::move(name);
    q.wrap_scan_kmax = scan_k;
    q.value_kmax = val_k;
    for (int k = 1; k <= scan_k; ++k) {
      const Wrapped v = value_at(k);
      if (k <= val_k) q.low.push_back(v.low);
      if (q.first_wrap_k == 0 && v.wrapped) q.first_wrap_k = k;
    }
    env.quantities.push_back(std::move(q));
  };

  scalar("chain.num_chains", [&](int k) {
    return wrap_mul(Wrapped{2, false}, wrap_pow(a * static_cast<std::uint64_t>(n0), k));
  });
  scalar("chain.total_hits", [&](int k) {
    return wrap_mul(
        wrap_mul(Wrapped{2, false}, wrap_pow(a * static_cast<std::uint64_t>(n0), k)),
        Wrapped{static_cast<std::uint64_t>(2 * k + 2), false});
  });
  scalar("chain.l3_bound", [&](int k) {
    return wrap_mul(Wrapped{2, false}, wpow_n0[static_cast<std::size_t>(k)]);
  });
  scalar("full.t2_paths", [&](int k) {
    return wrap_mul(wrap_mul(Wrapped{2, false}, wpow_a[static_cast<std::size_t>(k)]),
                    wpow_a[static_cast<std::size_t>(k)]);
  });
  scalar("full.t2_bound", [&](int k) {
    return wrap_mul(Wrapped{6, false}, wpow_a[static_cast<std::size_t>(k)]);
  });
  if (env.has_decode) {
    scalar("decode.num_paths", [&](int k) { return wrap_pow(a * b, k); });
    scalar("decode.total_hits", [&](int k) {
      const Wrapped paths = wrap_pow(a * b, k);
      const Wrapped level =
          wrap_mul(wrap_mul(Wrapped{static_cast<std::uint64_t>(k), false},
                            wrap_pow(a * b, k - 1)),
                   Wrapped{cpint_sum + co_sum, false});
      return wrap_add(paths, level);
    });
    scalar("decode.bound", [&](int k) {
      return wrap_mul(Wrapped{static_cast<std::uint64_t>(d1_size), false},
                      wrap_pow(std::max(a, b), k));
    });

    // decode.max: the Claim-1 per-vertex maximum. The candidate set is
    // closed-form (no class walk): the rank-0/rank-k forms and, per
    // interior rank, an independent product term (last path digit x)
    // plus an output term (leading position digit y). Low words need
    // the full (x, y) enumeration — under wrap the maximum of a sum is
    // not the sum of maxima — while the exact wrap flag does decompose
    // into the independent maxima, so the scan depth stays cheap.
    QuantityEnvelope dmax;
    dmax.name = "decode.max";
    dmax.wrap_scan_kmax = scan_k;
    dmax.value_kmax = val_k;
    std::uint64_t cpint_max = 0, co_max = 0;
    for (const std::uint64_t c : cpint) cpint_max = std::max(cpint_max, c);
    for (const std::uint64_t c : co) co_max = std::max(co_max, c);
    const std::vector<u128> spow_a = sat_pow_table(a, scan_k);
    const std::vector<u128> spow_b = sat_pow_table(b, scan_k);
    for (int k = 1; k <= scan_k; ++k) {
      if (k <= val_k) {
        std::uint64_t best = 0;
        for (std::uint64_t x = 0; x < b; ++x) {
          best = std::max(
              best, wrap_mul(Wrapped{a + cpint[x], false},
                             wpow_a[static_cast<std::size_t>(k) - 1])
                        .low);
        }
        for (int t = 1; t < k; ++t) {
          for (std::uint64_t x = 0; x < b; ++x) {
            const Wrapped down =
                wrap_mul(wrap_mul(Wrapped{cpint[x], false},
                                  wpow_b[static_cast<std::size_t>(t)]),
                         wpow_a[static_cast<std::size_t>(k - t) - 1]);
            for (std::uint64_t y = 0; y < a; ++y) {
              const Wrapped up =
                  wrap_mul(wrap_mul(Wrapped{co[y], false},
                                    wpow_b[static_cast<std::size_t>(t) - 1]),
                           wpow_a[static_cast<std::size_t>(k - t)]);
              best = std::max(best, wrap_add(down, up).low);
            }
          }
        }
        for (std::uint64_t y = 0; y < a; ++y) {
          best = std::max(best, wrap_mul(Wrapped{co[y], false},
                                         wpow_b[static_cast<std::size_t>(k) - 1])
                                    .low);
        }
        dmax.low.push_back(best);
      }
      if (dmax.first_wrap_k == 0) {
        u128 exact = sat_mul(a + cpint_max, spow_a[static_cast<std::size_t>(k) - 1]);
        for (int t = 1; t < k; ++t) {
          const u128 down =
              sat_mul(sat_mul(cpint_max, spow_b[static_cast<std::size_t>(t)]),
                      spow_a[static_cast<std::size_t>(k - t) - 1]);
          const u128 up =
              sat_mul(sat_mul(co_max, spow_b[static_cast<std::size_t>(t) - 1]),
                      spow_a[static_cast<std::size_t>(k - t)]);
          exact = std::max(exact, down + up);
        }
        exact = std::max(exact,
                         sat_mul(co_max, spow_b[static_cast<std::size_t>(k) - 1]));
        if (reaches_u64(exact)) dmax.first_wrap_k = k;
      }
    }
    env.quantities.push_back(std::move(dmax));
  }

  // --- Max-hit quantities over the Fact-1 digit-state classes. ---

  // Value track: the same refined class walk as the implicit engine,
  // with keys split by the wrap flag so the class lows stay exactly
  // the engine's class set.
  using ClassKey = std::pair<Wrapped, Wrapped>;
  std::set<std::pair<std::uint64_t, std::uint64_t>> digit_pairs;
  for (std::uint64_t d = 0; d < b; ++d) {
    digit_pairs.emplace(m_a[static_cast<std::size_t>(d)],
                        m_b[static_cast<std::size_t>(d)]);
  }
  std::vector<std::set<ClassKey>> levels;
  levels.push_back({ClassKey{Wrapped{1, false}, Wrapped{1, false}}});
  const int stats_goal = std::min(options.stats_value_kmax, scan_k);
  while (static_cast<int>(levels.size()) - 1 < stats_goal) {
    std::set<ClassKey> next;
    for (const ClassKey& cls : levels.back()) {
      for (const auto& [da, db] : digit_pairs) {
        next.emplace(wrap_mul(cls.first, Wrapped{da, false}),
                     wrap_mul(cls.second, Wrapped{db, false}));
      }
    }
    if (next.size() > options.max_classes) break;
    levels.push_back(std::move(next));
  }
  const int stats_val_k = static_cast<int>(levels.size()) - 1;

  // Exact maximum track: per word length t the largest exact P_side is
  // (max_d M_side[d])^t, and the largest exact P_A + P_B comes from the
  // Pareto frontier.
  std::uint64_t mmax_a = 0, mmax_b = 0;
  for (const std::uint64_t m : m_a) mmax_a = std::max(mmax_a, m);
  for (const std::uint64_t m : m_b) mmax_b = std::max(mmax_b, m);
  const std::vector<u128> a_max = sat_pow_table(mmax_a, scan_k);
  const std::vector<u128> b_max = sat_pow_table(mmax_b, scan_k);
  const std::vector<u128> s_max = pareto_sum_max(m_a, m_b, alg.b(), scan_k);
  const std::vector<u128> n0_pow =
      sat_pow_table(static_cast<std::uint64_t>(n0), scan_k);

  // Largest exact chain hit at rank k: S_max dominates both per-side
  // maxima (P_A <= P_A + P_B), so one sweep over word lengths covers
  // the encoding and decoding candidates alike.
  const auto chain_exact_max = [&](int k) {
    u128 best = 0;
    for (int t = 0; t <= k; ++t) {
      best = std::max(best, sat_mul(s_max[static_cast<std::size_t>(t)],
                                    n0_pow[static_cast<std::size_t>(k - t)]));
    }
    return best;
  };

  const auto max_quantity = [&](std::string name, const auto& low_value_at,
                                const auto& exact_ge_at) {
    QuantityEnvelope q;
    q.name = std::move(name);
    q.wrap_scan_kmax = scan_k;
    q.value_kmax = stats_val_k;
    for (int k = 1; k <= stats_val_k; ++k) q.low.push_back(low_value_at(k));
    for (int k = 1; k <= scan_k && q.first_wrap_k == 0; ++k) {
      if (exact_ge_at(k)) q.first_wrap_k = k;
    }
    env.quantities.push_back(std::move(q));
  };

  // The scan_copy_extremum candidate sweep, scaled by `mult` (1 for
  // Lemma 3, 3*n0^k for Theorem 2): max over encoding ranks of
  // mult * P_side(t) * n0^(k-t) and decoding ranks of
  // mult * (P_A + P_B)(k-t) * n0^t, in wrap arithmetic.
  const auto class_sweep_low = [&](int k, Wrapped mult) {
    std::uint64_t best = 0;
    for (int t = 0; t <= k; ++t) {
      // Words of length t feed the encoding candidates at rank t and —
      // as P_{k - t'} with t' = k - t — the decoding candidates at rank
      // t'; both carry the complementary power n0^(k-t).
      const Wrapped pow = wpow_n0[static_cast<std::size_t>(k - t)];
      for (const ClassKey& cls : levels[static_cast<std::size_t>(t)]) {
        best = std::max(best, wrap_mul(mult, wrap_mul(cls.first, pow)).low);
        best = std::max(best, wrap_mul(mult, wrap_mul(cls.second, pow)).low);
        best = std::max(
            best,
            wrap_mul(mult, wrap_mul(wrap_add(cls.first, cls.second), pow)).low);
      }
    }
    return best;
  };

  max_quantity(
      "chain.l3_max",
      [&](int k) { return class_sweep_low(k, Wrapped{1, false}); },
      [&](int k) { return reaches_u64(chain_exact_max(k)); });
  max_quantity(
      "full.t2_max",
      [&](int k) {
        return class_sweep_low(
            k, wrap_mul(Wrapped{3, false}, wpow_n0[static_cast<std::size_t>(k)]));
      },
      [&](int k) {
        return reaches_u64(
            sat_mul(sat_mul(3, n0_pow[static_cast<std::size_t>(k)]),
                    chain_exact_max(k)));
      });

  // Theorem-2 meta-root hits of the whole-graph view (r = k): per side
  // with a trivial encoding row, mult * n0^k plus the interior forms
  // mult * (P_side(t-1) * M_side[q]) * n0^(k-t) over nontrivial rows q.
  const bool has_triv_a =
      std::find(triv_a.begin(), triv_a.end(), std::uint8_t{1}) != triv_a.end();
  const bool has_triv_b =
      std::find(triv_b.begin(), triv_b.end(), std::uint8_t{1}) != triv_b.end();
  std::uint64_t nontriv_max_a = 0, nontriv_max_b = 0;
  for (std::uint64_t q = 0; q < b; ++q) {
    if (triv_a[q] == 0) nontriv_max_a = std::max(nontriv_max_a, m_a[q]);
    if (triv_b[q] == 0) nontriv_max_b = std::max(nontriv_max_b, m_b[q]);
  }
  const auto meta_low = [&](int k) {
    const Wrapped mult =
        wrap_mul(Wrapped{3, false}, wpow_n0[static_cast<std::size_t>(k)]);
    std::uint64_t best = 0;
    for (const Side side : {Side::A, Side::B}) {
      const bool has_trivial = side == Side::A ? has_triv_a : has_triv_b;
      if (!has_trivial) continue;
      const auto& m = side == Side::A ? m_a : m_b;
      const auto& triv = side == Side::A ? triv_a : triv_b;
      best = std::max(
          best, wrap_mul(mult, wpow_n0[static_cast<std::size_t>(k)]).low);
      for (int t = 1; t < k; ++t) {
        for (std::uint64_t q = 0; q < b; ++q) {
          if (triv[q] != 0) continue;
          for (const ClassKey& cls : levels[static_cast<std::size_t>(t) - 1]) {
            const Wrapped p = side == Side::A ? cls.first : cls.second;
            best = std::max(
                best, wrap_mul(mult, wrap_mul(wrap_mul(p, Wrapped{m[q], false}),
                                              wpow_n0[static_cast<std::size_t>(
                                                  k - t)]))
                          .low);
          }
        }
      }
    }
    return best;
  };
  const auto meta_exact_ge = [&](int k) {
    const u128 mult = sat_mul(3, n0_pow[static_cast<std::size_t>(k)]);
    for (const Side side : {Side::A, Side::B}) {
      const bool has_trivial = side == Side::A ? has_triv_a : has_triv_b;
      if (!has_trivial) continue;
      const auto& p_max = side == Side::A ? a_max : b_max;
      const std::uint64_t nontriv_max =
          side == Side::A ? nontriv_max_a : nontriv_max_b;
      if (reaches_u64(sat_mul(mult, n0_pow[static_cast<std::size_t>(k)]))) {
        return true;
      }
      for (int t = 1; t < k; ++t) {
        const u128 form = sat_mul(
            mult, sat_mul(sat_mul(p_max[static_cast<std::size_t>(t) - 1],
                                  nontriv_max),
                          n0_pow[static_cast<std::size_t>(k - t)]));
        if (reaches_u64(form)) return true;
      }
    }
    return false;
  };
  max_quantity("full.t2_meta", meta_low, meta_exact_ge);

  return env;
}

audit::AuditReport check_envelopes(const AlgorithmEnvelopes& envelopes,
                                   const routing::MemoRoutingEngine& engine,
                                   const EnvelopeCheckOptions& options) {
  audit::AuditReport report;
  report.mark_rule_run("analysis.k-envelope");
  const auto mismatch = [&](const std::string& quantity, int k,
                            std::uint64_t expected, std::uint64_t actual) {
    if (expected == actual) return;
    std::ostringstream os;
    os << envelopes.algorithm << ": envelope value of " << quantity
       << " diverges from the engine at k = " << k;
    audit::Diagnostic diag;
    diag.rule = "analysis.k-envelope";
    diag.message = os.str();
    diag.expected = expected;
    diag.actual = actual;
    diag.has_counts = true;
    report.add(diag);
  };

  if (envelopes.algorithm != engine.algorithm().name()) {
    audit::Diagnostic diag;
    diag.rule = "analysis.k-envelope";
    diag.message = "envelopes for '" + envelopes.algorithm +
                   "' checked against an engine for '" +
                   engine.algorithm().name() + "'";
    report.add(diag);
    return report;
  }

  // Closed-form quantities against the engine's certificate-total
  // accessors: the full prefix range plus a window around each
  // first-wrap boundary (pure arithmetic — any rank is cheap).
  struct Accessor {
    const char* name;
    std::uint64_t (routing::MemoRoutingEngine::*fn)(int) const;
    bool needs_decoder;
  };
  constexpr Accessor kAccessors[] = {
      {"chain.num_chains", &routing::MemoRoutingEngine::expected_num_chains,
       false},
      {"chain.total_hits",
       &routing::MemoRoutingEngine::expected_chain_total_hits, false},
      {"decode.num_paths",
       &routing::MemoRoutingEngine::expected_num_decode_paths, true},
      {"decode.total_hits",
       &routing::MemoRoutingEngine::expected_decode_total_hits, true},
  };
  for (const Accessor& acc : kAccessors) {
    if (acc.needs_decoder && !engine.has_decoder()) continue;
    const QuantityEnvelope* q = envelopes.find(acc.name);
    if (q == nullptr) {
      audit::Diagnostic diag;
      diag.rule = "analysis.k-envelope";
      diag.message = envelopes.algorithm + ": envelope missing quantity " +
                     std::string(acc.name);
      report.add(diag);
      continue;
    }
    for (int k = 1; k <= std::min(options.scalar_kmax, q->value_kmax); ++k) {
      mismatch(q->name, k, q->low_at(k), (engine.*acc.fn)(k));
    }
    if (q->first_wrap_k > 0) {
      const int lo = std::max(1, q->first_wrap_k - options.boundary_window);
      const int hi =
          std::min(q->value_kmax, q->first_wrap_k + options.boundary_window);
      for (int k = lo; k <= hi; ++k) {
        mismatch(q->name, k, q->low_at(k), (engine.*acc.fn)(k));
      }
    }
  }

  // Every quantity against the constant-memory implicit verifier.
  for (int k = 1; k <= options.stats_kmax; ++k) {
    const cdag::ImplicitCdag view(engine.algorithm(), k);
    const auto check = [&](const char* name, std::uint64_t actual) {
      const QuantityEnvelope* q = envelopes.find(name);
      if (q == nullptr || k > q->value_kmax) return;
      mismatch(q->name, k, q->low_at(k), actual);
    };
    const routing::HitStats l3 = engine.verify_chain_routing(view, k, 0);
    check("chain.num_chains", l3.num_paths);
    check("chain.l3_bound", l3.bound);
    check("chain.l3_max", l3.max_hits);
    const routing::FullRoutingStats t2 = engine.verify_full_routing(view, k, 0);
    check("full.t2_paths", t2.num_paths);
    check("full.t2_bound", t2.bound);
    check("full.t2_max", t2.max_vertex_hits);
    check("full.t2_meta", t2.max_meta_hits);
    if (envelopes.has_decode && engine.has_decoder()) {
      const routing::HitStats d = engine.verify_decode_routing(view, k, 0);
      check("decode.num_paths", d.num_paths);
      check("decode.bound", d.bound);
      check("decode.max", d.max_hits);
    }
  }
  return report;
}

}  // namespace pathrouting::analysis
