// Determinism-hazard linter: a deterministic token-level scanner over
// the repo's own C++ sources that flags constructs able to break the
// bit-identity guarantees (counts identical at any PR_THREADS,
// byte-stable certificates, wrap-exact u64 formula arithmetic) — the
// invariants the dynamic layers (TSan job, golden corpus, bench gate)
// can only catch when a run happens to expose them.
//
// Rules (registered in the audit catalog under static.*):
//   static.unordered-iteration   iterating an unordered_{map,set,...}
//                                (range-for or .begin()/.end() in a for
//                                header) — iteration order is
//                                implementation-defined, so anything
//                                folded from it can differ run-to-run.
//                                Pure lookups (find/at/count) are fine.
//   static.float-accumulation    compound accumulation (+= -= *= /=)
//                                into a float/double — FP addition is
//                                non-associative, so chunked/reordered
//                                reductions drift. Counted paths must
//                                stay integral.
//   static.nondeterminism-source rand()/srand()/drand48()/lrand48(),
//                                std::random_device, time(nullptr),
//                                system_clock — ambient entropy in a
//                                result path.
//   static.pointer-keyed-order   std::map/std::set keyed by a raw
//                                pointer type — ordered by address,
//                                which varies per run (ASLR, allocator).
//   static.raw-thread            std::thread/std::jthread/std::async/
//                                pthread_create outside support/parallel
//                                — work not in the pool escapes the
//                                fixed-chunk ordered-reduction contract.
//
// Suppression: an inline `// pr-static: allow(<rule>)` comment on the
// flagged line or the line directly above, or an entry in the committed
// baseline file (tools/pr_static_baseline.txt), keyed by
// rule|file|hash-of-trimmed-source-line so entries survive reflows but
// new hazards hard-fail.
//
// The scanner is purely lexical (comments, string/char/raw-string
// literals and preprocessor lines are stripped; no macro expansion or
// type resolution), so it is fast, dependency-free and fully
// deterministic — and, like any linter at this level, it names
// declared-type hazards, not aliased ones.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pathrouting/audit/diagnostic.hpp"

namespace pathrouting::analysis {

struct LintFinding {
  std::string rule;         // registry id, e.g. "static.raw-thread"
  std::string file;         // label passed to scan_source (repo-relative)
  int line = 0;             // 1-based
  std::string message;      // one line, human-oriented
  std::string source_line;  // the offending source line, untrimmed

  bool operator==(const LintFinding&) const = default;
};

/// Scans one translation unit (already in memory; `file_label` is only
/// recorded into findings). Inline `pr-static: allow(...)` suppressions
/// are applied here; baseline suppression is a separate pass. Findings
/// come back sorted by (line, rule) and deduplicated.
[[nodiscard]] std::vector<LintFinding> scan_source(std::string_view file_label,
                                                   std::string_view text);

/// The committed suppression baseline: counts of accepted findings per
/// key rule|file|fnv1a(trimmed source line). Hazards beyond their
/// baselined count (or with no entry) are "new" and hard-fail.
class SuppressionBaseline {
 public:
  [[nodiscard]] static std::string key(const LintFinding& finding);

  /// One entry per line: "<count> <key>"; '#' comments and blank lines
  /// ignored. Malformed lines are themselves reported as findings under
  /// rule static.baseline by the caller-facing tool, so parse collects
  /// them instead of throwing.
  [[nodiscard]] static SuppressionBaseline parse(std::string_view text,
                                                 std::vector<std::string>* errors = nullptr);
  [[nodiscard]] static SuppressionBaseline from_findings(
      const std::vector<LintFinding>& findings);
  /// Deterministic rendering (sorted by key), parse-round-trip stable.
  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] const std::map<std::string, int>& entries() const {
    return entries_;
  }

  struct FilterResult {
    std::vector<LintFinding> unsuppressed;  // beyond the baselined counts
    std::vector<std::string> stale_keys;    // baselined but no longer found
  };
  /// Consumes baseline budget per finding key, in finding order.
  [[nodiscard]] FilterResult apply(const std::vector<LintFinding>& findings) const;

 private:
  std::map<std::string, int> entries_;
};

/// All static.* rule ids, in registry (= report) order.
[[nodiscard]] const std::vector<std::string>& lint_rule_ids();

/// Renders findings as an audit report: every static.* rule is marked
/// run, each finding becomes an error Diagnostic with the line number in
/// the vertex slot.
[[nodiscard]] audit::AuditReport lint_report(
    const std::vector<LintFinding>& findings);

}  // namespace pathrouting::analysis
