// Red-blue pebble game (Hong-Kung) cache simulator — the paper's
// machine model, executed exactly.
//
// Rules (Section 1, "Machine model"):
//  * slow memory is unbounded, cache holds at most M values;
//  * initially all inputs are in slow memory and the cache is empty;
//  * moving one value between slow memory and cache costs one I/O;
//  * a vertex may be computed only when all its predecessors are in
//    cache; the result is placed in cache;
//  * no vertex is computed twice (a computed value evicted from cache
//    without a slow-memory copy would be lost, so such evictions first
//    pay a write);
//  * at halt every output resides in slow memory.
//
// The simulator takes an explicit schedule (a topological order of the
// computed vertices) and an eviction policy, and reports exact read /
// write counts. Belady's policy (evict the value used furthest in the
// future, preferring dead values) is the strong baseline; LRU is the
// practical comparison for the ablation experiments.
//
// Victim ties (equal eviction key) break deterministically to the
// lowest VertexId (policies.hpp). Counts are therefore a pure function
// of (graph, schedule, M, policy) on every platform — the contract the
// golden corpus and the schedule-search certificates pin.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::pebble {

using cdag::Graph;
using cdag::VertexId;

enum class Eviction { Belady, Lru };

struct PebbleOptions {
  std::uint64_t cache_size = 0;  // M, in values
  Eviction eviction = Eviction::Belady;
  /// Optional segment boundaries (exclusive end steps, strictly
  /// increasing, last one = schedule size). When non-empty, the result
  /// carries per-segment I/O attribution: reads land in the segment
  /// whose steps issued them, writes in the segment that *computed* the
  /// written value — the attribution under which the paper's
  /// per-segment bound |delta'(S')| - 2M applies (Section 6).
  std::vector<std::uint32_t> segment_ends;
  /// Record the I/Os (reads + eviction/flush writes) issued while
  /// executing each step, for offline re-segmentation (the Hong-Kung
  /// partition lemma; see bounds/hong_kung.hpp).
  bool record_step_io = false;
};

struct PebbleResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t steps = 0;
  /// Evictions split by whether the victim still had a live use: dirty
  /// evictions paid a write, clean/dead ones were free. Useful for
  /// diagnosing where a schedule loses its I/O.
  std::uint64_t evictions_dirty = 0;
  std::uint64_t evictions_clean = 0;
  /// Peak number of simultaneously cached values (<= M; smaller when
  /// the schedule never fills the cache).
  std::uint64_t peak_cached = 0;
  [[nodiscard]] std::uint64_t io() const { return reads + writes; }
  /// Per-segment attribution (see PebbleOptions::segment_ends).
  std::vector<std::uint64_t> segment_reads;
  std::vector<std::uint64_t> segment_writes;  // by the value's birth segment
  /// I/Os issued per step (see PebbleOptions::record_step_io). Final
  /// output flushes land on the last step.
  std::vector<std::uint32_t> step_io;
};

/// Runs the pebble game. `schedule` is the computation order over
/// non-input vertices (validated to be topological and complete by
/// schedule::validate; the simulator only checks what it needs to stay
/// safe). `is_output(v)` marks values that must be in slow memory at
/// halt. Aborts if M is too small to compute some vertex at all
/// (max in-degree + 1).
PebbleResult simulate(const Graph& graph,
                      std::span<const VertexId> schedule,
                      const PebbleOptions& options,
                      const std::function<bool(VertexId)>& is_output);

}  // namespace pathrouting::pebble
