#include "pathrouting/pebble/cache_sim.hpp"

#include <algorithm>

#include "pathrouting/pebble/policies.hpp"

namespace pathrouting::pebble {

namespace {

/// Positions in the schedule at which each vertex is consumed as an
/// operand, in increasing order (CSR layout).
struct UseLists {
  std::vector<std::uint32_t> off;
  std::vector<std::uint32_t> steps;
};

UseLists build_use_lists(const Graph& graph,
                         std::span<const VertexId> schedule) {
  UseLists uses;
  uses.off.assign(static_cast<std::size_t>(graph.num_vertices()) + 1, 0);
  for (const VertexId v : schedule) {
    for (const VertexId p : graph.in(v)) ++uses.off[p + 1];
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    uses.off[v + 1] += uses.off[v];
  }
  uses.steps.resize(uses.off.back());
  std::vector<std::uint32_t> cursor(uses.off.begin(), uses.off.end() - 1);
  for (std::uint32_t s = 0; s < schedule.size(); ++s) {
    for (const VertexId p : graph.in(schedule[s])) {
      uses.steps[cursor[p]++] = s;
    }
  }
  return uses;
}

template <typename Policy>
PebbleResult run(const Graph& graph, std::span<const VertexId> schedule,
                 const PebbleOptions& options,
                 const std::function<bool(VertexId)>& is_output) {
  const std::uint64_t m = options.cache_size;
  const VertexId n = graph.num_vertices();
  const UseLists uses = build_use_lists(graph, schedule);
  std::vector<std::uint32_t> use_ptr(uses.off.begin(), uses.off.end() - 1);

  Policy policy(n);
  std::vector<std::uint8_t> in_cache(n, 0), dirty(n, 0), written(n, 0);
  // Inputs have a slow-memory copy from the start.
  for (VertexId v = 0; v < n; ++v) written[v] = graph.in_degree(v) == 0;
  std::vector<std::uint32_t> pin_stamp(n, 0);
  std::vector<std::uint32_t> next_use(n, 0);
  std::uint64_t cached = 0;
  PebbleResult result;
  result.steps = schedule.size();

  // Segment attribution (optional). `birth_segment[v]` is the segment
  // that computed v; reads are charged to the segment issuing them and
  // writes to the written value's birth segment.
  const auto& ends = options.segment_ends;
  const bool segmented = !ends.empty();
  std::vector<std::uint32_t> birth_segment;
  std::uint32_t current_segment = 0;
  if (segmented) {
    PR_REQUIRE(std::is_sorted(ends.begin(), ends.end()));
    PR_REQUIRE(ends.back() == schedule.size());
    result.segment_reads.assign(ends.size(), 0);
    result.segment_writes.assign(ends.size(), 0);
    birth_segment.assign(n, 0);
  }
  if (options.record_step_io) result.step_io.assign(schedule.size(), 0);
  std::uint32_t current_step = 0;
  const auto charge_step = [&] {
    if (options.record_step_io) ++result.step_io[current_step];
  };

  // Next consumption of v strictly after step s (kNeverUsed if none),
  // advancing the monotone per-vertex cursor.
  const auto advance_next_use = [&](VertexId v, std::uint32_t s) {
    std::uint32_t& ptr = use_ptr[v];
    while (ptr < uses.off[v + 1] && uses.steps[ptr] <= s) ++ptr;
    return ptr < uses.off[v + 1] ? std::uint64_t{uses.steps[ptr]} : kNeverUsed;
  };

  const auto note_access = [&](VertexId v, std::uint64_t nu) {
    next_use[v] = nu == kNeverUsed ? UINT32_MAX : static_cast<std::uint32_t>(nu);
    if constexpr (std::is_same_v<Policy, LruPolicy>) {
      policy.touch(v);
    } else {
      policy.update(v, nu);
    }
  };

  const auto evict_one = [&](std::uint32_t stamp) {
    const VertexId victim =
        policy.pick([&](VertexId u) { return in_cache[u] != 0; },
                    [&](VertexId u) { return pin_stamp[u] == stamp; });
    if (dirty[victim] &&
        (next_use[victim] != UINT32_MAX ||
         (is_output(victim) && !written[victim]))) {
      ++result.writes;
      ++result.evictions_dirty;
      charge_step();
      if (segmented) ++result.segment_writes[birth_segment[victim]];
      written[victim] = 1;
    } else {
      ++result.evictions_clean;
    }
    dirty[victim] = 0;
    in_cache[victim] = 0;
    --cached;
  };

  for (std::uint32_t s = 0; s < schedule.size(); ++s) {
    current_step = s;
    if (segmented && s >= ends[current_segment]) ++current_segment;
    const VertexId v = schedule[s];
    const auto preds = graph.in(v);
    PR_REQUIRE_MSG(!preds.empty(), "inputs are not scheduled");
    PR_REQUIRE_MSG(preds.size() + 1 <= m, "cache too small for this vertex");
    const std::uint32_t stamp = s + 1;
    for (const VertexId p : preds) pin_stamp[p] = stamp;
    // Stage operands; each read needs a slow-memory copy to exist.
    for (const VertexId p : preds) {
      if (!in_cache[p]) {
        PR_ASSERT_MSG(written[p],
                      "operand neither cached nor in slow memory: schedule "
                      "is not topological");
        while (cached >= m) evict_one(stamp);
        ++result.reads;
        charge_step();
        if (segmented) ++result.segment_reads[current_segment];
        in_cache[p] = 1;
        dirty[p] = 0;
        ++cached;
      }
      note_access(p, advance_next_use(p, s));
    }
    // Compute v into cache.
    PR_ASSERT_MSG(!in_cache[v], "vertex computed twice");
    pin_stamp[v] = stamp;
    while (cached >= m) evict_one(stamp);
    in_cache[v] = 1;
    dirty[v] = 1;
    if (segmented) birth_segment[v] = current_segment;
    ++cached;
    result.peak_cached = std::max(result.peak_cached, cached);
    note_access(v, advance_next_use(v, s));
  }

  // Halt: flush outputs that never reached slow memory.
  for (VertexId v = 0; v < n; ++v) {
    if (is_output(v) && !written[v]) {
      PR_ASSERT_MSG(in_cache[v] && dirty[v], "lost output value");
      ++result.writes;
      charge_step();
      if (segmented) ++result.segment_writes[birth_segment[v]];
      written[v] = 1;
    }
  }
  return result;
}

}  // namespace

PebbleResult simulate(const Graph& graph, std::span<const VertexId> schedule,
                      const PebbleOptions& options,
                      const std::function<bool(VertexId)>& is_output) {
  PR_REQUIRE(options.cache_size >= 2);
  if (options.eviction == Eviction::Belady) {
    return run<BeladyPolicy>(graph, schedule, options, is_output);
  }
  return run<LruPolicy>(graph, schedule, options, is_output);
}

}  // namespace pathrouting::pebble
