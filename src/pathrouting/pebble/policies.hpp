// Eviction policies for the pebble-game simulator.
//
// Both policies are lazy-heap based: keys are re-pushed on change and
// stale entries are discarded at pop time. The simulator tells the
// policy the *next use step* of each cached value; "dead" values (no
// future use) are preferred victims for both policies.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::pebble {

using cdag::VertexId;

inline constexpr std::uint64_t kNeverUsed = static_cast<std::uint64_t>(-1);

/// Belady / MIN: evict the value whose next use is furthest away.
class BeladyPolicy {
 public:
  explicit BeladyPolicy(std::size_t num_vertices) : key_(num_vertices, 0) {}

  void update(VertexId v, std::uint64_t next_use) {
    key_[v] = next_use;
    heap_.push({next_use, v});
  }

  /// Returns the victim: the cached, unpinned vertex with the furthest
  /// next use. Stale entries (key changed or evicted) are discarded;
  /// entries for pinned-but-cached vertices are kept for later.
  template <typename Cached, typename Pinned>
  VertexId pick(const Cached& cached, const Pinned& pinned) {
    VertexId victim = cdag::kInvalidVertex;
    while (true) {
      PR_ASSERT_MSG(!heap_.empty(), "no evictable cache entry");
      const auto [key, v] = heap_.top();
      heap_.pop();
      if (key != key_[v] || !cached(v)) continue;  // stale or evicted
      if (pinned(v)) {
        deferred_.push_back({key, v});
        continue;
      }
      victim = v;
      break;
    }
    for (const auto& entry : deferred_) heap_.push(entry);
    deferred_.clear();
    return victim;
  }

 private:
  // Max-heap on next-use step: furthest first (kNeverUsed sorts first).
  std::priority_queue<std::pair<std::uint64_t, VertexId>> heap_;
  std::vector<std::pair<std::uint64_t, VertexId>> deferred_;
  std::vector<std::uint64_t> key_;
};

/// LRU: evict the least recently touched value.
class LruPolicy {
 public:
  explicit LruPolicy(std::size_t num_vertices) : key_(num_vertices, 0) {}

  void touch(VertexId v) {
    key_[v] = ++clock_;
    heap_.push({key_[v], v});
  }

  template <typename Cached, typename Pinned>
  VertexId pick(const Cached& cached, const Pinned& pinned) {
    VertexId victim = cdag::kInvalidVertex;
    while (true) {
      PR_ASSERT_MSG(!heap_.empty(), "no evictable cache entry");
      const auto [key, v] = heap_.top();
      heap_.pop();
      if (key != key_[v] || !cached(v)) continue;
      if (pinned(v)) {
        deferred_.push_back({key, v});
        continue;
      }
      victim = v;
      break;
    }
    for (const auto& entry : deferred_) heap_.push(entry);
    deferred_.clear();
    return victim;
  }

 private:
  // Min-heap on last-touch time: oldest first.
  std::priority_queue<std::pair<std::uint64_t, VertexId>,
                      std::vector<std::pair<std::uint64_t, VertexId>>,
                      std::greater<>>
      heap_;
  std::vector<std::pair<std::uint64_t, VertexId>> deferred_;
  std::vector<std::uint64_t> key_;
  std::uint64_t clock_ = 0;
};

}  // namespace pathrouting::pebble
