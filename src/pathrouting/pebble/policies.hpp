// Eviction policies for the pebble-game simulator.
//
// Both policies are lazy-heap based: keys are re-pushed on change and
// stale entries are discarded at pop time. The simulator tells the
// policy the *next use step* of each cached value; "dead" values (no
// future use) are preferred victims for both policies.
//
// Victim ties (equal policy key) break to the LOWEST VertexId. This is
// a documented determinism rule, not an accident of heap layout: the
// golden corpus and the schedule-search certificates pin exact
// read/write counts, so the victim choice must be a pure function of
// the schedule on every std-lib implementation. Belady hits real ties
// constantly (all dead values share the key kNeverUsed, and two
// operands of one future step share its index); LRU's clock is unique
// per touch, but the rule is applied uniformly so both policies stay
// covered by the same contract (see tests/test_pebble.cpp).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "pathrouting/cdag/graph.hpp"

namespace pathrouting::pebble {

using cdag::VertexId;

inline constexpr std::uint64_t kNeverUsed = static_cast<std::uint64_t>(-1);

/// Heap order for BeladyPolicy: the top is the entry with the LARGEST
/// key (furthest next use); equal keys surface the lowest VertexId.
struct FurthestThenLowestId {
  bool operator()(const std::pair<std::uint64_t, VertexId>& a,
                  const std::pair<std::uint64_t, VertexId>& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  }
};

/// Heap order for LruPolicy: the top is the entry with the SMALLEST
/// key (oldest touch); equal keys surface the lowest VertexId.
struct OldestThenLowestId {
  bool operator()(const std::pair<std::uint64_t, VertexId>& a,
                  const std::pair<std::uint64_t, VertexId>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};

/// Belady / MIN: evict the value whose next use is furthest away.
class BeladyPolicy {
 public:
  explicit BeladyPolicy(std::size_t num_vertices) : key_(num_vertices, 0) {}

  void update(VertexId v, std::uint64_t next_use) {
    key_[v] = next_use;
    heap_.push({next_use, v});
  }

  /// Returns the victim: the cached, unpinned vertex with the furthest
  /// next use (ties to the lowest id). Stale entries (key changed or
  /// evicted) are discarded; entries for pinned-but-cached vertices are
  /// kept for later.
  template <typename Cached, typename Pinned>
  VertexId pick(const Cached& cached, const Pinned& pinned) {
    VertexId victim = cdag::kInvalidVertex;
    while (true) {
      PR_ASSERT_MSG(!heap_.empty(), "no evictable cache entry");
      const auto [key, v] = heap_.top();
      heap_.pop();
      if (key != key_[v] || !cached(v)) continue;  // stale or evicted
      if (pinned(v)) {
        deferred_.push_back({key, v});
        continue;
      }
      victim = v;
      break;
    }
    for (const auto& entry : deferred_) heap_.push(entry);
    deferred_.clear();
    return victim;
  }

 private:
  // Max-heap on next-use step: furthest first (kNeverUsed sorts first),
  // lowest id on ties.
  std::priority_queue<std::pair<std::uint64_t, VertexId>,
                      std::vector<std::pair<std::uint64_t, VertexId>>,
                      FurthestThenLowestId>
      heap_;
  std::vector<std::pair<std::uint64_t, VertexId>> deferred_;
  std::vector<std::uint64_t> key_;
};

/// LRU: evict the least recently touched value.
class LruPolicy {
 public:
  explicit LruPolicy(std::size_t num_vertices) : key_(num_vertices, 0) {}

  void touch(VertexId v) {
    key_[v] = ++clock_;
    heap_.push({key_[v], v});
  }

  template <typename Cached, typename Pinned>
  VertexId pick(const Cached& cached, const Pinned& pinned) {
    VertexId victim = cdag::kInvalidVertex;
    while (true) {
      PR_ASSERT_MSG(!heap_.empty(), "no evictable cache entry");
      const auto [key, v] = heap_.top();
      heap_.pop();
      if (key != key_[v] || !cached(v)) continue;
      if (pinned(v)) {
        deferred_.push_back({key, v});
        continue;
      }
      victim = v;
      break;
    }
    for (const auto& entry : deferred_) heap_.push(entry);
    deferred_.clear();
    return victim;
  }

 private:
  // Min-heap on last-touch time: oldest first, lowest id on ties.
  std::priority_queue<std::pair<std::uint64_t, VertexId>,
                      std::vector<std::pair<std::uint64_t, VertexId>>,
                      OldestThenLowestId>
      heap_;
  std::vector<std::pair<std::uint64_t, VertexId>> deferred_;
  std::vector<std::uint64_t> key_;
  std::uint64_t clock_ = 0;
};

}  // namespace pathrouting::pebble
