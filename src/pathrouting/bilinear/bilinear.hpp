// Bilinear (Strassen-like) square matrix multiplication algorithms.
//
// A base algorithm <n0,n0,n0; b> is given by exact coefficient matrices
//   U : b x a   (row q = the linear combination of A-entries multiplied
//                in product q),
//   V : b x a   (same for B),
//   W : a x b   (row d = how output entry d combines the b products),
// where a = n0^2 and entries of the n0 x n0 operands are flattened
// row-major: element (i,j) has index d = i*n0 + j.
//
// The algorithm computes, for inputs A and B,
//   C_d = sum_q W[d][q] * (sum_e U[q][e] A_e) * (sum_e V[q][e] B_e).
// Correctness is exactly the Brent equations (verify_brent below).
//
// This is the object the paper calls the "base graph" G_1 once the
// combinations become vertices; module `cdag` builds G_r from it.
#pragma once

#include <string>
#include <vector>

#include "pathrouting/support/check.hpp"
#include "pathrouting/support/rational.hpp"

namespace pathrouting::bilinear {

using support::Rational;

class BilinearAlgorithm {
 public:
  /// Coefficients are given as dense row-major tables; U and V are
  /// b x n0^2, W is n0^2 x b.
  BilinearAlgorithm(std::string name, int n0, int num_products,
                    std::vector<Rational> u, std::vector<Rational> v,
                    std::vector<Rational> w);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Block dimension n0 of the base case.
  [[nodiscard]] int n0() const { return n0_; }
  /// a = n0^2: number of inputs per operand ("2a inputs" in the paper).
  [[nodiscard]] int a() const { return n0_ * n0_; }
  /// b: number of multiplications in the base graph.
  [[nodiscard]] int b() const { return b_; }

  /// Coefficient of A-entry e in the left operand of product q.
  [[nodiscard]] const Rational& u(int q, int e) const {
    PR_REQUIRE(q >= 0 && q < b_ && e >= 0 && e < a());
    return u_[static_cast<std::size_t>(q) * static_cast<std::size_t>(a()) +
              static_cast<std::size_t>(e)];
  }
  /// Coefficient of B-entry e in the right operand of product q.
  [[nodiscard]] const Rational& v(int q, int e) const {
    PR_REQUIRE(q >= 0 && q < b_ && e >= 0 && e < a());
    return v_[static_cast<std::size_t>(q) * static_cast<std::size_t>(a()) +
              static_cast<std::size_t>(e)];
  }
  /// Coefficient of product q in output entry d.
  [[nodiscard]] const Rational& w(int d, int q) const {
    PR_REQUIRE(d >= 0 && d < a() && q >= 0 && q < b_);
    return w_[static_cast<std::size_t>(d) * static_cast<std::size_t>(b_) +
              static_cast<std::size_t>(q)];
  }

  /// The arithmetic exponent of the recursive algorithm:
  /// omega0 = log_{n0} b = 2 log_a b; arithmetic cost Theta(n^{omega0}).
  [[nodiscard]] double omega0() const;

  /// True iff the Brent equations hold, i.e. the recursion computes
  /// exact matrix multiplication:
  ///   sum_q U[q,(i,k)] V[q,(k',j)] W[(i',j'),q]
  ///     = [i==i'] [j==j'] [k==k']   for all i,k,k',j,i',j'.
  [[nodiscard]] bool verify_brent() const;

  /// Renames the algorithm (used by derived constructions).
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  int n0_;
  int b_;
  std::vector<Rational> u_, v_, w_;
};

/// Tensor (Kronecker) product of two algorithms:
/// <n,n,n;b1> x <m,m,m;b2> -> <nm,nm,nm;b1*b2>. Index conventions:
/// product (q1,q2) |-> q1*b2+q2; matrix entry ((i1,i2),(j1,j2)) |->
/// row i1*m+i2, column j1*m+j2 — i.e. the outer algorithm operates on
/// m x m blocks. The result is exact and verified by construction
/// whenever the factors are (Brent equations multiply).
BilinearAlgorithm tensor_product(const BilinearAlgorithm& outer,
                                 const BilinearAlgorithm& inner);

}  // namespace pathrouting::bilinear
