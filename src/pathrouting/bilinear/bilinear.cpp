#include "pathrouting/bilinear/bilinear.hpp"

#include <cmath>

namespace pathrouting::bilinear {

BilinearAlgorithm::BilinearAlgorithm(std::string name, int n0,
                                     int num_products, std::vector<Rational> u,
                                     std::vector<Rational> v,
                                     std::vector<Rational> w)
    : name_(std::move(name)), n0_(n0), b_(num_products), u_(std::move(u)),
      v_(std::move(v)), w_(std::move(w)) {
  PR_REQUIRE(n0_ >= 2);
  PR_REQUIRE(b_ >= 1);
  const auto expected =
      static_cast<std::size_t>(b_) * static_cast<std::size_t>(a());
  PR_REQUIRE_MSG(u_.size() == expected, "U has wrong shape");
  PR_REQUIRE_MSG(v_.size() == expected, "V has wrong shape");
  PR_REQUIRE_MSG(w_.size() == expected, "W has wrong shape");
}

double BilinearAlgorithm::omega0() const {
  return std::log(static_cast<double>(b_)) /
         std::log(static_cast<double>(n0_));
}

bool BilinearAlgorithm::verify_brent() const {
  const int n = n0_;
  // Brent equations: for all i,k (A-entry), k',j (B-entry), i',j'
  // (C-entry): sum_q U[q,(i,k)] V[q,(k',j)] W[(i',j'),q] equals 1 if
  // i==i', j==j', k==k' and 0 otherwise.
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      for (int kp = 0; kp < n; ++kp) {
        for (int j = 0; j < n; ++j) {
          for (int ip = 0; ip < n; ++ip) {
            for (int jp = 0; jp < n; ++jp) {
              Rational sum = 0;
              for (int q = 0; q < b_; ++q) {
                sum += u(q, i * n + k) * v(q, kp * n + j) * w(ip * n + jp, q);
              }
              const Rational expected =
                  (i == ip && j == jp && k == kp) ? Rational(1) : Rational(0);
              if (sum != expected) return false;
            }
          }
        }
      }
    }
  }
  return true;
}

BilinearAlgorithm tensor_product(const BilinearAlgorithm& outer,
                                 const BilinearAlgorithm& inner) {
  const int n1 = outer.n0();
  const int n2 = inner.n0();
  const int n = n1 * n2;
  const int a = n * n;
  const int b = outer.b() * inner.b();
  // Entry (I,J) of the composed matrix, with I = i1*n2+i2, J = j1*n2+j2,
  // corresponds to entry (i2,j2) of block (i1,j1).
  const auto entry = [&](int i1, int j1, int i2, int j2) {
    return (i1 * n2 + i2) * n + (j1 * n2 + j2);
  };
  std::vector<Rational> u(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> v(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> w(static_cast<std::size_t>(a) * b, Rational(0));
  for (int q1 = 0; q1 < outer.b(); ++q1) {
    for (int q2 = 0; q2 < inner.b(); ++q2) {
      const int q = q1 * inner.b() + q2;
      for (int i1 = 0; i1 < n1; ++i1) {
        for (int j1 = 0; j1 < n1; ++j1) {
          for (int i2 = 0; i2 < n2; ++i2) {
            for (int j2 = 0; j2 < n2; ++j2) {
              const int e = entry(i1, j1, i2, j2);
              const std::size_t ue =
                  static_cast<std::size_t>(q) * a + static_cast<std::size_t>(e);
              u[ue] = outer.u(q1, i1 * n1 + j1) * inner.u(q2, i2 * n2 + j2);
              v[ue] = outer.v(q1, i1 * n1 + j1) * inner.v(q2, i2 * n2 + j2);
              w[static_cast<std::size_t>(e) * b + static_cast<std::size_t>(q)] =
                  outer.w(i1 * n1 + j1, q1) * inner.w(i2 * n2 + j2, q2);
            }
          }
        }
      }
    }
  }
  return BilinearAlgorithm(outer.name() + "x" + inner.name(), n, b,
                           std::move(u), std::move(v), std::move(w));
}

}  // namespace pathrouting::bilinear
