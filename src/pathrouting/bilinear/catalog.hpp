// Catalog of base algorithms used throughout the tests and benches.
//
// Hand-entered algorithms are validated by the Brent equations
// (BilinearAlgorithm::verify_brent) in the test suite; tensor-product
// entries are exact by construction from verified factors.
#pragma once

#include <string>
#include <vector>

#include "pathrouting/bilinear/bilinear.hpp"

namespace pathrouting::bilinear {

/// Classical <n0,n0,n0; n0^3> algorithm (one product per (i,k,j)).
/// omega0 = 3: not "fast", excluded from Theorem 1, but exercises the
/// CDAG machinery (notably massive multiple copying) and serves as the
/// Hong-Kung baseline.
BilinearAlgorithm classical(int n0);

/// Strassen's <2,2,2;7> algorithm, omega0 = log2 7 ~ 2.807.
BilinearAlgorithm strassen();

/// Winograd's 7-multiplication, 15-addition variant of Strassen.
/// Same exponent, different base graph (denser encoding rows).
BilinearAlgorithm winograd();

/// A <3,3,3;23> algorithm of Laderman type, omega0 = log3 23 ~ 2.854.
BilinearAlgorithm laderman();

/// Strassen tensor Strassen: <4,4,4;49>, omega0 = log2 7. One recursion
/// level of this equals two of Strassen's; a Strassen-like base with
/// n0 = 4.
BilinearAlgorithm strassen_squared();

/// classical(2) tensor strassen: <4,4,4;56>, omega0 = log4 56 ~ 2.904.
/// Its base-graph DECODING graph is disconnected (outputs with distinct
/// outer block index share no products) — exactly the case the
/// edge-expansion proof of [6] cannot handle and this paper can.
BilinearAlgorithm classical2_x_strassen();

/// strassen tensor classical(2): <4,4,4;56>. Dual of the above; its
/// base-graph ENCODING graphs are disconnected.
BilinearAlgorithm strassen_x_classical2();

/// Winograd tensor Winograd: <4,4,4;49>, omega0 = log2 7. Same exponent
/// as strassen_squared with a denser base graph.
BilinearAlgorithm winograd_squared();

/// Strassen tensor Laderman: <6,6,6;161>, omega0 = 2 log_36 161 ~ 2.837
/// — a third distinct exponent in the catalog, mechanically exact.
BilinearAlgorithm strassen_x_laderman();

/// Names of all catalog entries accepted by `by_name`.
std::vector<std::string> catalog_names();

/// Lookup by name ("classical2", "classical3", "strassen", "winograd",
/// "laderman", "strassen_squared", "classical2_x_strassen",
/// "strassen_x_classical2"). Aborts on unknown name.
BilinearAlgorithm by_name(const std::string& name);

}  // namespace pathrouting::bilinear
