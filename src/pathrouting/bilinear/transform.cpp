#include "pathrouting/bilinear/transform.hpp"

namespace pathrouting::bilinear {

SquareMatrix SquareMatrix::identity(int n) {
  SquareMatrix m{n, std::vector<Rational>(
                        static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                        Rational(0))};
  for (int i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

SquareMatrix multiply(const SquareMatrix& x, const SquareMatrix& y) {
  PR_REQUIRE(x.n == y.n);
  SquareMatrix out{x.n, std::vector<Rational>(
                            static_cast<std::size_t>(x.n) *
                                static_cast<std::size_t>(x.n),
                            Rational(0))};
  for (int i = 0; i < x.n; ++i) {
    for (int k = 0; k < x.n; ++k) {
      if (x.at(i, k).is_zero()) continue;
      for (int j = 0; j < x.n; ++j) {
        out.at(i, j) += x.at(i, k) * y.at(k, j);
      }
    }
  }
  return out;
}

SquareMatrix inverse(const SquareMatrix& m) {
  const int n = m.n;
  SquareMatrix a = m;
  SquareMatrix inv = SquareMatrix::identity(n);
  for (int col = 0; col < n; ++col) {
    // Pivot: first row at/below `col` with a nonzero entry.
    int pivot = -1;
    for (int row = col; row < n && pivot < 0; ++row) {
      if (!a.at(row, col).is_zero()) pivot = row;
    }
    PR_REQUIRE_MSG(pivot >= 0, "matrix is singular");
    if (pivot != col) {
      for (int j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    const Rational scale = Rational(1) / a.at(col, col);
    for (int j = 0; j < n; ++j) {
      a.at(col, j) *= scale;
      inv.at(col, j) *= scale;
    }
    for (int row = 0; row < n; ++row) {
      if (row == col || a.at(row, col).is_zero()) continue;
      const Rational factor = a.at(row, col);
      for (int j = 0; j < n; ++j) {
        a.at(row, j) -= factor * a.at(col, j);
        inv.at(row, j) -= factor * inv.at(col, j);
      }
    }
  }
  return inv;
}

SquareMatrix random_unimodular(int n, support::Xoshiro256& rng, int steps) {
  SquareMatrix m = SquareMatrix::identity(n);
  for (int s = 0; s < steps; ++s) {
    const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (i == j) {
      // Negate a row: determinant flips sign, still unimodular.
      for (int col = 0; col < n; ++col) m.at(i, col) = -m.at(i, col);
      continue;
    }
    std::int64_t c = rng.range(-2, 2);
    if (c == 0) c = 1;
    for (int col = 0; col < n; ++col) {
      m.at(i, col) += Rational(c) * m.at(j, col);
    }
  }
  return m;
}

BilinearAlgorithm transform_basis(const BilinearAlgorithm& alg,
                                  const SquareMatrix& p, const SquareMatrix& q,
                                  const SquareMatrix& r) {
  const int n0 = alg.n0();
  PR_REQUIRE(p.n == n0 && q.n == n0 && r.n == n0);
  const int a = alg.a();
  const int b = alg.b();
  const SquareMatrix p_inv = inverse(p);
  const SquareMatrix q_inv = inverse(q);
  const SquareMatrix r_inv = inverse(r);
  std::vector<Rational> u(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> v(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> w(static_cast<std::size_t>(a) * b, Rational(0));
  // U'[q0,(i,j)] = sum_{k,l} U[q0,(k,l)] Pinv[k,i] Q[j,l]  (A = Pinv A' Q).
  // V'[q0,(i,j)] = sum_{k,l} V[q0,(k,l)] Qinv[k,i] R[j,l]  (B = Qinv B' R).
  // W'[(i,j),q0] = sum_{k,l} P[i,k] W[(k,l),q0] Rinv[l,j]  (C' = P C Rinv).
  for (int q0 = 0; q0 < b; ++q0) {
    for (int i = 0; i < n0; ++i) {
      for (int j = 0; j < n0; ++j) {
        Rational su(0), sv(0);
        for (int k = 0; k < n0; ++k) {
          for (int l = 0; l < n0; ++l) {
            su += alg.u(q0, k * n0 + l) * p_inv.at(k, i) * q.at(j, l);
            sv += alg.v(q0, k * n0 + l) * q_inv.at(k, i) * r.at(j, l);
          }
        }
        u[static_cast<std::size_t>(q0) * a +
          static_cast<std::size_t>(i * n0 + j)] = su;
        v[static_cast<std::size_t>(q0) * a +
          static_cast<std::size_t>(i * n0 + j)] = sv;
      }
    }
  }
  for (int i = 0; i < n0; ++i) {
    for (int j = 0; j < n0; ++j) {
      for (int q0 = 0; q0 < b; ++q0) {
        Rational sw(0);
        for (int k = 0; k < n0; ++k) {
          for (int l = 0; l < n0; ++l) {
            sw += p.at(i, k) * alg.w(k * n0 + l, q0) * r_inv.at(l, j);
          }
        }
        w[static_cast<std::size_t>(i * n0 + j) * b +
          static_cast<std::size_t>(q0)] = sw;
      }
    }
  }
  return BilinearAlgorithm(alg.name() + "'", n0, b, std::move(u), std::move(v),
                           std::move(w));
}

BilinearAlgorithm rotate_tensor(const BilinearAlgorithm& alg) {
  const int n0 = alg.n0();
  const int a = alg.a();
  const int b = alg.b();
  std::vector<Rational> u(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> v(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> w(static_cast<std::size_t>(a) * b, Rational(0));
  // trace(ABC) is cyclic: U' = V, V'[q,(k,l)] = W[(l,k),q],
  // W'[(i,j),q] = U[q,(j,i)].
  for (int q0 = 0; q0 < b; ++q0) {
    for (int k = 0; k < n0; ++k) {
      for (int l = 0; l < n0; ++l) {
        u[static_cast<std::size_t>(q0) * a +
          static_cast<std::size_t>(k * n0 + l)] = alg.v(q0, k * n0 + l);
        v[static_cast<std::size_t>(q0) * a +
          static_cast<std::size_t>(k * n0 + l)] = alg.w(l * n0 + k, q0);
        w[static_cast<std::size_t>(k * n0 + l) * b +
          static_cast<std::size_t>(q0)] = alg.u(q0, l * n0 + k);
      }
    }
  }
  BilinearAlgorithm rotated(alg.name() + "~", alg.n0(), b, std::move(u),
                            std::move(v), std::move(w));
  return rotated;
}

BilinearAlgorithm random_transform(const BilinearAlgorithm& base,
                                   std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  for (int attempt = 0; attempt < 32; ++attempt) {
    BilinearAlgorithm alg = base;
    const int rotations = static_cast<int>(rng.below(3));
    for (int i = 0; i < rotations; ++i) alg = rotate_tensor(alg);
    const SquareMatrix p = random_unimodular(base.n0(), rng);
    const SquareMatrix q = random_unimodular(base.n0(), rng);
    const SquareMatrix r = random_unimodular(base.n0(), rng);
    alg = transform_basis(alg, p, q, r);
    alg.set_name(base.name() + "#" + std::to_string(seed));
    // The CDAG builder rejects bases whose decoding rows are verbatim
    // copies (outputs equal to single products); basis changes make
    // this astronomically unlikely, but retry deterministically if a
    // degenerate draw shows up.
    bool degenerate = false;
    for (int d = 0; d < alg.a() && !degenerate; ++d) {
      int nnz = 0;
      bool unit = false;
      for (int q0 = 0; q0 < alg.b(); ++q0) {
        if (!alg.w(d, q0).is_zero()) {
          ++nnz;
          unit = alg.w(d, q0).is_one();
        }
      }
      degenerate = nnz == 0 || (nnz == 1 && unit);
    }
    if (!degenerate) return alg;
  }
  PR_REQUIRE_MSG(false, "could not sample a non-degenerate transform");
}

}  // namespace pathrouting::bilinear
