#include "pathrouting/bilinear/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace pathrouting::bilinear {

namespace {

/// Reads the next token, skipping whitespace and '#' comments.
bool next_token(std::istream& is, std::string& token) {
  while (is >> token) {
    if (token.front() == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    return true;
  }
  return false;
}

bool parse_rational(const std::string& token, Rational& out) {
  const auto slash = token.find('/');
  try {
    std::size_t used = 0;
    if (slash == std::string::npos) {
      const long long num = std::stoll(token, &used);
      if (used != token.size()) return false;
      out = Rational(num);
      return true;
    }
    const long long num = std::stoll(token.substr(0, slash), &used);
    if (used != slash) return false;
    const long long den = std::stoll(token.substr(slash + 1), &used);
    if (used != token.size() - slash - 1 || den == 0) return false;
    out = Rational(num, den);
    return true;
  } catch (...) {
    return false;
  }
}

bool read_table(std::istream& is, int rows, int cols,
                std::vector<Rational>& out, std::string& error,
                const char* label) {
  out.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             Rational(0));
  std::string token;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!next_token(is, token)) {
        error = std::string("unexpected end of input in table ") + label;
        return false;
      }
      if (!parse_rational(token,
                          out[static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(cols) +
                              static_cast<std::size_t>(c)])) {
        error = std::string("bad rational '") + token + "' in table " + label;
        return false;
      }
    }
  }
  return true;
}

}  // namespace

void to_text(const BilinearAlgorithm& alg, std::ostream& os) {
  os << "pathrouting-bilinear-v1\n";
  os << "name " << alg.name() << "\n";
  os << "n0 " << alg.n0() << "\n";
  os << "products " << alg.b() << "\n";
  os << "U\n";
  for (int q = 0; q < alg.b(); ++q) {
    for (int e = 0; e < alg.a(); ++e) {
      os << (e == 0 ? "" : " ") << alg.u(q, e);
    }
    os << "\n";
  }
  os << "V\n";
  for (int q = 0; q < alg.b(); ++q) {
    for (int e = 0; e < alg.a(); ++e) {
      os << (e == 0 ? "" : " ") << alg.v(q, e);
    }
    os << "\n";
  }
  os << "W\n";
  for (int d = 0; d < alg.a(); ++d) {
    for (int q = 0; q < alg.b(); ++q) {
      os << (q == 0 ? "" : " ") << alg.w(d, q);
    }
    os << "\n";
  }
}

ParseResult from_text(std::istream& is, bool verify) {
  std::string token;
  if (!next_token(is, token) || token != "pathrouting-bilinear-v1") {
    return {std::nullopt, "missing or unknown format header"};
  }
  std::string name = "unnamed";
  int n0 = 0, b = 0;
  std::vector<Rational> u, v, w;
  bool have_u = false, have_v = false, have_w = false;
  while (next_token(is, token)) {
    if (token == "name") {
      if (!next_token(is, name)) return {std::nullopt, "missing name value"};
    } else if (token == "n0") {
      if (!next_token(is, token)) return {std::nullopt, "missing n0 value"};
      n0 = std::atoi(token.c_str());
      if (n0 < 2) return {std::nullopt, "n0 must be at least 2"};
    } else if (token == "products") {
      if (!next_token(is, token)) {
        return {std::nullopt, "missing products value"};
      }
      b = std::atoi(token.c_str());
      if (b < 1) return {std::nullopt, "products must be positive"};
    } else if (token == "U" || token == "V" || token == "W") {
      if (n0 == 0 || b == 0) {
        return {std::nullopt, "n0 and products must precede the tables"};
      }
      const int a = n0 * n0;
      std::string error;
      if (token == "U") {
        if (!read_table(is, b, a, u, error, "U")) return {std::nullopt, error};
        have_u = true;
      } else if (token == "V") {
        if (!read_table(is, b, a, v, error, "V")) return {std::nullopt, error};
        have_v = true;
      } else {
        if (!read_table(is, a, b, w, error, "W")) return {std::nullopt, error};
        have_w = true;
      }
    } else {
      return {std::nullopt, "unknown directive '" + token + "'"};
    }
  }
  if (!have_u || !have_v || !have_w) {
    return {std::nullopt, "missing one of the U/V/W tables"};
  }
  BilinearAlgorithm alg(name, n0, b, std::move(u), std::move(v), std::move(w));
  if (verify && !alg.verify_brent()) {
    return {std::nullopt,
            "tables parsed but the Brent equations fail: this is not a "
            "correct matrix multiplication algorithm"};
  }
  return {std::move(alg), ""};
}

}  // namespace pathrouting::bilinear
