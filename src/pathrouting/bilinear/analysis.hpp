// Structural analysis of base algorithms: the properties the paper's
// hypotheses are stated in terms of.
//
//  * trivial rows  — a combination that is a single entry with
//    coefficient 1; in the CDAG these become *copy* vertices and induce
//    meta-vertices (Section 3 / Figure 2).
//  * single-use assumption — "every nontrivial linear combination of
//    elements of the input matrices is used in only one multiplication"
//    (Theorem 1). With per-product rows this fails exactly when two
//    products share an identical nontrivial row.
//  * encoding/decoding connectivity — the case split that defeats the
//    edge-expansion proof of [6] (Section 6, nuance 1).
//  * Lemma 1 precondition — each encoding graph has at least one
//    non-duplicated vertex (some product operand is a nontrivial
//    combination).
#pragma once

#include <vector>

#include "pathrouting/bilinear/bilinear.hpp"

namespace pathrouting::bilinear {

enum class Side { A, B };

/// True iff row q of the side's encoding matrix is a single entry with
/// coefficient exactly 1 (the operand is a verbatim copy of an input).
bool is_trivial_row(const BilinearAlgorithm& alg, Side side, int q);

/// Indices of products whose operand on `side` is a trivial row.
std::vector<int> trivial_rows(const BilinearAlgorithm& alg, Side side);

/// True iff no nontrivial encoding row (on either side) appears twice.
/// This is the Theorem 1 assumption in the canonical per-product CDAG:
/// each combination vertex feeds exactly one multiplication, and a
/// repeated nontrivial row would mean recomputing the same value.
bool satisfies_single_use_assumption(const BilinearAlgorithm& alg);

/// Number of connected components of the (undirected) depth-1 encoding
/// graph for `side`: vertices = a inputs + b operand vertices, edges
/// where the coefficient is nonzero. Isolated vertices (inputs unused by
/// every product) each count as a component.
int encoding_components(const BilinearAlgorithm& alg, Side side);

/// Number of connected components of the depth-1 decoding graph:
/// vertices = b products + a outputs, edges where W is nonzero.
int decoding_components(const BilinearAlgorithm& alg);

/// Lemma 1 precondition: not every vertex in the encoding graph for A is
/// duplicated, and similarly for B. In base-graph terms: each side has
/// at least one nontrivial row. (If it fails, the algorithm computes
/// linear combinations of only one input matrix and cannot be o(n^3);
/// see the discussion after Lemma 1.)
bool lemma1_precondition(const BilinearAlgorithm& alg);

/// Counts of base-graph arithmetic: additions to form all encoding
/// combinations plus additions in the decoding, assuming each row is
/// computed independently as a fan-in tree (nnz-1 additions per row; a
/// scalar multiple is not counted as an addition).
struct AdditionCounts {
  int encode_a = 0;
  int encode_b = 0;
  int decode = 0;
  [[nodiscard]] int total() const { return encode_a + encode_b + decode; }
};
AdditionCounts addition_counts(const BilinearAlgorithm& alg);

}  // namespace pathrouting::bilinear
