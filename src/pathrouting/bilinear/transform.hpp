// Sampling the space of Strassen-like algorithms: the isotropy group
// of the matrix multiplication tensor.
//
// If C = A B and P, Q, R are invertible n0 x n0 matrices, then
//   (P A Q^-1) (Q B R^-1) = P C R^-1,
// so any algorithm for matrix multiplication yields another one by
// absorbing the changes of basis into the encoding/decoding
// coefficients:
//   U'[q, :] = U[q, :] applied to A' = P^-1 (..) Q   etc.
// Concretely, if the original computes C = sum_q W_q (U_q . A)(V_q . B)
// then the transformed algorithm computes the product of A' and B' by
// evaluating the original on A = P^-1 A' Q, B = Q^-1 B' R and mapping
// the output C = P^-1 C' R, i.e. C' = P C R^-1.
//
// A further symmetry cyclically rotates the three tensor factors
// (A,B,C) -> (B^T, C^T, A^T) — together these generate a large family
// of pairwise-distinct correct base algorithms with the same rank b.
// Theorem 1 quantifies over all of them; the property-test suites use
// this sampler to probe the claim far beyond the hand-written catalog.
#pragma once

#include "pathrouting/bilinear/bilinear.hpp"
#include "pathrouting/support/prng.hpp"

namespace pathrouting::bilinear {

/// Small dense n0 x n0 rational matrix used for basis changes.
struct SquareMatrix {
  int n = 0;
  std::vector<Rational> entries;  // row-major
  [[nodiscard]] const Rational& at(int i, int j) const {
    return entries[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(j)];
  }
  Rational& at(int i, int j) {
    return entries[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(j)];
  }
  static SquareMatrix identity(int n);
};

/// Multiplies two square matrices.
SquareMatrix multiply(const SquareMatrix& x, const SquareMatrix& y);

/// Inverse via Gauss-Jordan over the rationals; aborts on singular
/// input (callers construct unimodular matrices, which never are).
SquareMatrix inverse(const SquareMatrix& m);

/// Random unimodular (determinant +-1) integer matrix: a product of
/// `steps` random elementary row operations with coefficients in
/// {-2..2} applied to the identity. Entries stay small.
SquareMatrix random_unimodular(int n, support::Xoshiro256& rng,
                               int steps = 6);

/// The basis-change symmetry: returns the algorithm computing
/// C' = A' B' via the original algorithm, where A' = P A Q^-1,
/// B' = Q B R^-1, C' = P C R^-1. Exact; correctness is preserved (and
/// re-checked by tests through the Brent equations).
BilinearAlgorithm transform_basis(const BilinearAlgorithm& alg,
                                  const SquareMatrix& p,
                                  const SquareMatrix& q,
                                  const SquareMatrix& r);

/// The cyclic symmetry of the matmul tensor:
/// <U,V,W>  ->  <V~, W~, U~> computing via C = A B  <=>  A^T = C^T B^T
/// rotated; concretely the new algorithm satisfies the Brent equations
/// whenever the original does.
BilinearAlgorithm rotate_tensor(const BilinearAlgorithm& alg);

/// Convenience: a pseudo-random correct Strassen-like algorithm derived
/// from `base` by random basis changes (and a random number of tensor
/// rotations). Deterministic in `seed`.
BilinearAlgorithm random_transform(const BilinearAlgorithm& base,
                                   std::uint64_t seed);

}  // namespace pathrouting::bilinear
