// Plain-text serialization of bilinear algorithms, so users can bring
// their own base algorithms (from AlphaTensor-style searches, FMM
// catalogs, hand derivations) without recompiling.
//
// Format (whitespace separated, '#' starts a comment to end of line):
//
//   pathrouting-bilinear-v1
//   name <identifier>
//   n0 <int>
//   products <int>
//   U            # b rows of a = n0^2 rationals ("3", "-1", "1/2")
//   <row 0 ...>
//   ...
//   V            # b rows of a rationals
//   ...
//   W            # a rows of b rationals (row d = output entry d)
//   ...
//
// from_text validates shape and (optionally) the Brent equations.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "pathrouting/bilinear/bilinear.hpp"

namespace pathrouting::bilinear {

/// Writes `alg` in the v1 text format.
void to_text(const BilinearAlgorithm& alg, std::ostream& os);

struct ParseResult {
  std::optional<BilinearAlgorithm> algorithm;
  std::string error;  // empty on success
};

/// Parses the v1 text format. With `verify` the Brent equations are
/// checked and failure is reported as a parse error (so a loaded
/// algorithm is guaranteed to actually multiply).
ParseResult from_text(std::istream& is, bool verify = true);

}  // namespace pathrouting::bilinear
