#include "pathrouting/bilinear/catalog.hpp"

#include <utility>

#include "pathrouting/support/check.hpp"

namespace pathrouting::bilinear {

namespace {

/// Sparse term: coefficient * entry. Entries use row-major flattening
/// d = i*n0 + j with 0-based i, j.
struct Term {
  int entry;
  int coeff;
};

/// Builds the dense row-major U/V table (b x a) from per-product sparse
/// rows.
std::vector<Rational> dense_rows(int b, int a,
                                 const std::vector<std::vector<Term>>& rows) {
  PR_REQUIRE(static_cast<int>(rows.size()) == b);
  std::vector<Rational> out(static_cast<std::size_t>(b) * a, Rational(0));
  for (int q = 0; q < b; ++q) {
    for (const Term& t : rows[static_cast<std::size_t>(q)]) {
      PR_REQUIRE(t.entry >= 0 && t.entry < a);
      out[static_cast<std::size_t>(q) * a + static_cast<std::size_t>(t.entry)] =
          Rational(t.coeff);
    }
  }
  return out;
}

/// Builds the dense row-major W table (a x b) from per-output sparse rows
/// (terms reference product indices).
std::vector<Rational> dense_cols(int a, int b,
                                 const std::vector<std::vector<Term>>& rows) {
  PR_REQUIRE(static_cast<int>(rows.size()) == a);
  std::vector<Rational> out(static_cast<std::size_t>(a) * b, Rational(0));
  for (int d = 0; d < a; ++d) {
    for (const Term& t : rows[static_cast<std::size_t>(d)]) {
      PR_REQUIRE(t.entry >= 0 && t.entry < b);
      out[static_cast<std::size_t>(d) * b + static_cast<std::size_t>(t.entry)] =
          Rational(t.coeff);
    }
  }
  return out;
}

}  // namespace

BilinearAlgorithm classical(int n0) {
  PR_REQUIRE(n0 >= 2);
  const int a = n0 * n0;
  const int b = n0 * n0 * n0;
  std::vector<Rational> u(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> v(static_cast<std::size_t>(b) * a, Rational(0));
  std::vector<Rational> w(static_cast<std::size_t>(a) * b, Rational(0));
  // Product q = (i, k, j) computes A(i,k) * B(k,j) and feeds C(i,j).
  for (int i = 0; i < n0; ++i) {
    for (int k = 0; k < n0; ++k) {
      for (int j = 0; j < n0; ++j) {
        const int q = (i * n0 + k) * n0 + j;
        u[static_cast<std::size_t>(q) * a +
          static_cast<std::size_t>(i * n0 + k)] = Rational(1);
        v[static_cast<std::size_t>(q) * a +
          static_cast<std::size_t>(k * n0 + j)] = Rational(1);
        w[static_cast<std::size_t>(i * n0 + j) * b +
          static_cast<std::size_t>(q)] = Rational(1);
      }
    }
  }
  return BilinearAlgorithm("classical" + std::to_string(n0), n0, b,
                           std::move(u), std::move(v), std::move(w));
}

BilinearAlgorithm strassen() {
  const int n0 = 2, a = 4, b = 7;
  // Entry indices: A11=0 A12=1 A21=2 A22=3 (same for B and C).
  const std::vector<std::vector<Term>> u_rows = {
      {{0, 1}, {3, 1}},    // M1: A11 + A22
      {{2, 1}, {3, 1}},    // M2: A21 + A22
      {{0, 1}},            // M3: A11
      {{3, 1}},            // M4: A22
      {{0, 1}, {1, 1}},    // M5: A11 + A12
      {{2, 1}, {0, -1}},   // M6: A21 - A11
      {{1, 1}, {3, -1}}};  // M7: A12 - A22
  const std::vector<std::vector<Term>> v_rows = {
      {{0, 1}, {3, 1}},    // M1: B11 + B22
      {{0, 1}},            // M2: B11
      {{1, 1}, {3, -1}},   // M3: B12 - B22
      {{2, 1}, {0, -1}},   // M4: B21 - B11
      {{3, 1}},            // M5: B22
      {{0, 1}, {1, 1}},    // M6: B11 + B12
      {{2, 1}, {3, 1}}};   // M7: B21 + B22
  const std::vector<std::vector<Term>> w_rows = {
      {{0, 1}, {3, 1}, {4, -1}, {6, 1}},   // C11 = M1 + M4 - M5 + M7
      {{2, 1}, {4, 1}},                    // C12 = M3 + M5
      {{1, 1}, {3, 1}},                    // C21 = M2 + M4
      {{0, 1}, {1, -1}, {2, 1}, {5, 1}}};  // C22 = M1 - M2 + M3 + M6
  return BilinearAlgorithm("strassen", n0, b, dense_rows(b, a, u_rows),
                           dense_rows(b, a, v_rows), dense_cols(a, b, w_rows));
}

BilinearAlgorithm winograd() {
  const int n0 = 2, a = 4, b = 7;
  // The 15-addition Strassen-Winograd variant, flattened to bilinear
  // form (the intermediate sums S1..S4, T1..T4, U1..U7 are expanded).
  const std::vector<std::vector<Term>> u_rows = {
      {{0, 1}},                            // M1: A11
      {{1, 1}},                            // M2: A12
      {{0, 1}, {1, 1}, {2, -1}, {3, -1}},  // M3: S4 = A11+A12-A21-A22
      {{3, 1}},                            // M4: A22
      {{2, 1}, {3, 1}},                    // M5: S1 = A21+A22
      {{0, -1}, {2, 1}, {3, 1}},           // M6: S2 = A21+A22-A11
      {{0, 1}, {2, -1}}};                  // M7: S3 = A11-A21
  const std::vector<std::vector<Term>> v_rows = {
      {{0, 1}},                            // M1: B11
      {{2, 1}},                            // M2: B21
      {{3, 1}},                            // M3: B22
      {{0, 1}, {1, -1}, {2, -1}, {3, 1}},  // M4: T4 = B11-B12-B21+B22
      {{0, -1}, {1, 1}},                   // M5: T1 = B12-B11
      {{0, 1}, {1, -1}, {3, 1}},           // M6: T2 = B22-B12+B11
      {{1, -1}, {3, 1}}};                  // M7: T3 = B22-B12
  const std::vector<std::vector<Term>> w_rows = {
      {{0, 1}, {1, 1}},                  // C11 = M1 + M2
      {{0, 1}, {2, 1}, {4, 1}, {5, 1}},  // C12 = M1 + M6 + M5 + M3
      {{0, 1}, {3, -1}, {5, 1}, {6, 1}},  // C21 = M1 + M6 + M7 - M4
      {{0, 1}, {4, 1}, {5, 1}, {6, 1}}};  // C22 = M1 + M6 + M7 + M5
  return BilinearAlgorithm("winograd", n0, b, dense_rows(b, a, u_rows),
                           dense_rows(b, a, v_rows), dense_cols(a, b, w_rows));
}

BilinearAlgorithm laderman() {
  const int n0 = 3, a = 9, b = 23;
  // A Laderman-type <3,3,3;23> algorithm. Entry indices are row-major:
  // A11=0 A12=1 A13=2 / A21=3 A22=4 A23=5 / A31=6 A32=7 A33=8.
  // Products m3 and m11 were completed by solving the output
  // polynomials; the whole table is verified against the Brent
  // equations in the test suite.
  const std::vector<std::vector<Term>> u_rows = {
      // m1: A11+A12+A13-A21-A22-A32-A33
      {{0, 1}, {1, 1}, {2, 1}, {3, -1}, {4, -1}, {7, -1}, {8, -1}},
      {{0, 1}, {3, -1}},          // m2: A11-A21
      {{4, 1}},                   // m3: A22
      {{0, -1}, {3, 1}, {4, 1}},  // m4: -A11+A21+A22
      {{3, 1}, {4, 1}},           // m5: A21+A22
      {{0, 1}},                   // m6: A11
      {{0, -1}, {6, 1}, {7, 1}},  // m7: -A11+A31+A32
      {{0, -1}, {6, 1}},          // m8: -A11+A31
      {{6, 1}, {7, 1}},           // m9: A31+A32
      // m10: A11+A12+A13-A22-A23-A31-A32
      {{0, 1}, {1, 1}, {2, 1}, {4, -1}, {5, -1}, {6, -1}, {7, -1}},
      {{7, 1}},                   // m11: A32
      {{2, -1}, {7, 1}, {8, 1}},  // m12: -A13+A32+A33
      {{2, 1}, {8, -1}},          // m13: A13-A33
      {{2, 1}},                   // m14: A13
      {{7, 1}, {8, 1}},           // m15: A32+A33
      {{2, -1}, {4, 1}, {5, 1}},  // m16: -A13+A22+A23
      {{2, 1}, {5, -1}},          // m17: A13-A23
      {{4, 1}, {5, 1}},           // m18: A22+A23
      {{1, 1}},                   // m19: A12
      {{5, 1}},                   // m20: A23
      {{3, 1}},                   // m21: A21
      {{6, 1}},                   // m22: A31
      {{8, 1}}};                  // m23: A33
  const std::vector<std::vector<Term>> v_rows = {
      {{4, 1}},                   // m1: B22
      {{1, -1}, {4, 1}},          // m2: B22-B12
      // m3: -B11+B12+B21-B22-B23-B31+B33
      {{0, -1}, {1, 1}, {3, 1}, {4, -1}, {5, -1}, {6, -1}, {8, 1}},
      {{0, 1}, {1, -1}, {4, 1}},  // m4: B11-B12+B22
      {{0, -1}, {1, 1}},          // m5: -B11+B12
      {{0, 1}},                   // m6: B11
      {{0, 1}, {2, -1}, {5, 1}},  // m7: B11-B13+B23
      {{2, 1}, {5, -1}},          // m8: B13-B23
      {{0, -1}, {2, 1}},          // m9: -B11+B13
      {{5, 1}},                   // m10: B23
      // m11: -B11+B13+B21-B22-B23-B31+B32
      {{0, -1}, {2, 1}, {3, 1}, {4, -1}, {5, -1}, {6, -1}, {7, 1}},
      {{4, 1}, {6, 1}, {7, -1}},  // m12: B22+B31-B32
      {{4, 1}, {7, -1}},          // m13: B22-B32
      {{6, 1}},                   // m14: B31
      {{6, -1}, {7, 1}},          // m15: -B31+B32
      {{5, 1}, {6, 1}, {8, -1}},  // m16: B23+B31-B33
      {{5, 1}, {8, -1}},          // m17: B23-B33
      {{6, -1}, {8, 1}},          // m18: -B31+B33
      {{3, 1}},                   // m19: B21
      {{7, 1}},                   // m20: B32
      {{2, 1}},                   // m21: B13
      {{1, 1}},                   // m22: B12
      {{8, 1}}};                  // m23: B33
  const std::vector<std::vector<Term>> w_rows = {
      {{5, 1}, {13, 1}, {18, 1}},  // C11 = m6+m14+m19
      // C12 = m1+m4+m5+m6+m12+m14+m15
      {{0, 1}, {3, 1}, {4, 1}, {5, 1}, {11, 1}, {13, 1}, {14, 1}},
      // C13 = m6+m7+m9+m10+m14+m16+m18
      {{5, 1}, {6, 1}, {8, 1}, {9, 1}, {13, 1}, {15, 1}, {17, 1}},
      // C21 = m2+m3+m4+m6+m14+m16+m17
      {{1, 1}, {2, 1}, {3, 1}, {5, 1}, {13, 1}, {15, 1}, {16, 1}},
      // C22 = m2+m4+m5+m6+m20
      {{1, 1}, {3, 1}, {4, 1}, {5, 1}, {19, 1}},
      // C23 = m14+m16+m17+m18+m21
      {{13, 1}, {15, 1}, {16, 1}, {17, 1}, {20, 1}},
      // C31 = m6+m7+m8+m11+m12+m13+m14
      {{5, 1}, {6, 1}, {7, 1}, {10, 1}, {11, 1}, {12, 1}, {13, 1}},
      // C32 = m12+m13+m14+m15+m22
      {{11, 1}, {12, 1}, {13, 1}, {14, 1}, {21, 1}},
      // C33 = m6+m7+m8+m9+m23
      {{5, 1}, {6, 1}, {7, 1}, {8, 1}, {22, 1}}};
  return BilinearAlgorithm("laderman", n0, b, dense_rows(b, a, u_rows),
                           dense_rows(b, a, v_rows), dense_cols(a, b, w_rows));
}

BilinearAlgorithm strassen_squared() {
  BilinearAlgorithm alg = tensor_product(strassen(), strassen());
  alg.set_name("strassen_squared");
  return alg;
}

BilinearAlgorithm classical2_x_strassen() {
  BilinearAlgorithm alg = tensor_product(classical(2), strassen());
  alg.set_name("classical2_x_strassen");
  return alg;
}

BilinearAlgorithm strassen_x_classical2() {
  BilinearAlgorithm alg = tensor_product(strassen(), classical(2));
  alg.set_name("strassen_x_classical2");
  return alg;
}

BilinearAlgorithm winograd_squared() {
  BilinearAlgorithm alg = tensor_product(winograd(), winograd());
  alg.set_name("winograd_squared");
  return alg;
}

BilinearAlgorithm strassen_x_laderman() {
  BilinearAlgorithm alg = tensor_product(strassen(), laderman());
  alg.set_name("strassen_x_laderman");
  return alg;
}

std::vector<std::string> catalog_names() {
  return {"classical2",       "classical3",
          "strassen",         "winograd",
          "laderman",         "strassen_squared",
          "classical2_x_strassen", "strassen_x_classical2",
          "winograd_squared", "strassen_x_laderman"};
}

BilinearAlgorithm by_name(const std::string& name) {
  if (name == "classical2") return classical(2);
  if (name == "classical3") return classical(3);
  if (name == "strassen") return strassen();
  if (name == "winograd") return winograd();
  if (name == "laderman") return laderman();
  if (name == "strassen_squared") return strassen_squared();
  if (name == "classical2_x_strassen") return classical2_x_strassen();
  if (name == "strassen_x_classical2") return strassen_x_classical2();
  if (name == "winograd_squared") return winograd_squared();
  if (name == "strassen_x_laderman") return strassen_x_laderman();
  PR_REQUIRE_MSG(false, "unknown catalog algorithm name");
}

}  // namespace pathrouting::bilinear
