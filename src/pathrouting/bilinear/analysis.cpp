#include "pathrouting/bilinear/analysis.hpp"

#include <numeric>

#include "pathrouting/support/check.hpp"

namespace pathrouting::bilinear {

namespace {

const Rational& coeff(const BilinearAlgorithm& alg, Side side, int q, int e) {
  return side == Side::A ? alg.u(q, e) : alg.v(q, e);
}

/// Union-find over `n` elements; small and local to this translation
/// unit (the CDAG module has its own, richer one).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int x, int y) { parent_[static_cast<std::size_t>(find(x))] = find(y); }
  int components() {
    int count = 0;
    for (int x = 0; x < static_cast<int>(parent_.size()); ++x) {
      if (find(x) == x) ++count;
    }
    return count;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

bool is_trivial_row(const BilinearAlgorithm& alg, Side side, int q) {
  int nonzeros = 0;
  bool unit = false;
  for (int e = 0; e < alg.a(); ++e) {
    const Rational& c = coeff(alg, side, q, e);
    if (!c.is_zero()) {
      ++nonzeros;
      unit = c.is_one();
    }
  }
  return nonzeros == 1 && unit;
}

std::vector<int> trivial_rows(const BilinearAlgorithm& alg, Side side) {
  std::vector<int> out;
  for (int q = 0; q < alg.b(); ++q) {
    if (is_trivial_row(alg, side, q)) out.push_back(q);
  }
  return out;
}

bool satisfies_single_use_assumption(const BilinearAlgorithm& alg) {
  for (const Side side : {Side::A, Side::B}) {
    for (int q1 = 0; q1 < alg.b(); ++q1) {
      if (is_trivial_row(alg, side, q1)) continue;
      for (int q2 = q1 + 1; q2 < alg.b(); ++q2) {
        bool equal = true;
        for (int e = 0; e < alg.a() && equal; ++e) {
          equal = coeff(alg, side, q1, e) == coeff(alg, side, q2, e);
        }
        if (equal) return false;
      }
    }
  }
  return true;
}

int encoding_components(const BilinearAlgorithm& alg, Side side) {
  // Vertices 0..a-1 are inputs, a..a+b-1 are the operand vertices.
  UnionFind uf(alg.a() + alg.b());
  for (int q = 0; q < alg.b(); ++q) {
    for (int e = 0; e < alg.a(); ++e) {
      if (!coeff(alg, side, q, e).is_zero()) uf.unite(e, alg.a() + q);
    }
  }
  return uf.components();
}

int decoding_components(const BilinearAlgorithm& alg) {
  // Vertices 0..b-1 are products, b..b+a-1 are outputs.
  UnionFind uf(alg.b() + alg.a());
  for (int d = 0; d < alg.a(); ++d) {
    for (int q = 0; q < alg.b(); ++q) {
      if (!alg.w(d, q).is_zero()) uf.unite(q, alg.b() + d);
    }
  }
  return uf.components();
}

bool lemma1_precondition(const BilinearAlgorithm& alg) {
  for (const Side side : {Side::A, Side::B}) {
    bool has_nontrivial = false;
    for (int q = 0; q < alg.b() && !has_nontrivial; ++q) {
      has_nontrivial = !is_trivial_row(alg, side, q);
    }
    if (!has_nontrivial) return false;
  }
  return true;
}

AdditionCounts addition_counts(const BilinearAlgorithm& alg) {
  AdditionCounts counts;
  for (int q = 0; q < alg.b(); ++q) {
    int nnz_u = 0, nnz_v = 0;
    for (int e = 0; e < alg.a(); ++e) {
      if (!alg.u(q, e).is_zero()) ++nnz_u;
      if (!alg.v(q, e).is_zero()) ++nnz_v;
    }
    if (nnz_u > 1) counts.encode_a += nnz_u - 1;
    if (nnz_v > 1) counts.encode_b += nnz_v - 1;
  }
  for (int d = 0; d < alg.a(); ++d) {
    int nnz_w = 0;
    for (int q = 0; q < alg.b(); ++q) {
      if (!alg.w(d, q).is_zero()) ++nnz_w;
    }
    if (nnz_w > 1) counts.decode += nnz_w - 1;
  }
  return counts;
}

}  // namespace pathrouting::bilinear
