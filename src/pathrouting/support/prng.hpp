// Deterministic pseudo-random number generation.
//
// All experiments in this repository are reproducible: every consumer of
// randomness takes an explicit seed, and the generator is a fixed,
// platform-independent xoshiro256** (seeded via splitmix64), not
// std::mt19937 whose distributions vary across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's unbiased multiply-shift.
  std::uint64_t below(std::uint64_t bound) {
    PR_REQUIRE(bound > 0);
    // Rejection sampling on the low 64 bits of the 128-bit product.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PR_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pathrouting::support
