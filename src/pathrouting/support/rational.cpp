#include "pathrouting/support/rational.hpp"

#include <ostream>

namespace pathrouting::support {

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.is_integer()) os << '/' << r.den();
  return os;
}

}  // namespace pathrouting::support
