#include "pathrouting/support/debug_hooks.hpp"

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

namespace {

DebugHookFn g_hooks[static_cast<int>(DebugHookPoint::kNumHookPoints)] = {};

int index_of(DebugHookPoint point) {
  const int i = static_cast<int>(point);
  PR_REQUIRE_MSG(
      i >= 0 && i < static_cast<int>(DebugHookPoint::kNumHookPoints),
      "unknown debug hook point");
  return i;
}

}  // namespace

DebugHookFn set_debug_hook(DebugHookPoint point, DebugHookFn fn) {
  const int i = index_of(point);
  const DebugHookFn previous = g_hooks[i];
  g_hooks[i] = fn;
  return previous;
}

void run_debug_hook(DebugHookPoint point, const void* object) {
  const DebugHookFn fn = g_hooks[index_of(point)];
  if (fn != nullptr) fn(object);
}

}  // namespace pathrouting::support
