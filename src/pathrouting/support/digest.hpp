// FNV-1a digests — the one hashing primitive of the repository.
//
// The golden corpus pins entire per-vertex hit arrays behind a single
// 64-bit FNV-1a digest, and the certificate service addresses its
// content store by the digest of the serialized algorithm. Both uses
// require the SAME definition: a digest stored by the corpus must be
// reproducible by the service and vice versa, so the helper that
// historically lived inside tests/test_golden.cpp is promoted here and
// both sides include it. The constants are pinned by
// test_support.cpp (DigestTest) — changing them silently invalidates
// every committed golden file and every on-disk certificate, which is
// exactly the drift the pin exists to catch.
//
// Byte order is fixed, not host-dependent: u64 values are fed as 8
// little-endian bytes, so digests are identical on every platform the
// binary certificate format supports (the format itself rejects
// foreign-endian files; see service/certificate.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace pathrouting::support {

/// FNV-1a 64-bit offset basis and prime (the standard parameters).
inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over raw bytes, continuing from `state` (chain calls to
/// digest discontiguous regions as one stream).
[[nodiscard]] std::uint64_t fnv1a_bytes(
    const void* data, std::size_t size,
    std::uint64_t state = kFnv1aOffsetBasis);

/// FNV-1a over u64 values, each fed as 8 little-endian bytes — the
/// golden-corpus hit-array digest.
[[nodiscard]] std::uint64_t fnv1a_words(
    std::span<const std::uint64_t> values,
    std::uint64_t state = kFnv1aOffsetBasis);

/// FNV-1a over the bytes of a string (serialized algorithms).
[[nodiscard]] std::uint64_t fnv1a_text(std::string_view text);

}  // namespace pathrouting::support
