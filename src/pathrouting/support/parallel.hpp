// Deterministic parallel execution substrate.
//
// Every count this library produces is a correctness claim, so the
// parallel primitives are designed for bit-identical results at ANY
// thread count (PR_THREADS env var; 1 restores serial execution):
//
//   * for_chunks / parallel_for — the iteration space is split into
//     FIXED chunks of size `grain` (boundaries depend only on the range
//     and grain, never on the thread count); chunks are claimed by a
//     shared atomic cursor. Safe whenever chunks write disjoint slots.
//   * parallel_reduce — each fixed chunk maps to a value stored in a
//     per-chunk slot; slots are folded IN CHUNK ORDER after the loop,
//     so the merge sequence is identical to the serial one.
//   * sharded_accumulate — one accumulator per worker (for large
//     accumulators such as per-vertex hit arrays, where a per-chunk
//     copy would be too expensive), folded in worker-id order. Which
//     worker runs which chunk is scheduling-dependent, so this is
//     deterministic only when the merge is EXACTLY commutative and
//     associative (integer sums, max, logical and/or — not floats).
//
// The pool is work-stealing-free by construction: there are no deques
// to steal from, just the shared cursor over fixed chunks. Nested
// parallel calls from inside a chunk body run inline on the calling
// worker.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support::parallel {

/// Resolved thread count: the PR_THREADS environment variable if set
/// (clamped to [1, 1024]), otherwise std::thread::hardware_concurrency.
int num_threads();

/// Test hook: force the thread count to `n` (>= 1) regardless of the
/// environment; 0 restores the environment-derived value.
void set_thread_override(int n);

/// RAII form of set_thread_override for tests.
class ThreadOverride {
 public:
  explicit ThreadOverride(int n) { set_thread_override(n); }
  ~ThreadOverride() { set_thread_override(0); }
  ThreadOverride(const ThreadOverride&) = delete;
  ThreadOverride& operator=(const ThreadOverride&) = delete;
};

/// Invokes fn(lo, hi, worker) for every fixed chunk
/// [begin + i*grain, min(begin + (i+1)*grain, end)) of the range.
/// `worker` is in [0, num_threads()); worker 0 is the calling thread.
/// Chunk boundaries depend only on (begin, end, grain). Runs inline on
/// the caller when one thread (or one chunk) suffices or when already
/// inside a parallel region.
void for_chunks(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& fn);

/// Chunked loop without worker ids: fn(lo, hi) over fixed chunks.
/// Chunks must write disjoint state.
template <typename Fn>
void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  Fn&& fn) {
  for_chunks(begin, end, grain,
             [&fn](std::uint64_t lo, std::uint64_t hi, int) { fn(lo, hi); });
}

/// Deterministic chunked reduction: map(lo, hi) -> T per fixed chunk,
/// folded in chunk order via merge(acc, chunk_value). The merge order
/// is the serial order regardless of thread count.
template <typename T, typename MapFn, typename MergeFn>
T parallel_reduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  T init, const MapFn& map, const MergeFn& merge) {
  if (end <= begin) return init;
  PR_REQUIRE(grain >= 1);
  const std::uint64_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> slots(num_chunks);
  for_chunks(begin, end, grain,
             [&](std::uint64_t lo, std::uint64_t hi, int) {
               slots[(lo - begin) / grain] = map(lo, hi);
             });
  T acc = std::move(init);
  for (T& slot : slots) merge(acc, slot);
  return acc;
}

/// Worker-sharded accumulation for accumulators too large to copy per
/// chunk (per-vertex hit arrays). make() constructs one accumulator per
/// participating worker; body(acc, lo, hi) folds a fixed chunk into the
/// worker's accumulator; shards are merged in worker-id order via
/// merge(target, shard). Deterministic only for exactly commutative
/// merges (integer +, max, &&); see the header comment.
template <typename Acc, typename MakeFn, typename BodyFn, typename MergeFn>
Acc sharded_accumulate(std::uint64_t begin, std::uint64_t end,
                       std::uint64_t grain, const MakeFn& make,
                       const BodyFn& body, const MergeFn& merge) {
  std::vector<std::unique_ptr<Acc>> shards(
      static_cast<std::size_t>(num_threads()));
  for_chunks(begin, end, grain,
             [&](std::uint64_t lo, std::uint64_t hi, int worker) {
               auto& shard = shards[static_cast<std::size_t>(worker)];
               if (!shard) shard = std::make_unique<Acc>(make());
               body(*shard, lo, hi);
             });
  Acc result = make();
  for (auto& shard : shards) {
    if (shard) merge(result, *shard);
  }
  return result;
}

}  // namespace pathrouting::support::parallel
