// Deterministic parallel execution substrate.
//
// Every count this library produces is a correctness claim, so the
// parallel primitives are designed for bit-identical results at ANY
// thread count (PR_THREADS env var; 1 restores serial execution):
//
//   * for_chunks / parallel_for — the iteration space is split into
//     FIXED chunks of size `grain` (boundaries depend only on the range
//     and grain, never on the thread count); chunks are claimed by a
//     shared atomic cursor. Safe whenever chunks write disjoint slots.
//   * parallel_reduce — each fixed chunk maps to a value stored in a
//     per-chunk slot; slots are folded IN CHUNK ORDER after the loop,
//     so the merge sequence is identical to the serial one.
//   * sharded_accumulate — one accumulator per worker (for large
//     accumulators such as per-vertex hit arrays, where a per-chunk
//     copy would be too expensive), folded in worker-id order. Which
//     worker runs which chunk is scheduling-dependent, so this is
//     deterministic only when the merge is EXACTLY commutative and
//     associative (integer sums, max, logical and/or — not floats).
//   * HitCounter — a single shared counter array updated through
//     relaxed atomics. For pure scatter-add accumulation this beats
//     per-worker shards: no per-worker allocation/zero/merge, and the
//     cache working set does not grow with the thread count (the fix
//     for the oversubscribed-machine regression; see the class docs).
//   * work_grain — deterministic chunk sizing from an estimated
//     per-item cost; small jobs collapse to one chunk and run inline.
//
// The pool is work-stealing-free by construction: there are no deques
// to steal from, just the shared cursor over fixed chunks. Nested
// parallel calls from inside a chunk body run inline on the calling
// worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support::parallel {

/// Resolved thread count: the PR_THREADS environment variable if set
/// (clamped to [1, 1024]), otherwise std::thread::hardware_concurrency.
int num_threads();

/// Test hook: force the thread count to `n` (>= 1) regardless of the
/// environment; 0 restores the environment-derived value.
void set_thread_override(int n);

/// Threads that actually participate in a parallel region: the
/// override when forced (tests need exact interleavings), otherwise
/// num_threads() capped at the hardware concurrency — oversubscribing
/// a CPU-bound pool only adds context switches, and every result is
/// chunk-deterministic regardless of width.
int execution_width();

/// RAII form of set_thread_override for tests.
class ThreadOverride {
 public:
  explicit ThreadOverride(int n) { set_thread_override(n); }
  ~ThreadOverride() { set_thread_override(0); }
  ThreadOverride(const ThreadOverride&) = delete;
  ThreadOverride& operator=(const ThreadOverride&) = delete;
};

/// Invokes fn(lo, hi, worker) for every fixed chunk
/// [begin + i*grain, min(begin + (i+1)*grain, end)) of the range.
/// `worker` is in [0, num_threads()); worker 0 is the calling thread.
/// Chunk boundaries depend only on (begin, end, grain). Runs inline on
/// the caller when one thread (or one chunk) suffices or when already
/// inside a parallel region.
void for_chunks(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& fn);

/// Chunked loop without worker ids: fn(lo, hi) over fixed chunks.
/// Chunks must write disjoint state.
template <typename Fn>
void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  Fn&& fn) {
  for_chunks(begin, end, grain,
             [&fn](std::uint64_t lo, std::uint64_t hi, int) { fn(lo, hi); });
}

/// Deterministic chunked reduction: map(lo, hi) -> T per fixed chunk,
/// folded in chunk order via merge(acc, chunk_value). The merge order
/// is the serial order regardless of thread count.
template <typename T, typename MapFn, typename MergeFn>
T parallel_reduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  T init, const MapFn& map, const MergeFn& merge) {
  if (end <= begin) return init;
  PR_REQUIRE(grain >= 1);
  const std::uint64_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> slots(num_chunks);
  for_chunks(begin, end, grain,
             [&](std::uint64_t lo, std::uint64_t hi, int) {
               slots[(lo - begin) / grain] = map(lo, hi);
             });
  T acc = std::move(init);
  for (T& slot : slots) merge(acc, slot);
  return acc;
}

/// Deterministic work-based grain: chunks hold roughly
/// `target_chunk_cost / per_item_cost` items, clamped so a range never
/// splits into more than 1024 chunks. The result depends only on the
/// range and the (caller-estimated) per-item cost — never on the thread
/// count — so chunk boundaries, and with them every chunk-ordered fold,
/// stay bit-identical at any PR_THREADS. Jobs whose total cost is below
/// one target chunk collapse to a single chunk and run inline, which
/// keeps tiny verifications (small k) free of pool overhead.
std::uint64_t work_grain(std::uint64_t range, std::uint64_t per_item_cost,
                         std::uint64_t target_chunk_cost = 65536);

/// Shared per-index counter array for parallel scatter accumulation
/// (per-vertex hit counts). All workers add into ONE zero-initialized
/// array through relaxed atomics: integer addition is exactly
/// commutative, so the final counts are bit-identical at any thread
/// count, and — unlike per-worker shard arrays — the memory footprint
/// is that of the result alone. That is what fixes the
/// parallel-slower-than-serial regression on few-core machines: with
/// per-worker shards every context switch swapped one worker's
/// multi-megabyte hit array out of cache for another's; the shared
/// array keeps the working set identical at every thread count. There
/// is no per-worker allocation, zeroing, or merge pass either.
class HitCounter {
 public:
  explicit HitCounter(std::uint64_t n) : counts_(n, 0) {}

  void add(std::uint64_t idx, std::uint64_t delta = 1) {
    PR_DCHECK_MSG(idx < counts_.size(), "HitCounter::add: index out of range");
    std::atomic_ref<std::uint64_t>(counts_[idx])
        .fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t size() const { return counts_.size(); }

  /// Moves the counts out as a plain array. Call only after the
  /// parallel region completed (for_chunks joins before returning).
  [[nodiscard]] std::vector<std::uint64_t> take() {
    return std::move(counts_);
  }

 private:
  std::vector<std::uint64_t> counts_;
};

/// Worker-sharded accumulation for accumulators too large to copy per
/// chunk (per-vertex hit arrays). make() constructs one accumulator per
/// participating worker; body(acc, lo, hi) folds a fixed chunk into the
/// worker's accumulator; shards are merged in worker-id order via
/// merge(target, shard). Deterministic only for exactly commutative
/// merges (integer +, max, &&); see the header comment.
template <typename Acc, typename MakeFn, typename BodyFn, typename MergeFn>
Acc sharded_accumulate(std::uint64_t begin, std::uint64_t end,
                       std::uint64_t grain, const MakeFn& make,
                       const BodyFn& body, const MergeFn& merge) {
  std::vector<std::unique_ptr<Acc>> shards(
      static_cast<std::size_t>(num_threads()));
  for_chunks(begin, end, grain,
             [&](std::uint64_t lo, std::uint64_t hi, int worker) {
               auto& shard = shards[static_cast<std::size_t>(worker)];
               if (!shard) shard = std::make_unique<Acc>(make());
               body(*shard, lo, hi);
             });
  Acc result = make();
  for (auto& shard : shards) {
    if (shard) merge(result, *shard);
  }
  return result;
}

}  // namespace pathrouting::support::parallel
