#include "pathrouting/support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace pathrouting::support::parallel {

namespace {

int env_threads() {
  if (const char* env = std::getenv("PR_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n < 1024 ? n : 1024;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::atomic<int> g_override{0};

int hardware_width() {
  static const int hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n >= 1 ? static_cast<int>(n) : 1;
  }();
  return hw;
}

// True on pool worker threads and inside a caller's participation in a
// parallel region: nested parallel calls run inline.
thread_local bool t_in_parallel_region = false;

/// Lazily-spawned persistent pool. A job is a chunked range with a
/// shared atomic cursor; participating threads (the caller plus up to
/// num_threads()-1 workers) claim chunks until the cursor runs out.
/// Workers spawned for a high thread count simply sit out jobs issued
/// with a lower count, so set_thread_override can move both ways
/// without joining threads.
class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool;  // leaked: workers may outlive statics
    return *pool;
  }

  void run(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
           const std::function<void(std::uint64_t, std::uint64_t, int)>& fn,
           int threads) {
    std::unique_lock<std::mutex> lock(job_mutex_);
    ensure_workers(threads - 1);
    {
      std::lock_guard<std::mutex> state(mutex_);
      job_fn_ = &fn;
      job_end_ = end;
      job_grain_ = grain;
      job_workers_ = threads - 1;
      cursor_.store(begin, std::memory_order_relaxed);
      active_.store(threads, std::memory_order_relaxed);
      ++job_seq_;
    }
    cv_.notify_all();
    participate(fn, 0);
    {
      std::unique_lock<std::mutex> state(mutex_);
      done_cv_.wait(state, [&] {
        return active_.load(std::memory_order_acquire) == 0;
      });
      job_fn_ = nullptr;
    }
  }

 private:
  Pool() = default;

  void ensure_workers(int count) {
    while (static_cast<int>(workers_.size()) < count) {
      const int id = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  void participate(
      const std::function<void(std::uint64_t, std::uint64_t, int)>& fn,
      int worker_id) {
    t_in_parallel_region = true;
    while (true) {
      const std::uint64_t lo =
          cursor_.fetch_add(job_grain_, std::memory_order_relaxed);
      if (lo >= job_end_) break;
      const std::uint64_t hi =
          job_end_ - lo < job_grain_ ? job_end_ : lo + job_grain_;
      fn(lo, hi, worker_id);
    }
    t_in_parallel_region = false;
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> state(mutex_);
      done_cv_.notify_all();
    }
  }

  void worker_loop(int id) {
    std::uint64_t seen_seq = 0;
    while (true) {
      const std::function<void(std::uint64_t, std::uint64_t, int)>* fn =
          nullptr;
      {
        std::unique_lock<std::mutex> state(mutex_);
        cv_.wait(state, [&] { return job_seq_ != seen_seq; });
        seen_seq = job_seq_;
        if (id > job_workers_) {
          // Not part of this job (thread count lowered): skip without
          // touching the active counter.
          continue;
        }
        fn = job_fn_;
      }
      if (fn != nullptr) participate(*fn, id);
    }
  }

  // Serializes whole jobs (parallel regions entered from distinct
  // threads queue up rather than interleave).
  std::mutex job_mutex_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  // The pool itself is the one sanctioned owner of raw threads.
  std::vector<std::thread> workers_;  // pr-static: allow(static.raw-thread)

  const std::function<void(std::uint64_t, std::uint64_t, int)>* job_fn_ =
      nullptr;
  std::uint64_t job_end_ = 0;
  std::uint64_t job_grain_ = 1;
  int job_workers_ = 0;
  std::uint64_t job_seq_ = 0;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<int> active_{0};
};

}  // namespace

int num_threads() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 1) return forced;
  static const int resolved = env_threads();
  return resolved;
}

void set_thread_override(int n) {
  PR_REQUIRE(n >= 0);
  g_override.store(n, std::memory_order_relaxed);
}

int execution_width() {
  // Results are chunk-deterministic, so running fewer threads than
  // requested changes nothing but speed — and oversubscribing a
  // CPU-bound pool past the hardware only adds context switches and
  // cache evictions (PR_THREADS=8 on a 1-core box must not run slower
  // than PR_THREADS=1). Test overrides stay exact: forcing 7 threads
  // on a small machine is how the determinism tests and TSan exercise
  // real interleavings.
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 1) return forced;
  const int requested = num_threads();
  const int hw = hardware_width();
  return requested < hw ? requested : hw;
}

std::uint64_t work_grain(std::uint64_t range, std::uint64_t per_item_cost,
                         std::uint64_t target_chunk_cost) {
  PR_REQUIRE(per_item_cost >= 1);
  PR_REQUIRE(target_chunk_cost >= 1);
  if (range == 0) return 1;
  std::uint64_t grain = target_chunk_cost / per_item_cost;
  if (grain < 1) grain = 1;
  // Cap the chunk count: past ~1024 chunks the cursor traffic buys no
  // extra load balance. (range + 1023) / 1024 items per chunk minimum.
  const std::uint64_t min_grain = (range + 1023) / 1024;
  return grain < min_grain ? min_grain : grain;
}

void for_chunks(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t, int)>& fn) {
  if (end <= begin) return;
  PR_REQUIRE(grain >= 1);
  const int threads = execution_width();
  const std::uint64_t num_chunks = (end - begin + grain - 1) / grain;
  if (threads == 1 || num_chunks == 1 || t_in_parallel_region) {
    for (std::uint64_t lo = begin; lo < end; lo += grain) {
      fn(lo, end - lo < grain ? end : lo + grain, 0);
    }
    return;
  }
  Pool::instance().run(begin, end, grain, fn, threads);
}

}  // namespace pathrouting::support::parallel
