#include "pathrouting/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PR_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  PR_REQUIRE_MSG(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align everything; numeric tables read best that way and
      // left text columns are typically first and short.
      os.width(static_cast<std::streamsize>(width[c]));
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_sci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

}  // namespace pathrouting::support
