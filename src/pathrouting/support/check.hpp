// Contract-checking macros (C++ Core Guidelines I.6 / I.8 style).
//
// PR_REQUIRE  - precondition on the caller; always on.
// PR_ENSURE   - postcondition promised to the caller; always on.
// PR_ASSERT   - internal invariant; always on (this library's correctness
//               claims are the product, so checks stay enabled in release).
// PR_DCHECK   - expensive internal check, compiled out unless
//               PATHROUTING_DEBUG_CHECKS is defined.
// PR_DCHECK_MSG - PR_DCHECK with a triager-facing message; prefer this
//               for any condition whose bare expression does not name
//               the violated paper invariant.
// PR_UNREACHABLE - marks control flow that a preceding contract rules
//               out (exhaustive switches, loops that must return);
//               always on, and usable as the tail of a non-void
//               function because it never returns.
//
// All failures print the condition, a formatted message, and abort. The
// library never throws for contract violations: a violated contract is a
// bug, not a recoverable condition.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pathrouting::support {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line,
                                          const char* msg) {
  std::fprintf(stderr, "[pathrouting] %s failed: %s\n  at %s:%d\n", kind, cond,
               file, line);
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace pathrouting::support

#define PR_CHECK_IMPL(kind, cond, msg)                                       \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::pathrouting::support::contract_failure(kind, #cond, __FILE__,        \
                                               __LINE__, msg);               \
    }                                                                        \
  } while (false)

#define PR_REQUIRE(cond) PR_CHECK_IMPL("precondition", cond, "")
#define PR_REQUIRE_MSG(cond, msg) PR_CHECK_IMPL("precondition", cond, msg)
#define PR_ENSURE(cond) PR_CHECK_IMPL("postcondition", cond, "")
#define PR_ENSURE_MSG(cond, msg) PR_CHECK_IMPL("postcondition", cond, msg)
#define PR_ASSERT(cond) PR_CHECK_IMPL("invariant", cond, "")
#define PR_ASSERT_MSG(cond, msg) PR_CHECK_IMPL("invariant", cond, msg)

#define PR_UNREACHABLE()                                                     \
  ::pathrouting::support::contract_failure(                                  \
      "unreachable", "PR_UNREACHABLE()", __FILE__, __LINE__,                 \
      "control flow reached a branch ruled out by a prior contract")

#if defined(PATHROUTING_DEBUG_CHECKS)
#define PR_DCHECK(cond) PR_CHECK_IMPL("debug invariant", cond, "")
#define PR_DCHECK_MSG(cond, msg) PR_CHECK_IMPL("debug invariant", cond, msg)
#else
#define PR_DCHECK(cond) \
  do {                  \
  } while (false)
#define PR_DCHECK_MSG(cond, msg) \
  do {                           \
  } while (false)
#endif
