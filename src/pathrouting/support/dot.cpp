#include "pathrouting/support/dot.hpp"

#include <ostream>
#include <vector>

namespace pathrouting::support {

void DotWriter::write(std::ostream& os, const VertexAttr& vertex_attr,
                      const EdgeVisitor& for_each_edge) const {
  os << "digraph \"" << name_ << "\" {\n";
  if (!preamble_.empty()) os << "  " << preamble_ << "\n";
  std::vector<bool> present(num_vertices_, false);
  for (std::uint32_t v = 0; v < num_vertices_; ++v) {
    const std::string attr = vertex_attr(v);
    if (attr.empty()) continue;
    present[v] = true;
    os << "  v" << v << " [" << attr << "];\n";
  }
  for_each_edge([&](std::uint32_t from, std::uint32_t to,
                    const std::string& attr) {
    if (!present[from] || !present[to]) return;
    os << "  v" << from << " -> v" << to;
    if (!attr.empty()) os << " [" << attr << "]";
    os << ";\n";
  });
  os << "}\n";
}

}  // namespace pathrouting::support
