#include "pathrouting/support/digest.hpp"

namespace pathrouting::support {

std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                          std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnv1aPrime;
  }
  return state;
}

std::uint64_t fnv1a_words(std::span<const std::uint64_t> values,
                          std::uint64_t state) {
  // Little-endian byte feed regardless of host order: the digest is
  // part of the golden corpus and the certificate format.
  for (const std::uint64_t v : values) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= (v >> (8 * byte)) & 0xffu;
      state *= kFnv1aPrime;
    }
  }
  return state;
}

std::uint64_t fnv1a_text(std::string_view text) {
  return fnv1a_bytes(text.data(), text.size());
}

}  // namespace pathrouting::support
