// Minimal command-line flag parser for the examples and bench harnesses.
//
// Supports "--name=value" and "--name value" forms plus boolean switches.
// Unknown flags are an error (catches typos in experiment sweeps).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pathrouting::support {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declares and reads a flag, with a default. Call once per flag.
  std::int64_t flag_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  std::string flag_str(const std::string& name, const std::string& def,
                       const std::string& help);
  bool flag_bool(const std::string& name, bool def, const std::string& help);

  /// Validates that every flag given on the command line was declared;
  /// prints usage and exits on "--help" or on unknown flags. Call after
  /// all flag_* declarations.
  void finish(const std::string& program_description);

 private:
  std::string program_;
  std::map<std::string, std::string> given_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;
};

}  // namespace pathrouting::support
