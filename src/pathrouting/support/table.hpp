// Plain-text table printer for benchmark harness output.
//
// Benches in this repository regenerate "paper tables"; this printer keeps
// their output aligned and diff-friendly. Cells are strings; helpers
// format counts, ratios, and scientific values consistently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pathrouting::support {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t value);
/// Fixed-point with `digits` decimals.
std::string fmt_fixed(double value, int digits = 3);
/// Scientific with 3 significant digits: "1.23e+06".
std::string fmt_sci(double value);

}  // namespace pathrouting::support
