#include "pathrouting/support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

Cli::Cli(int argc, const char* const* argv) {
  PR_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    PR_REQUIRE_MSG(arg.rfind("--", 0) == 0, "flags must start with --");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      given_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      given_[arg] = argv[++i];
    } else {
      given_[arg] = "true";  // boolean switch
    }
  }
}

std::int64_t Cli::flag_int(const std::string& name, std::int64_t def,
                           const std::string& help) {
  help_lines_.push_back("  --" + name + "=<int>  (default " +
                        std::to_string(def) + ")  " + help);
  auto it = given_.find(name);
  if (it == given_.end()) return def;
  const std::string value = it->second;
  given_.erase(it);
  return std::strtoll(value.c_str(), nullptr, 10);
}

std::string Cli::flag_str(const std::string& name, const std::string& def,
                          const std::string& help) {
  help_lines_.push_back("  --" + name + "=<str>  (default \"" + def + "\")  " +
                        help);
  auto it = given_.find(name);
  if (it == given_.end()) return def;
  std::string value = it->second;
  given_.erase(it);
  return value;
}

bool Cli::flag_bool(const std::string& name, bool def,
                    const std::string& help) {
  help_lines_.push_back("  --" + name + "  (default " +
                        (def ? "true" : "false") + ")  " + help);
  auto it = given_.find(name);
  if (it == given_.end()) return def;
  const std::string value = it->second;
  given_.erase(it);
  return value == "true" || value == "1" || value == "yes";
}

void Cli::finish(const std::string& program_description) {
  if (help_requested_) {
    std::printf("%s\n\n%s\n\nFlags:\n", program_.c_str(),
                program_description.c_str());
    for (const auto& line : help_lines_) std::printf("%s\n", line.c_str());
    std::exit(0);
  }
  if (!given_.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& [name, value] : given_) {
      std::fprintf(stderr, " --%s=%s", name.c_str(), value.c_str());
    }
    std::fprintf(stderr, "\nuse --help for usage\n");
    std::exit(2);
  }
}

}  // namespace pathrouting::support
