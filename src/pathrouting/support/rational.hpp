// Exact rational arithmetic over overflow-checked 64-bit integers.
//
// The paper's objects (bilinear algorithm coefficients, Brent equations,
// CDAG evaluation for correctness checks) are exact; Rational keeps them
// exact. Coefficients in practice are tiny (Strassen: +-1, Bini-style
// algorithms: small fractions), so int64 with overflow checks is ample.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <numeric>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

/// Exact rational number; always stored in lowest terms with positive
/// denominator. Arithmetic aborts on int64 overflow (never wraps).
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t value) : num_(value) {}  // NOLINT(google-explicit-constructor): numeric literals should convert
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    PR_REQUIRE_MSG(den != 0, "rational with zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }
  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }
  [[nodiscard]] constexpr bool is_one() const { return num_ == 1 && den_ == 1; }
  /// True for integers (denominator 1).
  [[nodiscard]] constexpr bool is_integer() const { return den_ == 1; }

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  friend Rational operator+(const Rational& x, const Rational& y) {
    return Rational(checked_add(checked_mul(x.num_, y.den_),
                                checked_mul(y.num_, x.den_)),
                    checked_mul(x.den_, y.den_));
  }
  friend Rational operator-(const Rational& x, const Rational& y) {
    return Rational(checked_sub(checked_mul(x.num_, y.den_),
                                checked_mul(y.num_, x.den_)),
                    checked_mul(x.den_, y.den_));
  }
  friend Rational operator*(const Rational& x, const Rational& y) {
    return Rational(checked_mul(x.num_, y.num_), checked_mul(x.den_, y.den_));
  }
  friend Rational operator/(const Rational& x, const Rational& y) {
    PR_REQUIRE_MSG(!y.is_zero(), "rational division by zero");
    return Rational(checked_mul(x.num_, y.den_), checked_mul(x.den_, y.num_));
  }
  Rational operator-() const { return Rational(checked_neg(num_), den_); }

  Rational& operator+=(const Rational& y) { return *this = *this + y; }
  Rational& operator-=(const Rational& y) { return *this = *this - y; }
  Rational& operator*=(const Rational& y) { return *this = *this * y; }
  Rational& operator/=(const Rational& y) { return *this = *this / y; }

  friend constexpr bool operator==(const Rational&, const Rational&) = default;
  friend std::strong_ordering operator<=>(const Rational& x,
                                          const Rational& y) {
    // Denominators are positive, so cross-multiplication preserves order.
    return checked_mul(x.num_, y.den_) <=> checked_mul(y.num_, x.den_);
  }

 private:
  static std::int64_t checked_add(std::int64_t x, std::int64_t y) {
    std::int64_t r = 0;
    PR_ASSERT_MSG(!__builtin_add_overflow(x, y, &r), "rational overflow (+)");
    return r;
  }
  static std::int64_t checked_sub(std::int64_t x, std::int64_t y) {
    std::int64_t r = 0;
    PR_ASSERT_MSG(!__builtin_sub_overflow(x, y, &r), "rational overflow (-)");
    return r;
  }
  static std::int64_t checked_mul(std::int64_t x, std::int64_t y) {
    std::int64_t r = 0;
    PR_ASSERT_MSG(!__builtin_mul_overflow(x, y, &r), "rational overflow (*)");
    return r;
  }
  static std::int64_t checked_neg(std::int64_t x) { return checked_sub(0, x); }

  void normalize() {
    if (den_ < 0) {
      num_ = checked_neg(num_);
      den_ = checked_neg(den_);
    }
    const std::int64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace pathrouting::support
