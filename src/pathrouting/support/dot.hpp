// Graphviz DOT export, used to regenerate the paper's illustrative
// figures (base graphs, meta-vertices, routing paths, the matching graph
// H, the reduced graph G1°).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace pathrouting::support {

/// Streams a DOT digraph. The caller supplies per-vertex attributes and
/// iterates edges through `for_each_edge`; vertices with an empty
/// attribute string are omitted (useful for drawing induced subgraphs).
class DotWriter {
 public:
  using VertexAttr = std::function<std::string(std::uint32_t)>;
  using EdgeVisitor =
      std::function<void(const std::function<void(std::uint32_t, std::uint32_t,
                                                  const std::string&)>&)>;

  DotWriter(std::string graph_name, std::uint32_t num_vertices)
      : name_(std::move(graph_name)), num_vertices_(num_vertices) {}

  /// Extra statements injected verbatim at the top of the graph body
  /// (rankdir, clusters, etc.).
  void set_preamble(std::string preamble) { preamble_ = std::move(preamble); }

  void write(std::ostream& os, const VertexAttr& vertex_attr,
             const EdgeVisitor& for_each_edge) const;

 private:
  std::string name_;
  std::uint32_t num_vertices_;
  std::string preamble_;
};

}  // namespace pathrouting::support
