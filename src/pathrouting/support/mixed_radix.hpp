// Fixed-radix digit-string codecs.
//
// CDAG vertices are addressed by digit strings: a recursion path
// q⃗ ∈ [b]^t and a block position p⃗ ∈ [a]^(r-t) (Morton order). We pack a
// digit string into a uint64 with digit 0 the MOST significant — digit 0
// is the outermost recursion level, which makes "strip the leading digit"
// (descend one recursion level) a division by base^(len-1).
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/support/check.hpp"

namespace pathrouting::support {

/// Precomputed powers base^0 .. base^max_exp with overflow checking.
class PowTable {
 public:
  PowTable() = default;
  PowTable(std::uint64_t base, int max_exp) : base_(base) {
    PR_REQUIRE(base >= 1);
    PR_REQUIRE(max_exp >= 0);
    pows_.reserve(static_cast<std::size_t>(max_exp) + 1);
    std::uint64_t p = 1;
    pows_.push_back(p);
    for (int e = 1; e <= max_exp; ++e) {
      PR_REQUIRE_MSG(p <= UINT64_MAX / base, "PowTable overflow");
      p *= base;
      pows_.push_back(p);
    }
  }

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] int max_exp() const { return static_cast<int>(pows_.size()) - 1; }
  [[nodiscard]] std::uint64_t operator()(int exp) const {
    PR_REQUIRE(exp >= 0 && exp <= max_exp());
    return pows_[static_cast<std::size_t>(exp)];
  }

 private:
  std::uint64_t base_ = 1;
  std::vector<std::uint64_t> pows_;
};

/// Digit `i` (0 = most significant) of `word` seen as `len` digits in
/// `base`, using the supplied power table for that base.
inline std::uint64_t digit_at(const PowTable& pows, std::uint64_t word,
                              int len, int i) {
  PR_REQUIRE(i >= 0 && i < len);
  return (word / pows(len - 1 - i)) % pows.base();
}

/// Replace digit `i` (0 = most significant) of `word`.
inline std::uint64_t with_digit(const PowTable& pows, std::uint64_t word,
                                int len, int i, std::uint64_t digit) {
  PR_REQUIRE(digit < pows.base());
  const std::uint64_t old = digit_at(pows, word, len, i);
  return word + (digit - old) * pows(len - 1 - i);
}

/// Decompose `word` into its `len` digits, most significant first.
inline std::vector<std::uint64_t> to_digits(const PowTable& pows,
                                            std::uint64_t word, int len) {
  std::vector<std::uint64_t> digits(static_cast<std::size_t>(len));
  for (int i = len - 1; i >= 0; --i) {
    digits[static_cast<std::size_t>(i)] = word % pows.base();
    word /= pows.base();
  }
  PR_ENSURE(word == 0);
  return digits;
}

/// Recompose digits (most significant first) into a word.
inline std::uint64_t from_digits(const PowTable& pows,
                                 const std::vector<std::uint64_t>& digits) {
  std::uint64_t word = 0;
  for (const std::uint64_t d : digits) {
    PR_REQUIRE(d < pows.base());
    word = word * pows.base() + d;
  }
  return word;
}

}  // namespace pathrouting::support
