// Type-erased post-construction hook points, so upper layers can
// observe objects the moment a lower layer finishes building them
// without inverting the library's dependency order.
//
// The canonical client is the audit layer: when PATHROUTING_DEBUG_CHECKS
// is defined, linking `pr_audit` installs a hook that runs the CDAG
// structural rule suite after every Cdag construction (see
// audit::install_debug_hooks). Lower layers only ever *fire* hooks —
// firing an uninstalled hook is a no-op costing one pointer load.
//
// Hooks are process-global and not synchronized: install them during
// startup (static initialization or main), not concurrently with
// construction work.
#pragma once

namespace pathrouting::support {

enum class DebugHookPoint : int {
  kCdagBuilt = 0,  // object is a `const cdag::Cdag*`
  kNumHookPoints,
};

/// Receives the freshly-built object; the static type is documented on
/// the hook point. A hook must not construct objects that fire the same
/// hook point (no reentrancy guard is provided).
using DebugHookFn = void (*)(const void* object);

/// Installs `fn` (nullptr uninstalls). Returns the previous hook.
DebugHookFn set_debug_hook(DebugHookPoint point, DebugHookFn fn);

/// Fires the hook if installed; no-op otherwise.
void run_debug_hook(DebugHookPoint point, const void* object);

}  // namespace pathrouting::support
