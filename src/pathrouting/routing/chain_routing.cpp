#include "pathrouting/routing/chain_routing.hpp"

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::routing {

namespace {

namespace parallel = support::parallel;

BaseMatching require_matching(const BilinearAlgorithm& alg, Side side) {
  auto matching = compute_base_matching(alg, side);
  PR_REQUIRE_MSG(matching.has_value(),
                 "no Theorem-3 matching: the base algorithm violates the "
                 "Hall condition of Lemma 5");
  return *std::move(matching);
}

}  // namespace

ChainRouter::ChainRouter(const BilinearAlgorithm& alg)
    : alg_(alg), mu_a_(require_matching(alg, Side::A)),
      mu_b_(require_matching(alg, Side::B)) {}

std::uint64_t ChainRouter::chain_q_word(const SubComputation& sub, Side side,
                                        std::uint64_t vpos,
                                        std::uint64_t wpos) const {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const auto& pow_a = layout.pow_a();
  PR_DCHECK_MSG(is_guaranteed_dep(layout, k, side, vpos, wpos),
                "chains exist only for guaranteed dependencies (Section 7)");
  const BaseMatching& mu = matching(side);
  // Level-wise middle choices q_t = mu(d_t, e_t).
  std::uint64_t q_word = 0;
  for (int t = 1; t <= k; ++t) {
    const int d = static_cast<int>(support::digit_at(pow_a, vpos, k, t - 1));
    const int e = static_cast<int>(support::digit_at(pow_a, wpos, k, t - 1));
    q_word = q_word * static_cast<std::uint64_t>(alg_.b()) +
             static_cast<std::uint64_t>(mu.product(d, e));
  }
  return q_word;
}

void ChainRouter::append_chain(const SubComputation& sub, Side side,
                               std::uint64_t vpos, std::uint64_t wpos,
                               std::vector<VertexId>& out) const {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const auto& pow_a = layout.pow_a();
  const auto& pow_b = layout.pow_b();
  const std::uint64_t q_word = chain_q_word(sub, side, vpos, wpos);
  // Climb the encoding: at rank t the first t recursion digits are
  // fixed and the position keeps the remaining k-t input digits.
  for (int t = 0; t <= k; ++t) {
    out.push_back(sub.enc(side, t, q_word / pow_b(k - t), vpos % pow_a(k - t)));
  }
  // Descend the decoding: at rank t the last t output digits are known.
  for (int t = 0; t <= k; ++t) {
    out.push_back(sub.dec(t, q_word / pow_b(t), wpos % pow_a(t)));
  }
}

void ChainRouter::append_chain_reversed(const SubComputation& sub, Side side,
                                        std::uint64_t vpos,
                                        std::uint64_t wpos, bool skip_first,
                                        std::vector<VertexId>& out) const {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const auto& pow_a = layout.pow_a();
  const auto& pow_b = layout.pow_b();
  const std::uint64_t q_word = chain_q_word(sub, side, vpos, wpos);
  for (int t = skip_first ? k - 1 : k; t >= 0; --t) {
    out.push_back(sub.dec(t, q_word / pow_b(t), wpos % pow_a(t)));
  }
  for (int t = k; t >= 0; --t) {
    out.push_back(sub.enc(side, t, q_word / pow_b(k - t), vpos % pow_a(k - t)));
  }
}

void ChainRouter::append_chain_tail(const SubComputation& sub, Side side,
                                    std::uint64_t vpos, std::uint64_t wpos,
                                    std::vector<VertexId>& out) const {
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const auto& pow_a = layout.pow_a();
  const auto& pow_b = layout.pow_b();
  const std::uint64_t q_word = chain_q_word(sub, side, vpos, wpos);
  for (int t = 1; t <= k; ++t) {
    out.push_back(sub.enc(side, t, q_word / pow_b(k - t), vpos % pow_a(k - t)));
  }
  for (int t = 0; t <= k; ++t) {
    out.push_back(sub.dec(t, q_word / pow_b(t), wpos % pow_a(t)));
  }
}

ChainHitCounts count_chain_hits(const ChainRouter& router,
                                const SubComputation& sub) {
  const obs::TraceSpan span("routing.count_chain_hits");
  const cdag::Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t fanout = guaranteed_fanout(layout, k);
  const std::uint64_t n = sub.cdag().graph().num_vertices();
  // One chunk body walks all chains of a range of (side, input) pairs
  // into ONE shared counter array (relaxed atomic adds): integer sums
  // are exactly commutative, so the counts are bit-identical to the
  // serial ones at any thread count, and the cache working set stays
  // a single array no matter how many workers run.
  ChainHitCounts counts;
  counts.num_chains = 2 * num_in * fanout;
  parallel::HitCounter hits(n);
  const std::uint64_t grain = parallel::work_grain(
      2 * num_in, /*per_item_cost=*/fanout * static_cast<std::uint64_t>(
                                                 2 * k + 2));
  parallel::parallel_for(
      0, 2 * num_in, grain, [&](std::uint64_t lo, std::uint64_t hi) {
        std::vector<VertexId> chain;
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          const Side side = idx < num_in ? Side::A : Side::B;
          const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
          for (std::uint64_t free = 0; free < fanout; ++free) {
            const std::uint64_t wpos =
                guaranteed_output(layout, k, side, vpos, free);
            chain.clear();
            router.append_chain(sub, side, vpos, wpos, chain);
            for (const VertexId v : chain) hits.add(v);
          }
        }
      });
  counts.hits = hits.take();
  // Aggregate adds after the loop — instrumentation may not perturb
  // the enumeration it measures.
  static obs::Counter obs_chains("routing.chains_enumerated");
  obs_chains.add(counts.num_chains);
  // Max and argmax from the merged array; ties resolve to the smallest
  // vertex id, independent of enumeration or thread schedule.
  for (VertexId v = 0; v < n; ++v) {
    if (counts.hits[v] > counts.max_hits) {
      counts.max_hits = counts.hits[v];
      counts.argmax = v;
    }
  }
  return counts;
}

HitStats chain_stats_from_counts(const ChainHitCounts& counts,
                                 const SubComputation& sub) {
  HitStats stats;
  stats.num_paths = counts.num_chains;
  stats.max_hits = counts.max_hits;
  stats.argmax = counts.argmax;
  stats.bound =
      2 * guaranteed_fanout(sub.cdag().layout(), sub.k());  // 2 * n0^k
  return stats;
}

HitStats verify_chain_routing(const ChainRouter& router,
                              const SubComputation& sub) {
  return chain_stats_from_counts(count_chain_hits(router, sub), sub);
}

}  // namespace pathrouting::routing
