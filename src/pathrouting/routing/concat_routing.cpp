#include "pathrouting/routing/concat_routing.hpp"

#include <algorithm>
#include <atomic>

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/parallel.hpp"

namespace pathrouting::routing {

namespace {

namespace parallel = support::parallel;

using cdag::Layout;
using cdag::RowCol;

struct PathSpec {
  // The three chains of the Lemma-4 sequence, as (side, input position,
  // output position) triples; the middle chain is traversed in reverse.
  Side side1;
  std::uint64_t v1, w1;
  Side side2;
  std::uint64_t v2, w2;  // reversed: path goes w2 -> v2
  Side side3;
  std::uint64_t v3, w3;
};

PathSpec make_spec(const Layout& layout, int k, Side in_side,
                   std::uint64_t vpos, std::uint64_t wpos) {
  const int n0 = layout.n0();
  const RowCol v = cdag::morton_to_rowcol(layout.pow_a(), n0, vpos, k);
  const RowCol w = cdag::morton_to_rowcol(layout.pow_a(), n0, wpos, k);
  if (in_side == Side::A) {
    // a_ij -> c_ij' <- b_jj' -> c_i'j' with i = v.row, j = v.col,
    // i' = w.row, j' = w.col.
    const std::uint64_t x = cdag::rowcol_to_morton(n0, v.row, w.col, k);
    const std::uint64_t y = cdag::rowcol_to_morton(n0, v.col, w.col, k);
    return {Side::A, vpos, x, Side::B, y, x, Side::B, y, wpos};
  }
  // b_ij -> c_i'j <- a_i'i -> c_i'j' with i = v.row, j = v.col.
  const std::uint64_t x = cdag::rowcol_to_morton(n0, w.row, v.col, k);
  const std::uint64_t y = cdag::rowcol_to_morton(n0, w.row, v.row, k);
  return {Side::B, vpos, x, Side::A, y, x, Side::A, y, wpos};
}

}  // namespace

void append_full_path(const ChainRouter& router, const SubComputation& sub,
                      Side in_side, std::uint64_t vpos, std::uint64_t wpos,
                      std::vector<VertexId>& out) {
  const Layout& layout = sub.cdag().layout();
  const PathSpec spec = make_spec(layout, sub.k(), in_side, vpos, wpos);
  // All three chains append straight into `out` (the reversed middle
  // chain and the tail of chain 3 skip their duplicated junction
  // vertices), so building a full path allocates nothing beyond the
  // caller's buffer.
  router.append_chain(sub, spec.side1, spec.v1, spec.w1, out);
  [[maybe_unused]] const std::size_t junction1 = out.size() - 1;
  // The middle chain is walked from its output end (= the end of the
  // first chain) back to its input; the duplicated junction is skipped.
  router.append_chain_reversed(sub, spec.side2, spec.v2, spec.w2,
                               /*skip_first=*/true, out);
  PR_DCHECK_MSG(out[junction1] == sub.output(spec.w2),
                "Lemma-4 junction mismatch: chain 1 must end where the "
                "reversed middle chain ends");
  PR_DCHECK_MSG(out.back() == sub.input(spec.side3, spec.v3),
                "Lemma-4 junction mismatch: the middle chain's input must "
                "start chain 3");
  router.append_chain_tail(sub, spec.side3, spec.v3, spec.w3, out);
}

bool verify_chain_multiplicities(const ChainRouter& router,
                                 const SubComputation& sub) {
  const obs::TraceSpan span("routing.verify_chain_multiplicities");
  const Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const int n0 = layout.n0();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t fanout = guaranteed_fanout(layout, k);  // n0^k
  // Chain key: input position x fanout + free word (= the unconstrained
  // row/column word of the chain's output). Use counters live in one
  // shared array per side (relaxed atomic adds, exactly commutative),
  // so the result is thread-count independent.
  parallel::HitCounter uses_a(num_in * fanout);
  parallel::HitCounter uses_b(num_in * fanout);
  const std::uint64_t grain =
      parallel::work_grain(2 * num_in, /*per_item_cost=*/3 * num_in);
  parallel::parallel_for(
      0, 2 * num_in, grain, [&](std::uint64_t lo, std::uint64_t hi) {
        const auto use = [&](Side side, std::uint64_t in_pos,
                             std::uint64_t out_pos) {
          const RowCol oc =
              cdag::morton_to_rowcol(layout.pow_a(), n0, out_pos, k);
          const std::uint64_t free = side == Side::A ? oc.col : oc.row;
          auto& counters = side == Side::A ? uses_a : uses_b;
          counters.add(in_pos * fanout + free);
        };
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          const Side in_side = idx < num_in ? Side::A : Side::B;
          const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
          for (std::uint64_t wpos = 0; wpos < num_in; ++wpos) {
            const PathSpec spec = make_spec(layout, k, in_side, vpos, wpos);
            use(spec.side1, spec.v1, spec.w1);
            use(spec.side2, spec.v2, spec.w2);
            use(spec.side3, spec.v3, spec.w3);
          }
        }
      });
  (void)router;
  const std::uint64_t expected = 3 * fanout;  // 3 * n0^k (Lemma 4)
  const auto all_expected = [&](std::vector<std::uint64_t> counters) {
    return std::all_of(counters.begin(), counters.end(),
                       [&](std::uint64_t u) { return u == expected; });
  };
  return all_expected(uses_a.take()) && all_expected(uses_b.take());
}

FullRoutingStats verify_full_routing_enumerated(const ChainRouter& router,
                                                const SubComputation& sub) {
  const obs::TraceSpan span("routing.verify_full_enumerated");
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t n = owner.graph().num_vertices();
  FullRoutingStats stats;
  stats.bound = 6 * layout.pow_a()(sub.k());  // 6 * a^k
  stats.num_paths = 2 * num_in * num_in;
  // Shared counter arrays (relaxed atomic adds) and a single sticky
  // flag — all exactly commutative, so the result is thread-count
  // independent and the working set does not grow with PR_THREADS.
  parallel::HitCounter vertex_hits(n);
  parallel::HitCounter meta_hits(n);
  std::atomic<bool> root_hit_property{true};
  const std::uint64_t grain = parallel::work_grain(
      2 * num_in,
      /*per_item_cost=*/num_in * static_cast<std::uint64_t>(6 * sub.k() + 4));
  parallel::parallel_for(
      0, 2 * num_in, grain, [&](std::uint64_t lo, std::uint64_t hi) {
        std::vector<VertexId> path;
        std::vector<VertexId> roots_on_path;
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          const Side in_side = idx < num_in ? Side::A : Side::B;
          const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
          for (std::uint64_t wpos = 0; wpos < num_in; ++wpos) {
            path.clear();
            append_full_path(router, sub, in_side, vpos, wpos, path);
            roots_on_path.clear();
            for (const VertexId v : path) {
              vertex_hits.add(v);
              const VertexId root = owner.meta_root(v);
              if (std::find(roots_on_path.begin(), roots_on_path.end(),
                            root) == roots_on_path.end()) {
                roots_on_path.push_back(root);
                meta_hits.add(root);
              }
            }
            // Root-hit property: a path touching any member of a
            // duplicated meta-vertex must touch its root.
            for (const VertexId v : path) {
              if (owner.is_duplicated(v) && v != owner.meta_root(v) &&
                  std::find(path.begin(), path.end(), owner.meta_root(v)) ==
                      path.end()) {
                root_hit_property.store(false, std::memory_order_relaxed);
              }
            }
          }
        }
      });
  stats.root_hit_property = root_hit_property.load(std::memory_order_relaxed);
  static obs::Counter obs_paths("routing.full_paths_enumerated");
  obs_paths.add(stats.num_paths);
  const std::vector<std::uint64_t> vhits = vertex_hits.take();
  const std::vector<std::uint64_t> mhits = meta_hits.take();
  for (std::uint64_t v = 0; v < n; ++v) {
    if (vhits[v] > stats.max_vertex_hits) {
      stats.max_vertex_hits = vhits[v];
      stats.argmax_vertex = static_cast<VertexId>(v);
    }
    stats.max_meta_hits = std::max<std::uint64_t>(stats.max_meta_hits, mhits[v]);
  }
  return stats;
}

FullRoutingStats full_routing_from_chain_counts(const SubComputation& sub,
                                                const ChainHitCounts& chains) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const std::uint64_t multiplicity =
      3 * guaranteed_fanout(layout, sub.k());  // 3 * n0^k
  FullRoutingStats stats;
  stats.bound = 6 * layout.pow_a()(sub.k());
  stats.num_paths = 2 * sub.inputs_per_side() * sub.inputs_per_side();
  for (VertexId v = 0; v < owner.graph().num_vertices(); ++v) {
    const std::uint64_t hits = multiplicity * chains.hits[v];
    if (hits > stats.max_vertex_hits) {
      stats.max_vertex_hits = hits;
      stats.argmax_vertex = v;
    }
    // Meta-vertex hits equal the root's vertex hits (chains hit a
    // meta-vertex iff they pass its root); the necessary structural
    // consequence checkable here is monotonicity along copy edges.
    if (owner.copy_parent(v) != cdag::kInvalidVertex) {
      if (chains.hits[v] > chains.hits[owner.copy_parent(v)]) {
        stats.root_hit_property = false;
      }
    }
    if (owner.meta_root(v) == v && owner.is_duplicated(v)) {
      stats.max_meta_hits = std::max(stats.max_meta_hits, hits);
    }
  }
  return stats;
}

FullRoutingStats verify_full_routing_aggregated(const ChainRouter& router,
                                                const SubComputation& sub) {
  return full_routing_from_chain_counts(sub, count_chain_hits(router, sub));
}

}  // namespace pathrouting::routing
