#include "pathrouting/routing/concat_routing.hpp"

#include <algorithm>

#include "pathrouting/support/parallel.hpp"

namespace pathrouting::routing {

namespace {

namespace parallel = support::parallel;

using cdag::Layout;
using cdag::RowCol;

struct PathSpec {
  // The three chains of the Lemma-4 sequence, as (side, input position,
  // output position) triples; the middle chain is traversed in reverse.
  Side side1;
  std::uint64_t v1, w1;
  Side side2;
  std::uint64_t v2, w2;  // reversed: path goes w2 -> v2
  Side side3;
  std::uint64_t v3, w3;
};

PathSpec make_spec(const Layout& layout, int k, Side in_side,
                   std::uint64_t vpos, std::uint64_t wpos) {
  const int n0 = layout.n0();
  const RowCol v = cdag::morton_to_rowcol(layout.pow_a(), n0, vpos, k);
  const RowCol w = cdag::morton_to_rowcol(layout.pow_a(), n0, wpos, k);
  if (in_side == Side::A) {
    // a_ij -> c_ij' <- b_jj' -> c_i'j' with i = v.row, j = v.col,
    // i' = w.row, j' = w.col.
    const std::uint64_t x = cdag::rowcol_to_morton(n0, v.row, w.col, k);
    const std::uint64_t y = cdag::rowcol_to_morton(n0, v.col, w.col, k);
    return {Side::A, vpos, x, Side::B, y, x, Side::B, y, wpos};
  }
  // b_ij -> c_i'j <- a_i'i -> c_i'j' with i = v.row, j = v.col.
  const std::uint64_t x = cdag::rowcol_to_morton(n0, w.row, v.col, k);
  const std::uint64_t y = cdag::rowcol_to_morton(n0, w.row, v.row, k);
  return {Side::B, vpos, x, Side::A, y, x, Side::A, y, wpos};
}

}  // namespace

void append_full_path(const ChainRouter& router, const SubComputation& sub,
                      Side in_side, std::uint64_t vpos, std::uint64_t wpos,
                      std::vector<VertexId>& out) {
  const Layout& layout = sub.cdag().layout();
  const PathSpec spec = make_spec(layout, sub.k(), in_side, vpos, wpos);
  router.append_chain(sub, spec.side1, spec.v1, spec.w1, out);
  std::vector<VertexId> middle;
  router.append_chain(sub, spec.side2, spec.v2, spec.w2, middle);
  // The middle chain is walked from its output end (= the end of the
  // first chain) back to its input; drop the duplicated junction.
  PR_DCHECK_MSG(out.back() == middle.back(),
                "Lemma-4 junction mismatch: chain 1 must end where the "
                "reversed middle chain ends");
  out.insert(out.end(), middle.rbegin() + 1, middle.rend());
  std::vector<VertexId> last;
  router.append_chain(sub, spec.side3, spec.v3, spec.w3, last);
  PR_DCHECK_MSG(out.back() == last.front(),
                "Lemma-4 junction mismatch: the middle chain's input must "
                "start chain 3");
  out.insert(out.end(), last.begin() + 1, last.end());
}

bool verify_chain_multiplicities(const ChainRouter& router,
                                 const SubComputation& sub) {
  const Layout& layout = sub.cdag().layout();
  const int k = sub.k();
  const int n0 = layout.n0();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t fanout = guaranteed_fanout(layout, k);  // n0^k
  // Chain key: input position x fanout + free word (= the unconstrained
  // row/column word of the chain's output). Use counters accumulate in
  // per-worker shards merged by integer sum (exactly commutative).
  struct Uses {
    std::vector<std::uint64_t> a, b;
  };
  const Uses uses = parallel::sharded_accumulate<Uses>(
      0, 2 * num_in, /*grain=*/8,
      [&] {
        return Uses{std::vector<std::uint64_t>(num_in * fanout, 0),
                    std::vector<std::uint64_t>(num_in * fanout, 0)};
      },
      [&](Uses& acc, std::uint64_t lo, std::uint64_t hi) {
        const auto use = [&](Side side, std::uint64_t in_pos,
                             std::uint64_t out_pos) {
          const RowCol oc =
              cdag::morton_to_rowcol(layout.pow_a(), n0, out_pos, k);
          const std::uint64_t free = side == Side::A ? oc.col : oc.row;
          auto& counters = side == Side::A ? acc.a : acc.b;
          ++counters[in_pos * fanout + free];
        };
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          const Side in_side = idx < num_in ? Side::A : Side::B;
          const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
          for (std::uint64_t wpos = 0; wpos < num_in; ++wpos) {
            const PathSpec spec = make_spec(layout, k, in_side, vpos, wpos);
            use(spec.side1, spec.v1, spec.w1);
            use(spec.side2, spec.v2, spec.w2);
            use(spec.side3, spec.v3, spec.w3);
          }
        }
      },
      [](Uses& acc, const Uses& shard) {
        for (std::size_t i = 0; i < acc.a.size(); ++i) acc.a[i] += shard.a[i];
        for (std::size_t i = 0; i < acc.b.size(); ++i) acc.b[i] += shard.b[i];
      });
  (void)router;
  const std::uint64_t expected = 3 * fanout;  // 3 * n0^k (Lemma 4)
  const auto all_expected = [&](const std::vector<std::uint64_t>& counters) {
    return std::all_of(counters.begin(), counters.end(),
                       [&](std::uint64_t u) { return u == expected; });
  };
  return all_expected(uses.a) && all_expected(uses.b);
}

FullRoutingStats verify_full_routing_enumerated(const ChainRouter& router,
                                                const SubComputation& sub) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const std::uint64_t num_in = sub.inputs_per_side();
  const std::uint64_t n = owner.graph().num_vertices();
  FullRoutingStats stats;
  stats.bound = 6 * layout.pow_a()(sub.k());  // 6 * a^k
  stats.num_paths = 2 * num_in * num_in;
  // Hit shards merge by integer sum and the root-hit flag by logical
  // and — both exactly commutative, so the result is thread-count
  // independent.
  struct Acc {
    std::vector<std::uint32_t> vertex_hits, meta_hits;
    bool root_hit_property = true;
  };
  const Acc acc = parallel::sharded_accumulate<Acc>(
      0, 2 * num_in, /*grain=*/4,
      [&] {
        return Acc{std::vector<std::uint32_t>(n, 0),
                   std::vector<std::uint32_t>(n, 0), true};
      },
      [&](Acc& shard, std::uint64_t lo, std::uint64_t hi) {
        std::vector<VertexId> path;
        std::vector<VertexId> roots_on_path;
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          const Side in_side = idx < num_in ? Side::A : Side::B;
          const std::uint64_t vpos = idx < num_in ? idx : idx - num_in;
          for (std::uint64_t wpos = 0; wpos < num_in; ++wpos) {
            path.clear();
            append_full_path(router, sub, in_side, vpos, wpos, path);
            roots_on_path.clear();
            for (const VertexId v : path) {
              ++shard.vertex_hits[v];
              const VertexId root = owner.meta_root(v);
              if (std::find(roots_on_path.begin(), roots_on_path.end(),
                            root) == roots_on_path.end()) {
                roots_on_path.push_back(root);
                ++shard.meta_hits[root];
              }
            }
            // Root-hit property: a path touching any member of a
            // duplicated meta-vertex must touch its root.
            for (const VertexId v : path) {
              if (owner.is_duplicated(v) && v != owner.meta_root(v) &&
                  std::find(path.begin(), path.end(), owner.meta_root(v)) ==
                      path.end()) {
                shard.root_hit_property = false;
              }
            }
          }
        }
      },
      [](Acc& target, const Acc& shard) {
        for (std::size_t v = 0; v < target.vertex_hits.size(); ++v) {
          target.vertex_hits[v] += shard.vertex_hits[v];
          target.meta_hits[v] += shard.meta_hits[v];
        }
        target.root_hit_property =
            target.root_hit_property && shard.root_hit_property;
      });
  stats.root_hit_property = acc.root_hit_property;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (acc.vertex_hits[v] > stats.max_vertex_hits) {
      stats.max_vertex_hits = acc.vertex_hits[v];
      stats.argmax_vertex = static_cast<VertexId>(v);
    }
    stats.max_meta_hits =
        std::max<std::uint64_t>(stats.max_meta_hits, acc.meta_hits[v]);
  }
  return stats;
}

FullRoutingStats verify_full_routing_aggregated(const ChainRouter& router,
                                                const SubComputation& sub) {
  const cdag::Cdag& owner = sub.cdag();
  const Layout& layout = owner.layout();
  const ChainHitCounts chains = count_chain_hits(router, sub);
  const std::uint64_t multiplicity =
      3 * guaranteed_fanout(layout, sub.k());  // 3 * n0^k
  FullRoutingStats stats;
  stats.bound = 6 * layout.pow_a()(sub.k());
  stats.num_paths = 2 * sub.inputs_per_side() * sub.inputs_per_side();
  for (VertexId v = 0; v < owner.graph().num_vertices(); ++v) {
    const std::uint64_t hits = multiplicity * chains.hits[v];
    if (hits > stats.max_vertex_hits) {
      stats.max_vertex_hits = hits;
      stats.argmax_vertex = v;
    }
    // Meta-vertex hits equal the root's vertex hits (chains hit a
    // meta-vertex iff they pass its root); the necessary structural
    // consequence checkable here is monotonicity along copy edges.
    if (owner.copy_parent(v) != cdag::kInvalidVertex) {
      if (chains.hits[v] > chains.hits[owner.copy_parent(v)]) {
        stats.root_hit_property = false;
      }
    }
    if (owner.meta_root(v) == v && owner.is_duplicated(v)) {
      stats.max_meta_hits = std::max(stats.max_meta_hits, hits);
    }
  }
  return stats;
}

}  // namespace pathrouting::routing
