#include "pathrouting/routing/maxflow.hpp"

#include <algorithm>
#include <deque>

#include "pathrouting/support/check.hpp"

namespace pathrouting::routing {

MaxFlow::MaxFlow(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)) {
  PR_REQUIRE(num_nodes >= 2);
}

int MaxFlow::add_edge(int from, int to, std::int64_t capacity) {
  PR_REQUIRE(from >= 0 && from < static_cast<int>(adj_.size()));
  PR_REQUIRE(to >= 0 && to < static_cast<int>(adj_.size()));
  PR_REQUIRE(capacity >= 0);
  auto& fwd_list = adj_[static_cast<std::size_t>(from)];
  auto& rev_list = adj_[static_cast<std::size_t>(to)];
  fwd_list.push_back({to, capacity, static_cast<int>(rev_list.size())});
  rev_list.push_back({from, 0, static_cast<int>(fwd_list.size()) - 1});
  handles_.emplace_back(from, static_cast<int>(fwd_list.size()) - 1);
  original_cap_.push_back(capacity);
  return static_cast<int>(handles_.size()) - 1;
}

bool MaxFlow::bfs(int s, int t) {
  level_.assign(adj_.size(), -1);
  std::deque<int> queue = {s};
  level_[static_cast<std::size_t>(s)] = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t MaxFlow::dfs(int v, int t, std::int64_t limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[static_cast<std::size_t>(v)];
       i < adj_[static_cast<std::size_t>(v)].size(); ++i) {
    Edge& e = adj_[static_cast<std::size_t>(v)][i];
    if (e.cap <= 0 || level_[static_cast<std::size_t>(e.to)] !=
                          level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const std::int64_t pushed = dfs(e.to, t, std::min(limit, e.cap));
    if (pushed > 0) {
      e.cap -= pushed;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int s, int t) {
  PR_REQUIRE(s != t);
  std::int64_t total = 0;
  while (bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    while (true) {
      const std::int64_t pushed = dfs(s, t, INT64_MAX);
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlow::flow_on(int edge_handle) const {
  PR_REQUIRE(edge_handle >= 0 &&
             edge_handle < static_cast<int>(handles_.size()));
  const auto [node, index] = handles_[static_cast<std::size_t>(edge_handle)];
  const Edge& e =
      adj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(index)];
  return original_cap_[static_cast<std::size_t>(edge_handle)] - e.cap;
}

}  // namespace pathrouting::routing
