#include "pathrouting/routing/maxflow.hpp"

#include <algorithm>

#include "pathrouting/obs/obs.hpp"
#include "pathrouting/support/check.hpp"

namespace pathrouting::routing {

MaxFlow::MaxFlow(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)) {
  PR_REQUIRE(num_nodes >= 2);
}

int MaxFlow::add_edge(int from, int to, std::int64_t capacity) {
  PR_REQUIRE(from >= 0 && from < static_cast<int>(adj_.size()));
  PR_REQUIRE(to >= 0 && to < static_cast<int>(adj_.size()));
  PR_REQUIRE(capacity >= 0);
  auto& fwd_list = adj_[static_cast<std::size_t>(from)];
  auto& rev_list = adj_[static_cast<std::size_t>(to)];
  fwd_list.push_back({to, capacity, static_cast<int>(rev_list.size())});
  rev_list.push_back({from, 0, static_cast<int>(fwd_list.size()) - 1});
  handles_.emplace_back(from, static_cast<int>(fwd_list.size()) - 1);
  original_cap_.push_back(capacity);
  return static_cast<int>(handles_.size()) - 1;
}

bool MaxFlow::bfs(int s, int t) {
  level_.assign(adj_.size(), -1);
  bfs_queue_.clear();
  bfs_queue_.push_back(s);
  level_[static_cast<std::size_t>(s)] = 0;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const int v = bfs_queue_[head];
    for (const Edge& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        bfs_queue_.push_back(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t MaxFlow::dfs(int s, int t, std::int64_t limit) {
  // Iterative blocking-flow search: the recursive formulation overflows
  // the call stack on long level graphs (a path network of 10^5 nodes
  // means 10^5 frames), so the path is kept explicitly. path_[i] is the
  // edge taken out of its source; iter_ persists across calls exactly
  // like the recursive version, so the sequence of augmenting paths —
  // and hence every per-edge flow — is unchanged.
  path_.clear();
  int v = s;
  while (true) {
    if (v == t) {
      std::int64_t pushed = limit;
      for (const auto& [node, index] : path_) {
        pushed = std::min(pushed,
                          adj_[static_cast<std::size_t>(node)][index].cap);
      }
      for (const auto& [node, index] : path_) {
        Edge& e = adj_[static_cast<std::size_t>(node)][index];
        e.cap -= pushed;
        adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
            .cap += pushed;
      }
      return pushed;
    }
    bool advanced = false;
    for (std::size_t& i = iter_[static_cast<std::size_t>(v)];
         i < adj_[static_cast<std::size_t>(v)].size(); ++i) {
      const Edge& e = adj_[static_cast<std::size_t>(v)][i];
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] ==
                           level_[static_cast<std::size_t>(v)] + 1) {
        path_.emplace_back(v, i);
        v = e.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      if (path_.empty()) return 0;  // source exhausted: no augmenting path
      v = path_.back().first;
      path_.pop_back();
      ++iter_[static_cast<std::size_t>(v)];  // this edge leads nowhere
    }
  }
}

std::int64_t MaxFlow::solve(int s, int t) {
  PR_REQUIRE(s != t);
  const obs::TraceSpan span("maxflow.solve");
  static obs::Counter obs_solves("maxflow.solves");
  static obs::Counter obs_phases("maxflow.bfs_phases");
  static obs::Counter obs_visited("maxflow.bfs_visited");
  static obs::Counter obs_augments("maxflow.augmenting_paths");
  obs_solves.add();
  std::int64_t total = 0;
  while (bfs(s, t)) {
    obs_phases.add();
    obs_visited.add(bfs_queue_.size());
    iter_.assign(adj_.size(), 0);
    while (true) {
      const std::int64_t pushed = dfs(s, t, INT64_MAX);
      if (pushed == 0) break;
      total += pushed;
      obs_augments.add();
    }
  }
  return total;
}

std::int64_t MaxFlow::flow_on(int edge_handle) const {
  PR_REQUIRE(edge_handle >= 0 &&
             edge_handle < static_cast<int>(handles_.size()));
  const auto [node, index] = handles_[static_cast<std::size_t>(edge_handle)];
  const Edge& e =
      adj_[static_cast<std::size_t>(node)][static_cast<std::size_t>(index)];
  return original_cap_[static_cast<std::size_t>(edge_handle)] - e.cap;
}

}  // namespace pathrouting::routing
