#include "pathrouting/routing/hall.hpp"

#include "pathrouting/routing/maxflow.hpp"
#include "pathrouting/support/check.hpp"

namespace pathrouting::routing {

namespace {

/// Guaranteed digit pairs for a side, in a fixed enumeration order.
std::vector<std::pair<int, int>> guaranteed_pairs(int n0, Side side) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n0) * n0 * n0);
  const int a = n0 * n0;
  for (int d_in = 0; d_in < a; ++d_in) {
    for (int d_out = 0; d_out < a; ++d_out) {
      if (is_guaranteed_digit_pair(n0, side, d_in, d_out)) {
        pairs.emplace_back(d_in, d_out);
      }
    }
  }
  return pairs;
}

}  // namespace

bool is_guaranteed_digit_pair(int n0, Side side, int d_in, int d_out) {
  if (side == Side::A) return d_in / n0 == d_out / n0;  // rows match
  return d_in % n0 == d_out % n0;                       // columns match
}

bool h_edge(const BilinearAlgorithm& alg, Side side, int d_in, int d_out,
            int q) {
  const auto& enc = side == Side::A ? alg.u(q, d_in) : alg.v(q, d_in);
  return !enc.is_zero() && !alg.w(d_out, q).is_zero();
}

std::optional<BaseMatching> compute_base_matching(const BilinearAlgorithm& alg,
                                                  Side side) {
  const int n0 = alg.n0();
  const int a = alg.a();
  const auto pairs = guaranteed_pairs(n0, side);
  // Nodes: 0 = source, 1 = sink, 2..2+|X|-1 pairs, then b products.
  const int x_base = 2;
  const int y_base = x_base + static_cast<int>(pairs.size());
  MaxFlow flow(y_base + alg.b());
  std::vector<int> source_edges;
  std::vector<std::vector<std::pair<int, int>>> pair_edges(pairs.size());
  for (std::size_t x = 0; x < pairs.size(); ++x) {
    source_edges.push_back(flow.add_edge(0, x_base + static_cast<int>(x), 1));
    for (int q = 0; q < alg.b(); ++q) {
      if (h_edge(alg, side, pairs[x].first, pairs[x].second, q)) {
        pair_edges[x].emplace_back(
            q, flow.add_edge(x_base + static_cast<int>(x), y_base + q, 1));
      }
    }
  }
  for (int q = 0; q < alg.b(); ++q) {
    flow.add_edge(y_base + q, 1, n0);
  }
  const std::int64_t value = flow.solve(0, 1);
  if (value != static_cast<std::int64_t>(pairs.size())) return std::nullopt;
  std::vector<std::int32_t> mu(static_cast<std::size_t>(a) * a, -1);
  for (std::size_t x = 0; x < pairs.size(); ++x) {
    std::int32_t assigned = -1;
    for (const auto& [q, handle] : pair_edges[x]) {
      if (flow.flow_on(handle) == 1) {
        assigned = q;
        break;
      }
    }
    PR_ASSERT(assigned >= 0);
    mu[static_cast<std::size_t>(pairs[x].first) * static_cast<std::size_t>(a) +
       static_cast<std::size_t>(pairs[x].second)] = assigned;
  }
  return BaseMatching(a, std::move(mu));
}

bool hall_condition_exhaustive(const BilinearAlgorithm& alg, Side side) {
  const int n0 = alg.n0();
  const auto pairs = guaranteed_pairs(n0, side);
  PR_REQUIRE_MSG(pairs.size() <= 20,
                 "exhaustive Hall check is exponential; use the flow check");
  // Precompute neighbourhood bitmasks over products (b <= 64 here).
  PR_REQUIRE(alg.b() <= 64);
  std::vector<std::uint64_t> nbr(pairs.size(), 0);
  for (std::size_t x = 0; x < pairs.size(); ++x) {
    for (int q = 0; q < alg.b(); ++q) {
      if (h_edge(alg, side, pairs[x].first, pairs[x].second, q)) {
        nbr[x] |= std::uint64_t{1} << q;
      }
    }
  }
  for (std::uint64_t subset = 1; subset < (std::uint64_t{1} << pairs.size());
       ++subset) {
    std::uint64_t neighbourhood = 0;
    int size = 0;
    for (std::size_t x = 0; x < pairs.size(); ++x) {
      if (subset & (std::uint64_t{1} << x)) {
        neighbourhood |= nbr[x];
        ++size;
      }
    }
    // |N(D)| >= |D|/n0  <=>  n0 * |N(D)| >= |D|.
    if (n0 * __builtin_popcountll(neighbourhood) < size) return false;
  }
  return true;
}

bool hall_condition_flow(const BilinearAlgorithm& alg, Side side) {
  return compute_base_matching(alg, side).has_value();
}

}  // namespace pathrouting::routing
