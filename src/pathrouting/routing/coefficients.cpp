#include "pathrouting/routing/coefficients.hpp"

#include "pathrouting/support/check.hpp"

namespace pathrouting::routing {

std::vector<Rational> a_coefficient_form(const BilinearAlgorithm& alg,
                                         const std::vector<bool>& keep, int d,
                                         int e) {
  PR_REQUIRE(static_cast<int>(keep.size()) == alg.b());
  std::vector<Rational> form(static_cast<std::size_t>(alg.a()), Rational(0));
  for (int q = 0; q < alg.b(); ++q) {
    if (!keep[static_cast<std::size_t>(q)]) continue;
    const Rational scale = alg.w(d, q) * alg.u(q, e);
    if (scale.is_zero()) continue;
    for (int f = 0; f < alg.a(); ++f) {
      form[static_cast<std::size_t>(f)] += scale * alg.v(q, f);
    }
  }
  return form;
}

bool a_coefficient_correct(const BilinearAlgorithm& alg,
                           const std::vector<bool>& keep, int d, int e) {
  const int n0 = alg.n0();
  if (d / n0 != e / n0) return false;  // rows must match
  const int expected = (e % n0) * n0 + (d % n0);  // b_{j' j}
  const std::vector<Rational> form = a_coefficient_form(alg, keep, d, e);
  for (int f = 0; f < alg.a(); ++f) {
    const Rational want = f == expected ? Rational(1) : Rational(0);
    if (form[static_cast<std::size_t>(f)] != want) return false;
  }
  return true;
}

Lemma6Counts lemma6_counts(const BilinearAlgorithm& alg,
                           const std::vector<bool>& keep, int i) {
  PR_REQUIRE(i >= 0 && i < alg.n0());
  const int n0 = alg.n0();
  Lemma6Counts counts;
  for (int j = 0; j < n0; ++j) {
    for (int jp = 0; jp < n0; ++jp) {
      if (a_coefficient_correct(alg, keep, i * n0 + j, i * n0 + jp)) {
        ++counts.correct;
      }
    }
  }
  for (int q = 0; q < alg.b(); ++q) {
    if (!keep[static_cast<std::size_t>(q)]) continue;
    bool row_support = false;
    for (int j = 0; j < n0 && !row_support; ++j) {
      row_support = !alg.u(q, i * n0 + j).is_zero();
    }
    if (row_support) ++counts.multiplications;
  }
  return counts;
}

}  // namespace pathrouting::routing
