// Memoized, isomorphism-aware routing verification.
//
// By Fact 1 the b^{r-k} copies of G_k inside G_r are pairwise
// isomorphic, and the Lemma-3 / Theorem-2 / Claim-1 routings are
// defined purely in G_k-local coordinates — so their per-vertex hit
// counts are IDENTICAL on every copy up to the Fact-1 vertex renaming
// (cdag::CopyTranslation). The engine therefore computes each hit array
// once, on a standalone canonical G_k, and translates it to any copy by
// contiguous block copies.
//
// The canonical arrays themselves are not obtained by enumerating
// chains either: the routings factor digit-by-digit, which collapses
// the per-vertex counts to closed forms.
//
//   Chains (Lemma 3). With M_side[q] = #{guaranteed digit pairs (d,e)
//   with mu_side(d,e) = q} and the prefix products
//   P_t[q_1..q_t] = prod_i M[q_i]:
//     enc(side, t, q, p)  is hit by  P_t^side[q] * n0^(k-t)  chains,
//     dec(t, q, p)        by  (P_(k-t)^A[q] + P_(k-t)^B[q]) * n0^t.
//
//   Decode zig-zags (Claim 1). With CPint[x] = #{D_1 pairs whose fixed
//   path visits product x strictly inside} and CO[y] = #{pairs whose
//   path visits output y}:
//     dec(0, q, 0)               (a + CPint[q mod b]) * a^(k-1),
//     dec(t, q, p), 0 < t < k:   CPint[q mod b] * b^t * a^(k-t-1)
//                                  + CO[p div a^(t-1)] * b^(t-1) * a^(k-t),
//     dec(k, 0, p):              CO[p div a^(k-1)] * b^(k-1).
//
//   Lemma 4's multiplicity claim also factorizes: every guaranteed
//   digit chain carrying each of the three sequence roles exactly n0
//   times at k = 1 lifts to exactly 3*n0^k uses per chain at any k.
//
// Filling an array costs O(num_vertices) instead of
// O(num_chains * (2k+2)); everything downstream (max, argmax,
// Theorem-2 aggregation) is shared with the brute-force engine, whose
// enumerating counters (count_chain_hits, count_decode_hits) remain
// the oracle the memoized results are cross-checked against in tests
// and benchmarks. Closed-form hit *totals* double as certificates the
// audit layer compares against the materialized arrays
// (routing.memo-totals).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "pathrouting/cdag/layout.hpp"
#include "pathrouting/cdag/view.hpp"
#include "pathrouting/routing/chain_routing.hpp"
#include "pathrouting/routing/concat_routing.hpp"
#include "pathrouting/routing/decode_routing.hpp"

namespace pathrouting::routing {

/// Which verification engine produced a result (benchmarks and audit
/// reports tag their records with this).
enum class EngineKind { kBrute, kMemo, kImplicit };
[[nodiscard]] const char* engine_name(EngineKind kind);

class MemoRoutingEngine {
 public:
  /// Chain-routing only (Lemmas 3-4, Theorem 2).
  explicit MemoRoutingEngine(const ChainRouter& router);
  /// Also memoizes the Claim-1 decode routing; `decoder` must be built
  /// from the same base algorithm as `router`.
  MemoRoutingEngine(const ChainRouter& router, const DecodeRouter& decoder);
  ~MemoRoutingEngine();  // out of line: CanonicalCounts is incomplete here

  [[nodiscard]] bool has_decoder() const { return decoder_.has_value(); }
  [[nodiscard]] const BilinearAlgorithm& algorithm() const { return alg_; }

  /// Lemma-3 hit counts of `sub`, bit-identical to
  /// count_chain_hits(router, sub) (the brute oracle). Requires
  /// sub.k() >= 1 and a CDAG of the engine's base algorithm.
  [[nodiscard]] ChainHitCounts chain_hits(const cdag::SubComputation& sub) const;
  [[nodiscard]] HitStats verify_chain_routing(
      const cdag::SubComputation& sub) const;

  /// Lemma 4's accounting, decided at the digit level (O(a^2) work):
  /// true iff every guaranteed digit chain carries each of the three
  /// sequence roles exactly n0 times, which lifts to exactly 3*n0^k
  /// uses of every chain of `sub`.
  [[nodiscard]] bool verify_chain_multiplicities(
      const cdag::SubComputation& sub) const;

  /// Theorem 2 from the memoized chain counts (same aggregation path
  /// as verify_full_routing_aggregated).
  [[nodiscard]] FullRoutingStats verify_full_routing(
      const cdag::SubComputation& sub) const;

  /// Claim-1 hit counts / verdict; requires has_decoder().
  [[nodiscard]] std::vector<std::uint64_t> decode_hits(
      const cdag::SubComputation& sub) const;
  [[nodiscard]] HitStats verify_decode_routing(
      const cdag::SubComputation& sub) const;

  /// Constant-memory (implicit-engine) counterparts of the verifiers
  /// above. They address the copy G_k^prefix inside `view` directly by
  /// (k, prefix) — a SubComputation needs a materialized Cdag, which is
  /// exactly what this path avoids — and never allocate a per-vertex
  /// array: within a rank the hit counts depend only on the wrapped
  /// prefix products of the recursion-path digits, so one DP over
  /// digit-state classes (pairs of wrapped products, with the smallest
  /// representative word per class) reproduces the canonical scans —
  /// max, smallest-id argmax, Theorem-2 root/meta accounting — in
  /// O(k * b * #states) time and memory. Results are bit-identical to
  /// the array-backed overloads for every k where both run, including
  /// uint64 wraparound and argmax tie-breaking (enforced by the audit
  /// rule routing.implicit-match and tests/test_implicit_cdag).
  [[nodiscard]] HitStats verify_chain_routing(const cdag::CdagView& view,
                                              int k,
                                              std::uint64_t prefix) const;
  [[nodiscard]] bool verify_chain_multiplicities(const cdag::CdagView& view,
                                                 int k,
                                                 std::uint64_t prefix) const;
  [[nodiscard]] FullRoutingStats verify_full_routing(
      const cdag::CdagView& view, int k, std::uint64_t prefix) const;
  [[nodiscard]] HitStats verify_decode_routing(const cdag::CdagView& view,
                                               int k,
                                               std::uint64_t prefix) const;

  /// Closed-form certificate totals (audit rule routing.memo-totals):
  /// 2 * a^k * n0^k chains of 2k+2 vertices each, and b^k * a^k
  /// zig-zags whose total length follows from the D_1 path lengths.
  [[nodiscard]] std::uint64_t expected_num_chains(int k) const;
  [[nodiscard]] std::uint64_t expected_chain_total_hits(int k) const;
  [[nodiscard]] std::uint64_t expected_num_decode_paths(int k) const;
  [[nodiscard]] std::uint64_t expected_decode_total_hits(int k) const;

  /// The canonical G_k per-vertex hit arrays themselves (local ids of
  /// the standalone canonical layout). For the whole-graph
  /// subcomputation sub(G_k, k, 0) the Fact-1 translation is the
  /// identity, so these are bit-identical to chain_hits(sub).hits /
  /// decode_hits(sub) — the certificate service digests them without
  /// ever materializing a CDAG. The spans stay valid for the engine's
  /// lifetime (cache entries are never evicted).
  [[nodiscard]] std::span<const std::uint64_t> canonical_chain_hit_array(
      int k) const;
  /// Requires has_decoder().
  [[nodiscard]] std::span<const std::uint64_t> canonical_decode_hit_array(
      int k) const;

 private:
  /// Per-k canonical G_k hit arrays, computed once and cached for the
  /// engine's lifetime. Concurrent-reader-safe: lookups take a shared
  /// lock, a miss fills a candidate OUTSIDE any lock (two racing
  /// threads may both compute — the fill is deterministic, so the
  /// loser's identical candidate is discarded) and inserts under the
  /// exclusive lock. Entries are heap-allocated and never evicted, so
  /// returned references remain stable without holding the lock — the
  /// property the certificate service relies on to serve concurrent
  /// requests from one shared engine arena.
  struct CanonicalCounts;
  [[nodiscard]] const CanonicalCounts& canonical(int k) const;
  void check_sub(const cdag::SubComputation& sub) const;
  void check_view(const cdag::CdagView& view, int k,
                  std::uint64_t prefix) const;
  /// Lemma 4's digit-level accounting, shared by both overloads.
  [[nodiscard]] bool chain_multiplicities_ok() const;

  BilinearAlgorithm alg_;
  BaseMatching mu_a_;
  BaseMatching mu_b_;
  std::vector<std::uint64_t> m_a_, m_b_;   // M_side[q], size b
  std::vector<std::uint8_t> triv_a_, triv_b_;  // trivial encoding rows
  std::optional<DecodeRouter> decoder_;
  std::vector<std::uint64_t> cpint_, co_;  // decode D_1 visit tables
  std::uint64_t cpint_sum_ = 0, co_sum_ = 0;
  mutable std::shared_mutex mutex_;
  mutable std::map<int, std::unique_ptr<CanonicalCounts>> cache_;
};

}  // namespace pathrouting::routing
