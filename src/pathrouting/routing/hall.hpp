// The matching graph H = (X, Y) of Section 7.2 and the many-to-one Hall
// matching of Theorem 3.
//
// For side A of a base algorithm: X = guaranteed dependencies of G'_1,
// i.e. digit pairs (d_in, d_out) with row(d_in) == row(d_out); Y = the
// b middle-rank vertices (one per product, since each combination feeds
// exactly one product in the canonical CDAG). (d_in, d_out) is adjacent
// to product q iff some chain from the input through q reaches the
// output: U[q, d_in] != 0 and W[d_out, q] != 0. For side B the
// guaranteed dependencies pair by column and use V instead of U.
//
// Lemma 5 states |N(D)| >= |D| / n0 for every D ⊆ X; by Theorem 3
// (Hall, many-to-one) a matching then exists that uses every middle
// vertex at most n0 times. `compute_base_matching` constructs it by
// max-flow; its existence is *equivalent* to the Hall condition, so the
// flow-based checker decides Lemma 5's hypothesis exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pathrouting/bilinear/analysis.hpp"

namespace pathrouting::routing {

using bilinear::BilinearAlgorithm;
using bilinear::Side;

/// Many-to-one matching from guaranteed digit pairs to products.
class BaseMatching {
 public:
  BaseMatching(int a, std::vector<std::int32_t> mu) : a_(a), mu_(std::move(mu)) {}

  /// Product assigned to the guaranteed pair (d_in, d_out); pairs
  /// without a guaranteed dependence are not in the matching domain.
  [[nodiscard]] int product(int d_in, int d_out) const {
    const std::int32_t q =
        mu_[static_cast<std::size_t>(d_in) * static_cast<std::size_t>(a_) +
            static_cast<std::size_t>(d_out)];
    PR_REQUIRE_MSG(q >= 0, "pair is not a guaranteed dependence");
    return q;
  }
  [[nodiscard]] bool defined(int d_in, int d_out) const {
    return mu_[static_cast<std::size_t>(d_in) * static_cast<std::size_t>(a_) +
               static_cast<std::size_t>(d_out)] >= 0;
  }

 private:
  int a_;
  std::vector<std::int32_t> mu_;
};

/// True iff digit pair (d_in on `side`, d_out) is a guaranteed
/// dependence: rows match for A-inputs, columns match for B-inputs.
bool is_guaranteed_digit_pair(int n0, Side side, int d_in, int d_out);

/// True iff the edge (d_in,d_out)-q exists in H.
bool h_edge(const BilinearAlgorithm& alg, Side side, int d_in, int d_out,
            int q);

/// Constructs the Theorem-3 matching with per-product capacity n0 via
/// max-flow, or nullopt if none exists (then the Hall condition of
/// Lemma 5 fails — impossible for correct algorithms by the paper's
/// argument, but reachable for hand-crafted broken inputs in tests).
std::optional<BaseMatching> compute_base_matching(const BilinearAlgorithm& alg,
                                                  Side side);

/// Decides Lemma 5's Hall condition |N(D)| >= |D|/n0 for all D by
/// exhaustive subset enumeration. Only feasible for n0 = 2 (|X| = 8).
bool hall_condition_exhaustive(const BilinearAlgorithm& alg, Side side);

/// Same decision via max-flow feasibility (equivalent by Theorem 3);
/// works for any n0.
bool hall_condition_flow(const BilinearAlgorithm& alg, Side side);

}  // namespace pathrouting::routing
