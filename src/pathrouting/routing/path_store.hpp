// Flat arena for families of routed paths (SoA/CSR form).
//
// The explicit-path consumers of the routing layer — the audit rules,
// DOT export, path exploration — need materialized vertex sequences,
// but one std::vector<VertexId> per path means one allocation per path
// (millions for the streamed audits). A PathStore keeps every path of a
// family in two flat arrays (offsets + packed vertices) with optional
// per-path declared terminals; appending a path writes straight into
// the shared arena, so steady-state enumeration performs zero per-path
// allocations. The CSR shape is exactly what audit::PathFamily views,
// so a store plugs into the path-family rules without copying.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pathrouting/cdag/layout.hpp"

namespace pathrouting::routing {

class PathStore {
 public:
  /// `fill` receives the arena vector and must only push_back the
  /// path's vertices (in order). Returns the new path's index.
  template <typename Fill>
  std::uint64_t add_path(Fill&& fill) {
    fill(vertices_);
    PR_REQUIRE_MSG(vertices_.size() >= offsets_.back(),
                   "PathStore::add_path: fill must only append");
    offsets_.push_back(vertices_.size());
    return num_paths() - 1;
  }

  /// add_path plus declared terminals (audit routing.path-endpoints).
  template <typename Fill>
  std::uint64_t add_path(cdag::VertexId source, cdag::VertexId sink,
                         Fill&& fill) {
    const std::uint64_t index = add_path(std::forward<Fill>(fill));
    sources_.push_back(source);
    sinks_.push_back(sink);
    PR_REQUIRE_MSG(sources_.size() == num_paths(),
                   "PathStore: mix of paths with and without terminals");
    return index;
  }

  [[nodiscard]] std::uint64_t num_paths() const { return offsets_.size() - 1; }
  [[nodiscard]] std::uint64_t total_vertices() const {
    return vertices_.size();
  }
  [[nodiscard]] std::span<const cdag::VertexId> path(std::uint64_t i) const {
    PR_REQUIRE(i < num_paths());
    return {vertices_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  [[nodiscard]] std::span<const std::uint64_t> offsets() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const cdag::VertexId> vertices() const {
    return vertices_;
  }
  [[nodiscard]] std::span<const cdag::VertexId> sources() const {
    return sources_;
  }
  [[nodiscard]] std::span<const cdag::VertexId> sinks() const {
    return sinks_;
  }

  void reserve(std::uint64_t paths, std::uint64_t vertices) {
    offsets_.reserve(paths + 1);
    sources_.reserve(paths);
    sinks_.reserve(paths);
    vertices_.reserve(vertices);
  }
  /// Drops all paths but keeps the arena capacity (per-chunk reuse).
  void clear() {
    offsets_.resize(1);
    vertices_.clear();
    sources_.clear();
    sinks_.clear();
  }

 private:
  std::vector<std::uint64_t> offsets_ = {0};
  std::vector<cdag::VertexId> vertices_;
  std::vector<cdag::VertexId> sources_;
  std::vector<cdag::VertexId> sinks_;
};

/// Per-vertex hit counts of all stored paths; `hits` must be sized to
/// the owning graph's vertex count.
void accumulate_hits(const PathStore& store,
                     std::span<std::uint64_t> hits);

/// DOT rendering of a path family as an edge overlay: each path becomes
/// a chain of directed `->` edges labeled with its index; vertex names
/// come from the layout's addressing. Intended for small explorer
/// outputs (routing_explorer --dot), not for whole routings.
std::string paths_to_dot(const cdag::Layout& layout, const PathStore& store,
                         const std::string& graph_name);

}  // namespace pathrouting::routing
