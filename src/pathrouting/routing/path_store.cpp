#include "pathrouting/routing/path_store.hpp"

#include <algorithm>
#include <sstream>

namespace pathrouting::routing {

void accumulate_hits(const PathStore& store, std::span<std::uint64_t> hits) {
  for (const cdag::VertexId v : store.vertices()) {
    PR_REQUIRE_MSG(v < hits.size(),
                   "accumulate_hits: stored vertex outside the hit array");
    ++hits[v];
  }
}

namespace {

std::string vertex_label(const cdag::Layout& layout, cdag::VertexId v) {
  const cdag::VertexRef ref = layout.ref(v);
  const char* layer = ref.layer == cdag::LayerKind::EncA   ? "encA"
                      : ref.layer == cdag::LayerKind::EncB ? "encB"
                                                           : "dec";
  std::ostringstream label;
  label << layer << " t" << ref.rank << " q" << ref.q << " p" << ref.p;
  return label.str();
}

}  // namespace

std::string paths_to_dot(const cdag::Layout& layout, const PathStore& store,
                         const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n  rankdir=BT;\n"
     << "  node [shape=box, fontsize=10];\n";
  // Vertices touched by any path, in id order, labeled by address.
  std::vector<cdag::VertexId> used(store.vertices().begin(),
                                   store.vertices().end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  for (const cdag::VertexId v : used) {
    os << "  v" << v << " [label=\"" << v << "\\n"
       << vertex_label(layout, v) << "\"];\n";
  }
  for (std::uint64_t i = 0; i < store.num_paths(); ++i) {
    const std::span<const cdag::VertexId> path = store.path(i);
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      os << "  v" << path[j] << " -> v" << path[j + 1] << " [label=\"" << i
         << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace pathrouting::routing
