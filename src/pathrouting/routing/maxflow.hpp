// Dinic's maximum-flow algorithm on small integer-capacity networks.
//
// Used to construct the many-to-one Hall matching of Theorem 3 (each
// guaranteed dependence of G'_1 -> a middle-rank vertex, capacities n0)
// and to decide the Hall condition of Lemma 5 for bases too large to
// check exhaustively. Networks here have O(a^2 + b) nodes, so
// simplicity beats micro-optimisation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pathrouting::routing {

class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge with the given capacity; returns an edge
  /// handle usable with `flow_on`.
  int add_edge(int from, int to, std::int64_t capacity);

  /// Runs Dinic from s to t; returns the max-flow value. May be called
  /// once per instance.
  std::int64_t solve(int s, int t);

  /// Flow routed through the edge returned by add_edge.
  [[nodiscard]] std::int64_t flow_on(int edge_handle) const;

 private:
  struct Edge {
    int to;
    std::int64_t cap;  // residual capacity
    int rev;           // index of the reverse edge in adj_[to]
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int s, int t, std::int64_t limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<int> bfs_queue_;  // reusable BFS queue (head index scan)
  // Current DFS path as (node, edge index) pairs; kept explicit so deep
  // level graphs cannot overflow the call stack.
  std::vector<std::pair<int, std::size_t>> path_;
  std::vector<std::pair<int, int>> handles_;  // (node, index in adj_[node])
  std::vector<std::int64_t> original_cap_;
};

}  // namespace pathrouting::routing
