// Claim 1 (Section 5): the (|D_1| * b^k)-routing inside the decoding
// graph D_k alone, for bases whose decoding graph is connected
// (Strassen: an 11*7^k-routing).
//
// The "zig-zag" construction: within each recursion level, the unique
// chain hop product -> output of the complete-bipartite case is replaced
// by an undirected simple path inside the level's D_1 component
// (Figure 3). A path from D_k input (q_1..q_k) to output (e_1..e_k)
// processes levels innermost-first; at level l it zig-zags between
// decoding ranks k-l and k-l+1 following a fixed D_1 path from q_l to
// e_l, with block context (q_1..q_{l-1}) and the already-decoded output
// suffix (e_{l+1}..e_k) (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "pathrouting/cdag/subcomputation.hpp"
#include "pathrouting/routing/chain_routing.hpp"  // for HitStats

namespace pathrouting::routing {

class DecodeRouter {
 public:
  /// Precomputes BFS paths between every product and output of D_1.
  /// Aborts if the base decoding graph is disconnected (Claim 1 needs
  /// connectivity; Section 6 handles the general case via Theorem 2).
  explicit DecodeRouter(const BilinearAlgorithm& alg);

  /// |D_1| = a + b; the routing bound is |D_1| * max(a,b)^k.
  [[nodiscard]] int d1_size() const { return alg_.a() + alg_.b(); }

  /// The fixed simple D_1 path from product q to output e, alternating
  /// products and outputs: q = x_0, y_1, x_1, ..., y_m = e. Returned as
  /// the interleaved sequence (x_0, y_1, x_1, y_2, ..., y_m).
  [[nodiscard]] const std::vector<int>& d1_path(int q, int e) const {
    return d1_paths_[static_cast<std::size_t>(q) *
                         static_cast<std::size_t>(alg_.a()) +
                     static_cast<std::size_t>(e)];
  }

  /// Appends the D_k path from input (product word q_word) to output
  /// position e_word of sub's decoding graph, as global vertex ids.
  void append_path(const cdag::SubComputation& sub, std::uint64_t q_word,
                   std::uint64_t e_word, std::vector<cdag::VertexId>& out) const;

 private:
  BilinearAlgorithm alg_;
  std::vector<std::vector<int>> d1_paths_;  // [q * a + e]
};

/// Per-vertex hit counts (indexed by global vertex id) of the full
/// Claim-1 routing: all b^k x a^k zig-zag paths of sub's D_k,
/// enumerated explicitly. This is the brute-force oracle the memoized
/// engine (memo_routing.hpp) is cross-checked against.
std::vector<std::uint64_t> count_decode_hits(const DecodeRouter& router,
                                             const cdag::SubComputation& sub);

/// Claim 1 verification: route all b^k x a^k input-output pairs of
/// sub's D_k and check max per-vertex hits <= |D_1| * max(a,b)^k.
HitStats verify_decode_routing(const DecodeRouter& router,
                               const cdag::SubComputation& sub);

}  // namespace pathrouting::routing
